"""CLI tests."""

import json

import pytest

from repro.cli import build_parser, main


def test_help_lists_subcommands(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    for cmd in (
        "generate", "flow", "experiment", "serve", "submit", "jobs",
    ):
        assert cmd in out


def test_generate_writes_files(tmp_path, capsys):
    rc = main(
        [
            "generate",
            "--profile", "m0",
            "--scale", "0.01",
            "--out", str(tmp_path),
        ]
    )
    assert rc == 0
    files = {p.suffix for p in tmp_path.iterdir()}
    assert files == {".lef", ".def", ".v"}
    assert "instances" in capsys.readouterr().out


def test_flow_prints_table(tmp_path, capsys):
    rc = main(
        [
            "flow",
            "--profile", "aes",
            "--scale", "0.008",
            "--window-um", "1.0",
            "--time-limit", "2.0",
            "--json",
            "--out", str(tmp_path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    row = json.loads(out[: out.index("artifacts")])
    assert row["design"] == "aes"
    assert (tmp_path / "post.def").exists()
    assert (tmp_path / "layout_opt.svg").exists()


def test_parser_rejects_unknown_arch():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["flow", "--arch", "nope"])


@pytest.mark.parametrize("jobs", ["0", "-3"])
def test_flow_rejects_nonpositive_jobs_at_parse_time(jobs, capsys):
    """Satellite: ``--jobs 0`` must die in argparse, not deep in the
    executor factory."""
    with pytest.raises(SystemExit) as err:
        build_parser().parse_args(["flow", "--jobs", jobs])
    assert err.value.code == 2  # argparse usage error
    assert "must be a positive integer" in capsys.readouterr().err


@pytest.mark.parametrize(
    "args",
    [
        ["flow", "--scale", "0"],
        ["flow", "--scale", "-0.5"],
        ["flow", "--time-limit", "0"],
        ["serve", "--workers", "0"],
        ["submit", "--jobs", "-1"],
    ],
)
def test_parser_rejects_nonpositive_numbers(args):
    with pytest.raises(SystemExit) as err:
        build_parser().parse_args(args)
    assert err.value.code == 2


def test_flow_help_documents_auto_executor_resolution(capsys):
    with pytest.raises(SystemExit) as err:
        main(["flow", "--help"])
    assert err.value.code == 0
    out = " ".join(capsys.readouterr().out.split())
    assert "'auto' resolves to 'serial'" in out
    assert "must be >= 1" in out
