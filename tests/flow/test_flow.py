"""End-to-end flow tests (small scale)."""

import pytest

from repro.flow import FlowConfig, run_flow, table2_row
from repro.tech import CellArchitecture


@pytest.fixture(scope="module")
def result():
    return run_flow(
        FlowConfig(
            profile="aes",
            arch=CellArchitecture.CLOSED_M1,
            scale=0.012,
            seed=1,
            window_um=1.0,
            lx=3,
            ly=1,
            time_limit=3.0,
        )
    )


def test_flow_produces_all_stages(result):
    assert result.init_route.routed_wirelength > 0
    assert result.final_route is not None
    assert result.opt is not None
    assert result.init_timing.critical_path_ps > 0
    assert result.final_timing is not None
    assert result.init_power.total_mw > 0
    assert result.final_power is not None
    assert result.design.check_legal() == []


def test_flow_improves_the_paper_metrics(result):
    init, final = result.init_route, result.final_route
    assert final.num_dm1 > init.num_dm1
    assert final.routed_wirelength < init.routed_wirelength
    assert final.num_via12 <= init.num_via12


def test_timing_not_degraded(result):
    # Same clock period for both: WNS must not get worse (paper: "no
    # adverse timing impact").
    assert result.final_timing.clock_period_ps == (
        result.init_timing.clock_period_ps
    )
    assert result.final_timing.wns_ns >= (
        result.init_timing.wns_ns - 0.005
    )


def test_table2_row_contents(result):
    row = table2_row(result)
    assert row["design"] == "aes"
    assert row["arch"] == "closedm1"
    assert row["#inst"] == len(result.design.instances)
    assert row["RWL %"] < 0
    assert row["#dM1 final"] > row["#dM1 init"]
    assert row["runtime (s)"] > 0
    assert 0 < row["runtime parallel-model (s)"] <= row["runtime (s)"]


def test_route_only_flow():
    r = run_flow(
        FlowConfig(
            profile="m0",
            arch=CellArchitecture.CONV_12T,
            scale=0.01,
            optimize=False,
        )
    )
    assert r.final_route is None
    assert r.opt is None
    with pytest.raises(ValueError):
        table2_row(r)


def test_explicit_params_override():
    from repro.core import OptParams, ParamSet

    params = OptParams.for_arch(
        CellArchitecture.CLOSED_M1,
        alpha=0.0,
        sequence=(ParamSet.square(1.0, 2, 0),),
        time_limit=2.0,
        theta=0.5,
    )
    r = run_flow(
        FlowConfig(
            profile="aes", scale=0.01, params=params, seed=2
        )
    )
    # alpha=0: still a valid flow; dM1 may or may not change.
    assert r.final_route is not None
    assert r.design.check_legal() == []
