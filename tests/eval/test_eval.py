"""Smoke tests for the experiment harness (quick preset)."""

import pytest

from repro.eval import (
    EvalScale,
    expt_a1_window_sweep,
    expt_b_table2,
    render_markdown_table,
)
from repro.eval.expt_a1 import knee_configuration
from repro.tech import CellArchitecture


@pytest.fixture(scope="module")
def quick():
    return EvalScale.quick()


def test_eval_scale_presets():
    default = EvalScale()
    paper = EvalScale.paper()
    quick = EvalScale.quick()
    assert paper.scale_of("aes") == 1.0
    assert quick.scale_of("aes") < default.scale_of("aes") < 1.0
    assert paper.window_um(20.0) == 20.0
    assert default.window_um(20.0) < 20.0
    # Tiny paper windows clamp to a sane floor.
    assert default.window_um(0.1) == 0.5


def test_expt_a1_rows(quick):
    rows = expt_a1_window_sweep(
        quick,
        window_sizes_um=(10.0, 20.0),
        perturbations=((2, 0),),
    )
    assert len(rows) == 2
    for row in rows:
        assert row["RWL (um)"] > 0
        assert row["runtime (s)"] > 0
        assert row["RWL (norm)"] >= 1.0 - 1e-9
    knee = knee_configuration(rows)
    assert knee in rows


@pytest.mark.slow  # benchmark-adjacent: full ExptB flow on one design
def test_expt_b_single_design(quick):
    rows = expt_b_table2(
        quick,
        archs=(CellArchitecture.CLOSED_M1,),
        designs=("aes",),
    )
    assert len(rows) == 1
    row = rows[0]
    assert row["#dM1 final"] >= row["#dM1 init"]
    assert row["runtime (s)"] > 0


def test_render_markdown_table():
    text = render_markdown_table(
        [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}]
    )
    lines = text.strip().splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert lines[2] == "| 1 | 2.50 |"
    assert lines[3] == "| 3 | 4 |"
    assert render_markdown_table([]) == "(no rows)\n"
