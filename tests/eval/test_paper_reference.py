"""Tests for the embedded paper reference numbers."""

import pytest

from repro.eval.paper_reference import PAPER_TABLE2, paper_row


def test_all_eight_rows_present():
    assert len(PAPER_TABLE2) == 8
    for arch in ("closedm1", "openm1"):
        for design in ("m0", "aes", "jpeg", "vga"):
            assert (arch, design) in PAPER_TABLE2


def test_headline_numbers_match_abstract():
    """The abstract's headline claims: up to 6.4% RWL and 14.4%
    via12 reduction (ClosedM1), up to 2.2% / 4.1% (OpenM1)."""
    closed_rwl = min(
        paper_row("closedm1", d)["RWL %"]
        for d in ("m0", "aes", "jpeg", "vga")
    )
    closed_via = min(
        paper_row("closedm1", d)["#via12 %"]
        for d in ("m0", "aes", "jpeg", "vga")
    )
    assert closed_rwl == -6.4
    assert closed_via == -14.4
    open_rwl = min(
        paper_row("openm1", d)["RWL %"]
        for d in ("m0", "aes", "jpeg", "vga")
    )
    open_via = min(
        paper_row("openm1", d)["#via12 %"]
        for d in ("m0", "aes", "jpeg", "vga")
    )
    assert open_rwl == -2.2
    assert open_via == -4.1


def test_dm1_multipliers():
    """ClosedM1 #dM1 grows >4x on every design, OpenM1 47-71%."""
    for design in ("m0", "aes", "jpeg", "vga"):
        closed = paper_row("closedm1", design)
        assert closed["#dM1 final"] > 4 * closed["#dM1 init"]
        opened = paper_row("openm1", design)
        ratio = opened["#dM1 final"] / opened["#dM1 init"]
        assert 1.4 < ratio < 1.8


def test_unknown_row_raises():
    with pytest.raises(KeyError):
        paper_row("closedm1", "nonexistent")
