"""Crash-safety acceptance tests against a real ``repro serve``.

Two scenarios from ISSUE 4:

* SIGKILL of the server mid-DistOpt: a restart on the same journal
  root recovers the job and resumes from the last checkpointed pass,
  finishing with a placement **byte-identical** to an uninterrupted
  run.
* SIGTERM of the server while a multiprocess-executor job runs: the
  service drains (in-flight window solves finish, workers are
  joined — nothing orphaned), the job is re-queued with its
  checkpoint, and the process exits nonzero.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import ServiceClient

# Subprocess SIGKILL/SIGTERM round trips take ~15s; nightly tier.
pytestmark = pytest.mark.slow

SPEC = {
    "profile": "aes",
    "scale": 0.02,
    "window_um": 1.0,
    "time_limit": 2.0,
    "seed": 1,
}

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _start_server(root: Path) -> tuple[subprocess.Popen, ServiceClient]:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--root",
            str(root),
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        start_new_session=True,  # own process group — see _assert_group_gone
    )
    banner = proc.stdout.readline()
    assert "listening on" in banner, banner
    url = banner.split("listening on ")[1].split()[0]
    return proc, ServiceClient(url)


def _stop_server(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    if proc.stdout:
        proc.stdout.close()


def _assert_group_gone(pgid: int, timeout: float = 20.0) -> None:
    """The whole process group must exit — no orphaned pool workers."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        try:
            os.killpg(pgid, 0)
        except ProcessLookupError:
            return
        time.sleep(0.1)
    os.killpg(pgid, signal.SIGKILL)  # clean up before failing
    pytest.fail("worker processes were orphaned after shutdown")


def _wait_for_checkpoint(root: Path, job_id: str, timeout=60.0) -> Path:
    path = root / "jobs" / job_id / "checkpoint.json"
    deadline = time.time() + timeout
    while time.time() < deadline:
        if path.exists():
            return path
        time.sleep(0.02)
    pytest.fail("no checkpoint appeared — job too fast or stuck")


def test_sigkill_resume_is_byte_identical(tmp_path):
    # Reference: the same spec run to completion uninterrupted.
    ref_root = tmp_path / "ref"
    proc, client = _start_server(ref_root)
    try:
        job_id = client.submit(dict(SPEC))
        assert client.wait(job_id, timeout=300)["state"] == "done"
        reference_def = client.artifact(job_id, "post.def")
    finally:
        _stop_server(proc)

    # Victim: SIGKILL the whole server group mid-DistOpt.
    root = tmp_path / "victim"
    proc, client = _start_server(root)
    try:
        job_id = client.submit(dict(SPEC))
        _wait_for_checkpoint(root, job_id)
    finally:
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        proc.stdout.close()

    # The journal still says "running" — nobody got to clean up.
    record = json.loads(
        (root / "jobs" / job_id / "job.json").read_text()
    )
    assert record["state"] == "running"

    # Restart on the same root: recovery re-queues, the job resumes
    # from the checkpoint and must finish byte-identical.
    proc, client = _start_server(root)
    try:
        final = client.wait(job_id, timeout=300)
        assert final["state"] == "done", final.get("error")
        assert final["attempts"] == 2
        events = list(client.events(job_id))
        states = [
            e.get("state") for e in events if e["type"] == "state"
        ]
        assert "requeued" in states
        assert any(e["type"] == "resume" for e in events)
        assert client.result(job_id)["resumed"] is True
        resumed_def = client.artifact(job_id, "post.def")
    finally:
        _stop_server(proc)

    assert resumed_def == reference_def


def test_sigkill_trace_survives_and_resume_rejoins_it(tmp_path):
    """ISSUE 9: a traced job's NDJSON trace survives SIGKILL (torn
    final line tolerated) and the resumed attempt appends to the same
    trace — one trace_id, one rooted tree, one header line."""
    from repro.obs.export import read_trace
    from repro.obs.trace import tree_shape

    root = tmp_path / "traced"
    proc, client = _start_server(root)
    try:
        job_id = client.submit({**SPEC, "trace": True})
        _wait_for_checkpoint(root, job_id)
    finally:
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        proc.stdout.close()

    trace_path = root / "jobs" / job_id / "trace.ndjson"
    assert trace_path.exists(), "no spans flushed before the kill"
    # Readable right now, torn tail and all.
    killed_spans = read_trace(trace_path)
    trace_ids = {s.trace_id for s in killed_spans}
    assert len(trace_ids) == 1

    proc, client = _start_server(root)
    try:
        final = client.wait(job_id, timeout=300)
        assert final["state"] == "done", final.get("error")
        assert final["attempts"] == 2
    finally:
        _stop_server(proc)

    spans = read_trace(trace_path)
    assert len(spans) > len(killed_spans)
    assert {s.trace_id for s in spans} == trace_ids
    # Exactly one header even though two attempts appended.
    headers = [
        line
        for line in trace_path.read_text().splitlines()
        if '"type": "header"' in line or '"type":"header"' in line
    ]
    assert len(headers) == 1
    # One coherent trace: the killed attempt's *unfinished* ancestors
    # (its flow/opt/vm1_opt spans) never wrote their lines, so its
    # finished stage/pass spans surface as roots; the resumed attempt
    # parents under the killed attempt's run-span id (the context rode
    # the checkpoint) and contributes exactly one complete flow tree.
    shape = tree_shape(spans)
    flow_roots = [s for s in shape if s[0] == "flow"]
    assert len(flow_roots) == 1, shape


def test_sigterm_drains_multiprocess_job_and_exits_nonzero(tmp_path):
    root = tmp_path / "drain"
    proc, client = _start_server(root)
    pgid = proc.pid
    job_id = None
    try:
        job_id = client.submit(
            {**SPEC, "executor": "process", "jobs": 2}
        )
        _wait_for_checkpoint(root, job_id)
        os.kill(proc.pid, signal.SIGTERM)  # only the server process
        rc = proc.wait(timeout=120)
    finally:
        if proc.poll() is None:  # pragma: no cover — hung server
            _stop_server(proc)

    assert rc == 128 + signal.SIGTERM  # nonzero, conventional code
    _assert_group_gone(pgid)  # pool workers joined, not orphaned

    record = json.loads(
        (root / "jobs" / job_id / "job.json").read_text()
    )
    assert record["state"] == "queued"  # re-queued for resume
    assert (root / "jobs" / job_id / "checkpoint.json").exists()
    events = [
        json.loads(line)
        for line in (root / "jobs" / job_id / "events.ndjson")
        .read_text()
        .splitlines()
    ]
    states = [
        e.get("state") for e in events if e["type"] == "state"
    ]
    assert states[-1] == "requeued"

    # A restarted service finishes the drained job from its checkpoint.
    proc, client = _start_server(root)
    try:
        final = client.wait(job_id, timeout=300)
        assert final["state"] == "done", final.get("error")
        assert final["attempts"] == 2
    finally:
        _stop_server(proc)
