"""Prometheus exposition contract for the service ``/metrics``.

The endpoint is rendered by the manager's
:class:`repro.obs.MetricsRegistry` (ISSUE 9 satellite): every metric
gets exactly one HELP and one TYPE line, label values are escaped,
and metric/series ordering is stable across scrapes.
"""

import re
import threading

import pytest

from repro.service import ServiceClient, build_server

_SERIES = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>-?[0-9.e+]+|\+Inf|NaN)$"
)


@pytest.fixture()
def service(tmp_path):
    server = build_server(tmp_path / "root", port=0)
    thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    thread.start()
    yield server, ServiceClient(server.url)
    server.manager.shutdown(timeout=60)
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def test_every_metric_has_help_and_type_once(service):
    _, client = service
    lines = client.metrics().splitlines()
    helps = [ln.split()[2] for ln in lines if ln.startswith("# HELP")]
    types = [ln.split()[2] for ln in lines if ln.startswith("# TYPE")]
    assert helps == sorted(helps), "metrics must be name-sorted"
    assert helps == types, "HELP and TYPE must pair up per metric"
    assert len(helps) == len(set(helps)), "one HELP per metric"
    expected = {
        "repro_jobs",
        "repro_jobs_active",
        "repro_jobs_lifecycle_total",
        "repro_service_draining",
        "repro_service_uptime_seconds",
        "repro_service_workers",
    }
    assert expected <= set(helps)


def test_every_series_line_parses(service):
    _, client = service
    for line in client.metrics().splitlines():
        if line.startswith("#") or not line:
            continue
        match = _SERIES.match(line)
        assert match, f"unparseable series line: {line!r}"
        labels = match.group("labels")
        if labels:
            for pair in labels.split(","):
                assert re.match(
                    r'^[a-zA-Z_][a-zA-Z0-9_]*=".*"$', pair
                ), f"bad label pair {pair!r} in {line!r}"


def test_all_lifecycle_events_preregistered_at_zero(service):
    _, client = service
    text = client.metrics()
    for event in (
        "jobs_started", "jobs_done", "jobs_failed", "jobs_cancelled",
        "jobs_interrupted", "passes", "shards_completed",
        "seam_passes", "windows_skipped_clean",
    ):
        assert (
            f'repro_jobs_lifecycle_total{{event="{event}"}} 0' in text
        )


def test_jobs_by_state_covers_every_state(service):
    _, client = service
    text = client.metrics()
    for state in ("queued", "running", "done", "failed", "cancelled"):
        assert f'repro_jobs{{state="{state}"}} 0' in text


def test_ordering_is_stable_across_scrapes(service):
    _, client = service

    def skeleton(text: str) -> list[str]:
        # drop values (uptime moves); keep line identities + order
        out = []
        for line in text.splitlines():
            if line.startswith("#"):
                out.append(line)
            else:
                out.append(line.rsplit(" ", 1)[0])
        return out

    assert skeleton(client.metrics()) == skeleton(client.metrics())


def test_label_escaping_via_registry():
    """The exposition escapes backslash, quote, newline in label
    values (unit-level: service labels are tame by construction)."""
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry()
    reg.counter("m", "h", ("k",)).inc(k='a"b\\c\nd')
    body = [
        ln
        for ln in reg.render_prometheus().splitlines()
        if not ln.startswith("#")
    ]
    assert body == ['m{k="a\\"b\\\\c\\nd"} 1']
