"""HTTP API + client: endpoints, streaming, liveness under load."""

import threading
import time

import pytest

from repro.runtime import TELEMETRY_SCHEMA
from repro.service import ServiceClient, ServiceError, build_server

QUICK_SPEC = {
    "profile": "aes",
    "scale": 0.008,
    "window_um": 1.0,
    "time_limit": 2.0,
}


@pytest.fixture()
def service(tmp_path):
    server = build_server(tmp_path / "root", port=0)
    thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    thread.start()
    yield server, ServiceClient(server.url)
    server.manager.shutdown(timeout=60)
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def test_healthz(service):
    _, client = service
    health = client.healthz()
    assert health["ok"] is True
    assert health["uptime_seconds"] >= 0
    assert health["active_jobs"] == []


def test_metrics_exposition_format(service):
    _, client = service
    text = client.metrics()
    assert "repro_service_uptime_seconds" in text
    assert 'repro_jobs{state="queued"} 0' in text
    assert 'repro_jobs_lifecycle_total{event="jobs_done"} 0' in text


def test_unknown_routes_404(service):
    _, client = service
    with pytest.raises(ServiceError) as err:
        client.status("no-such-job")
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        client._request("GET", "/nope")
    assert err.value.status == 404


def test_submit_validates_spec(service):
    _, client = service
    with pytest.raises(ServiceError) as err:
        client.submit({"jobs": 0})
    assert err.value.status == 400
    assert "jobs" in str(err.value)
    with pytest.raises(ServiceError) as err:
        client.submit({}, kind="route-only")
    assert err.value.status == 400


def test_result_409_while_pending(service):
    server, client = service
    # No manager worker will grab this before we check: submit an
    # invalid-free spec and immediately ask for the result.
    job_id = client.submit(dict(QUICK_SPEC))
    try:
        client.result(job_id)
    except ServiceError as err:
        assert err.status in (404, 409)
    else:  # pragma: no cover — job finished implausibly fast
        pass
    client.wait(job_id, timeout=120)


def test_job_end_to_end_over_http(service):
    server, client = service
    job_id = client.submit(dict(QUICK_SPEC))
    record = client.status(job_id)
    assert record["state"] in ("queued", "running")

    # /healthz and /metrics answer while the job is executing.
    saw_active = False
    deadline = time.time() + 120
    while time.time() < deadline:
        health = client.healthz()
        assert health["ok"] is True
        assert "repro_jobs" in client.metrics()
        if health["active_jobs"]:
            saw_active = True
        state = client.status(job_id)["state"]
        if state in ("done", "failed", "cancelled"):
            break
        time.sleep(0.05)
    final = client.wait(job_id, timeout=5)
    assert final["state"] == "done", final.get("error")
    assert saw_active, "service never reported the job as active"

    result = client.result(job_id)
    assert result["table2"]["design"] == "aes"
    telemetry = client.telemetry(job_id)
    assert telemetry["schema"] == TELEMETRY_SCHEMA
    assert client.artifact(job_id, "post.def").startswith(
        "VERSION"
    ) or "DESIGN" in client.artifact(job_id, "post.def")

    listed = client.jobs()
    assert [r["job_id"] for r in listed] == [job_id]

    events = list(client.events(job_id))
    types = [e["type"] for e in events]
    assert types[0] == "state"
    assert "pass" in types
    assert types[-1] == "state"
    assert events[-1]["state"] == "done"


def test_events_follow_streams_until_terminal(service):
    _, client = service
    job_id = client.submit(dict(QUICK_SPEC))
    seen = []
    for event in client.events(job_id, follow=True):
        seen.append(event)
    # follow=True only returns once the job is terminal.
    assert seen[-1]["type"] == "state"
    assert seen[-1]["state"] == "done"
    assert client.status(job_id)["state"] == "done"


def test_cancel_queued_job_over_http(tmp_path):
    # workers=0 is not allowed; instead saturate the single worker
    # with one job and cancel the queued second one.
    server = build_server(tmp_path / "busy", port=0)
    thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    thread.start()
    client = ServiceClient(server.url)
    try:
        first = client.submit({**QUICK_SPEC, "scale": 0.02})
        second = client.submit(dict(QUICK_SPEC))
        record = client.cancel(second)
        assert record["cancel_requested"] is True
        final = client.wait(second, timeout=120)
        assert final["state"] == "cancelled"
        assert client.wait(first, timeout=120)["state"] == "done"
    finally:
        server.manager.shutdown(timeout=60)
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
