"""Jobstore: lifecycle, atomicity, events, crash recovery."""

import json

import pytest

from repro.core import VM1Checkpoint
from repro.service import JobState, JobStore


SPEC = {"profile": "aes", "scale": 0.01}


@pytest.fixture()
def store(tmp_path):
    return JobStore(tmp_path / "root")


def test_submit_creates_queued_record(store):
    record = store.submit("flow", SPEC)
    assert record.state is JobState.QUEUED
    assert record.spec == SPEC
    assert record.attempts == 0
    on_disk = store.get(record.job_id)
    assert on_disk.to_dict() == record.to_dict()
    events = store.read_events(record.job_id)
    assert events[0]["type"] == "state"
    assert events[0]["state"] == "queued"
    assert "ts" in events[0]


def test_job_ids_sort_by_submission_order(store):
    ids = [store.submit("flow", SPEC).job_id for _ in range(3)]
    assert ids == sorted(ids)
    assert [r.job_id for r in store.list_jobs()] == ids


def test_job_ids_monotonic_within_one_millisecond(store):
    # Back-to-back submits routinely land in the same wall-clock
    # millisecond; the id's timestamp prefix must still be strictly
    # increasing or FIFO falls to the random uuid suffix.
    ids = [store.submit("flow", SPEC).job_id for _ in range(20)]
    stamps = [int(job_id.split("-", 1)[0]) for job_id in ids]
    assert stamps == sorted(set(stamps))
    assert ids == sorted(ids)


def test_claim_next_is_fifo_and_increments_attempts(store):
    first = store.submit("flow", SPEC)
    store.submit("flow", SPEC)
    claimed = store.claim_next()
    assert claimed.job_id == first.job_id
    assert claimed.state is JobState.RUNNING
    assert claimed.attempts == 1
    assert claimed.started_at > 0


def test_claim_next_empty_returns_none(store):
    assert store.claim_next() is None


def test_terminal_transitions(store):
    record = store.submit("flow", SPEC)
    store.claim_next()
    done = store.mark_done(record.job_id)
    assert done.state is JobState.DONE
    assert done.finished_at > 0
    states = [
        e["state"]
        for e in store.read_events(record.job_id)
        if e["type"] == "state"
    ]
    assert states == ["queued", "running", "done"]


def test_mark_failed_records_error(store):
    record = store.submit("flow", SPEC)
    store.claim_next()
    failed = store.mark_failed(record.job_id, error="boom")
    assert failed.state is JobState.FAILED
    assert failed.error == "boom"


def test_cancel_queued_job_finalizes_at_claim_time(store):
    record = store.submit("flow", SPEC)
    store.request_cancel(record.job_id)
    assert store.claim_next() is None  # not claimable
    assert store.get(record.job_id).state is JobState.CANCELLED


def test_cancel_terminal_job_is_noop(store):
    record = store.submit("flow", SPEC)
    store.claim_next()
    store.mark_done(record.job_id)
    after = store.request_cancel(record.job_id)
    assert after.state is JobState.DONE
    assert not after.cancel_requested


def test_recover_requeues_running_jobs_keeping_checkpoint(store):
    record = store.submit("flow", SPEC)
    store.claim_next()
    checkpoint = VM1Checkpoint(
        u_index=0,
        iteration=1,
        phase="move",
        tx=0,
        ty=0,
        pre_objective=10.0,
        objective=9.0,
        initial_objective=10.0,
        iterations=1,
        placement={"i0": (0, 0, "N")},
    )
    store.write_checkpoint(record.job_id, checkpoint)

    # Simulate the crash: a brand-new store over the same root.
    reborn = JobStore(store.root)
    assert reborn.recover() == [record.job_id]
    requeued = reborn.get(record.job_id)
    assert requeued.state is JobState.QUEUED
    assert requeued.attempts == 1  # history preserved
    assert reborn.load_checkpoint(record.job_id) == checkpoint
    # Second claim resumes (attempt 2).
    assert reborn.claim_next().attempts == 2


def test_recover_ignores_terminal_and_queued(store):
    store.submit("flow", SPEC)
    waiting = store.submit("flow", SPEC)
    claimed = store.claim_next()
    store.mark_done(claimed.job_id)
    assert store.recover() == []
    assert store.get(claimed.job_id).state is JobState.DONE
    assert store.get(waiting.job_id).state is JobState.QUEUED


def test_atomic_write_leaves_no_temp_files(store):
    record = store.submit("flow", SPEC)
    store.write_result(record.job_id, {"x": 1})
    leftovers = [
        p
        for p in store.job_dir(record.job_id).iterdir()
        if p.name.endswith(".tmp")
    ]
    assert leftovers == []
    assert store.load_result(record.job_id) == {"x": 1}


def test_read_events_skips_torn_last_line(store):
    record = store.submit("flow", SPEC)
    store.append_event(record.job_id, {"type": "pass", "label": "a"})
    events_path = store.job_dir(record.job_id) / "events.ndjson"
    with open(events_path, "a") as handle:
        handle.write('{"type": "pa')  # SIGKILL mid-append
    events = store.read_events(record.job_id)
    assert [e["type"] for e in events] == ["state", "pass"]


def test_checkpoint_roundtrip_through_store(store):
    record = store.submit("flow", SPEC)
    assert store.load_checkpoint(record.job_id) is None
    checkpoint = VM1Checkpoint(
        u_index=1,
        iteration=0,
        phase="flip",
        tx=625,
        ty=540,
        pre_objective=5.5,
        objective=5.25,
        initial_objective=6.0,
        iterations=3,
        placement={"a": (10, 20, "FS")},
        cache_entries=[[[0, 0, 10, 10, 2, 1, False], "ab" * 16]],
    )
    store.write_checkpoint(record.job_id, checkpoint)
    assert store.load_checkpoint(record.job_id) == checkpoint


def test_artifact_name_validation(store):
    record = store.submit("flow", SPEC)
    with pytest.raises(ValueError):
        store.artifact_path(record.job_id, "../escape")
    with pytest.raises(ValueError):
        store.artifact_path(record.job_id, ".hidden")
    store.write_artifact(record.job_id, "post.def", "DESIGN x ;")
    assert (
        store.artifact_path(record.job_id, "post.def").read_text()
        == "DESIGN x ;"
    )


def test_counts_by_state(store):
    store.submit("flow", SPEC)
    record = store.submit("flow", SPEC)
    store.claim_next()
    counts = store.counts_by_state()
    assert counts["queued"] == 1
    assert counts["running"] == 1
    assert counts["done"] == 0
    assert record.job_id  # silence unused warning


def test_record_json_is_schema_stamped(store):
    record = store.submit("flow", SPEC)
    doc = json.loads(
        (store.job_dir(record.job_id) / "job.json").read_text()
    )
    assert doc["schema"] == "repro.service.job/v1"
