"""Job manager: spec validation, execution, cancel, drain."""

import time

import pytest

from repro.flow import FlowConfig
from repro.runtime import TELEMETRY_SCHEMA
from repro.service import (
    JobManager,
    JobState,
    JobStore,
    flow_config_from_spec,
)
from repro.tech import CellArchitecture

QUICK_SPEC = {
    "profile": "aes",
    "scale": 0.008,
    "window_um": 1.0,
    "time_limit": 2.0,
}


# ------------------------------------------------------ spec parsing
def test_spec_defaults_match_flow_config():
    assert flow_config_from_spec({}) == FlowConfig()


def test_spec_full_roundtrip():
    config = flow_config_from_spec(
        {
            "profile": "jpeg",
            "arch": "openm1",
            "scale": 0.1,
            "utilization": 0.6,
            "seed": 7,
            "window_um": 1.5,
            "lx": 3,
            "ly": 2,
            "time_limit": 1.5,
            "executor": "thread",
            "jobs": 4,
            "presolve": False,
            "window_cache": False,
            "timing_driven": True,
        }
    )
    assert config.profile == "jpeg"
    assert config.arch is CellArchitecture.OPEN_M1
    assert config.jobs == 4
    assert config.executor == "thread"
    assert config.presolve is False


@pytest.mark.parametrize(
    "bad, match",
    [
        ({"jobs": 0}, "jobs"),
        ({"jobs": -2}, "jobs"),
        ({"scale": -1.0}, "scale"),
        ({"scale": "not-a-number"}, "scale"),
        ({"time_limit": 0}, "time_limit"),
        ({"utilization": 1.5}, "utilization"),
        ({"profile": "nope"}, "profile"),
        ({"arch": "nope"}, "arch"),
        ({"executor": "gpu"}, "executor"),
        ({"presolve": "yes"}, "presolve"),
        ({"frobnicate": 1}, "unknown spec field"),
    ],
)
def test_spec_rejects_bad_values(bad, match):
    with pytest.raises(ValueError, match=match):
        flow_config_from_spec(bad)


def test_spec_rejects_non_dict():
    with pytest.raises(ValueError, match="JSON object"):
        flow_config_from_spec([1, 2])


# --------------------------------------------------------- execution
@pytest.fixture()
def service(tmp_path):
    store = JobStore(tmp_path / "root")
    manager = JobManager(store, workers=1, poll_interval=0.02)
    manager.start()
    yield store, manager
    manager.shutdown(timeout=60)


def test_flow_job_runs_to_done_with_artifacts(service):
    store, manager = service
    record = store.submit("flow", QUICK_SPEC)
    deadline = time.time() + 120
    while time.time() < deadline:
        if store.get(record.job_id).state.terminal:
            break
        time.sleep(0.05)
    final = store.get(record.job_id)
    assert final.state is JobState.DONE, final.error

    result = store.load_result(record.job_id)
    assert result["schema"] == "repro.service.result/v1"
    assert result["table2"]["design"] == "aes"
    assert "RWL %" in result["table2"]
    assert result["resumed"] is False

    telemetry = store.load_telemetry(record.job_id)
    assert telemetry["schema"] == TELEMETRY_SCHEMA
    assert telemetry["windows"]["total"] > 0

    post_def = store.artifact_path(record.job_id, "post.def")
    assert post_def.exists()
    assert "DESIGN" in post_def.read_text()

    types = [e["type"] for e in store.read_events(record.job_id)]
    for expected in (
        "generate",
        "place",
        "route_init",
        "pass",
        "route_final",
    ):
        assert expected in types
    # Pass events are lifted from the telemetry v2 pass entries.
    pass_event = next(
        e
        for e in store.read_events(record.job_id)
        if e["type"] == "pass"
    )
    for key in ("label", "windows", "cache_hits", "presolve_seconds"):
        assert key in pass_event
    assert manager.counters["jobs_done"] == 1
    assert manager.counters["passes"] > 0


def test_bad_spec_job_fails_cleanly(service):
    store, manager = service
    record = store.submit("flow", {"profile": "nope"})
    deadline = time.time() + 30
    while time.time() < deadline:
        if store.get(record.job_id).state.terminal:
            break
        time.sleep(0.02)
    final = store.get(record.job_id)
    assert final.state is JobState.FAILED
    assert "profile" in final.error
    assert manager.counters["jobs_failed"] == 1


def test_cancel_running_job_stops_at_pass_boundary(service):
    store, manager = service
    record = store.submit(
        "flow", {**QUICK_SPEC, "scale": 0.02}
    )
    # Wait until the optimizer is mid-run (first pass event).
    deadline = time.time() + 60
    while time.time() < deadline:
        types = [e["type"] for e in store.read_events(record.job_id)]
        if "pass" in types:
            break
        time.sleep(0.02)
    manager.request_cancel(record.job_id)
    deadline = time.time() + 60
    while time.time() < deadline:
        if store.get(record.job_id).state.terminal:
            break
        time.sleep(0.05)
    final = store.get(record.job_id)
    assert final.state is JobState.CANCELLED
    # The checkpoint of the last completed pass survives the cancel.
    assert store.load_checkpoint(record.job_id) is not None


def test_shutdown_requeues_running_job_with_checkpoint(tmp_path):
    store = JobStore(tmp_path / "root")
    manager = JobManager(store, workers=1, poll_interval=0.02)
    manager.start()
    record = store.submit("flow", {**QUICK_SPEC, "scale": 0.02})
    deadline = time.time() + 60
    while time.time() < deadline:
        if store.load_checkpoint(record.job_id) is not None:
            break
        time.sleep(0.02)
    assert store.load_checkpoint(record.job_id) is not None
    manager.shutdown(timeout=120)  # graceful drain
    final = store.get(record.job_id)
    assert final.state is JobState.QUEUED  # back in the queue
    states = [
        e.get("state")
        for e in store.read_events(record.job_id)
        if e["type"] == "state"
    ]
    assert states[-1] == "requeued"
    assert manager.counters["jobs_interrupted"] == 1
