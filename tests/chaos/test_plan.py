"""FaultPlan/FaultRule: validation, JSON round-trip, error quality."""

import pytest

from repro.chaos import (
    PLAN_SCHEMA,
    SITES,
    ChaosPlanError,
    FaultPlan,
    FaultRule,
)


def rule(**kw):
    kw.setdefault("site", "runtime.worker")
    kw.setdefault("action", "raise")
    kw.setdefault("nth", 1)
    return FaultRule(**kw)


def test_every_site_action_pair_validates():
    for site, actions in SITES.items():
        for action in actions:
            FaultRule(site=site, action=action, nth=1).validate()


def test_unknown_site_rejected():
    with pytest.raises(ChaosPlanError, match="unknown site"):
        rule(site="runtime.bogus").validate()


def test_unsupported_action_rejected():
    with pytest.raises(ChaosPlanError, match="does not support"):
        rule(site="milp.solve", action="poison").validate()


def test_rule_without_trigger_rejected():
    with pytest.raises(ChaosPlanError, match="no trigger"):
        FaultRule(site="barrier", action="raise").validate()


def test_probability_out_of_range_rejected():
    with pytest.raises(ChaosPlanError, match="probability"):
        rule(nth=0, probability=1.5).validate()


def test_negative_counters_rejected():
    with pytest.raises(ChaosPlanError):
        rule(nth=-1).validate()
    with pytest.raises(ChaosPlanError):
        rule(max_fires=-1).validate()
    with pytest.raises(ChaosPlanError):
        rule(seconds=0.0).validate()


def test_plan_requires_faults():
    with pytest.raises(ChaosPlanError, match="no faults"):
        FaultPlan(seed=1).validate()


def test_roundtrip_via_json():
    plan = FaultPlan(
        seed=42,
        faults=(
            rule(nth=3, match="checkpoint:"),
            rule(
                site="milp.solve", action="error",
                nth=0, probability=0.25, max_fires=2,
            ),
        ),
        run={"executor": "process", "jobs": 2},
    )
    again = FaultPlan.loads(plan.dumps())
    assert again == plan
    assert plan.to_dict()["schema"] == PLAN_SCHEMA


def test_to_dict_omits_defaults():
    doc = rule().to_dict()
    assert doc == {
        "site": "runtime.worker", "action": "raise", "nth": 1
    }


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ChaosPlanError, match="unknown fault key"):
        FaultRule.from_dict(
            {"site": "barrier", "action": "raise", "nht": 1}
        )
    with pytest.raises(ChaosPlanError, match="unknown plan key"):
        FaultPlan.from_dict(
            {"schema": PLAN_SCHEMA, "faults": [], "extra": 1}
        )


def test_from_dict_rejects_wrong_schema():
    with pytest.raises(ChaosPlanError, match="unsupported plan schema"):
        FaultPlan.from_dict({"schema": "nope/v9", "faults": []})


def test_loads_rejects_non_json():
    with pytest.raises(ChaosPlanError, match="not valid JSON"):
        FaultPlan.loads("{broken")


def test_save_load_file_roundtrip(tmp_path):
    plan = FaultPlan(seed=7, faults=(rule(),))
    path = plan.save(tmp_path / "sub" / "plan.json")
    assert FaultPlan.load(path) == plan


def test_with_seed_preserves_rules():
    plan = FaultPlan(seed=1, faults=(rule(),))
    reseeded = plan.with_seed(9)
    assert reseeded.seed == 9
    assert reseeded.faults == plan.faults
