"""Every committed corpus plan must climb the full invariant ladder:
fault fires, byte-identical convergence, telemetry + trace visibility."""

from pathlib import Path

import pytest

from repro.chaos import FaultPlan
from repro.chaos.runner import run_chaos_case

CORPUS = Path(__file__).parent / "corpus"
PLANS = sorted(CORPUS.glob("*.json"))


def test_corpus_is_not_empty():
    assert len(PLANS) >= 8, (
        "the committed chaos corpus must cover the fault families"
    )


@pytest.mark.parametrize("path", PLANS, ids=lambda p: p.stem)
def test_corpus_plan_converges_byte_identically(path):
    plan = FaultPlan.load(path)
    result = run_chaos_case(plan)
    assert result.converged, result.errors
    assert result.fires, "corpus plans must actually fire"


def test_vacuous_plan_fails_loudly():
    from repro.chaos import FaultRule

    plan = FaultPlan(
        seed=2,
        faults=(
            FaultRule(
                site="barrier", action="raise", nth=10**6
            ),
        ),
    )
    result = run_chaos_case(plan)
    assert not result.converged
    assert any("vacuous" in error for error in result.errors)
