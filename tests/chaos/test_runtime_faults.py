"""Worker-side fault application: armed directives inside WindowTask."""

import pickle

import pytest

from repro.chaos import ChaosFault, PoisonPill
from repro.milp.solution import SolveStatus
from repro.runtime import SolverSpec, WindowTask

from tests.runtime._fakes import tiny_model


def task(chaos=None, trace=None):
    return WindowTask(
        task_id=0, ix=0, iy=0, family=0,
        model=tiny_model(), solver=SolverSpec(backend="highs"),
        trace=trace, chaos=chaos,
    )


def test_no_directive_runs_clean():
    result = task().run()
    assert result.ok
    assert result.solution.status is SolveStatus.OPTIMAL


def test_raise_directive_folds_into_error():
    result = task(chaos=("runtime.worker", "raise", 30.0)).run()
    assert not result.ok
    assert "ChaosFault" in result.error
    assert "runtime.worker[raise]" in result.error


def test_crash_directive_escapes_run():
    with pytest.raises(ChaosFault, match="crash"):
        task(chaos=("runtime.worker", "crash", 30.0)).run()


def test_hang_directive_sleeps_then_solves():
    result = task(chaos=("runtime.worker", "hang", 0.01)).run()
    assert result.ok  # a short hang just delays the solve


def test_milp_error_directive():
    result = task(chaos=("milp.solve", "error", 30.0)).run()
    assert not result.ok
    assert "chaos: injected solver error" in result.error
    assert not result.timed_out


def test_milp_timeout_directive_marks_timeout():
    result = task(chaos=("milp.solve", "timeout", 30.0)).run()
    assert not result.ok
    assert result.timed_out  # "time limit" errors are never retried


def test_milp_infeasible_directive_swaps_status():
    result = task(chaos=("milp.solve", "infeasible", 30.0)).run()
    assert result.solution.status is SolveStatus.INFEASIBLE


def test_lost_directive_drops_the_result():
    result = task(chaos=("runtime.result", "lost", 30.0)).run()
    assert not result.ok
    assert result.error == "chaos: result lost in transit"
    assert result.solution is None


def test_poison_directive_defeats_pickle():
    result = task(chaos=("runtime.result", "poison", 30.0)).run()
    assert isinstance(result.solution, PoisonPill)
    with pytest.raises(ChaosFault, match="poison"):
        pickle.dumps(result)


def test_lost_result_still_leaves_error_span():
    result = task(
        chaos=("runtime.result", "lost", 30.0),
        trace=("trace0", None),
    ).run()
    assert not result.ok
    statuses = [s.get("status", "ok") for s in result.spans]
    assert any(str(s).startswith("error:") for s in statuses)


def test_foreign_site_directive_is_inert():
    result = task(chaos=("jobstore.event", "torn", 30.0)).run()
    assert result.ok
