"""Satellite: torn-write tolerance, exhaustively.

``events.ndjson`` and ``checkpoint.json`` are truncated at **every
byte offset** of their final record; recovery must never raise and
never lose a completed job."""

import json

import pytest

from repro.chaos import ChaosController, FaultPlan, FaultRule
from repro.core.checkpoint import VM1Checkpoint
from repro.service.jobstore import JobState, JobStore


def checkpoint(objective=0.5):
    return VM1Checkpoint(
        u_index=0, iteration=1, phase="move", tx=0, ty=0,
        pre_objective=1.0, objective=objective,
        initial_objective=1.0, iterations=1,
        placement={"u0.i0": (10, 20, "N"), "u0.i1": (30, 20, "FN")},
    )


def seeded_store(root):
    """A store with one done job and one interrupted running job."""
    store = JobStore(root)
    done = store.submit("flow", {"profile": "m0"})
    store.claim_next()
    store.write_result(done.job_id, {"objective": 1.0})
    store.mark_done(done.job_id)
    running = store.submit("flow", {"profile": "aes"})
    store.claim_next()
    store.write_checkpoint(running.job_id, checkpoint())
    store.append_event(
        running.job_id, {"type": "pass", "objective": 0.5}
    )
    return store, done.job_id, running.job_id


def test_events_truncated_at_every_offset(tmp_path):
    store, done_id, running_id = seeded_store(tmp_path)
    events_path = store._events_path(running_id)
    pristine = events_path.read_bytes()
    intact = store.read_events(running_id)
    last_line_start = pristine.rstrip(b"\n").rfind(b"\n") + 1
    assert last_line_start > 0

    for cut in range(last_line_start, len(pristine)):
        events_path.write_bytes(pristine[:cut])
        fresh = JobStore(tmp_path)
        requeued = fresh.recover()  # must never raise
        # the interrupted job is found and re-queued every time
        assert running_id in requeued
        # no event before the torn record is lost
        events = fresh.read_events(running_id)
        assert events[: len(intact) - 1] == intact[:-1]
        # the completed job survives untouched
        assert fresh.get(done_id).state is JobState.DONE
        assert fresh.load_result(done_id) == {"objective": 1.0}
        # restore for the next offset (recover() rewrote job.json
        # and appended a requeue event)
        fresh.get(running_id).state = JobState.QUEUED
        record = fresh.get(running_id)
        record.state = JobState.RUNNING
        fresh._write(record)
        events_path.write_bytes(pristine)


def test_checkpoint_truncated_at_every_offset(tmp_path):
    store, _done_id, running_id = seeded_store(tmp_path)
    ckpt_path = store.checkpoint_path(running_id)
    pristine = ckpt_path.read_bytes()
    full = store.load_checkpoint(running_id)
    assert full is not None

    for cut in range(len(pristine)):
        ckpt_path.write_bytes(pristine[:cut])
        fresh = JobStore(tmp_path)
        loaded = fresh.load_checkpoint(running_id)  # never raises
        # a torn checkpoint degrades to "absent" — recovery restarts
        # from scratch instead of wedging
        assert loaded is None or loaded.to_dict() == full.to_dict()
        fresh.recover()  # never raises either
    ckpt_path.write_bytes(pristine)
    assert store.load_checkpoint(running_id).to_dict() == (
        full.to_dict()
    )


def test_injected_torn_event_is_skipped_by_readers(tmp_path):
    chaos = ChaosController(
        plan=FaultPlan(
            seed=0,
            faults=(
                FaultRule(
                    site="jobstore.event", action="torn", nth=1,
                    match="pass",
                ),
            ),
        )
    )
    store = JobStore(tmp_path, chaos=chaos)
    record = store.submit("flow", {})
    store.append_event(record.job_id, {"type": "pass", "n": 1})
    assert chaos.total_fires() == 1
    # the torn line has no newline: the *next* append concatenates
    # onto it, producing one undecodable line which readers skip.
    store.append_event(record.job_id, {"type": "pass", "n": 2})
    events = store.read_events(record.job_id)
    types = [e.get("type") for e in events]
    assert "state" in types  # the submit event survived
    # the torn event (and the append glued to it) are skipped, not
    # surfaced as garbage
    assert all(e.get("n") != 1 for e in events)


def test_injected_torn_checkpoint_degrades_to_none(tmp_path):
    chaos = ChaosController(
        plan=FaultPlan(
            seed=0,
            faults=(
                FaultRule(
                    site="jobstore.checkpoint", action="torn", nth=1
                ),
            ),
        )
    )
    store = JobStore(tmp_path, chaos=chaos)
    record = store.submit("flow", {})
    store.write_checkpoint(record.job_id, checkpoint())
    assert chaos.total_fires() == 1
    assert store.load_checkpoint(record.job_id) is None
    # next write is clean (nth consumed) and fully readable
    store.write_checkpoint(record.job_id, checkpoint(objective=0.25))
    loaded = store.load_checkpoint(record.job_id)
    assert loaded is not None
    assert loaded.objective == 0.25


def test_injected_fsync_failure_preserves_previous_document(tmp_path):
    chaos = ChaosController(
        plan=FaultPlan(
            seed=0,
            faults=(FaultRule(site="fs.fsync", action="fail", nth=1),),
        )
    )
    store = JobStore(tmp_path, chaos=chaos)
    record = store.submit("flow", {})
    clean_store = JobStore(tmp_path)
    clean_store.write_checkpoint(record.job_id, checkpoint())
    with pytest.raises(OSError, match="chaos: fsync failed"):
        store.write_checkpoint(
            record.job_id, checkpoint(objective=0.1)
        )
    # the failed write left no temp debris and the old doc intact
    job_dir = store.job_dir(record.job_id)
    assert not [p for p in job_dir.iterdir() if "tmp" in p.name]
    loaded = store.load_checkpoint(record.job_id)
    assert loaded is not None
    assert loaded.objective == 0.5


def test_recover_with_missing_events_file(tmp_path):
    store, _done_id, running_id = seeded_store(tmp_path)
    store._events_path(running_id).unlink()
    fresh = JobStore(tmp_path)
    assert running_id in fresh.recover()
    assert fresh.read_events(running_id)  # requeue event re-created
