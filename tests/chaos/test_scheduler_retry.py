"""Satellite regression: a transient first-attempt failure must not
poison the final result, and a broken pool must not pin its first
worker's death on every remaining window."""

from concurrent.futures import Future

from repro.chaos import ChaosController, FaultPlan, FaultRule
from repro.milp.solution import SolveStatus
from repro.runtime import (
    FamilyScheduler,
    RunTelemetry,
    ScheduleConfig,
    SerialExecutor,
    SolverSpec,
    WindowTask,
)
from repro.runtime.telemetry import WindowRecord

from tests.runtime._fakes import tiny_model


def make_tasks(n=3):
    spec = SolverSpec(backend="highs", time_limit=5.0)
    return [
        WindowTask(
            task_id=i, ix=i, iy=0, family=0,
            model=tiny_model(f"m{i}"), solver=spec,
        )
        for i in range(n)
    ]


def test_one_transient_failure_result_used_one_retry():
    """One injected first-attempt failure: the retried result is the
    one used, and telemetry counts exactly one retry."""
    chaos = ChaosController(
        plan=FaultPlan(
            seed=0,
            faults=(
                FaultRule(
                    site="runtime.worker", action="raise", nth=1
                ),
            ),
        )
    )
    scheduler = FamilyScheduler(
        SerialExecutor(), ScheduleConfig(max_retries=1), chaos=chaos
    )
    results = scheduler.run_family(make_tasks(3))
    assert len(results) == 3
    # every task ends with a usable (OPTIMAL) result — the injected
    # failure was transient and its retry ran clean
    for result in results.values():
        assert result.ok, result.error
        assert result.solution.status is SolveStatus.OPTIMAL
    attempts = sorted(r.attempts for r in results.values())
    assert attempts == [1, 1, 2]

    telemetry = RunTelemetry(executor="serial", jobs=1)
    for tid in sorted(results):
        telemetry.record_window(
            WindowRecord(
                pass_label="p0", family=0, ix=tid, iy=0,
                status="applied",
                attempts=results[tid].attempts,
            )
        )
    counters = telemetry.registry.to_dict()
    assert counters.get("repro_run_retries_total") == 1


class _BrokenExecutor:
    """Refuses every submit, like a pool whose worker was OOM-killed:
    the original bug re-raised that first death for every window."""

    def __init__(self):
        self.submits = 0

    def submit(self, task) -> Future:
        self.submits += 1
        raise RuntimeError("worker died: first worker exception")


def test_broken_pool_degrades_inline_instead_of_reraising():
    executor = _BrokenExecutor()
    scheduler = FamilyScheduler(executor, ScheduleConfig())
    results = scheduler.run_family(make_tasks(3))
    assert executor.submits == 3
    for result in results.values():
        # the historical failure is NOT pinned on these windows
        assert result.ok, result.error
        assert result.degraded  # serial fallback is visible
        assert result.attempts == 1


def test_degraded_windows_counted_in_telemetry():
    scheduler = FamilyScheduler(_BrokenExecutor(), ScheduleConfig())
    results = scheduler.run_family(make_tasks(2))
    telemetry = RunTelemetry(executor="process", jobs=2)
    for tid in sorted(results):
        telemetry.record_window(
            WindowRecord(
                pass_label="p0", family=0, ix=tid, iy=0,
                status="applied",
                attempts=results[tid].attempts,
                degraded=results[tid].degraded,
            )
        )
    counters = telemetry.registry.to_dict()
    degradations = counters.get("repro_run_degradations_total", {})
    assert degradations.get("serial_fallback") == 2


def test_retry_spans_survive_on_recovered_result():
    chaos = ChaosController(
        plan=FaultPlan(
            seed=0,
            faults=(
                FaultRule(
                    site="runtime.worker", action="raise", nth=1
                ),
            ),
        )
    )
    spec = SolverSpec(backend="highs", time_limit=5.0)
    tasks = [
        WindowTask(
            task_id=0, ix=0, iy=0, family=0,
            model=tiny_model(), solver=spec,
            trace=("trace0", None),
        )
    ]
    scheduler = FamilyScheduler(
        SerialExecutor(), ScheduleConfig(max_retries=1), chaos=chaos
    )
    results = scheduler.run_family(tasks)
    result = results[0]
    assert result.ok
    assert result.attempts == 2
    statuses = [
        str(s.get("status", "ok")) for s in result.retry_spans
    ]
    assert any(s.startswith("error:") for s in statuses)
