"""Service-layer chaos: a real managed job survives injected
fsync failures and torn checkpoints."""

import time

import pytest

from repro.chaos import ChaosController, FaultPlan, FaultRule
from repro.service import JobManager, JobState, JobStore

QUICK_SPEC = {
    "profile": "m0",
    "scale": 0.01,
    "window_um": 1.0,
    "time_limit": 1.0,
    "seed": 2,
}


def wait_terminal(store, job_id, timeout=120):
    deadline = time.time() + timeout
    while time.time() < deadline:
        record = store.get(job_id)
        if record.state.terminal:
            return record
        time.sleep(0.05)
    pytest.fail(f"job {job_id} did not finish in {timeout}s")


def run_job(tmp_path, chaos):
    store = JobStore(tmp_path / "root", chaos=chaos)
    manager = JobManager(store, workers=1, poll_interval=0.02)
    manager.start()
    try:
        record = store.submit("flow", QUICK_SPEC)
        final = wait_terminal(store, record.job_id)
    finally:
        manager.shutdown(timeout=60)
    return store, manager, final


def test_fsync_failures_do_not_kill_the_job(tmp_path):
    chaos = ChaosController(
        plan=FaultPlan(
            seed=0,
            faults=(
                FaultRule(
                    site="fs.fsync", action="fail", every=1,
                    match="checkpoint.json",
                ),
            ),
        )
    )
    store, manager, final = run_job(tmp_path, chaos)
    assert final.state is JobState.DONE, final.error
    assert chaos.total_fires() > 0
    counters = manager.counters
    assert counters["checkpoint_write_failures"] == (
        chaos.total_fires()
    )
    types = [e["type"] for e in store.read_events(final.job_id)]
    assert "checkpoint_write_failed" in types
    # the job's deliverables are all intact
    assert store.load_result(final.job_id) is not None
    assert store.artifact_path(final.job_id, "post.def").exists()


def test_torn_checkpoint_does_not_kill_the_job(tmp_path):
    chaos = ChaosController(
        plan=FaultPlan(
            seed=0,
            faults=(
                FaultRule(
                    site="jobstore.checkpoint", action="torn", nth=1
                ),
            ),
        )
    )
    store, _manager, final = run_job(tmp_path, chaos)
    assert final.state is JobState.DONE, final.error
    assert chaos.total_fires() == 1
    # a torn checkpoint reads as absent, never as an exception
    store.load_checkpoint(final.job_id)


def test_clean_store_has_no_chaos_counters(tmp_path):
    store, manager, final = run_job(tmp_path, chaos=None)
    assert final.state is JobState.DONE, final.error
    assert manager.counters["checkpoint_write_failures"] == 0
