"""CLI error paths: every bad input exits 2 with ONE line on stderr
and no traceback (satellite of the chaos PR)."""

import json

import pytest

from repro.chaos import FaultPlan, FaultRule
from repro.cli import main


def chaos_plan(tmp_path, **rule_kw):
    rule_kw.setdefault("site", "milp.solve")
    rule_kw.setdefault("action", "error")
    rule_kw.setdefault("nth", 1)
    plan = FaultPlan(seed=2, faults=(FaultRule(**rule_kw),))
    return str(plan.save(tmp_path / "plan.json"))


def assert_one_line_no_traceback(captured):
    assert "Traceback" not in captured.err
    assert len(captured.err.strip().splitlines()) <= 2


def test_invalid_shards_exits_2(capsys):
    with pytest.raises(SystemExit) as exc_info:
        main(["flow", "--shards", "0"])
    assert exc_info.value.code == 2
    captured = capsys.readouterr()
    assert "Traceback" not in captured.err
    assert "--shards" in captured.err


def test_non_numeric_shards_exits_2(capsys):
    with pytest.raises(SystemExit) as exc_info:
        main(["flow", "--shards", "many"])
    assert exc_info.value.code == 2
    assert "Traceback" not in capsys.readouterr().err


def test_unknown_axes_exits_2(capsys):
    assert main(["check", "--axes", "brute,bogus"]) == 2
    captured = capsys.readouterr()
    assert "unknown axes" in captured.err
    assert "bogus" in captured.err
    assert_one_line_no_traceback(captured)


def test_malformed_telemetry_path_exits_2(capsys):
    code = main(
        ["flow", "--telemetry", "/no/such/directory/telemetry.json"]
    )
    assert code == 2
    captured = capsys.readouterr()
    assert "--telemetry" in captured.err
    assert_one_line_no_traceback(captured)


def test_telemetry_path_that_is_a_directory_exits_2(tmp_path, capsys):
    code = main(["flow", "--telemetry", str(tmp_path)])
    assert code == 2
    captured = capsys.readouterr()
    assert "directory" in captured.err
    assert_one_line_no_traceback(captured)


def test_chaos_run_missing_plan_exits_2(capsys):
    code = main(
        ["chaos", "run", "--plan", "/no/such/plan.json"]
    )
    assert code == 2
    captured = capsys.readouterr()
    assert "not found" in captured.err
    assert_one_line_no_traceback(captured)


def test_chaos_run_invalid_json_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["chaos", "run", "--plan", str(bad)]) == 2
    captured = capsys.readouterr()
    assert "invalid chaos plan" in captured.err
    assert_one_line_no_traceback(captured)


def test_chaos_run_wrong_schema_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "nope/v9", "faults": []}))
    assert main(["chaos", "run", "--plan", str(bad)]) == 2
    captured = capsys.readouterr()
    assert "invalid chaos plan" in captured.err
    assert_one_line_no_traceback(captured)


def test_chaos_run_unknown_site_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(
        json.dumps(
            {
                "schema": "repro.chaos.plan/v1",
                "faults": [
                    {"site": "runtime.bogus", "action": "raise",
                     "nth": 1}
                ],
            }
        )
    )
    assert main(["chaos", "run", "--plan", str(bad)]) == 2
    captured = capsys.readouterr()
    assert "unknown site" in captured.err
    assert_one_line_no_traceback(captured)


def test_chaos_sites_lists_inventory(capsys):
    from repro.chaos import SITES

    assert main(["chaos", "sites"]) == 0
    out = capsys.readouterr().out
    for site in SITES:
        assert site in out


def test_chaos_run_happy_path_json(tmp_path, capsys):
    plan = chaos_plan(tmp_path)
    code = main(["chaos", "run", "--plan", plan, "--json"])
    captured = capsys.readouterr()
    assert code == 0, captured.err
    doc = json.loads(captured.out)
    assert doc["converged"] is True
    assert doc["fires"] == {"milp.solve": 1}


def test_chaos_fuzz_smoke(tmp_path, capsys):
    code = main(
        [
            "chaos", "fuzz", "--plans", "2", "--seed", "1",
            "--artifacts", str(tmp_path / "artifacts"), "--json",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0, captured.err
    doc = json.loads(captured.out)
    assert doc["ran"] == 2
    assert doc["failed"] == 0
