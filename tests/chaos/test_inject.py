"""ChaosController triggers, determinism, installation, arming."""

import pytest

from repro.chaos import (
    ChaosController,
    ChaosFault,
    FaultPlan,
    FaultRule,
    active_chaos,
    barrier,
    chaos_scope,
    install,
    uninstall,
)


def controller(*rules, seed=0):
    return ChaosController(plan=FaultPlan(seed=seed, faults=rules))


def barrier_rule(**kw):
    kw.setdefault("site", "barrier")
    kw.setdefault("action", "raise")
    return FaultRule(**kw)


def test_nth_fires_exactly_once():
    chaos = controller(barrier_rule(nth=3))
    fired = [
        chaos.check("barrier", "b") is not None for _ in range(6)
    ]
    assert fired == [False, False, True, False, False, False]
    assert chaos.total_fires() == 1


def test_every_fires_periodically():
    chaos = controller(barrier_rule(every=2))
    fired = [
        chaos.check("barrier", "b") is not None for _ in range(6)
    ]
    assert fired == [False, True, False, True, False, True]


def test_probability_is_deterministic_per_seed():
    def run(seed):
        chaos = controller(
            barrier_rule(probability=0.5), seed=seed
        )
        return [
            chaos.check("barrier", "b") is not None
            for _ in range(32)
        ]

    assert run(1) == run(1)
    assert run(1) != run(2)  # astronomically unlikely to collide
    assert any(run(1))


def test_max_fires_caps_probability_rule():
    chaos = controller(
        barrier_rule(probability=1.0, max_fires=2)
    )
    fires = sum(
        chaos.check("barrier", "b") is not None for _ in range(10)
    )
    assert fires == 2


def test_match_filters_by_name_substring():
    chaos = controller(barrier_rule(every=1, match="checkpoint:"))
    assert chaos.check("barrier", "vm1:start") is None
    assert chaos.check("barrier", "checkpoint:move[u0.i1]")
    # non-matching calls do not advance the rule's call counter
    chaos2 = controller(barrier_rule(nth=1, match="flip"))
    assert chaos2.check("barrier", "checkpoint:move[u0.i1]") is None
    assert chaos2.check("barrier", "checkpoint:flip[u0.i1]")


def test_site_mismatch_never_fires():
    chaos = controller(barrier_rule(every=1))
    assert chaos.check("milp.solve", "t0") is None
    assert chaos.total_fires() == 0


def test_retry_attempts_skipped_unless_opted_in():
    chaos = controller(
        FaultRule(site="milp.solve", action="error", every=1)
    )
    assert chaos.check("milp.solve", "t0", attempt=2) is None
    assert chaos.check("milp.solve", "t0", attempt=1) is not None

    opted = controller(
        FaultRule(
            site="milp.solve", action="error", every=1,
            on_retry=True,
        )
    )
    assert opted.check("milp.solve", "t0", attempt=2) is not None


def test_span_filter_requires_open_span():
    from repro.obs.trace import Tracer, span, tracer_scope

    chaos = controller(barrier_rule(every=1, span="solve"))
    assert chaos.check("barrier", "b") is None
    with tracer_scope(Tracer()):
        with span("solve"):
            assert chaos.check("barrier", "b") is not None
        assert chaos.check("barrier", "b") is None


def test_first_matching_rule_wins():
    first = barrier_rule(every=1, match="a")
    second = barrier_rule(every=1)
    chaos = controller(first, second)
    assert chaos.check("barrier", "a-barrier") is first
    assert chaos.check("barrier", "other") is second


def test_drain_counts_returns_deltas():
    chaos = controller(barrier_rule(every=1))
    chaos.check("barrier", "b")
    assert chaos.drain_counts() == {"barrier": 1}
    assert chaos.drain_counts() == {}
    chaos.check("barrier", "b")
    chaos.check("barrier", "b")
    assert chaos.drain_counts() == {"barrier": 2}
    assert chaos.fires_by_site() == {"barrier": 3}


def test_observed_records_every_consultation():
    chaos = controller(barrier_rule(nth=99))
    chaos.check("barrier", "one")
    chaos.check("milp.solve", "t3")
    assert ("barrier", "one") in chaos.observed
    assert ("milp.solve", "t3") in chaos.observed


def test_arm_task_attaches_directive():
    from repro.runtime import SolverSpec, WindowTask

    from tests.runtime._fakes import tiny_model

    task = WindowTask(
        task_id=0, ix=0, iy=0, family=0,
        model=tiny_model(), solver=SolverSpec(backend="highs"),
    )
    chaos = controller(
        FaultRule(
            site="runtime.worker", action="hang", nth=1, seconds=9.0
        )
    )
    armed = chaos.arm_task(task)
    assert armed is not task
    assert armed.chaos == ("runtime.worker", "hang", 9.0)
    assert task.chaos is None  # original untouched (frozen)
    # second window: nth=1 already consumed
    assert chaos.arm_task(task) is task


def test_install_scope_and_fallback():
    assert active_chaos() is None
    chaos = controller(barrier_rule(nth=1))
    install(chaos)
    try:
        assert active_chaos() is chaos
        with chaos_scope(None):
            assert active_chaos() is None
        assert active_chaos() is chaos
    finally:
        uninstall()
    assert active_chaos() is None


def test_barrier_raises_on_fire():
    with chaos_scope(controller(barrier_rule(nth=1))):
        with pytest.raises(ChaosFault, match=r"barrier\[b\]"):
            barrier("b")
        barrier("b")  # nth consumed — no refire


def test_barrier_noop_without_controller():
    barrier("anything")  # must not raise
