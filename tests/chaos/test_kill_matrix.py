"""SIGKILL-at-every-named-barrier matrix (nightly tier).

For each barrier a real VM1Opt run passes, a subprocess is SIGKILLed
exactly there (via a ``barrier: kill`` chaos rule — ``os.kill`` with
``SIGKILL``, no cleanup handlers run), then a plain resume from the
persisted checkpoint must reproduce the uninterrupted placement byte
for byte."""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

# Each matrix entry is a kill + resume subprocess pair; nightly tier.
pytestmark = pytest.mark.slow

_SRC = str(Path(__file__).resolve().parents[2] / "src")
_HELPER = Path(__file__).parent / "_kill_flow.py"


def run_helper(mode, out, barrier=None, timeout=300):
    argv = [sys.executable, str(_HELPER), mode, str(out)]
    if barrier is not None:
        argv.append(barrier)
    return subprocess.run(
        argv,
        env={**os.environ, "PYTHONPATH": _SRC},
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.fixture(scope="module")
def census(tmp_path_factory):
    out = tmp_path_factory.mktemp("census")
    proc = run_helper("census", out)
    assert proc.returncode == 0, proc.stderr
    return json.loads((out / "census.json").read_text())


def test_census_finds_named_barriers(census):
    names = census["barriers"]
    assert any(n == "vm1:start" for n in names)
    assert any(n.startswith("checkpoint:move[") for n in names)
    assert any(n.startswith("checkpoint:flip[") for n in names)


def test_sigkill_at_every_barrier_resumes_byte_identically(
    census, tmp_path
):
    clean = json.dumps(census["snapshot"], sort_keys=True)
    # first occurrence of each distinct barrier name, census order
    barriers = list(dict.fromkeys(census["barriers"]))
    assert barriers
    for index, name in enumerate(barriers):
        out = tmp_path / f"barrier{index}"
        killed = run_helper("kill", out, barrier=name)
        assert killed.returncode == -signal.SIGKILL, (
            name, killed.returncode, killed.stderr,
        )
        resumed = run_helper("resume", out)
        assert resumed.returncode == 0, (name, resumed.stderr)
        snapshot = json.loads((out / "resumed.json").read_text())
        assert json.dumps(snapshot, sort_keys=True) == clean, (
            f"divergence after SIGKILL at {name}"
        )
