"""Subprocess half of the SIGKILL matrix test.

Modes (argv[1]):

* ``census <out>`` — run VM1Opt clean with a never-firing controller
  installed, dump the named barriers it passed and the final
  placement snapshot to ``<out>/census.json``.
* ``kill <out> <barrier>`` — run with a ``barrier: kill`` rule
  matching ``<barrier>`` exactly, persisting every checkpoint to
  ``<out>/checkpoint.json``; the process dies by SIGKILL mid-run.
* ``resume <out>`` — run with no chaos, resuming from
  ``<out>/checkpoint.json`` if present; dump the final snapshot to
  ``<out>/resumed.json``.
"""

import json
import sys
from pathlib import Path

from repro.chaos import (
    ChaosController,
    FaultPlan,
    FaultRule,
    chaos_scope,
)
from repro.core import OptParams
from repro.core.checkpoint import VM1Checkpoint
from repro.core.vm1opt import vm1_opt
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.tech import CellArchitecture, make_tech


def snapshot_doc(design) -> dict:
    """JSON-safe placement snapshot (orientations stringified)."""
    return {
        name: [value[0], value[1], str(value[2])]
        for name, value in design.placement_snapshot().items()
    }


def make_design():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    library = build_library(tech)
    design = generate_design("m0", tech, library, scale=0.01, seed=2)
    place_design(design, seed=3)
    return design


def main() -> int:
    mode = sys.argv[1]
    out = Path(sys.argv[2])
    out.mkdir(parents=True, exist_ok=True)
    design = make_design()
    params = OptParams.for_arch(
        design.tech.arch, time_limit=1.0
    )
    ckpt_path = out / "checkpoint.json"

    if mode == "census":
        controller = ChaosController(
            plan=FaultPlan(
                seed=0,
                faults=(
                    FaultRule(
                        site="barrier", action="raise", nth=10**9
                    ),
                ),
            )
        )
        with chaos_scope(controller):
            vm1_opt(design, params)
        barriers = [
            name
            for site, name in controller.observed
            if site == "barrier"
        ]
        (out / "census.json").write_text(
            json.dumps(
                {
                    "barriers": barriers,
                    "snapshot": snapshot_doc(design),
                }
            )
        )
        return 0

    if mode == "kill":
        barrier_name = sys.argv[3]
        controller = ChaosController(
            plan=FaultPlan(
                seed=0,
                faults=(
                    FaultRule(
                        site="barrier", action="kill", nth=1,
                        match=barrier_name,
                    ),
                ),
            )
        )
        with chaos_scope(controller):
            vm1_opt(
                design,
                params,
                checkpoint_sink=lambda cp: cp.save(ckpt_path),
            )
        print(f"kill at {barrier_name!r} never fired", file=sys.stderr)
        return 3

    # resume
    resume = (
        VM1Checkpoint.load(ckpt_path) if ckpt_path.exists() else None
    )
    vm1_opt(
        design,
        params,
        checkpoint_sink=lambda cp: cp.save(ckpt_path),
        resume=resume,
    )
    (out / "resumed.json").write_text(
        json.dumps(snapshot_doc(design))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
