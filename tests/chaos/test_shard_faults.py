"""Shard-layer chaos: mid-shard death + resume, stale plan refusal."""

import pytest

from repro.chaos import (
    ChaosController,
    ChaosFault,
    FaultPlan,
    FaultRule,
    chaos_scope,
)
from repro.core import OptParams
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.shard.runner import ShardCheckpointStore, run_sharded
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)
PARAMS = OptParams.for_arch(
    CellArchitecture.CLOSED_M1, time_limit=1.0
)


def fresh_design():
    design = generate_design("m0", TECH, LIB, scale=0.02, seed=2)
    place_design(design, seed=1)
    return design


@pytest.fixture(scope="module")
def reference_snapshot():
    design = fresh_design()
    run_sharded(design, PARAMS, shards=2, halo_rows=2)
    return design.placement_snapshot()


def shard_rule(**kw):
    kw.setdefault("site", "barrier")
    kw.setdefault("action", "raise")
    return FaultRule(**kw)


def test_mid_shard_death_then_resume_byte_identical(
    tmp_path, reference_snapshot
):
    chaos = ChaosController(
        plan=FaultPlan(
            seed=0,
            faults=(shard_rule(nth=1, match="shard:0:done"),),
        )
    )
    interrupted = fresh_design()
    with chaos_scope(chaos):
        with pytest.raises(ChaosFault, match="shard:0:done"):
            run_sharded(
                interrupted,
                PARAMS,
                shards=2,
                halo_rows=2,
                checkpoint_dir=tmp_path,
            )
    store = ShardCheckpointStore(tmp_path)
    assert store.load_done(0) is None  # died before the done record

    # The fault condition is gone after the "crash"; a plain resume
    # must finish byte-identical to the uninterrupted run.
    resumed = fresh_design()
    result = run_sharded(
        resumed,
        PARAMS,
        shards=2,
        halo_rows=2,
        checkpoint_dir=tmp_path,
        resume=True,
    )
    assert result.resumed_shards >= 1
    assert resumed.placement_snapshot() == reference_snapshot


def test_shard_start_death_is_recoverable(
    tmp_path, reference_snapshot
):
    chaos = ChaosController(
        plan=FaultPlan(
            seed=0,
            faults=(shard_rule(nth=1, match="shard:1:start"),),
        )
    )
    interrupted = fresh_design()
    with chaos_scope(chaos):
        with pytest.raises(ChaosFault, match="shard:1:start"):
            run_sharded(
                interrupted,
                PARAMS,
                shards=2,
                halo_rows=2,
                checkpoint_dir=tmp_path,
            )
    resumed = fresh_design()
    run_sharded(
        resumed,
        PARAMS,
        shards=2,
        halo_rows=2,
        checkpoint_dir=tmp_path,
        resume=True,
    )
    assert resumed.placement_snapshot() == reference_snapshot


def test_stale_plan_fingerprint_refused_on_resume(tmp_path):
    design = fresh_design()
    run_sharded(
        design, PARAMS, shards=2, halo_rows=2,
        checkpoint_dir=tmp_path,
    )
    chaos = ChaosController(
        plan=FaultPlan(
            seed=0,
            faults=(
                FaultRule(site="shard.plan", action="stale", nth=1),
            ),
        )
    )
    again = fresh_design()
    with chaos_scope(chaos):
        with pytest.raises(ValueError, match="different run"):
            run_sharded(
                again, PARAMS, shards=2, halo_rows=2,
                checkpoint_dir=tmp_path, resume=True,
            )
    assert chaos.total_fires() == 1


def test_stale_plan_without_resume_is_cleared(
    tmp_path, reference_snapshot
):
    chaos = ChaosController(
        plan=FaultPlan(
            seed=0,
            faults=(
                FaultRule(site="shard.plan", action="stale", nth=1),
            ),
        )
    )
    design = fresh_design()
    with chaos_scope(chaos):
        # resume=False: the mismatched leftover state is discarded
        # and the run starts fresh — and still converges exactly.
        run_sharded(
            design, PARAMS, shards=2, halo_rows=2,
            checkpoint_dir=tmp_path,
        )
    assert chaos.total_fires() == 1
    assert design.placement_snapshot() == reference_snapshot
