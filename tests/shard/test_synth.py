"""Tests for repro.shard.synth — the Rent-scaled design family and
the bucketed wiring path it exercises."""

import numpy as np
import pytest

from repro.library import build_library
from repro.netlist.generator import (
    _BUCKETED_WIRING_MIN,
    generate_design,
)
from repro.shard.synth import (
    RENT_EXPONENT,
    generate_scaled_design,
    scale_profile,
)
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


def test_profile_anchored_to_aes():
    profile = scale_profile(12_345)
    assert profile.locality == pytest.approx(0.02)


def test_profile_follows_rent_laws():
    small = scale_profile(10_000)
    large = scale_profile(100_000)
    # Locality ~ N**(p-1): relative neighborhoods shrink as N grows.
    ratio = large.locality / small.locality
    assert ratio == pytest.approx(10 ** (RENT_EXPONENT - 1.0))
    # Terminals ~ t * N**p: IO grows sublinearly.
    assert small.io_count < large.io_count < 10 * small.io_count


def test_profile_naming_and_validation():
    assert scale_profile(50_000).name == "synth50k"
    assert scale_profile(12_345).name == "synth12345"
    with pytest.raises(ValueError):
        scale_profile(4)
    with pytest.raises(ValueError):
        scale_profile(10_000, rent_exponent=1.5)


@pytest.fixture(scope="module")
def bucketed_design():
    """Smallest design that takes the vectorized wiring path."""
    assert _BUCKETED_WIRING_MIN <= 20_000
    return generate_scaled_design(20_000, TECH, LIB, seed=3)


def test_scaled_generation_deterministic(bucketed_design):
    again = generate_scaled_design(20_000, TECH, LIB, seed=3)
    assert len(again.instances) == len(bucketed_design.instances)
    for name, inst in bucketed_design.instances.items():
        assert again.instances[name].macro.name == inst.macro.name
    for name, net in bucketed_design.nets.items():
        assert [
            (r.instance, r.pin) for r in again.nets[name].pins
        ] == [(r.instance, r.pin) for r in net.pins]


def test_bucketed_wiring_keeps_combinational_acyclic(bucketed_design):
    """The vectorized path enforces the same acceptance rule as the
    legacy loop: a comb gate is driven by a flop or a lower index."""
    design = bucketed_design
    seq = {
        name: design.instances[name].macro.spec.is_sequential
        for name in design.instances
    }
    checked = 0
    for net_name, net in design.nets.items():
        if not net_name.startswith("n"):
            continue
        driver = int(net_name[1:])
        driver_name = f"U{driver:06d}"
        for ref in net.pins[1:]:
            if ref.instance not in seq:
                continue
            sink = int(ref.instance[1:])
            if sink == driver or ref.instance == driver_name:
                continue
            assert (
                seq[driver_name] or seq[ref.instance] or driver < sink
            ), f"comb cycle risk: {driver_name} -> {ref.instance}"
            checked += 1
    assert checked > 10_000


def test_bucketed_wiring_preserves_locality(bucketed_design):
    """Mean structural driver distance tracks the profile's geometric
    scale — the snap fallback must not distort it."""
    design = bucketed_design
    profile = scale_profile(20_000)
    n = sum(
        1 for name in design.instances if name.startswith("U")
    )
    distances = []
    for net_name, net in design.nets.items():
        if not net_name.startswith("n"):
            continue
        driver = int(net_name[1:])
        for ref in net.pins[1:]:
            distances.append(abs(int(ref.instance[1:]) - driver))
    mean = float(np.mean(distances))
    expected = profile.locality * n  # geometric mean distance scale
    assert 0.3 * expected < mean < 3.0 * expected


def test_small_designs_keep_legacy_stream():
    """Below the threshold the original RNG stream is untouched —
    the committed expectation for every existing profile."""
    design = generate_design("aes", TECH, LIB, scale=0.05, seed=1)
    # Spot-check a known legacy wiring fact: the design is connected
    # through its first net, and regeneration is bit-stable.
    again = generate_design("aes", TECH, LIB, scale=0.05, seed=1)
    assert [
        (r.instance, r.pin) for r in design.nets["n000000"].pins
    ] == [(r.instance, r.pin) for r in again.nets["n000000"].pins]
