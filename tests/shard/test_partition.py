"""Tests for repro.shard.partition — plans, extraction, nets."""

import pytest

from repro.geometry import Rect
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.shard.partition import (
    AUTO_CELLS_PER_SHARD,
    RegionShard,
    ShardPlan,
    classify_nets,
    extract_shard_design,
    max_shards_for,
    plan_shards,
    resolve_shard_count,
    shard_of_instance,
    verify_plan,
)
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


@pytest.fixture(scope="module")
def design():
    design = generate_design("aes", TECH, LIB, scale=0.05, seed=1)
    place_design(design, seed=1)
    return design


def test_plan_tiles_die_rows(design):
    plan = plan_shards(design, 3, halo_rows=2)
    assert len(plan) == 3
    assert plan.shards[0].row_lo == 0
    assert plan.shards[-1].row_hi == design.num_rows
    for a, b in zip(plan.shards, plan.shards[1:]):
        assert a.row_hi == b.row_lo


def test_plan_boundaries_even_snapped(design):
    """Core starts land on even global rows — the N/FS parity
    invariant that keeps extracted sub-designs orientation-legal."""
    for count in (2, 3, 4):
        plan = plan_shards(design, count, halo_rows=2)
        for shard in plan.shards:
            assert shard.row_lo % 2 == 0


def test_plan_bands_balanced(design):
    plan = plan_shards(design, 3, halo_rows=1)
    sizes = [s.num_core_rows for s in plan.shards]
    assert max(sizes) - min(sizes) <= 2  # one snap quantum


def test_plan_halo_clipped_to_die(design):
    plan = plan_shards(design, 2, halo_rows=3)
    for shard in plan.shards:
        assert shard.halo.ylo >= design.die.ylo
        assert shard.halo.yhi <= design.die.yhi
        assert shard.halo.contains_rect(shard.core)


def test_seam_ys(design):
    plan = plan_shards(design, 3, halo_rows=2)
    assert plan.seam_ys == (
        plan.shards[1].core.ylo,
        plan.shards[2].core.ylo,
    )


def test_plan_rejects_impossible_counts(design):
    with pytest.raises(ValueError):
        plan_shards(design, 0, halo_rows=2)
    with pytest.raises(ValueError):
        plan_shards(design, design.num_rows, halo_rows=2)
    with pytest.raises(ValueError):
        plan_shards(design, 2, halo_rows=-1)


def test_max_shards_respects_halo(design):
    assert max_shards_for(design, 0) >= max_shards_for(design, 4)
    assert max_shards_for(design, 0) == design.num_rows // 4


def test_resolve_explicit_and_clamp(design):
    assert resolve_shard_count(design, 2, jobs=1, halo_rows=2) == 2
    cap = max_shards_for(design, 2)
    assert resolve_shard_count(design, 999, jobs=1, halo_rows=2) == cap
    with pytest.raises(ValueError):
        resolve_shard_count(design, 0, jobs=1, halo_rows=2)
    with pytest.raises(ValueError):
        resolve_shard_count(design, "many", jobs=1, halo_rows=2)


def test_resolve_auto_scales_with_size_and_jobs(design):
    # ~600 instances: auto always resolves to 1 regardless of jobs.
    assert resolve_shard_count(design, "auto", jobs=8, halo_rows=2) == 1
    # A synthetic headcount check against the documented formula:
    by_size = max(1, len(design.instances) // AUTO_CELLS_PER_SHARD)
    assert by_size == 1


def test_verify_plan_accepts_generated_plans(design):
    for count in (1, 2, 3):
        plan = plan_shards(design, count, halo_rows=2)
        assert verify_plan(design, plan) == []


def test_verify_plan_catches_bad_tiling(design):
    plan = plan_shards(design, 2, halo_rows=1)
    rh = TECH.row_height
    die = design.die
    first = plan.shards[0]
    # Shrink the first core by one row without moving the second.
    bad_core = Rect(die.xlo, die.ylo, die.xhi, first.core.yhi - rh)
    bad = ShardPlan(
        shards=(
            RegionShard(
                index=0,
                row_lo=0,
                row_hi=first.row_hi - 1,
                core=bad_core,
                halo=first.halo,
            ),
            plan.shards[1],
        ),
        halo_rows=1,
    )
    errors = verify_plan(design, bad)
    assert errors, "gap between cores must be flagged"


def test_verify_plan_catches_odd_parity(design):
    plan = plan_shards(design, 2, halo_rows=1)
    rh = TECH.row_height
    die = design.die
    second = plan.shards[1]
    odd_lo = second.row_lo + 1
    shifted = ShardPlan(
        shards=(
            RegionShard(
                index=0,
                row_lo=0,
                row_hi=odd_lo,
                core=Rect(
                    die.xlo, die.ylo, die.xhi, die.ylo + odd_lo * rh
                ),
                halo=plan.shards[0].halo,
            ),
            RegionShard(
                index=1,
                row_lo=odd_lo,
                row_hi=design.num_rows,
                core=Rect(
                    die.xlo, die.ylo + odd_lo * rh, die.xhi, die.yhi
                ),
                halo=second.halo,
            ),
        ),
        halo_rows=1,
    )
    errors = verify_plan(design, shifted)
    assert any("parity" in e for e in errors)


def test_every_instance_owned_once(design):
    plan = plan_shards(design, 3, halo_rows=2)
    owners = [
        shard_of_instance(plan, design, name)
        for name in design.instances
    ]
    assert set(owners) == {0, 1, 2}


def test_classify_nets_partitions_all(design):
    plan = plan_shards(design, 3, halo_rows=2)
    nets = classify_nets(design, plan)
    assert (
        nets.num_internal + nets.num_boundary + nets.trivial
        == len(design.nets)
    )
    assert nets.num_boundary > 0  # row bands always cut some nets
    assert set(nets.internal) == {0, 1, 2}


def test_extract_preserves_names_and_freezes_ghosts(design):
    plan = plan_shards(design, 3, halo_rows=2)
    shard = plan.shards[1]
    sub = extract_shard_design(design, shard)
    assert sub.die == shard.core
    core_names = {
        inst.name for inst in design.instances_in(shard.core)
    }
    for name, inst in sub.instances.items():
        src = design.instances[name]
        assert (inst.x, inst.y) == (src.x, src.y)
        assert inst.orientation == src.orientation
        if name in core_names:
            assert inst.fixed == src.fixed
        else:
            assert inst.fixed, f"halo ghost {name} must be frozen"
    # Ghosts exist: the middle band has halo rows on both sides.
    assert set(sub.instances) - core_names


def test_extract_represents_external_pins_as_pads(design):
    plan = plan_shards(design, 2, halo_rows=1)
    shard = plan.shards[0]
    sub = extract_shard_design(design, shard)
    for net_name, sub_net in sub.nets.items():
        net = design.nets[net_name]
        external = [
            ref
            for ref in net.pins
            if ref.instance not in sub.instances
        ]
        assert len(sub_net.pins) + len(external) == len(net.pins)
        # Every external terminal shows up as an extra fixed pad.
        assert len(sub_net.pads) == len(net.pads) + len(external)
        for ref in external:
            pos = design.instances[ref.instance].pin_position(ref.pin)
            assert pos in sub_net.pads
