"""Tests for repro.shard.stitch — merge, seam filter, verification."""

import pytest

from repro.core import OptParams
from repro.core.window import partition
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.shard.partition import plan_shards
from repro.shard.stitch import (
    merge_shard_placements,
    seam_window_filter,
    verify_stitched,
)
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


@pytest.fixture(scope="module")
def design():
    design = generate_design("aes", TECH, LIB, scale=0.05, seed=1)
    place_design(design, seed=1)
    return design


def test_merge_counts_only_real_moves(design):
    name = next(iter(design.instances))
    inst = design.instances[name]
    same = {
        name: (inst.x, inst.y, inst.orientation.value),
    }
    assert merge_shard_placements(design, same) == 0
    shifted = {
        name: (
            inst.x + TECH.site_width,
            inst.y,
            inst.orientation.value,
        ),
    }
    assert merge_shard_placements(design, shifted) == 1
    assert inst.x % TECH.site_width == 0
    # Restore for the other module-scoped tests.
    merge_shard_placements(design, same)
    assert design.instances[name].x == same[name][0]


def test_seam_filter_selects_straddling_windows(design):
    plan = plan_shards(design, 3, halo_rows=2)
    accept = seam_window_filter(design, plan)
    windows = partition(design, 0, 0, 1250, 1080)
    kept = [w for w in windows if accept(w)]
    assert kept and len(kept) < len(windows)
    margin = max(1, plan.halo_rows) * TECH.row_height
    for window in kept:
        assert any(
            window.rect.ylo < y + margin
            and window.rect.yhi > y - margin
            for y in plan.seam_ys
        )
    for window in windows:
        if window not in kept:
            assert all(
                window.rect.yhi <= y - margin
                or window.rect.ylo >= y + margin
                for y in plan.seam_ys
            )


def test_verify_stitched_clean_on_legal_placement(design):
    assert verify_stitched(design) == []


def test_verify_stitched_reports_both_checkers(design):
    name = next(iter(design.instances))
    inst = design.instances[name]
    x = inst.x
    inst.x = x + 1  # off-site: illegal for both checkers
    try:
        errors = verify_stitched(design)
    finally:
        inst.x = x
    assert any(e.startswith("oracle:") for e in errors)
    assert any(e.startswith("production:") for e in errors)


def test_seam_params_exist():
    params = OptParams.for_arch(TECH.arch)
    assert params.sequence, "seam pass reads the last ParamSet"
