"""Full-chip acceptance: a 50k-cell design through the sharded flow.

Slow tier (nightly CI): generates the 50k-cell Rent-connectivity
design, places it, and runs the region-sharded optimizer end to end,
asserting the stitched placement verifies legal under both the
independent oracle and the production checker.
"""

import pytest

from repro.core import OptParams, ParamSet
from repro.library import build_library
from repro.placement import place_design
from repro.shard import generate_scaled_design, run_sharded
from repro.tech import CellArchitecture, make_tech

pytestmark = pytest.mark.slow


def test_50k_sharded_flow_is_legal():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_scaled_design(50_000, tech, lib, seed=1)
    assert len(design.instances) == 50_000
    place_design(design, seed=1)
    params = OptParams.for_arch(
        CellArchitecture.CLOSED_M1,
        sequence=(ParamSet.square(1.0, 3, 1),),
        time_limit=1.0,
    )
    result = run_sharded(
        design, params, shards=4, halo_rows=2, jobs=1
    )
    assert result.num_shards == 4
    assert result.stitch is not None and result.stitch.legal
    assert result.final_objective <= result.initial_objective
    for outcome in result.outcomes:
        assert outcome.final_objective <= outcome.initial_objective
