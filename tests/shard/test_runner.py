"""Tests for repro.shard.runner — execution, resume, reproducibility.

The anchors:

* ``shards=1`` is byte-identical to a plain ``vm1_opt`` run (the fast
  path bypasses the shard layer entirely);
* a sharded run produces a legal, oracle-verified stitched placement
  with every shard's objective monotone non-increasing;
* killing a run between shards and resuming reproduces the
  uninterrupted placement byte for byte (shard-granular crash safety).
"""

import pytest

from repro.core import OptParams
from repro.core.vm1opt import vm1_opt
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.runtime import SerialExecutor
from repro.shard.runner import (
    ShardCheckpointStore,
    ShardPlanError,
    plan_workers,
    run_sharded,
)
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)

PARAMS = OptParams.for_arch(CellArchitecture.CLOSED_M1, time_limit=2.0)


def fresh_design():
    design = generate_design("m0", TECH, LIB, scale=0.03, seed=2)
    place_design(design, seed=1)
    return design


@pytest.fixture(scope="module")
def sharded_reference():
    """One uninterrupted 2-shard run, shared by several tests."""
    design = fresh_design()
    result = run_sharded(design, PARAMS, shards=2, halo_rows=2)
    return design.placement_snapshot(), result


def test_single_shard_is_byte_identical_to_direct():
    direct = fresh_design()
    with SerialExecutor() as ex:
        vm1_opt(direct, PARAMS, executor=ex)
    via_shard = fresh_design()
    result = run_sharded(via_shard, PARAMS, shards=1)
    assert via_shard.placement_snapshot() == direct.placement_snapshot()
    assert result.num_shards == 1
    assert result.direct is not None
    assert result.to_vm1_result() is result.direct


def test_sharded_run_is_legal_and_monotone(sharded_reference):
    _, result = sharded_reference
    assert result.stitch is not None and result.stitch.legal
    assert result.num_shards == 2
    for outcome in result.outcomes:
        assert outcome.final_objective <= outcome.initial_objective
    seam = result.stitch.seam_pass
    assert seam is not None
    assert result.final_objective <= result.initial_objective


def test_sharded_vm1_view_aggregates(sharded_reference):
    _, result = sharded_reference
    opt = result.to_vm1_result()
    assert opt.initial_objective == result.initial_objective
    assert opt.final_objective == result.final_objective
    assert opt.moved_cells >= sum(
        o.moved_cells for o in result.outcomes
    )
    assert opt.solve_seconds > 0
    summary = result.summary()
    assert summary["num_shards"] == 2
    assert summary["legal"] is True


def test_sharded_run_is_deterministic(sharded_reference):
    snapshot, _ = sharded_reference
    design = fresh_design()
    run_sharded(design, PARAMS, shards=2, halo_rows=2)
    assert design.placement_snapshot() == snapshot


def test_interrupt_and_resume_byte_identical(
    tmp_path, sharded_reference
):
    snapshot, _ = sharded_reference

    class Stop(RuntimeError):
        pass

    seen = []

    def bomb(stage, info):
        if stage == "shard":
            seen.append(info["index"])
            raise Stop("simulated kill after first shard")

    interrupted = fresh_design()
    with pytest.raises(Stop):
        run_sharded(
            interrupted,
            PARAMS,
            shards=2,
            halo_rows=2,
            checkpoint_dir=tmp_path,
            progress=bomb,
        )
    assert seen == [0]
    store = ShardCheckpointStore(tmp_path)
    assert store.load_done(0) is not None
    assert store.load_done(1) is None

    resumed = fresh_design()
    result = run_sharded(
        resumed,
        PARAMS,
        shards=2,
        halo_rows=2,
        checkpoint_dir=tmp_path,
        resume=True,
    )
    assert result.resumed_shards >= 1
    assert result.outcomes[0].resumed is False  # fast-forwarded done
    assert resumed.placement_snapshot() == snapshot


def test_resume_refuses_foreign_checkpoint_dir(tmp_path):
    design = fresh_design()
    store = ShardCheckpointStore(tmp_path)
    store.begin(design, 2, 2, resume=False)
    with pytest.raises(ValueError, match="different run"):
        store.begin(design, 3, 2, resume=True)
    # Without resume the mismatched state is simply cleared.
    assert store.begin(design, 3, 2, resume=False) is False


def test_run_sharded_rejects_bad_counts():
    design = fresh_design()
    with pytest.raises(ValueError):
        run_sharded(design, PARAMS, shards=0)
    with pytest.raises((ValueError, ShardPlanError)):
        run_sharded(design, PARAMS, shards=design.num_rows)


def test_plan_workers_budget():
    # Whole budget to windows when shard level is serial.
    assert plan_workers(4, 1, "auto") == ("serial", 1, "serial", 1)
    assert plan_workers(4, 4, "serial") == ("serial", 1, "process", 4)
    # Shard-parallel first, remainder as threads within.
    kind, workers, inner_kind, inner_jobs = plan_workers(2, 4, "auto")
    assert (kind, workers) == ("process", 2)
    assert (inner_kind, inner_jobs) == ("thread", 2)
    # More shards than jobs: one worker per job, serial inside.
    kind, workers, inner_kind, inner_jobs = plan_workers(8, 2, "auto")
    assert (kind, workers) == ("process", 2)
    assert (inner_kind, inner_jobs) == ("serial", 1)
    with pytest.raises(ValueError):
        plan_workers(2, 2, "warp")
