"""Cross-executor determinism: parallel == serial, bit for bit.

The engine's contract (and the PR's acceptance bar): on a fixed seed,
``MultiprocessExecutor`` / ``ThreadExecutor`` runs produce a placement
byte-identical to the ``SerialExecutor`` run, with the same objective
— solutions are applied in canonical window order regardless of
completion order.
"""

import pytest

from repro.core import OptParams
from repro.core.distopt import dist_opt
from repro.core.vm1opt import vm1_opt
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.runtime import (
    MultiprocessExecutor,
    RunTelemetry,
    SerialExecutor,
    ThreadExecutor,
)
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


def fresh_design():
    design = generate_design("aes", TECH, LIB, scale=0.015, seed=3)
    place_design(design, seed=1)
    return design


def run_one_pass(executor, telemetry=None):
    design = fresh_design()
    # Generous limit: these window MILPs solve in milliseconds, and a
    # limit that actually fires would make outcomes timing-dependent.
    params = OptParams.for_arch(TECH.arch, time_limit=30.0)
    result = dist_opt(
        design, params, tx=0, ty=0, bw=1250, bh=1080, lx=3, ly=1,
        allow_flip=False, executor=executor, telemetry=telemetry,
    )
    return design.placement_snapshot(), result


@pytest.fixture(scope="module")
def serial_run():
    return run_one_pass(SerialExecutor())


def test_multiprocess_matches_serial_exactly(serial_run):
    serial_snapshot, serial_result = serial_run
    telemetry = RunTelemetry(executor="process", jobs=2)
    with MultiprocessExecutor(jobs=2) as executor:
        parallel_snapshot, parallel_result = run_one_pass(
            executor, telemetry
        )
    assert parallel_snapshot == serial_snapshot
    assert parallel_result.objective == serial_result.objective
    assert parallel_result.moved_cells == serial_result.moved_cells
    assert (
        parallel_result.windows_applied
        == serial_result.windows_applied
    )
    assert parallel_result.executor == "process"
    assert parallel_result.jobs == 2
    assert telemetry.summary()["windows"]["failed"] == 0


def test_thread_matches_serial_exactly(serial_run):
    serial_snapshot, serial_result = serial_run
    with ThreadExecutor(jobs=2) as executor:
        parallel_snapshot, parallel_result = run_one_pass(executor)
    assert parallel_snapshot == serial_snapshot
    assert parallel_result.objective == serial_result.objective


def test_vm1opt_multiprocess_matches_serial():
    """Full Algorithm 1 (multi-pass, shifted grids) equivalence."""
    from repro.core import ParamSet

    params = OptParams.for_arch(
        TECH.arch,
        sequence=(ParamSet.square(1.25, 2, 1),),
        time_limit=30.0,
    )

    design_a = fresh_design()
    serial = vm1_opt(design_a, params, executor=SerialExecutor())
    snapshot_a = design_a.placement_snapshot()

    design_b = fresh_design()
    with MultiprocessExecutor(jobs=2) as executor:
        parallel = vm1_opt(design_b, params, executor=executor)
    snapshot_b = design_b.placement_snapshot()

    assert snapshot_a == snapshot_b
    assert serial.final_objective == parallel.final_objective
    assert serial.iterations == parallel.iterations
    assert parallel.windows_failed == 0
    assert parallel.windows_timed_out == 0


def test_measured_parallel_reported(serial_run):
    _, serial_result = serial_run
    assert serial_result.measured_parallel_seconds > 0.0
    assert serial_result.measured_parallel_seconds <= (
        serial_result.wall_seconds + 1e-9
    )
    # Solve-only model never exceeds the measured dispatch+solve wall
    # for the serial executor (no overlap possible on one worker).
    assert serial_result.modeled_parallel_seconds <= (
        serial_result.measured_parallel_seconds + 1e-9
    )
