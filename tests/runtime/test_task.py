"""WindowTask serialization-layer tests."""

import pickle

import pytest

from repro.milp.highs_backend import HighsBackend
from repro.runtime import SolverSpec, WindowTask

from tests.runtime._fakes import FixedSolveTimeBackend, tiny_model


def make_task(task_id=0, solver=None):
    return WindowTask(
        task_id=task_id,
        ix=1,
        iy=2,
        family=0,
        model=tiny_model(f"t{task_id}"),
        solver=solver or SolverSpec(backend="highs", time_limit=2.0),
        nets=("n1", "n2"),
        num_movable=3,
        num_pairs=1,
    )


def test_solver_spec_roundtrip_highs():
    spec = SolverSpec.from_backend(
        HighsBackend(time_limit=3.5, mip_rel_gap=0.01)
    )
    assert spec.backend == "highs"
    backend = spec.build()
    assert isinstance(backend, HighsBackend)
    assert backend.time_limit == 3.5
    assert backend.mip_rel_gap == 0.01


def test_solver_spec_wraps_unknown_backend():
    fake = FixedSolveTimeBackend(0.25)
    spec = SolverSpec.from_backend(fake)
    assert spec.build() is fake


def test_solver_spec_rejects_unknown_name():
    with pytest.raises(ValueError):
        SolverSpec(backend="cplex").build()


def test_task_pickle_roundtrip_solves_identically():
    task = make_task()
    clone = pickle.loads(pickle.dumps(task))
    assert clone.task_id == task.task_id
    assert clone.nets == task.nets
    original = task.run()
    restored = clone.run()
    assert original.ok and restored.ok
    assert original.solution.objective == restored.solution.objective


def test_run_never_raises_and_reports_error():
    task = make_task(
        solver=SolverSpec(backend="custom", instance=None)
    )
    # build() raises ValueError for the unknown name; run() must fold
    # it into the result instead of propagating.
    result = task.run()
    assert not result.ok
    assert "custom" in result.error


def test_from_problem_extracts_metadata():
    from repro.core import OptParams
    from repro.core.formulation import build_window_model
    from repro.core.window import partition
    from repro.library import build_library
    from repro.netlist import generate_design
    from repro.placement import place_design
    from repro.tech import CellArchitecture, make_tech

    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("m0", tech, lib, scale=0.01, seed=2)
    place_design(design, seed=1)
    params = OptParams.for_arch(tech.arch, time_limit=2.0)
    problem = None
    for window in partition(design, 0, 0, 1250, 1080):
        problem = build_window_model(
            design, window, params, lx=2, ly=1, allow_flip=False
        )
        if problem is not None:
            break
    assert problem is not None
    task = WindowTask.from_problem(
        problem, task_id=7, family=3,
        solver=SolverSpec(backend="highs", time_limit=2.0),
    )
    assert task.task_id == 7
    assert task.family == 3
    assert (task.ix, task.iy) == (problem.window.ix, problem.window.iy)
    assert task.num_movable == len(problem.movable)
    assert task.nets == tuple(problem.nets)
    # The task is the shippable half: the model crosses the pickle
    # boundary intact.
    clone = pickle.loads(pickle.dumps(task))
    assert len(clone.model.vars) == len(problem.model.vars)
    assert len(clone.model.constraints) == len(
        problem.model.constraints
    )
    assert clone.run().ok
