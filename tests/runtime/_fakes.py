"""Module-level fake solver backends (picklable for process tests)."""

from __future__ import annotations

import time

from repro.milp.solution import Solution, SolveStatus


def tiny_model(name: str = "tiny", reward: float = -2.0):
    """One-binary model whose optimum sets the variable to 1."""
    from repro.milp.model import Model

    model = Model(name)
    x = model.add_binary("x")
    model.minimize(reward * x)
    return model


class FixedSolveTimeBackend:
    """Reports a caller-chosen ``solve_seconds`` without solving."""

    def __init__(self, solve_seconds: float = 0.5) -> None:
        self.solve_seconds = solve_seconds

    def solve(self, model) -> Solution:
        values = {v.index: v.ub for v in model.vars}
        return Solution(
            status=SolveStatus.OPTIMAL,
            objective=model.objective.value(values),
            values=values,
            solve_seconds=self.solve_seconds,
        )


class SleepyBackend:
    """Sleeps, then solves trivially — for timeout tests."""

    def __init__(self, sleep_seconds: float) -> None:
        self.sleep_seconds = sleep_seconds

    def solve(self, model) -> Solution:
        time.sleep(self.sleep_seconds)
        return FixedSolveTimeBackend(0.0).solve(model)


class FlakyBackend:
    """Raises on the first N calls, then solves (retry tests).

    State lives on the instance, so this only behaves as intended
    with in-process executors (serial/thread).
    """

    def __init__(self, failures: int = 1) -> None:
        self.failures = failures
        self.calls = 0

    def solve(self, model) -> Solution:
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"flaky failure #{self.calls}")
        return FixedSolveTimeBackend(0.0).solve(model)


class AlwaysErrorBackend:
    """Every solve raises — for graceful-degradation tests."""

    def solve(self, model) -> Solution:
        raise RuntimeError("solver is down")
