"""Scheduler tests: retry, timeout, graceful degradation, ordering."""

import pytest

from repro.runtime import (
    FamilyScheduler,
    ScheduleConfig,
    SerialExecutor,
    SolverSpec,
    ThreadExecutor,
    WindowTask,
)

from tests.runtime._fakes import (
    AlwaysErrorBackend,
    FlakyBackend,
    SleepyBackend,
    tiny_model,
)


def make_tasks(backend, n=3):
    spec = SolverSpec.from_backend(backend)
    return [
        WindowTask(
            task_id=i, ix=i, iy=0, family=0,
            model=tiny_model(f"m{i}"), solver=spec,
        )
        for i in range(n)
    ]


def test_results_keyed_by_canonical_task_id():
    spec = SolverSpec(backend="highs", time_limit=5.0)
    tasks = [
        WindowTask(
            task_id=i, ix=i, iy=0, family=0,
            model=tiny_model(f"m{i}"), solver=spec,
        )
        for i in range(4)
    ]
    scheduler = FamilyScheduler(SerialExecutor())
    results = scheduler.run_family(tasks)
    assert sorted(results) == [t.task_id for t in tasks]
    assert all(results[i].ok for i in results)


def test_retry_recovers_from_transient_failure():
    backend = FlakyBackend(failures=1)
    tasks = make_tasks(backend, n=1)
    scheduler = FamilyScheduler(
        SerialExecutor(), ScheduleConfig(max_retries=2)
    )
    results = scheduler.run_family(tasks)
    assert results[0].ok
    assert results[0].attempts == 2
    assert backend.calls == 2


def test_retry_is_bounded():
    backend = FlakyBackend(failures=10)
    tasks = make_tasks(backend, n=1)
    scheduler = FamilyScheduler(
        SerialExecutor(), ScheduleConfig(max_retries=2)
    )
    results = scheduler.run_family(tasks)
    assert not results[0].ok
    assert results[0].attempts == 3  # 1 try + 2 retries
    assert "flaky" in results[0].error
    assert backend.calls == 3


def test_always_failing_solver_degrades_gracefully():
    tasks = make_tasks(AlwaysErrorBackend(), n=3)
    scheduler = FamilyScheduler(
        SerialExecutor(), ScheduleConfig(max_retries=1)
    )
    results = scheduler.run_family(tasks)  # must not raise
    assert len(results) == 3
    assert all(not r.ok for r in results.values())
    assert all("solver is down" in r.error for r in results.values())


def test_timeout_marks_task_and_pass_continues():
    slow = make_tasks(SleepyBackend(5.0), n=1)[0]
    fast = make_tasks(SleepyBackend(0.0), n=2)[1]
    fast = WindowTask(
        task_id=1, ix=1, iy=0, family=0,
        model=tiny_model("fast"), solver=fast.solver,
    )
    with ThreadExecutor(jobs=2) as executor:
        scheduler = FamilyScheduler(
            executor, ScheduleConfig(task_timeout=0.5, max_retries=1)
        )
        results = scheduler.run_family([slow, fast])
    assert results[0].timed_out
    assert not results[0].ok
    assert results[0].attempts == 1  # timeouts are never retried
    assert results[1].ok


def test_queue_seconds_accounted():
    tasks = make_tasks(SleepyBackend(0.05), n=2)
    with ThreadExecutor(jobs=1) as executor:  # forced queuing
        scheduler = FamilyScheduler(executor)
        results = scheduler.run_family(tasks)
    assert all(r.ok for r in results.values())
    # With one worker the second task waits for the first.
    assert results[1].queue_seconds >= 0.0


def test_for_time_limit_policy():
    assert ScheduleConfig.for_time_limit(None).task_timeout is None
    config = ScheduleConfig.for_time_limit(5.0)
    assert config.task_timeout == pytest.approx(50.0)
