"""Executor backend tests: serial, thread, process, factory."""

import time

import pytest

from repro.runtime import (
    EXECUTOR_KINDS,
    MultiprocessExecutor,
    SerialExecutor,
    SolverSpec,
    ThreadExecutor,
    WindowTask,
    make_executor,
)

from tests.runtime._fakes import SleepyBackend, tiny_model


def batch(n=4):
    spec = SolverSpec(backend="highs", time_limit=5.0)
    return [
        WindowTask(
            task_id=i, ix=i, iy=0, family=0,
            model=tiny_model(f"m{i}", reward=-(i + 1.0)),
            solver=spec,
        )
        for i in range(n)
    ]


def sleepy_batch(n, sleep_seconds=0.3):
    spec = SolverSpec(
        backend="sleepy", instance=SleepyBackend(sleep_seconds)
    )
    return [
        WindowTask(
            task_id=i, ix=i, iy=0, family=0,
            model=tiny_model(f"s{i}"),
            solver=spec,
        )
        for i in range(n)
    ]


def run_batch(executor, tasks):
    futures = [executor.submit(t) for t in tasks]
    return [f.result(timeout=60) for f in futures]


@pytest.mark.parametrize(
    "factory",
    [
        SerialExecutor,
        lambda: ThreadExecutor(jobs=2),
        lambda: MultiprocessExecutor(jobs=2),
    ],
    ids=["serial", "thread", "process"],
)
def test_executors_solve_batches_identically(factory):
    tasks = batch()
    with factory() as executor:
        results = run_batch(executor, tasks)
    assert [r.task_id for r in results] == [t.task_id for t in tasks]
    for i, result in enumerate(results):
        assert result.ok, result.error
        # optimum of minimize(-(i+1) * x) with binary x is -(i+1)
        assert result.solution.objective == pytest.approx(-(i + 1.0))
        assert result.solve_seconds >= 0.0


def test_make_executor_auto_matches_jobs():
    with make_executor("auto", jobs=1) as ex:
        assert isinstance(ex, SerialExecutor)
    with make_executor("auto", jobs=2) as ex:
        assert isinstance(ex, MultiprocessExecutor)
        assert ex.jobs == 2


@pytest.mark.parametrize("kind", ["serial", "thread", "process"])
def test_make_executor_explicit_kinds(kind):
    assert kind in EXECUTOR_KINDS
    with make_executor(kind, jobs=2) as ex:
        assert ex.name == kind
        [result] = run_batch(ex, batch(1))
        assert result.ok


def test_make_executor_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_executor("gpu", jobs=2)


def test_serial_executor_is_single_job():
    assert SerialExecutor().jobs == 1


def test_close_is_idempotent():
    executor = ThreadExecutor(jobs=1)
    executor.close()
    executor.close()


def _wait_until_in_flight(futures, timeout=30.0):
    """Block until every future has been picked up by a worker —
    drain's guarantee is about in-flight work, so start it first."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        if all(f.running() or f.done() for f in futures):
            return
        time.sleep(0.01)
    pytest.fail("submitted tasks never started running")


@pytest.mark.parametrize(
    "factory",
    [lambda: ThreadExecutor(jobs=2), lambda: MultiprocessExecutor(jobs=2)],
    ids=["thread", "process"],
)
def test_drain_waits_for_in_flight_tasks(factory):
    """Satellite: drain() blocks until every task a worker picked up
    has finished — the graceful-shutdown path relies on this to avoid
    orphaning window solves."""
    executor = factory()
    try:
        futures = [
            executor.submit(t) for t in sleepy_batch(2, 0.3)
        ]
        _wait_until_in_flight(futures)
        executor.drain()
        assert all(f.done() for f in futures)
        for future in futures:
            result = future.result(timeout=0)  # already resolved
            assert result.ok, result.error
    finally:
        executor.close()
    executor.drain()  # idempotent after close


def test_context_exit_drains_in_flight_tasks():
    """Leaving the ``with`` block — including via an exception, as the
    SIGTERM abort path does — must join workers, not abandon them."""
    with pytest.raises(RuntimeError, match="abort"):
        with MultiprocessExecutor(jobs=2) as executor:
            futures = [
                executor.submit(t) for t in sleepy_batch(2, 0.3)
            ]
            _wait_until_in_flight(futures)
            raise RuntimeError("abort mid-pass")
    assert all(f.done() for f in futures)
    assert all(f.result(timeout=0).ok for f in futures)
