"""Executor backend tests: serial, thread, process, factory."""

import pytest

from repro.runtime import (
    EXECUTOR_KINDS,
    MultiprocessExecutor,
    SerialExecutor,
    SolverSpec,
    ThreadExecutor,
    WindowTask,
    make_executor,
)

from tests.runtime._fakes import tiny_model


def batch(n=4):
    spec = SolverSpec(backend="highs", time_limit=5.0)
    return [
        WindowTask(
            task_id=i, ix=i, iy=0, family=0,
            model=tiny_model(f"m{i}", reward=-(i + 1.0)),
            solver=spec,
        )
        for i in range(n)
    ]


def run_batch(executor, tasks):
    futures = [executor.submit(t) for t in tasks]
    return [f.result(timeout=60) for f in futures]


@pytest.mark.parametrize(
    "factory",
    [
        SerialExecutor,
        lambda: ThreadExecutor(jobs=2),
        lambda: MultiprocessExecutor(jobs=2),
    ],
    ids=["serial", "thread", "process"],
)
def test_executors_solve_batches_identically(factory):
    tasks = batch()
    with factory() as executor:
        results = run_batch(executor, tasks)
    assert [r.task_id for r in results] == [t.task_id for t in tasks]
    for i, result in enumerate(results):
        assert result.ok, result.error
        # optimum of minimize(-(i+1) * x) with binary x is -(i+1)
        assert result.solution.objective == pytest.approx(-(i + 1.0))
        assert result.solve_seconds >= 0.0


def test_make_executor_auto_matches_jobs():
    with make_executor("auto", jobs=1) as ex:
        assert isinstance(ex, SerialExecutor)
    with make_executor("auto", jobs=2) as ex:
        assert isinstance(ex, MultiprocessExecutor)
        assert ex.jobs == 2


@pytest.mark.parametrize("kind", ["serial", "thread", "process"])
def test_make_executor_explicit_kinds(kind):
    assert kind in EXECUTOR_KINDS
    with make_executor(kind, jobs=2) as ex:
        assert ex.name == kind
        [result] = run_batch(ex, batch(1))
        assert result.ok


def test_make_executor_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_executor("gpu", jobs=2)


def test_serial_executor_is_single_job():
    assert SerialExecutor().jobs == 1


def test_close_is_idempotent():
    executor = ThreadExecutor(jobs=1)
    executor.close()
    executor.close()
