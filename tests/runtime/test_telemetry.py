"""Telemetry tests: records, modeled-parallel model, JSON schema."""

import json

import pytest

from repro.runtime import (
    TELEMETRY_SCHEMA,
    RunTelemetry,
    SerialExecutor,
    WindowRecord,
    modeled_parallel_seconds,
)


def rec(pass_label="p", family=0, solve=1.0, build=0.0, **kw):
    return WindowRecord(
        pass_label=pass_label, family=family, ix=0, iy=0,
        build_seconds=build, solve_seconds=solve, **kw,
    )


def test_modeled_parallel_is_sum_of_family_maxima():
    records = [
        rec(family=0, solve=1.0),
        rec(family=0, solve=3.0),
        rec(family=1, solve=2.0),
        rec(family=1, solve=0.5),
    ]
    assert modeled_parallel_seconds(records) == pytest.approx(5.0)


def test_modeled_parallel_charges_worker_build_time():
    """v3: window models are built inside the workers, so the
    per-window path charged to the parallel model is
    build + presolve + solve, not solve alone."""
    records = [
        rec(family=0, solve=1.0, build=100.0),
        rec(family=1, solve=2.0, build=50.0),
    ]
    assert modeled_parallel_seconds(records) == pytest.approx(153.0)
    # Within a family the slowest *path* wins, not the slowest solve.
    records = [
        rec(family=0, solve=5.0, build=0.0),
        rec(family=0, solve=1.0, build=9.0),
    ]
    assert modeled_parallel_seconds(records) == pytest.approx(10.0)


def test_modeled_parallel_separates_passes():
    records = [
        rec(pass_label="move", family=0, solve=1.0),
        rec(pass_label="flip", family=0, solve=2.0),
    ]
    # Same family index, different passes: passes run back-to-back.
    assert modeled_parallel_seconds(records) == pytest.approx(3.0)


def test_distopt_modeled_parallel_matches_record_paths():
    """End-to-end: DistOpt's modeled-parallel figure equals the
    telemetry-record computation and is bounded by the serial
    build+presolve+solve total (per family only the slowest path is
    charged)."""
    from repro.core import OptParams
    from repro.core.distopt import dist_opt
    from repro.library import build_library
    from repro.netlist import generate_design
    from repro.placement import place_design
    from repro.tech import CellArchitecture, make_tech

    from tests.runtime._fakes import FixedSolveTimeBackend

    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("m0", tech, lib, scale=0.01, seed=2)
    place_design(design, seed=1)
    params = OptParams.for_arch(tech.arch, time_limit=2.0)
    telemetry = RunTelemetry()
    result = dist_opt(
        design, params, tx=0, ty=0, bw=1250, bh=1080, lx=2, ly=1,
        allow_flip=False, solver=FixedSolveTimeBackend(0.0),
        telemetry=telemetry,
    )
    assert result.windows_built > 0
    assert result.build_seconds > 0.0
    assert result.modeled_parallel_seconds > 0.0
    serial_total = (
        result.build_seconds
        + result.presolve_seconds
        + result.solve_seconds
    )
    assert result.modeled_parallel_seconds <= serial_total + 1e-9
    assert result.modeled_parallel_seconds == pytest.approx(
        modeled_parallel_seconds(telemetry.records)
    )


def test_summary_schema_and_save(tmp_path):
    telemetry = RunTelemetry(executor="process", jobs=2)
    telemetry.record_window(
        rec(family=0, solve=1.0, build=0.5, status="applied")
    )
    telemetry.record_window(
        rec(family=0, solve=2.0, build=0.25, status="reverted")
    )
    telemetry.record_window(rec(family=1, solve=0.5, status="failed"))
    telemetry.record_pass(
        "move[u0.i0]",
        wall_seconds=4.0, build_seconds=0.75, solve_seconds=3.5,
        measured_parallel_seconds=2.5, modeled_parallel_seconds=2.5,
        windows=3, applied=1, failed=1, timed_out=0,
    )
    telemetry.wall_seconds = 4.0

    summary = telemetry.summary()
    assert summary["schema"] == TELEMETRY_SCHEMA
    assert summary["executor"] == "process"
    assert summary["jobs"] == 2
    assert summary["windows"] == {
        "total": 3, "applied": 1, "reverted": 1, "no_move": 0,
        "no_solution": 0, "failed": 1, "timed_out": 0, "cached": 0,
        "skipped_clean": 0,
    }
    assert summary["cache"] == {
        "hits": 0, "misses": 0, "hit_rate": 0.0,
    }
    seconds = summary["seconds"]
    assert seconds["build"] == pytest.approx(0.75)
    assert seconds["solve"] == pytest.approx(3.5)
    # v3 path model: family 0's slowest build+solve path (0.25 + 2.0)
    # plus family 1's (0.5).
    assert seconds["modeled_parallel"] == pytest.approx(2.75)
    assert seconds["measured_parallel"] == pytest.approx(2.5)
    assert summary["speedup"]["measured"] == pytest.approx(3.5 / 2.5)
    assert len(summary["passes"]) == 1
    assert len(summary["windows_detail"]) == 3

    path = telemetry.save(tmp_path / "nested" / "telemetry.json")
    assert path.exists()
    assert json.loads(path.read_text())["schema"] == TELEMETRY_SCHEMA


def test_v4_json_roundtrip_from_real_run(tmp_path):
    """Write → load → validate the v3 fields the service's progress
    stream depends on (schema id, presolve seconds, cache hits/misses,
    clean-skip counts)."""
    from repro.core import OptParams, WindowSolveCache
    from repro.core.distopt import dist_opt
    from repro.library import build_library
    from repro.netlist import generate_design
    from repro.placement import place_design
    from repro.tech import CellArchitecture, make_tech

    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("m0", tech, lib, scale=0.01, seed=2)
    place_design(design, seed=1)
    params = OptParams.for_arch(tech.arch, time_limit=2.0)
    telemetry = RunTelemetry(executor="serial", jobs=1)
    cache = WindowSolveCache()
    snapshot = {
        name: (inst.x, inst.y, inst.orientation)
        for name, inst in design.instances.items()
    }
    for pass_label in ("move[u0.i0]", "move[u0.i1]"):
        # Restore the pre-pass placement so the second pass re-solves
        # byte-identical windows — guaranteed cache hits.
        for name, (x, y, orient) in snapshot.items():
            inst = design.instances[name]
            inst.x, inst.y, inst.orientation = x, y, orient
        dist_opt(
            design, params, tx=0, ty=0, bw=1250, bh=1080, lx=2, ly=1,
            allow_flip=False, telemetry=telemetry,
            pass_label=pass_label, presolve=True, cache=cache,
        )
    telemetry.wall_seconds = 1.0

    path = telemetry.save(tmp_path / "telemetry.json")
    doc = json.loads(path.read_text())

    assert doc["schema"] == "repro.runtime.telemetry/v4"
    assert doc["schema"] == TELEMETRY_SCHEMA
    # v4 observability sections: counters rendered from the per-run
    # registry; trace null because no tracer was active.
    assert doc["trace"] is None
    counters = doc["counters"]
    windows_by_status = counters["repro_run_windows_total"]
    assert sum(windows_by_status.values()) == len(
        doc["windows_detail"]
    )
    assert counters["repro_run_passes_total"] == len(doc["passes"])
    # v3 clean-skip visibility: present per pass and in the summary
    # (zero here — no DirtyTracker was wired into these passes).
    assert all("windows_skipped_clean" in p for p in doc["passes"])
    assert doc["windows"]["skipped_clean"] == 0
    # v2 presolve split: present run-wide, per pass, and per window.
    assert doc["seconds"]["presolve"] >= 0.0
    assert all("presolve_seconds" in p for p in doc["passes"])
    assert all(
        "presolve_seconds" in w for w in doc["windows_detail"]
    )
    # v2 cache section: the identical second pass hits the cache.
    assert doc["cache"]["hits"] == cache.hits
    assert doc["cache"]["misses"] == cache.misses
    assert doc["cache"]["hits"] > 0
    assert doc["cache"]["hit_rate"] == pytest.approx(
        cache.hits / (cache.hits + cache.misses)
    )
    assert doc["windows"]["cached"] == cache.hits
    # Round-trip: loading loses nothing the summary carries.
    assert doc == json.loads(json.dumps(telemetry.summary()))


def test_speedup_none_when_nothing_ran():
    summary = RunTelemetry().summary()
    assert summary["speedup"] == {"measured": None, "modeled": None}
    assert summary["windows"]["total"] == 0


def test_distopt_records_match_result_counters():
    from repro.core import OptParams
    from repro.core.distopt import dist_opt
    from repro.library import build_library
    from repro.netlist import generate_design
    from repro.placement import place_design
    from repro.tech import CellArchitecture, make_tech

    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("m0", tech, lib, scale=0.01, seed=2)
    place_design(design, seed=1)
    params = OptParams.for_arch(tech.arch, time_limit=2.0)
    telemetry = RunTelemetry()
    result = dist_opt(
        design, params, tx=0, ty=0, bw=1250, bh=1080, lx=2, ly=1,
        allow_flip=False, executor=SerialExecutor(),
        telemetry=telemetry,
    )
    assert len(telemetry.records) == result.windows_built
    by_status: dict[str, int] = {}
    for record in telemetry.records:
        by_status[record.status] = by_status.get(record.status, 0) + 1
    assert by_status.get("applied", 0) == result.windows_applied
    assert by_status.get("reverted", 0) == result.windows_reverted
    assert by_status.get("timed_out", 0) == result.windows_timed_out
    assert len(telemetry.passes) == 1
    assert telemetry.passes[0]["windows"] == result.windows_built
