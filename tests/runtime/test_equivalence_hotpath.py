"""Behaviour-preservation of the window-solve hot path.

The PR's acceptance bar: with presolve and the cross-pass window cache
enabled, a full run on a fixed seed produces a placement byte-identical
to the run with both disabled.  Equivalence holds at ``mip_gap=0`` —
the formulation's deterministic tie-break makes the window optimum a
property of the model, so any exact solve path must select it.  (At a
nonzero gap HiGHS may legally stop at *different* within-gap incumbents
depending on the search path, which is why these tests pin the gap.)
"""

import pytest

from repro.core import OptParams, ParamSet
from repro.core.distopt import dist_opt
from repro.core.vm1opt import vm1_opt
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.runtime import RunTelemetry
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)

EXACT = dict(mip_gap=0.0, time_limit=30.0)


def fresh_design():
    design = generate_design("aes", TECH, LIB, scale=0.015, seed=3)
    place_design(design, seed=1)
    return design


def one_pass(*, presolve, cache=None):
    design = fresh_design()
    params = OptParams.for_arch(TECH.arch, **EXACT)
    result = dist_opt(
        design, params, tx=0, ty=0, bw=1250, bh=1080, lx=3, ly=1,
        allow_flip=False, presolve=presolve, cache=cache,
    )
    return design.placement_snapshot(), result


@pytest.fixture(scope="module")
def plain_pass():
    return one_pass(presolve=False)


def test_presolve_is_byte_identical(plain_pass):
    plain_snapshot, plain_result = plain_pass
    fast_snapshot, fast_result = one_pass(presolve=True)
    assert fast_snapshot == plain_snapshot
    assert fast_result.objective == plain_result.objective
    assert fast_result.moved_cells == plain_result.moved_cells
    assert fast_result.windows_failed == 0
    assert fast_result.presolve_seconds > 0.0
    # The plain pass never entered the presolve path.
    assert plain_result.presolve_seconds == 0.0


def test_full_run_with_hot_path_is_byte_identical():
    """vm1_opt with presolve + cache == vm1_opt with neither.

    ``enable_shift=False`` keeps the window grid fixed across
    iterations and ``theta`` is small enough to run the loop into its
    converged tail — the regime where the cache provably engages (a
    re-pass over fixpoint windows with unchanged content).  With the
    default alternating grid shift, keys repeat only every other
    iteration and this tiny design churns everywhere, so hits are not
    deterministic.
    """
    params = OptParams.for_arch(
        TECH.arch,
        sequence=(ParamSet.square(1.25, 2, 1),),
        theta=1e-4,
        **EXACT,
    )

    design_a = fresh_design()
    baseline = vm1_opt(
        design_a, params, presolve=False, window_cache=False,
        enable_shift=False, dirty_tracking=False,
    )
    snapshot_a = design_a.placement_snapshot()

    # Dirty tracking off so the *cache* is the mechanism under test:
    # with it on, fixpoint windows are skipped as clean before the
    # cache is ever probed (tests/core/test_dirty.py covers that path).
    design_b = fresh_design()
    telemetry = RunTelemetry()
    fast = vm1_opt(
        design_b, params, presolve=True, window_cache=True,
        enable_shift=False, telemetry=telemetry, dirty_tracking=False,
    )
    snapshot_b = design_b.placement_snapshot()

    assert snapshot_a == snapshot_b
    assert fast.final_objective == baseline.final_objective
    assert fast.iterations == baseline.iterations
    assert fast.windows_failed == 0

    # The cache must actually engage: passes >= 2 revisit windows that
    # reached a fixpoint in pass 1 with unchanged content.
    assert fast.windows_cached > 0
    summary = telemetry.summary()
    assert summary["cache"]["hits"] == fast.windows_cached
    assert summary["cache"]["hit_rate"] > 0.0
    assert summary["windows"]["cached"] == fast.windows_cached
    # At least one pass after the first reports nonzero hits.
    assert any(p["cache_hits"] > 0 for p in telemetry.passes[1:])


def test_converged_pass_is_fully_cached():
    """Once repeated identical passes reach a fixpoint (no cell
    moves), the next pass is answered entirely from the cache — zero
    builds, zero solves, placement untouched."""
    from repro.core.windowcache import WindowSolveCache

    cache = WindowSolveCache()
    design = fresh_design()
    params = OptParams.for_arch(TECH.arch, **EXACT)
    kwargs = dict(
        tx=0, ty=0, bw=1250, bh=1080, lx=3, ly=1, allow_flip=False,
        presolve=True, cache=cache,
    )
    first = dist_opt(design, params, **kwargs)
    assert first.windows_cached == 0  # cold cache

    for _ in range(10):  # identical passes converge quickly
        converged = dist_opt(design, params, **kwargs)
        if converged.moved_cells == 0:
            break
    assert converged.moved_cells == 0

    snap_at_fixpoint = design.placement_snapshot()
    extra = dist_opt(design, params, **kwargs)
    assert extra.windows_built == 0
    assert extra.windows_cached == converged.windows_built + (
        converged.windows_cached
    )
    assert extra.moved_cells == 0
    assert design.placement_snapshot() == snap_at_fixpoint
    assert cache.hits >= extra.windows_cached
    assert cache.hit_rate > 0.0
