"""Shared sparse extraction: Model -> arrays, both solver views."""

import numpy as np
import pytest

from repro.milp import LinExpr, Model
from repro.milp.extract import extract


def mixed_model():
    m = Model("mixed")
    x = m.add_binary("x")
    y = m.add_var("y", lb=0, ub=4, integer=True)
    z = m.add_continuous("z", -1, 3)
    m.add_constraint((2 * x + y) <= 5)          # LE
    m.add_constraint((y - z) >= 1)              # GE
    m.add_constraint((x + y + z).equals(3))     # EQ
    m.minimize(3 * x - y + 0.5 * z)
    return m, (x, y, z)


def test_extract_vectors():
    m, (x, y, z) = mixed_model()
    arrays = extract(m)
    assert arrays.n == 3
    assert arrays.c == pytest.approx([3.0, -1.0, 0.5])
    assert list(arrays.integrality) == [1, 1, 0]
    assert arrays.lb == pytest.approx([0.0, 0.0, -1.0])
    assert arrays.ub == pytest.approx([1.0, 4.0, 3.0])


def test_extract_range_form():
    m, _ = mixed_model()
    arrays = extract(m)
    dense = arrays.a.toarray()
    assert np.allclose(
        dense, [[2, 1, 0], [0, 1, -1], [1, 1, 1]]
    )
    assert arrays.lo == pytest.approx([-np.inf, 1.0, 3.0])
    assert arrays.hi == pytest.approx([5.0, np.inf, 3.0])


def test_inequality_form_negates_ge_rows():
    m, _ = mixed_model()
    a_ub, b_ub, a_eq, b_eq = extract(m).inequality_form()
    # LE row kept as-is, GE row negated into LE form.
    assert np.allclose(a_ub.toarray(), [[2, 1, 0], [0, -1, 1]])
    assert b_ub == pytest.approx([5.0, -1.0])
    assert np.allclose(a_eq.toarray(), [[1, 1, 1]])
    assert b_eq == pytest.approx([3.0])


def test_inequality_form_is_sparse():
    m, _ = mixed_model()
    a_ub, _, a_eq, _ = extract(m).inequality_form()
    assert a_ub.format == "csr"
    assert a_eq.format == "csr"


def test_extract_unconstrained_model():
    m = Model("free")
    x = m.add_binary("x")
    m.minimize(-1.0 * x)
    arrays = extract(m)
    assert arrays.a is None
    assert arrays.inequality_form() == (None, None, None, None)


def test_inequality_form_single_sense():
    m = Model("le-only")
    x = m.add_continuous("x", 0, 10)
    m.add_constraint(LinExpr.of(x) <= 4)
    a_ub, b_ub, a_eq, b_eq = extract(m).inequality_form()
    assert a_ub.shape == (1, 1)
    assert b_ub == pytest.approx([4.0])
    assert a_eq is None and b_eq is None
