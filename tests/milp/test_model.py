"""Tests for the MILP modeling layer."""

from repro.milp import LinExpr, Model, Sense


def test_var_creation_kinds():
    m = Model()
    b = m.add_binary("b")
    c = m.add_continuous("c", -5, 5)
    assert b.is_integer and b.lb == 0 and b.ub == 1
    assert not c.is_integer and c.lb == -5 and c.ub == 5
    assert m.num_binaries == 1


def test_expr_arithmetic():
    m = Model()
    x, y = m.add_continuous("x"), m.add_continuous("y")
    e = 2 * x + 3 * y + 4 - x
    assert e.coefs[x.index] == 1.0
    assert e.coefs[y.index] == 3.0
    assert e.const == 4.0
    e2 = (x - y) * 2.0
    assert e2.coefs[x.index] == 2.0 and e2.coefs[y.index] == -2.0
    e3 = 10 - x
    assert e3.coefs[x.index] == -1.0 and e3.const == 10.0
    e4 = -(x + 1)
    assert e4.coefs[x.index] == -1.0 and e4.const == -1.0


def test_total():
    m = Model()
    xs = [m.add_binary(f"x{i}") for i in range(4)]
    e = LinExpr.total(2 * x for x in xs)
    assert all(e.coefs[x.index] == 2.0 for x in xs)


def test_arithmetic_is_pure():
    m = Model()
    x = m.add_continuous("x")
    base = x + 1
    _derived = base + 5
    assert base.const == 1.0  # base untouched


def test_constraint_folding():
    m = Model()
    x, y = m.add_continuous("x"), m.add_continuous("y")
    con = (2 * x + 3 <= y + 10)
    assert con.sense is Sense.LE
    assert con.coefs[x.index] == 2.0
    assert con.coefs[y.index] == -1.0
    assert con.rhs == 7.0


def test_equality_constraint():
    m = Model()
    x = m.add_continuous("x")
    con = (x + 2).equals(5)
    assert con.sense is Sense.EQ
    assert con.rhs == 3.0


def test_zero_coefficients_dropped():
    m = Model()
    x, y = m.add_continuous("x"), m.add_continuous("y")
    con = (x + y - y <= 3)
    assert y.index not in con.coefs


def test_expr_value():
    m = Model()
    x, y = m.add_continuous("x"), m.add_continuous("y")
    e = 2 * x + 3 * y + 1
    assert e.value({x.index: 2.0, y.index: 1.0}) == 8.0
    assert e.value({}) == 1.0  # absent variables read as 0


def test_var_comparison_builds_constraints():
    m = Model()
    x = m.add_continuous("x")
    le = x <= 4
    ge = x >= 1
    assert le.sense is Sense.LE and le.rhs == 4.0
    assert ge.sense is Sense.GE and ge.rhs == 1.0


def test_model_stats():
    m = Model("demo")
    m.add_binary("b")
    m.add_continuous("c")
    m.add_constraint(m.vars[0] + m.vars[1] <= 1)
    text = m.stats()
    assert "demo" in text and "2 vars" in text and "1 constraints" in text
