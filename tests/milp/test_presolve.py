"""Presolve reductions: soundness on toy models and real windows.

The contract under test (DESIGN.md §"MILP presolve"): solving the
reduced model and lifting the solution gives the *same optimum* as
solving the original model, with the original objective value.
"""

import pytest

from repro.milp import (
    BranchBoundBackend,
    HighsBackend,
    LinExpr,
    Model,
    SolveStatus,
)
from repro.milp.presolve import (
    NATIVE_PRESOLVE_BINARY_THRESHOLD,
    presolve,
    recommend_native_presolve,
)


def exactly_one(model, vars_):
    model.add_constraint(LinExpr.total(vars_).equals(1))


def test_gub_groups_detected():
    m = Model()
    lams = [m.add_binary(f"l{i}") for i in range(3)]
    exactly_one(m, lams)
    m.minimize(LinExpr.total(i * v for i, v in enumerate(lams)))
    result = presolve(m)
    assert result.stats.gub_groups == 1
    assert result.stats.vars_fixed == 0


def test_size_one_gub_fixes_variable():
    m = Model()
    lam = m.add_binary("l0")
    extra = m.add_binary("e")
    exactly_one(m, [lam])
    m.minimize(5 * lam + extra)
    result = presolve(m)
    assert result.fixed == {lam.index: 1.0}
    assert result.stats.vars_fixed == 1
    # The exactly-one row folded into the fixing and is gone.
    assert result.stats.rows_out == 0
    sol = HighsBackend().solve(result.model)
    lifted = result.lift(sol)
    assert lifted.value(lam) == 1.0
    assert lifted.objective == pytest.approx(5.0)


def test_singleton_rows_become_bounds():
    m = Model()
    x = m.add_continuous("x", 0, 100)
    y = m.add_var("y", lb=0, ub=9, integer=True)
    m.add_constraint(2 * x <= 10)
    m.add_constraint(LinExpr.of(y) >= 2.5)
    m.minimize(x + y)
    result = presolve(m)
    assert result.stats.rows_singleton == 2
    assert result.stats.rows_out == 0
    xr = result.model.vars[x.index]
    yr = result.model.vars[y.index]
    assert xr.ub == pytest.approx(5.0)
    assert yr.lb == 3  # integer rounding of 2.5


def test_redundant_row_removed_gub_aware():
    m = Model()
    lams = [m.add_binary(f"l{i}") for i in range(3)]
    exactly_one(m, lams)
    # Exactly one lambda is 1, so the sum can never exceed 1 — a
    # per-variable interval analysis (max activity 3) would keep this.
    m.add_constraint(LinExpr.total(lams) <= 2)
    m.minimize(LinExpr.total(i * v for i, v in enumerate(lams)))
    result = presolve(m)
    assert result.stats.rows_redundant == 1
    assert result.stats.rows_out == 1  # the GUB row itself


def test_duplicate_rows_removed():
    m = Model()
    x = m.add_binary("x")
    y = m.add_binary("y")
    m.add_constraint(x + y <= 1)
    m.add_constraint(x + y <= 1)
    m.minimize(-1 * x - 1 * y)
    result = presolve(m)
    assert result.stats.rows_duplicate == 1
    assert result.stats.rows_out == 1


def test_big_m_coefficient_tightened():
    # d=0 forces x <= 2; d=1 relaxes to x <= 2 + M with M=1000 far
    # beyond x's range.  The smallest sound M is ub(x) - 2 = 8.
    m = Model()
    x = m.add_continuous("x", 0, 10)
    d = m.add_binary("d")
    m.add_constraint(x - 1000 * d <= 2)
    m.minimize(LinExpr.of(d))
    result = presolve(m)
    assert result.stats.coefficients_tightened == 1
    (row,) = result.model.constraints
    assert row.coefs[d.index] == pytest.approx(-8.0)
    # Same feasible set on both branches: d=0 -> x<=2, d=1 -> x<=10.


def test_bound_tightening_from_rows():
    # z <= x + 3 with binary x bounds the free z at 4 — the same
    # mechanism that bounds the HPWL min/max variables by the pins'
    # attainable coordinates.
    m = Model()
    x = m.add_binary("x")
    z = m.add_continuous("z")  # free upper bound
    m.add_constraint(z - x <= 3)
    m.minimize(-1 * z)
    result = presolve(m)
    zr = result.model.vars[z.index]
    assert zr.ub == pytest.approx(4.0)
    assert result.stats.bounds_tightened >= 1


@pytest.mark.parametrize("backend_cls", [HighsBackend, BranchBoundBackend])
def test_lift_recovers_original_optimum(backend_cls):
    """Reduced-and-lifted == original, objective and all."""
    m = Model()
    lams = [m.add_binary(f"l{i}") for i in range(4)]
    other = [m.add_binary(f"o{i}") for i in range(2)]
    z = m.add_continuous("z", 0, 50)
    exactly_one(m, lams)
    exactly_one(m, other)
    m.add_constraint(
        LinExpr.total((i + 1) * v for i, v in enumerate(lams)) + z <= 40
    )
    m.add_constraint(z - 500 * other[0] <= 10)
    m.minimize(
        LinExpr.total(3 * i * v for i, v in enumerate(lams))
        - z
        + 2 * other[1]
    )
    baseline = backend_cls().solve(m)
    result = presolve(m)
    lifted = result.lift(backend_cls().solve(result.model))
    assert baseline.status is SolveStatus.OPTIMAL
    assert lifted.status is SolveStatus.OPTIMAL
    assert lifted.objective == pytest.approx(baseline.objective)
    # Lifted values satisfy every original constraint.
    for con in m.constraints:
        activity = sum(
            coef * lifted.values[idx]
            for idx, coef in con.coefs.items()
        )
        if con.sense.name == "LE":
            assert activity <= con.rhs + 1e-6
        elif con.sense.name == "GE":
            assert activity >= con.rhs - 1e-6
        else:
            assert activity == pytest.approx(con.rhs)


def test_presolve_preserves_window_optimum():
    """End-to-end on a real window MILP: same objective, same lambdas."""
    from repro.core import OptParams
    from repro.core.formulation import build_window_model
    from repro.core.window import partition
    from repro.library import build_library
    from repro.netlist import generate_design
    from repro.placement import place_design
    from repro.tech import CellArchitecture, make_tech

    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("m0", tech, lib, scale=0.01, seed=2)
    place_design(design, seed=1)
    params = OptParams.for_arch(tech.arch, mip_gap=0.0)
    windows = partition(design, 0, 0, 1250, 1080)
    solver = HighsBackend(time_limit=30.0, mip_rel_gap=0.0)
    tested = 0
    for window in windows:
        problem = build_window_model(
            design, window, params, lx=2, ly=1, allow_flip=False
        )
        if problem is None:
            continue
        plain = solver.solve(problem.model)
        result = presolve(problem.model)
        lifted = result.lift(solver.solve(result.model))
        assert lifted.status is plain.status
        if plain.status is SolveStatus.OPTIMAL:
            assert lifted.objective == pytest.approx(plain.objective)
        tested += 1
        if tested >= 4:
            break
    assert tested > 0


def test_reduced_model_marked_and_stats_consistent():
    m = Model()
    lams = [m.add_binary(f"l{i}") for i in range(3)]
    exactly_one(m, lams)
    m.minimize(LinExpr.total(i * v for i, v in enumerate(lams)))
    result = presolve(m)
    assert getattr(result.model, "presolved", False) is True
    assert getattr(m, "presolved", False) is False
    assert result.stats.rows_in == 1
    assert result.stats.rows_dropped == (
        result.stats.rows_in - result.stats.rows_out
    )


def test_warm_start_carried_through():
    m = Model()
    x = m.add_binary("x")
    m.minimize(-1 * x)
    m.warm_start = {x.index: 1.0}
    result = presolve(m)
    assert result.model.warm_start == {x.index: 1.0}


def test_native_presolve_recommendation():
    small = Model()
    for i in range(3):
        small.add_binary(f"x{i}")
    assert recommend_native_presolve(small) is True
    big = Model()
    for i in range(NATIVE_PRESOLVE_BINARY_THRESHOLD):
        big.add_binary(f"x{i}")
    assert recommend_native_presolve(big) is False
