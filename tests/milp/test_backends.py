"""Backend correctness: HiGHS vs the pure-Python branch & bound.

The two independent solvers must agree on optimal objective values —
the strongest cheap check we have that the CPLEX-substitute stack is
sound.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.milp import (
    BranchBoundBackend,
    HighsBackend,
    LinExpr,
    Model,
    SolveStatus,
)


def knapsack(values, weights, cap):
    m = Model("knapsack")
    xs = [m.add_binary(f"x{i}") for i in range(len(values))]
    m.add_constraint(
        LinExpr.total(w * x for w, x in zip(weights, xs)) <= cap
    )
    m.minimize(LinExpr.total(-v * x for v, x in zip(values, xs)))
    return m


def test_trivial_empty_model():
    m = Model()
    for backend in (HighsBackend(), BranchBoundBackend()):
        sol = backend.solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == 0.0


def test_constant_objective():
    m = Model()
    m.minimize(LinExpr.of(7.5))
    assert HighsBackend().solve(m).objective == 7.5


def test_knapsack_known_optimum():
    m = knapsack([5, 7, 3, 9], [2, 3, 1, 4], 5)
    for backend in (HighsBackend(), BranchBoundBackend()):
        sol = backend.solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(-12.0)  # items 1+3 or 0+3


def test_infeasible_detected():
    m = Model()
    x = m.add_binary("x")
    m.add_constraint(LinExpr.of(x) >= 0.4)
    m.add_constraint(LinExpr.of(x) <= 0.6)
    for backend in (HighsBackend(), BranchBoundBackend()):
        assert backend.solve(m).status is SolveStatus.INFEASIBLE


def test_equality_with_integers():
    m = Model()
    x = m.add_var("x", lb=0, ub=10, integer=True)
    y = m.add_continuous("y", 0, 10)
    m.add_constraint((2 * x + y).equals(7))
    m.minimize(y)
    sol = HighsBackend().solve(m)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.value(x) == 3
    assert sol.value(y) == pytest.approx(1.0)


def test_integer_values_are_integral():
    m = knapsack([3, 1, 4, 1, 5], [1, 2, 3, 4, 5], 9)
    sol = HighsBackend().solve(m)
    for var in m.vars:
        assert sol.value(var) == int(sol.value(var))


def test_solution_helpers():
    m = Model()
    x = m.add_binary("x")
    m.minimize(-1.0 * x)
    sol = HighsBackend().solve(m)
    assert sol.is_one(x)
    assert sol.value_of(2 * x + 1) == pytest.approx(3.0)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**6))
def test_backends_agree_on_random_models(seed):
    """Property: both solvers find the same optimal objective on
    random small mixed binary/continuous models."""
    rng = np.random.RandomState(seed)
    n_bin = rng.randint(2, 7)
    n_cont = rng.randint(0, 3)
    m = Model(f"rand{seed}")
    xs = [m.add_binary(f"b{i}") for i in range(n_bin)]
    xs += [m.add_continuous(f"c{i}", 0, 5) for i in range(n_cont)]
    for _ in range(rng.randint(1, 5)):
        coefs = rng.randint(-4, 5, size=len(xs))
        rhs = float(rng.randint(0, 8))
        expr = LinExpr.total(
            int(c) * x for c, x in zip(coefs, xs) if c
        )
        m.add_constraint(expr <= rhs)
    obj_coefs = rng.randint(-5, 6, size=len(xs))
    m.minimize(
        LinExpr.total(int(c) * x for c, x in zip(obj_coefs, xs) if c)
    )
    s1 = HighsBackend().solve(m)
    s2 = BranchBoundBackend(time_limit=20).solve(m)
    assert s1.status == s2.status
    if s1.status is SolveStatus.OPTIMAL:
        # abs=1e-5: HiGHS reports objectives through its feasibility
        # tolerance, so integer-optimal values can be off by ~1e-6
        # (observed: -3.000001 vs the exact -3.0 on seed=7).
        assert s1.objective == pytest.approx(s2.objective, abs=1e-5)


def test_branch_bound_node_limit_returns_incumbent_status():
    m = knapsack(list(range(1, 13)), list(range(1, 13)), 20)
    sol = BranchBoundBackend(node_limit=1).solve(m)
    assert sol.status in (SolveStatus.FEASIBLE, SolveStatus.OPTIMAL)


def test_highs_unbounded():
    m = Model()
    x = m.add_continuous("x")
    m.minimize(x)
    status = HighsBackend().solve(m).status
    assert status in (SolveStatus.UNBOUNDED, SolveStatus.ERROR)


def test_error_status_retries_without_native_presolve():
    """Regression (hypothesis seed 13374): HiGHS' own presolve
    reports Status 4 ("Solve error") on this small well-posed mixed
    model even though it solves cleanly with presolve off.  The
    backend must retry and return the true optimum."""
    m = Model("rand13374")
    b0 = m.add_binary("b0")
    b1 = m.add_binary("b1")
    c0 = m.add_continuous("c0", 0, 5)
    c1 = m.add_continuous("c1", 0, 5)
    m.add_constraint((-2 * b0 - 4 * b1 + c0 + 2 * c1) <= 2.0)
    m.add_constraint((-3 * b1 - c0 + 3 * c1) <= 2.0)
    m.minimize(4 * b0 + 4 * b1 + 3 * c0 - 3 * c1)
    sol = HighsBackend().solve(m)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(-2.0)
