"""Tests for Solution/SolveStatus helpers."""

import math

import pytest

from repro.milp import LinExpr, Model, Solution, SolveStatus


def test_status_has_solution():
    assert SolveStatus.OPTIMAL.has_solution
    assert SolveStatus.FEASIBLE.has_solution
    assert not SolveStatus.INFEASIBLE.has_solution
    assert not SolveStatus.UNBOUNDED.has_solution
    assert not SolveStatus.ERROR.has_solution


def test_value_defaults_to_zero():
    m = Model()
    x = m.add_binary("x")
    sol = Solution(status=SolveStatus.OPTIMAL)
    assert sol.value(x) == 0.0
    assert not sol.is_one(x)


def test_is_one_tolerates_roundoff():
    m = Model()
    x = m.add_binary("x")
    sol = Solution(
        status=SolveStatus.OPTIMAL, values={x.index: 0.999999}
    )
    assert sol.is_one(x)
    sol_low = Solution(
        status=SolveStatus.OPTIMAL, values={x.index: 0.4999}
    )
    assert not sol_low.is_one(x)


def test_value_of_expression():
    m = Model()
    x = m.add_continuous("x")
    y = m.add_continuous("y")
    sol = Solution(
        status=SolveStatus.OPTIMAL,
        values={x.index: 2.0, y.index: 3.0},
    )
    assert sol.value_of(2 * x + y + 1) == pytest.approx(8.0)
    assert sol.value_of(x) == 2.0


def test_default_objective_is_nan():
    sol = Solution(status=SolveStatus.INFEASIBLE)
    assert math.isnan(sol.objective)
