"""Tests for RouteMetrics."""

import pytest

from repro.routing import RouteMetrics


def test_defaults():
    m = RouteMetrics()
    assert m.routed_wirelength == 0
    assert m.num_dm1 == 0
    assert m.net_lengths == {}


def test_as_row_conversion():
    m = RouteMetrics(
        routed_wirelength=2_500_000,
        m1_wirelength=120_000,
        num_dm1=42,
        num_via12=900,
        num_drvs=3,
        hpwl=2_000_000,
    )
    row = m.as_row()
    assert row["RWL (um)"] == pytest.approx(2500.0)
    assert row["M1 WL (um)"] == pytest.approx(120.0)
    assert row["#dM1"] == 42
    assert row["#via12"] == 900
    assert row["#DRVs"] == 3
    assert row["HPWL (um)"] == pytest.approx(2000.0)


def test_as_row_custom_dbu():
    m = RouteMetrics(routed_wirelength=200)
    assert m.as_row(dbu_per_micron=100)["RWL (um)"] == 2.0


def test_net_lengths_independent_instances():
    a = RouteMetrics()
    b = RouteMetrics()
    a.net_lengths["n"] = 5
    assert b.net_lengths == {}
