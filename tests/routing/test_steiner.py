"""Tests for the Steiner topology decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.library import build_library
from repro.netlist import Design, generate_design
from repro.placement import place_design
from repro.routing import DetailedRouter, RouterConfig
from repro.routing.steiner import (
    _mst_length_and_edges,
    decompose_steiner,
    steiner_points,
)
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


def test_cross_gets_a_steiner_point():
    """Four arms of a plus: one central Steiner point saves half the
    star length."""
    arms = [
        Point(0, 500), Point(1000, 500), Point(500, 0),
        Point(500, 1000),
    ]
    mst_len, _ = _mst_length_and_edges(arms)
    extra = steiner_points(arms)
    assert Point(500, 500) in extra
    new_len, _ = _mst_length_and_edges(arms + extra)
    assert new_len < mst_len


def test_collinear_points_gain_nothing():
    line = [Point(x, 0) for x in (0, 100, 250, 400)]
    assert steiner_points(line) == []


def test_two_points_no_steiner():
    assert steiner_points([Point(0, 0), Point(5, 5)]) == []


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 3000), st.integers(0, 3000)),
        min_size=3,
        max_size=7,
        unique=True,
    )
)
def test_steiner_never_longer_than_mst(coords):
    points = [Point(x, y) for x, y in coords]
    mst_len, _ = _mst_length_and_edges(points)
    extra = steiner_points(points)
    new_len, edges = _mst_length_and_edges(points + extra)
    assert new_len <= mst_len
    assert len(edges) == len(points) + len(extra) - 1


def test_decompose_steiner_spans_net():
    die = Rect(0, 0, 100 * TECH.site_width, 6 * TECH.row_height)
    d = Design("t", TECH, die)
    d.add_net("n")
    for i, (col, row) in enumerate(
        ((0, 0), (60, 0), (30, 4), (30, 2))
    ):
        d.add_instance(f"u{i}", LIB.macro("INV_X1_RVT"))
        d.place(f"u{i}", column=col, row=row)
        d.connect("n", f"u{i}", "ZN" if i == 0 else "A")
    subnets = decompose_steiner(d, d.nets["n"])
    # Spanning: union-find over endpoints connects all 4 pins.
    parent = {}

    def find(x):
        while parent.setdefault(x, x) != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for s in subnets:
        parent[find(s.a.point)] = find(s.b.point)
    pin_points = {
        d.instances[f"u{i}"].pin_position("ZN" if i == 0 else "A")
        for i in range(4)
    }
    assert len({find(p) for p in pin_points}) == 1


def test_router_steiner_topology_not_longer():
    d = generate_design("aes", TECH, LIB, scale=0.02, seed=5)
    place_design(d, seed=1)
    mst = DetailedRouter(d, RouterConfig()).route()
    steiner = DetailedRouter(
        d, RouterConfig(topology="steiner")
    ).route()
    # Steiner trunk sharing shortens total routed wirelength.
    assert steiner.routed_wirelength <= mst.routed_wirelength
    # Pin-based metrics are unaffected by trunk junctions.
    assert steiner.num_dm1 >= 0
    assert steiner.num_drvs <= mst.num_drvs + 5
