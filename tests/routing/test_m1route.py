"""Tests for stage-1 direct/jogged M1 routing — the dM1 semantics."""

import pytest

from repro.geometry import Rect
from repro.library import build_library
from repro.netlist import Design
from repro.routing.m1book import build_blockage_book
from repro.routing.m1route import M1Stage
from repro.routing.subnets import decompose
from repro.tech import CellArchitecture, make_tech


def build(arch, placements, gamma=None, delta=36, jog=4):
    """Design with INVs wired into one net: ZN of u0 to A of u1."""
    tech = make_tech(arch)
    lib = build_library(tech)
    die = Rect(0, 0, 60 * tech.site_width, 6 * tech.row_height)
    d = Design("t", tech, die)
    for i, (col, row, flip) in enumerate(placements):
        d.add_instance(f"u{i}", lib.macro("INV_X1_RVT"))
        d.place(f"u{i}", column=col, row=row, flipped=flip)
    d.add_net("n")
    d.connect("n", "u0", "ZN")
    d.connect("n", "u1", "A")
    stage = M1Stage(
        d,
        build_blockage_book(d),
        gamma=gamma if gamma is not None else arch.default_gamma,
        delta=delta,
        jog_max_sites=jog,
    )
    subnet = decompose(d, d.nets["n"])[0]
    return d, stage, subnet


# INV_X1: A at interior column 1, ZN at column 2 (width 4).
def test_closedm1_direct_when_aligned():
    # u0 ZN at column col0+2; u1 A at column col1+1: align with
    # col0=10 -> track 12, col1=11 -> track 12.
    d, stage, subnet = build(
        CellArchitecture.CLOSED_M1, [(10, 0, False), (11, 1, False)]
    )
    route = stage.try_route(subnet)
    assert route is not None and route.direct
    assert route.num_via12 == 0
    assert route.m1_length == abs(subnet.a.point.y - subnet.b.point.y)


def test_closedm1_jog_when_misaligned():
    d, stage, subnet = build(
        CellArchitecture.CLOSED_M1, [(10, 0, False), (13, 1, False)]
    )
    route = stage.try_route(subnet)
    assert route is not None and not route.direct
    assert route.num_via12 == 2


def test_closedm1_rejects_far_pins():
    # Same x but 3 rows apart with gamma=1: no stage-1 route; the
    # x distance also exceeds the jog range horizontally? No - x is
    # aligned, so only the row span disqualifies it.
    d, stage, subnet = build(
        CellArchitecture.CLOSED_M1, [(10, 0, False), (11, 3, False)]
    )
    assert stage.try_route(subnet) is None


def test_closedm1_gamma2_crosses_free_row():
    """With gamma=2 a dM1 may cross an intervening row if the track
    is not blocked there."""
    d, stage, subnet = build(
        CellArchitecture.CLOSED_M1,
        [(10, 0, False), (11, 2, False)],
        gamma=2,
    )
    route = stage.try_route(subnet)
    assert route is not None and route.direct


def test_closedm1_gamma2_blocked_by_intervening_pin():
    """A cell in the intervening row whose pin stripe sits on the
    same track blocks the dM1."""
    # Track of interest: column 12.  Blocker INV at column 11 in row 1
    # has pins at columns 12, 13 and boundaries 11, 14.
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    die = Rect(0, 0, 60 * tech.site_width, 6 * tech.row_height)
    d = Design("t", tech, die)
    d.add_instance("u0", lib.macro("INV_X1_RVT"))
    d.place("u0", column=10, row=0)
    d.add_instance("u1", lib.macro("INV_X1_RVT"))
    d.place("u1", column=11, row=2)
    d.add_instance("blocker", lib.macro("INV_X1_RVT"))
    d.place("blocker", column=11, row=1)
    d.add_net("n")
    d.connect("n", "u0", "ZN")
    d.connect("n", "u1", "A")
    stage = M1Stage(
        d, build_blockage_book(d), gamma=2, delta=36, jog_max_sites=4
    )
    subnet = decompose(d, d.nets["n"])[0]
    route = stage.try_route(subnet)
    assert route is None or not route.direct


def test_flip_enables_alignment():
    """The optimizer's flip operation changes pin x and can align."""
    d, stage, subnet = build(
        CellArchitecture.CLOSED_M1, [(10, 0, False), (10, 1, False)]
    )
    assert stage.try_route(subnet).direct is False  # jog only
    d2, stage2, subnet2 = build(
        CellArchitecture.CLOSED_M1, [(10, 0, False), (10, 1, True)]
    )
    # Flipped INV (width 4): A moves from column 1 to column 2 -> ZN
    # of u0 (column 12) aligns with A of u1 (column 12).
    route = stage2.try_route(subnet2)
    assert route is not None and route.direct


def test_openm1_direct_when_overlapping():
    d, stage, subnet = build(
        CellArchitecture.OPEN_M1, [(10, 0, False), (10, 1, False)]
    )
    route = stage.try_route(subnet)
    assert route is not None and route.direct
    assert route.num_via12 == 0


def test_openm1_gamma_limits_span():
    d, stage, subnet = build(
        CellArchitecture.OPEN_M1,
        [(10, 0, False), (10, 5, False)],
    )
    route = stage.try_route(subnet)
    assert route is None or not route.direct


def test_openm1_requires_min_overlap():
    """delta larger than any possible overlap suppresses dM1."""
    d, stage, subnet = build(
        CellArchitecture.OPEN_M1,
        [(10, 0, False), (10, 1, False)],
        delta=10**6,
    )
    route = stage.try_route(subnet)
    assert route is None or not route.direct


def test_openm1_track_resource_is_consumed():
    """Two dM1 on the same overlap region must use different columns;
    when only one column exists, the second pair falls back."""
    tech = make_tech(CellArchitecture.OPEN_M1)
    lib = build_library(tech)
    die = Rect(0, 0, 60 * tech.site_width, 6 * tech.row_height)
    d = Design("t", tech, die)
    for i, (col, row) in enumerate(((10, 0), (10, 1), (10, 2))):
        d.add_instance(f"u{i}", lib.macro("INV_X1_RVT"))
        d.place(f"u{i}", column=col, row=row)
    d.add_net("n1")
    d.connect("n1", "u0", "ZN")
    d.connect("n1", "u1", "A")
    d.add_net("n2")
    d.connect("n2", "u1", "ZN")
    d.connect("n2", "u2", "A")
    stage = M1Stage(
        d, build_blockage_book(d), gamma=3, delta=36, jog_max_sites=4
    )
    s1 = decompose(d, d.nets["n1"])[0]
    s2 = decompose(d, d.nets["n2"])[0]
    r1 = stage.try_route(s1)
    r2 = stage.try_route(s2)
    assert r1 is not None and r1.direct
    # Overlapping y spans on a narrow overlap: either a different
    # column was found or the second route degraded.
    if r2 is not None and r2.direct:
        assert r2.m1_length >= 0  # both fit on distinct columns


def test_conventional_never_routes_m1():
    d, stage, subnet = build(
        CellArchitecture.CONV_12T, [(10, 0, False), (11, 1, False)]
    )
    assert stage.try_route(subnet) is None


def test_pad_terminals_not_m1_routed():
    from repro.geometry import Point

    d, stage, subnet = build(
        CellArchitecture.CLOSED_M1, [(10, 0, False), (11, 1, False)]
    )
    d.nets["n"].pads.append(Point(0, 0))
    subnets = decompose(d, d.nets["n"])
    pad_subnets = [
        s for s in subnets if not (s.a.is_pin and s.b.is_pin)
    ]
    for s in pad_subnets:
        assert stage.try_route(s) is None
