"""Tests for the M1 track booking resource."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.library import build_library
from repro.netlist import Design
from repro.routing.m1book import (
    M1TrackBook,
    PDN_STAPLE_PITCH,
    build_blockage_book,
)
from repro.tech import CellArchitecture, make_tech


def test_book_and_query():
    book = M1TrackBook()
    assert book.is_free(3, 0, 100)
    book.book(3, 0, 100)
    assert not book.is_free(3, 50, 60)
    assert not book.is_free(3, 100, 110)  # closed interval: touch
    assert book.is_free(3, 101, 200)
    assert book.is_free(4, 0, 100)  # other column untouched


def test_double_booking_rejected():
    book = M1TrackBook()
    book.book(0, 10, 20)
    with pytest.raises(ValueError):
        book.book(0, 15, 25)
    book.book(0, 21, 30)  # adjacent is fine


def test_booked_length():
    book = M1TrackBook()
    book.book(0, 0, 100)
    book.book(5, 50, 80)
    assert book.booked_length() == 130


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 500),
                  st.integers(1, 50)),
        max_size=25,
    )
)
def test_book_free_consistency(spans):
    """Property: is_free answers exactly when book would succeed."""
    book = M1TrackBook()
    for col, lo, length in spans:
        hi = lo + length
        free = book.is_free(col, lo, hi)
        if free:
            book.book(col, lo, hi)
        else:
            with pytest.raises(ValueError):
                book.book(col, lo, hi)


def _one_cell_design(arch):
    tech = make_tech(arch)
    lib = build_library(tech)
    die = Rect(0, 0, 40 * tech.site_width, 2 * tech.row_height)
    d = Design("t", tech, die)
    d.add_instance("u1", lib.macro("NAND2_X1_RVT"))
    d.place("u1", column=10, row=0)
    return d, lib


def test_closedm1_blockages_from_cells():
    d, _ = _one_cell_design(CellArchitecture.CLOSED_M1)
    book = build_blockage_book(d)
    inst = d.instances["u1"]
    for col in inst.m1_blocked_columns_abs(d.tech):
        assert not book.is_free(col, inst.y, inst.y + 10)
        # The row above the cell stays free.
        assert book.is_free(col, inst.y + inst.height, d.die.yhi)


def test_openm1_pdn_staples():
    d, _ = _one_cell_design(CellArchitecture.OPEN_M1)
    book = build_blockage_book(d)
    assert not book.is_free(0, 0, 10)
    assert not book.is_free(PDN_STAPLE_PITCH, 0, 10)
    assert book.is_free(1, 0, 10)  # cells leave M1 open


def test_conv12t_blocks_whole_cells():
    d, _ = _one_cell_design(CellArchitecture.CONV_12T)
    book = build_blockage_book(d)
    inst = d.instances["u1"]
    for col in range(10, 10 + inst.macro.width_sites):
        assert not book.is_free(col, inst.y, inst.y + 1)
