"""Tests for the SVG renderers."""

import pytest

from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.routing import DetailedRouter
from repro.tech import CellArchitecture, make_tech
from repro.viz import render_design_svg, render_routes_svg


@pytest.fixture(scope="module")
def routed():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    d = generate_design("aes", tech, lib, scale=0.01, seed=2)
    place_design(d, seed=1)
    router = DetailedRouter(d)
    router.route()
    return d, router


def test_design_svg_well_formed(routed):
    design, _ = routed
    svg = render_design_svg(design)
    assert svg.startswith("<svg")
    assert svg.rstrip().endswith("</svg>")
    # One rect per instance (plus background/rows).
    assert svg.count("<rect") >= len(design.instances)
    # Instance names appear as tooltips.
    any_name = sorted(design.instances)[0]
    assert any_name in svg


def test_design_svg_without_pins_is_smaller(routed):
    design, _ = routed
    with_pins = render_design_svg(design, show_pins=True)
    without = render_design_svg(design, show_pins=False)
    assert len(without) < len(with_pins)


def test_routes_svg(routed):
    design, router = routed
    svg = render_routes_svg(design, router)
    assert svg.startswith("<svg")
    # Stage-1 routes render as colored lines when present.
    m1_lines = svg.count("#2ca02c") + svg.count("#ff7f0e")
    assert m1_lines == len(router.last_m1_routes)


def test_routes_svg_requires_routed_router(routed):
    design, _ = routed
    fresh = DetailedRouter(design)
    with pytest.raises(ValueError):
        render_routes_svg(design, fresh)


def test_router_exposes_artifacts(routed):
    design, router = routed
    assert router.last_grid is not None
    total = len(router.last_m1_routes) + len(router.last_paths)
    assert total > 0
