"""Tests for the gcell grid and its search."""

import pytest

from repro.geometry import Point, Rect
from repro.library import build_library
from repro.netlist import Design
from repro.routing.gcell import GCellGrid, GridConfig
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


@pytest.fixture()
def grid():
    die = Rect(0, 0, 150 * TECH.site_width, 20 * TECH.row_height)
    design = Design("t", TECH, die)
    return GCellGrid(design, GridConfig())


def test_grid_dimensions(grid):
    assert grid.nx == 10  # 150 sites / 15 per gcell
    assert grid.ny == 10  # 20 rows / 2 per gcell
    assert grid.cap_h > 0 and grid.cap_v > 0


def test_m1_capacity_bonus_by_architecture():
    die = Rect(0, 0, 150 * 36, 20 * 270)
    closed = GCellGrid(Design("c", TECH, die), GridConfig())
    open_tech = make_tech(CellArchitecture.OPEN_M1)
    opened = GCellGrid(Design("o", open_tech, die), GridConfig())
    conv_tech = make_tech(CellArchitecture.CONV_12T)
    conv_die = Rect(0, 0, 150 * 36, 10 * 432)
    conv = GCellGrid(Design("v", conv_tech, conv_die), GridConfig())
    # OpenM1 frees the most M1 verticals, ClosedM1 some, conv none.
    assert opened.m1_vertical_share > closed.m1_vertical_share > 0
    assert opened.cap_v >= closed.cap_v > conv.cap_v


def test_conv12t_has_no_m1_share():
    conv = make_tech(CellArchitecture.CONV_12T)
    die = Rect(0, 0, 150 * 36, 10 * 432)
    grid = GCellGrid(Design("v", conv, die), GridConfig())
    assert grid.m1_vertical_share == 0.0


def test_cell_of_clamps(grid):
    assert grid.cell_of(Point(-50, -50)) == (0, 0)
    assert grid.cell_of(Point(10**7, 10**7)) == (grid.nx - 1, grid.ny - 1)


def test_l_paths():
    paths = GCellGrid.l_paths((0, 0), (3, 2))
    assert len(paths) == 2
    for path in paths:
        assert path[0] == (0, 0) and path[-1] == (3, 2)
        assert len(path) == 6  # 3 + 2 steps + start
        for (x0, y0), (x1, y1) in zip(path, path[1:]):
            assert abs(x0 - x1) + abs(y0 - y1) == 1


def test_l_paths_straight_and_trivial():
    assert GCellGrid.l_paths((2, 2), (2, 2)) == [[(2, 2)]]
    straight = GCellGrid.l_paths((0, 1), (3, 1))
    assert straight == [[(0, 1), (1, 1), (2, 1), (3, 1)]]


def test_route_commits_usage(grid):
    a = grid.center(0, 0)
    b = grid.center(4, 0)
    grid.route_subnet(a, b)
    assert grid.usage_h[0, :4].sum() == 4


def test_unroute_reverses(grid):
    a, b = grid.center(0, 0), grid.center(3, 3)
    path = grid.route_subnet(a, b)
    grid.unroute(path)
    assert grid.usage_h.sum() == 0
    assert grid.usage_v.sum() == 0


def test_congestion_diverts_routes(grid):
    """After saturating the straight corridor, new routes detour."""
    a, b = grid.center(0, 5), grid.center(9, 5)
    for _ in range(grid.cap_h + 2):
        grid.route_subnet(a, b)
    detoured = grid.route_subnet(a, b)
    uses_other_rows = any(y != 5 for _, y in detoured)
    assert uses_other_rows or grid.overflow_edges() > 0


def test_astar_finds_shortest_when_clear(grid):
    path = grid.astar((1, 1), (6, 4))
    assert path[0] == (1, 1) and path[-1] == (6, 4)
    assert len(path) == 1 + 5 + 3


def test_overflow_count(grid):
    a, b = grid.center(0, 0), grid.center(1, 0)
    for _ in range(grid.cap_h + 3):
        path = [(0, 0), (1, 0)]
        grid._apply(path, +1)
    assert grid.overflow_edges() == 3


def test_path_length_ideal_when_direct(grid):
    a = Point(100, 100)
    b = Point(3000, 700)
    path = grid.route_subnet(a, b)
    assert grid.path_length_dbu(path, a, b) == a.manhattan_distance(b)


def test_path_length_adds_detour(grid):
    a, b = grid.center(0, 0), grid.center(2, 0)
    detour = [(0, 0), (0, 1), (1, 1), (2, 1), (2, 0)]
    expected = a.manhattan_distance(b) + 2 * grid.pitch_y
    assert grid.path_length_dbu(detour, a, b) == expected


def test_vertical_length(grid):
    path = [(0, 0), (0, 1), (1, 1), (1, 2)]
    assert grid.vertical_length_dbu(path) == 2 * grid.pitch_y


def test_history_accumulates(grid):
    path = [(0, 0), (1, 0)]
    for _ in range(grid.cap_h + 2):
        grid._apply(path, +1)
    grid.add_history()
    assert grid.history_h[0, 0] > 0
    assert grid.history_h[0, 1] == 0
