"""End-to-end router tests."""

import pytest

from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.routing import DetailedRouter, RouterConfig
from repro.routing.gcell import GridConfig
from repro.tech import CellArchitecture, make_tech


@pytest.fixture(scope="module")
def routed():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("aes", tech, lib, scale=0.03, seed=2)
    place_design(design, seed=1)
    metrics = DetailedRouter(design).route()
    return design, metrics


def test_metrics_populated(routed):
    design, m = routed
    assert m.routed_wirelength > 0
    assert m.hpwl == design.total_hpwl()
    assert m.num_subnets > 0
    assert m.num_via12 > 0
    assert m.num_subnets == m.num_gcell_subnets + m.num_dm1 + m.num_jog_m1


def test_rwl_at_least_hpwl(routed):
    """Routed wirelength can never beat the HPWL lower bound by much
    (MST decomposition may slightly exceed; never fall below 95%)."""
    _, m = routed
    assert m.routed_wirelength >= 0.95 * m.hpwl


def test_net_lengths_sum_matches(routed):
    _, m = routed
    assert sum(m.net_lengths.values()) == m.routed_wirelength


def test_m1_wl_nonzero_for_closedm1(routed):
    _, m = routed
    assert m.m1_wirelength > 0


def test_router_determinism():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    d = generate_design("aes", tech, lib, scale=0.02, seed=5)
    place_design(d, seed=1)
    m1 = DetailedRouter(d).route()
    m2 = DetailedRouter(d).route()
    assert m1.routed_wirelength == m2.routed_wirelength
    assert m1.num_dm1 == m2.num_dm1
    assert m1.num_via12 == m2.num_via12
    assert m1.num_drvs == m2.num_drvs


def test_gamma_zero_disables_dm1():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    d = generate_design("aes", tech, lib, scale=0.02, seed=5)
    place_design(d, seed=1)
    m = DetailedRouter(d, RouterConfig(gamma=0, jog_max_sites=0)).route()
    assert m.num_dm1 == 0
    assert m.num_jog_m1 == 0


def test_tight_capacity_creates_drvs():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    d = generate_design("aes", tech, lib, scale=0.02, seed=5)
    place_design(d, seed=1)
    starved = RouterConfig(
        grid=GridConfig(derate=0.12, closedm1_m1_share=0.0)
    )
    normal = DetailedRouter(d).route()
    tight = DetailedRouter(d, starved).route()
    assert tight.num_drvs > normal.num_drvs


def test_openm1_more_initial_dm1_than_closedm1():
    """Overlap (OpenM1) happens by chance far more often than exact
    alignment (ClosedM1) — Table 2's init #dM1 contrast."""
    counts = {}
    for arch in (CellArchitecture.CLOSED_M1, CellArchitecture.OPEN_M1):
        tech = make_tech(arch)
        lib = build_library(tech)
        d = generate_design("aes", tech, lib, scale=0.04, seed=3)
        place_design(d, seed=1)
        counts[arch] = DetailedRouter(d).route().num_dm1
    assert counts[CellArchitecture.OPEN_M1] > counts[
        CellArchitecture.CLOSED_M1
    ]


def test_as_row_units(routed):
    _, m = routed
    row = m.as_row()
    assert row["RWL (um)"] == pytest.approx(m.routed_wirelength / 1000)
    assert row["#dM1"] == m.num_dm1
