"""Tests for MST subnet decomposition."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.library import build_library
from repro.netlist import Design
from repro.routing.subnets import decompose, net_terminals
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


def chain_design(n):
    die = Rect(0, 0, 200 * TECH.site_width, 4 * TECH.row_height)
    d = Design("t", TECH, die)
    d.add_net("n")
    for i in range(n):
        d.add_instance(f"u{i}", LIB.macro("INV_X1_RVT"))
        d.place(f"u{i}", column=8 * i, row=i % 4)
        pin = "ZN" if i == 0 else "A"
        d.connect("n", f"u{i}", pin) if i < 2 else None
    return d


def test_two_pin_net():
    d = chain_design(2)
    subnets = decompose(d, d.nets["n"])
    assert len(subnets) == 1
    a, b = subnets[0].a, subnets[0].b
    assert a.is_pin and b.is_pin
    assert subnets[0].manhattan_length == a.point.manhattan_distance(
        b.point
    )


def test_degenerate_nets():
    d = chain_design(2)
    d.add_net("empty")
    assert decompose(d, d.nets["empty"]) == []
    d.add_net("single")
    d.add_instance("ux", LIB.macro("INV_X1_RVT"))
    d.place("ux", column=100, row=0)
    d.connect("single", "ux", "A")
    assert decompose(d, d.nets["single"]) == []


def test_pads_are_terminals():
    d = chain_design(2)
    d.nets["n"].pads.append(Point(0, 0))
    terminals = net_terminals(d, d.nets["n"])
    assert len(terminals) == 3
    assert sum(1 for t in terminals if not t.is_pin) == 1
    assert len(decompose(d, d.nets["n"])) == 2


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 150), st.integers(0, 3)),
        min_size=2,
        max_size=12,
        unique=True,
    )
)
def test_mst_properties(positions):
    """Property: k terminals -> k-1 edges forming a spanning tree no
    longer than the star from terminal 0."""
    die = Rect(0, 0, 160 * TECH.site_width, 4 * TECH.row_height)
    d = Design("t", TECH, die)
    d.add_net("n")
    occupied = set()
    names = []
    for i, (col, row) in enumerate(positions):
        span = set(range(col, col + 4))
        if any((row, c) in occupied for c in span):
            continue
        occupied.update((row, c) for c in span)
        name = f"u{i}"
        d.add_instance(name, LIB.macro("INV_X1_RVT"))
        d.place(name, column=col, row=row)
        d.connect("n", name, "ZN" if not names else "A")
        names.append(name)
    if len(names) < 2:
        return
    subnets = decompose(d, d.nets["n"])
    assert len(subnets) == len(names) - 1

    # Spanning check via union-find over terminal points.
    parent = {}

    def find(x):
        while parent.setdefault(x, x) != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for s in subnets:
        ra, rb = find(s.a.point), find(s.b.point)
        parent[ra] = rb
    terms = net_terminals(d, d.nets["n"])
    roots = {find(t.point) for t in terms}
    assert len(roots) == 1

    mst_len = sum(s.manhattan_length for s in subnets)
    star_len = sum(
        terms[0].point.manhattan_distance(t.point) for t in terms[1:]
    )
    assert mst_len <= star_len
