"""DEF round trip across all four orientations (post-optimization
placements contain FN/S flips)."""

import pytest

from repro.geometry import Orientation, Rect
from repro.lefdef import apply_def_placement, parse_def, write_def
from repro.library import build_library
from repro.netlist import Design
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


@pytest.fixture()
def four_orientations():
    die = Rect(0, 0, 40 * TECH.site_width, 2 * TECH.row_height)
    d = Design("t", TECH, die)
    placements = [
        ("u_n", 0, 0, False),
        ("u_fn", 8, 0, True),
        ("u_fs", 0, 1, False),
        ("u_s", 8, 1, True),
    ]
    for name, col, row, flip in placements:
        d.add_instance(name, LIB.macro("INV_X1_RVT"))
        d.place(name, column=col, row=row, flipped=flip)
    return d


def test_all_orientations_roundtrip(four_orientations):
    d = four_orientations
    assert d.instances["u_n"].orientation is Orientation.N
    assert d.instances["u_fn"].orientation is Orientation.FN
    assert d.instances["u_fs"].orientation is Orientation.FS
    assert d.instances["u_s"].orientation is Orientation.S
    data = parse_def(write_def(d))
    for name, inst in d.instances.items():
        assert data.components[name].orient == inst.orientation.value


def test_apply_restores_orientation(four_orientations):
    d = four_orientations
    text = write_def(d)
    for name in d.instances:
        d.place(name, column=d.column_of(d.instances[name]),
                row=d.row_of(d.instances[name]), flipped=False)
    moved = apply_def_placement(d, text)
    assert moved == 2  # the two flipped cells changed back
    assert d.instances["u_fn"].orientation is Orientation.FN
    assert d.instances["u_s"].orientation is Orientation.S
    assert d.check_legal() == []


def test_pin_positions_survive_roundtrip(four_orientations):
    d = four_orientations
    want = {
        name: inst.pin_position("A")
        for name, inst in d.instances.items()
    }
    text = write_def(d)
    # Scramble everything, reload.
    for name in d.instances:
        d.place(name, column=20, row=0, flipped=False)
        break
    apply_def_placement(d, text)
    for name, inst in d.instances.items():
        assert inst.pin_position("A") == want[name]
