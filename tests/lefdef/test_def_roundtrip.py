"""DEF write → parse → apply round-trip on generated designs, across
all three architectures, plus writer determinism."""

import pytest

from repro.check.serialize import clone_design
from repro.lefdef import apply_def_placement, parse_def, write_def
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.tech import CellArchitecture, make_tech


def _placed(arch, seed=3, scale=0.01):
    tech = make_tech(arch)
    library = build_library(tech)
    design = generate_design("jpeg", tech, library, scale=scale, seed=seed)
    place_design(design, seed=seed)
    return design


@pytest.mark.parametrize(
    "arch", list(CellArchitecture), ids=lambda a: a.value
)
def test_write_parse_apply_roundtrip(arch):
    design = _placed(arch)
    text = write_def(design)
    data = parse_def(text)
    assert data.die == design.die
    assert len(data.components) == len(design.instances)

    # Apply the written placement onto a scrambled clone: every cell
    # must come back to exactly the written coordinates/orientation.
    clone = clone_design(design)
    for inst in clone.instances.values():
        if not inst.fixed:
            inst.x, inst.y = design.die.xlo, design.die.ylo
    moved = apply_def_placement(clone, text)
    assert moved > 0
    assert clone.placement_snapshot() == design.placement_snapshot()
    # And a re-write of the applied clone is byte-identical.
    assert write_def(clone) == text


def test_def_writer_is_deterministic():
    a = write_def(_placed(CellArchitecture.CLOSED_M1))
    b = write_def(_placed(CellArchitecture.CLOSED_M1))
    assert a == b
