"""DEF writer/parser round-trip tests."""

import pytest

from repro.lefdef import apply_def_placement, parse_def, write_def
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.tech import CellArchitecture, make_tech


@pytest.fixture(scope="module")
def placed():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    d = generate_design("aes", tech, lib, scale=0.015, seed=2)
    place_design(d, seed=1)
    return d


def test_roundtrip_placement(placed):
    data = parse_def(write_def(placed))
    assert data.design_name == placed.name
    assert data.die == placed.die
    assert data.dbu_per_micron == placed.tech.dbu_per_micron
    assert set(data.components) == set(placed.instances)
    for name, comp in data.components.items():
        inst = placed.instances[name]
        assert (comp.x, comp.y) == (inst.x, inst.y)
        assert comp.orient == inst.orientation.value
        assert comp.macro == inst.macro.name


def test_roundtrip_connectivity(placed):
    data = parse_def(write_def(placed))
    assert set(data.nets) == set(placed.nets)
    for name, net in placed.nets.items():
        got = {tuple(p) for p in data.nets[name].pins}
        want = {(r.instance, r.pin) for r in net.pins}
        assert got == want


def test_roundtrip_pads(placed):
    data = parse_def(write_def(placed))
    want = sum(len(net.pads) for net in placed.nets.values())
    assert len(data.pads) == want


def test_apply_def_placement_restores(placed):
    text = write_def(placed)
    snapshot = placed.placement_snapshot()
    # Scramble, then restore from DEF.
    names = sorted(placed.instances)
    for name in names[: len(names) // 2]:
        inst = placed.instances[name]
        inst.x += placed.tech.site_width
    moved = apply_def_placement(placed, text)
    assert moved == len(names) // 2
    assert placed.placement_snapshot() == snapshot
    # Idempotent second apply.
    assert apply_def_placement(placed, text) == 0


def test_parse_def_requires_diearea():
    with pytest.raises(ValueError):
        parse_def("VERSION 5.7 ;\nDESIGN x ;\nEND DESIGN\n")


def test_components_count_header(placed):
    text = write_def(placed)
    assert f"COMPONENTS {len(placed.instances)} ;" in text
    assert "END COMPONENTS" in text
    assert "END DESIGN" in text
