"""LEF writer/parser round-trip tests."""

import pytest

from repro.lefdef import parse_lef, write_lef
from repro.library import build_library
from repro.tech import CellArchitecture, make_tech


@pytest.fixture(scope="module", params=list(CellArchitecture))
def lib(request):
    return build_library(make_tech(request.param))


def test_writes_all_macros(lib):
    text = write_lef(lib)
    assert "VERSION 5.7" in text
    assert "SITE coreSite" in text
    for name in lib.names:
        assert f"MACRO {name}" in text


def test_roundtrip_geometry(lib):
    parsed = parse_lef(write_lef(lib))
    assert set(parsed) == set(lib.names)
    um = lib.tech.dbu_per_micron
    for name in lib.names:
        macro = lib.macro(name)
        got = parsed[name]
        assert got.size_x == pytest.approx(macro.width / um)
        assert got.size_y == pytest.approx(macro.height / um)
        assert set(got.pins) == set(macro.pins)
        for pin_name, pin in macro.pins.items():
            got_pin = got.pins[pin_name]
            shapes = {
                (lib.tech.layers[s.layer_index].name, s.rect)
                for s in pin.shapes
            }
            assert set(got_pin.rects) == shapes


def test_roundtrip_pin_semantics(lib):
    parsed = parse_lef(write_lef(lib))
    inv = parsed[f"INV_X1_RVT"]
    assert inv.pins["A"].direction == "INPUT"
    assert inv.pins["ZN"].direction == "OUTPUT"
    assert inv.pins["VDD"].use == "POWER"
    assert inv.pins["VSS"].use == "GROUND"


def test_pin_layer_matches_architecture(lib):
    parsed = parse_lef(write_lef(lib))
    expected_layer = f"M{lib.tech.arch.pin_layer_index}"
    inv = parsed["INV_X1_RVT"]
    layers = {layer for layer, _ in inv.pins["A"].rects}
    assert layers == {expected_layer}


def test_parse_tolerates_comments_and_blank_lines():
    lib_ = build_library(make_tech(CellArchitecture.CLOSED_M1))
    text = write_lef(lib_)
    noisy = "# header comment\n\n" + text.replace(
        "MACRO INV_X1_RVT", "# note\nMACRO INV_X1_RVT"
    )
    parsed = parse_lef(noisy)
    assert "INV_X1_RVT" in parsed
