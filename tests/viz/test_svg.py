"""SVG renderer contracts: real XML well-formedness (a strict parse,
not substring checks) and byte-deterministic output for a fixed seed."""

import xml.etree.ElementTree as ET

import pytest

from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.routing import DetailedRouter
from repro.tech import CellArchitecture, make_tech
from repro.viz import render_design_svg, render_routes_svg


def _routed(arch=CellArchitecture.CLOSED_M1, seed=2):
    tech = make_tech(arch)
    library = build_library(tech)
    design = generate_design("aes", tech, library, scale=0.01, seed=seed)
    place_design(design, seed=1)
    router = DetailedRouter(design)
    router.route()
    return design, router


@pytest.fixture(scope="module")
def routed():
    return _routed()


@pytest.mark.parametrize("show_pins", [True, False])
def test_design_svg_is_well_formed_xml(routed, show_pins):
    design, _ = routed
    root = ET.fromstring(
        render_design_svg(design, show_pins=show_pins)
    )
    assert root.tag.endswith("svg")
    assert root.get("width") and root.get("height")
    rects = root.findall(".//{*}rect") + root.findall(".//rect")
    assert len(rects) >= len(design.instances)


def test_routes_svg_is_well_formed_xml(routed):
    design, router = routed
    root = ET.fromstring(render_routes_svg(design, router))
    assert root.tag.endswith("svg")


def test_design_svg_is_deterministic_for_fixed_seed():
    design_a, _ = _routed(seed=5)
    design_b, _ = _routed(seed=5)
    assert render_design_svg(design_a) == render_design_svg(design_b)


def test_routes_svg_is_deterministic_for_fixed_seed():
    design_a, router_a = _routed(seed=5)
    design_b, router_b = _routed(seed=5)
    assert render_routes_svg(design_a, router_a) == render_routes_svg(
        design_b, router_b
    )


def test_different_seed_changes_the_picture():
    design_a, _ = _routed(seed=5)
    design_b, _ = _routed(seed=6)
    assert render_design_svg(design_a) != render_design_svg(design_b)
