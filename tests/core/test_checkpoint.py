"""VM1Opt checkpoint/resume: capture, JSON round-trip, equivalence."""

import pytest

from repro.core import (
    CHECKPOINT_SCHEMA,
    OptParams,
    VM1Checkpoint,
    WindowSolveCache,
    vm1_opt,
)
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.tech import CellArchitecture, make_tech


def _fresh_design(scale=0.02):
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("m0", tech, lib, scale=scale, seed=2)
    place_design(design, seed=1)
    return design


@pytest.fixture(scope="module")
def reference():
    """One uninterrupted run: final placement + every checkpoint."""
    params = OptParams.for_arch(
        CellArchitecture.CLOSED_M1, time_limit=2.0
    )
    checkpoints = []
    design = _fresh_design()
    result = vm1_opt(design, params, checkpoint_sink=checkpoints.append)
    return params, checkpoints, design.placement_snapshot(), result


def test_checkpoint_sink_sees_every_pass(reference):
    params, checkpoints, _, result = reference
    # One checkpoint per DistOpt pass: move + flip per iteration.
    assert len(checkpoints) == 2 * result.iterations
    assert [cp.phase for cp in checkpoints[:2]] == ["move", "flip"]
    assert all(cp.schema == CHECKPOINT_SCHEMA for cp in checkpoints)
    assert checkpoints[0].placement  # full placement captured


def test_json_roundtrip_is_lossless(reference):
    _, checkpoints, _, _ = reference
    cp = checkpoints[-1]
    clone = VM1Checkpoint.loads(cp.dumps())
    assert clone == cp


def test_save_load_file(tmp_path, reference):
    _, checkpoints, _, _ = reference
    path = checkpoints[0].save(tmp_path / "cp.json")
    assert VM1Checkpoint.load(path) == checkpoints[0]


def test_from_dict_rejects_unknown_schema(reference):
    _, checkpoints, _, _ = reference
    doc = checkpoints[0].to_dict()
    doc["schema"] = "repro.core.checkpoint/v999"
    with pytest.raises(ValueError, match="unsupported checkpoint"):
        VM1Checkpoint.from_dict(doc)


@pytest.mark.parametrize("which", ["first", "last"])
def test_resume_reproduces_placement_byte_identical(
    reference, which
):
    """Resuming from any checkpoint finishes with the exact placement
    (and iteration count) of the uninterrupted run — the contract the
    service's crash recovery rests on."""
    params, checkpoints, final_placement, result = reference
    cp = checkpoints[0] if which == "first" else checkpoints[-2]
    # Serialize across the "crash": resume from JSON, not the object.
    cp = VM1Checkpoint.loads(cp.dumps())
    design = _fresh_design()
    resumed = vm1_opt(design, params, resume=cp)
    assert design.placement_snapshot() == final_placement
    assert resumed.iterations == result.iterations
    assert resumed.final_objective == pytest.approx(
        result.final_objective
    )


def test_resume_restores_cache_entries(reference):
    params, checkpoints, _, _ = reference
    cp = checkpoints[-1]
    cache = WindowSolveCache()
    design = _fresh_design()
    cp.restore(design, cache)
    assert len(cache) == len(cp.cache_entries)
    assert cache.export_state() == cp.cache_entries


def test_cache_state_roundtrip():
    cache = WindowSolveCache()
    design = _fresh_design(scale=0.01)
    from repro.core.window import partition

    windows = partition(design, 0, 0, 1250, 1080)
    for window in windows[:3]:
        _, token = cache.probe(
            design, window, lx=2, ly=1, allow_flip=False
        )
        cache.store(token)
    state = cache.export_state()
    clone = WindowSolveCache()
    clone.import_state(state)
    assert clone.export_state() == state
    # A probe of unchanged content hits in the imported clone.
    hit, _ = clone.probe(
        design, windows[0], lx=2, ly=1, allow_flip=False
    )
    assert hit
