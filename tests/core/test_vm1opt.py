"""Tests for Algorithm 1 (VM1Opt)."""

import pytest

from repro.core import OptParams, ParamSet, vm1_opt
from repro.core.objective import alignment_stats, calculate_objective
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.tech import CellArchitecture, make_tech


def small_design(arch=CellArchitecture.CLOSED_M1, scale=0.012, seed=3):
    tech = make_tech(arch)
    lib = build_library(tech)
    design = generate_design("aes", tech, lib, scale=scale, seed=seed)
    place_design(design, seed=1)
    return design


def fast_params(arch, **overrides):
    defaults = dict(
        sequence=(ParamSet.square(1.0, 3, 1),),
        time_limit=3.0,
        theta=0.02,
    )
    defaults.update(overrides)
    return OptParams.for_arch(arch, **defaults)


def test_improves_objective_and_stays_legal():
    design = small_design()
    params = fast_params(design.tech.arch)
    before = calculate_objective(design, params)
    result = vm1_opt(design, params)
    assert result.initial_objective == pytest.approx(before)
    assert result.final_objective <= before
    assert result.iterations >= 1
    assert design.check_legal() == []
    assert result.improvement >= 0


def test_alignment_grows():
    design = small_design()
    params = fast_params(design.tech.arch)
    before = alignment_stats(design, params).num_aligned
    vm1_opt(design, params)
    after = alignment_stats(design, params).num_aligned
    assert after > before


def test_sequence_runs_all_parameter_sets():
    design = small_design()
    params = fast_params(
        design.tech.arch,
        sequence=(
            ParamSet.square(0.8, 2, 0),
            ParamSet.square(1.2, 2, 1),
        ),
    )
    result = vm1_opt(design, params)
    # At least one move+flip pass pair per parameter set.
    assert len(result.passes) >= 4


def test_theta_controls_convergence():
    """A huge θ stops after the first iteration."""
    design = small_design()
    params = fast_params(design.tech.arch, theta=10.0)
    result = vm1_opt(design, params)
    assert result.iterations == 1


def test_progress_callback_invoked():
    design = small_design()
    params = fast_params(design.tech.arch, theta=10.0)
    labels = []
    vm1_opt(design, params, progress=lambda label, r: labels.append(label))
    assert labels == ["move", "flip"]


def test_openm1_flow():
    design = small_design(arch=CellArchitecture.OPEN_M1)
    params = fast_params(design.tech.arch)
    before = alignment_stats(design, params)
    result = vm1_opt(design, params)
    after = alignment_stats(design, params)
    assert design.check_legal() == []
    assert result.final_objective <= result.initial_objective
    assert after.num_aligned >= before.num_aligned
