"""Convergence-accounting tests for the incremental DistOpt engine.

The delta-accounted objective (initial objective + the sum of the
guarded applies' local deltas) must agree with a full
``calculate_objective`` recompute after every kind of pass outcome —
applied, reverted, no-move, and flip passes — on all three seeded
architectures.  ``objective_audit=True`` arms the in-run drift check
(``AssertionError`` past ``DRIFT_TOLERANCE`` on any pass), and the
tests re-verify the final figure independently.

Also here: the late-pass clean-skip guarantee (a converged pass is
answered entirely by the dirty tracker — zero builds, zero cache
probes) and the ``cache_misses`` counting fix (probes that missed, not
windows built).
"""

import pytest

from repro.core import OptParams, ParamSet
from repro.core.distopt import (
    DRIFT_TOLERANCE,
    _apply_guarded,
    dist_opt,
    DistOptResult,
)
from repro.core.dirty import DirtyTracker
from repro.core.objective import calculate_objective
from repro.core.vm1opt import vm1_opt
from repro.core.windowcache import WindowSolveCache
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.runtime import RunTelemetry, WindowTaskResult
from repro.tech import CellArchitecture, make_tech

EXACT = dict(mip_gap=0.0, time_limit=30.0)

#: Single-ParamSet sequence for the full-loop tests: still exercises
#: move passes, flip passes, grid shifts, and θ termination, at a
#: fraction of the default five-set sequence's runtime.
LOOP = dict(sequence=(ParamSet.square(1.25, 2, 1),), **EXACT)

GRID = dict(tx=0, ty=0, bw=1250, bh=1080, lx=2, ly=1, allow_flip=False)


def small_design(arch=CellArchitecture.CLOSED_M1, seed=2):
    """A design whose window solves all reach proven OPTIMAL within
    the time limit — required wherever two runs are compared bit for
    bit (a time-limited HiGHS incumbent is load-dependent).  The aes
    profile at this scale spreads cells over several small windows;
    m0 at tiny scales concentrates ~90 movables into one window whose
    MILP can hit the clock."""
    tech = make_tech(arch)
    lib = build_library(tech)
    design = generate_design("aes", tech, lib, scale=0.008, seed=seed)
    place_design(design, seed=1)
    return design, tech


# ----------------------------------------------- full-loop accounting
@pytest.mark.parametrize(
    "arch",
    [
        CellArchitecture.CONV_12T,
        CellArchitecture.CLOSED_M1,
        CellArchitecture.OPEN_M1,
    ],
)
def test_vm1opt_incremental_matches_full_recompute(arch):
    """The whole VM1Opt loop — move passes, flip passes, grid shifts —
    with the audit armed: any per-pass drift raises inside the run,
    and the final delta-accounted objective must equal an independent
    full recompute."""
    design, tech = small_design(arch)
    params = OptParams.for_arch(tech.arch, **LOOP)
    result = vm1_opt(
        design, params, dirty_tracking=True, objective_audit=True
    )
    full = calculate_objective(design, params)
    assert abs(result.final_objective - full) < DRIFT_TOLERANCE


def test_vm1opt_dirty_off_unchanged_objective():
    """Dirty-off keeps the legacy full recompute and both switches
    agree bit for bit on placement and objective."""
    design_on, tech = small_design()
    params = OptParams.for_arch(tech.arch, **LOOP)
    on = vm1_opt(
        design_on, params, dirty_tracking=True, objective_audit=True
    )
    design_off, _ = small_design()
    off = vm1_opt(design_off, params, dirty_tracking=False)
    assert (
        design_on.placement_snapshot() == design_off.placement_snapshot()
    )
    assert on.final_objective == pytest.approx(
        off.final_objective, abs=DRIFT_TOLERANCE
    )
    assert on.iterations == off.iterations
    assert off.windows_skipped_clean == 0


# ------------------------------------------- per-outcome delta pieces
def test_apply_guarded_revert_contributes_zero_delta():
    """A worsening move is reverted and contributes no delta and no
    dirty rects; the design is byte-identical afterwards."""
    design, tech = small_design()
    params = OptParams.for_arch(tech.arch, **EXACT)
    before = design.placement_snapshot()

    # Fabricate a worker outcome that moves one movable cell a long
    # way sideways — guaranteed to worsen HPWL on its nets (or at
    # best tie, which the guard also rejects).
    name = next(
        n for n, inst in design.instances.items() if not inst.fixed
    )
    inst = design.instances[name]
    nets = tuple(
        net.name for net in design.nets_of_instances({name})
    )
    if not nets:
        pytest.skip("picked a netless cell")
    column = inst.x // tech.site_width + 40
    row = inst.y // tech.row_height
    outcome = WindowTaskResult(
        task_id=0,
        nets=nets,
        movable=(name,),
        moves=((name, column, row, False),),
    )
    result = DistOptResult(objective=0.0)
    status, moved, delta, rects = _apply_guarded(
        design, params, outcome, result
    )
    assert status == "reverted"
    assert moved == 0
    assert delta == 0.0
    assert rects == ()
    assert result.windows_reverted == 1
    assert design.placement_snapshot() == before


def test_apply_guarded_no_move_contributes_zero_delta():
    design, tech = small_design()
    params = OptParams.for_arch(tech.arch, **EXACT)
    before = design.placement_snapshot()
    name = next(
        n for n, inst in design.instances.items() if not inst.fixed
    )
    inst = design.instances[name]
    outcome = WindowTaskResult(
        task_id=0,
        nets=tuple(
            net.name for net in design.nets_of_instances({name})
        ),
        movable=(name,),
        moves=(
            (
                name,
                inst.x // tech.site_width,
                inst.y // tech.row_height,
                False,
            ),
        ),
    )
    result = DistOptResult(objective=0.0)
    status, moved, delta, rects = _apply_guarded(
        design, params, outcome, result
    )
    assert status == "no_move"
    assert (moved, delta, rects) == (0, 0.0, ())
    assert design.placement_snapshot() == before


def test_distopt_applied_pass_delta_is_exact():
    """One real pass with applies: initial + delta == full recompute,
    to strictly below the audit tolerance."""
    design, tech = small_design()
    params = OptParams.for_arch(tech.arch, **EXACT)
    initial = calculate_objective(design, params)
    dirty = DirtyTracker()
    result = dist_opt(
        design, params, **GRID,
        dirty=dirty, objective=initial, audit=True,
    )
    assert result.windows_applied > 0  # the pass must exercise applies
    assert result.objective_drift is not None
    assert result.objective_drift < DRIFT_TOLERANCE
    assert result.objective == pytest.approx(
        initial + result.objective_delta
    )


def test_distopt_flip_pass_delta_is_exact():
    """Flip passes (lx = ly = 0, flips enabled) go through the same
    delta path; the audit must hold there too."""
    design, tech = small_design()
    params = OptParams.for_arch(tech.arch, **EXACT)
    initial = calculate_objective(design, params)
    result = dist_opt(
        design, params,
        tx=0, ty=0, bw=1250, bh=1080, lx=0, ly=0, allow_flip=True,
        dirty=DirtyTracker(), objective=initial, audit=True,
    )
    assert result.objective_drift is not None
    assert result.objective_drift < DRIFT_TOLERANCE


# ------------------------------------------------- late-pass skipping
def test_converged_pass_is_skipped_clean_without_building():
    """Once identical passes reach a fixpoint, the next identical pass
    is answered entirely by the dirty tracker: every window is skipped
    *before* the build — and before the cache, which must see zero
    probes.  (Uses dist_opt directly: vm1_opt's alternating grid
    shifts delay key reuse to iteration 3+.)"""
    design, tech = small_design()
    params = OptParams.for_arch(tech.arch, **EXACT)
    dirty = DirtyTracker()
    cache = WindowSolveCache()
    objective = calculate_objective(design, params)
    kwargs = dict(**GRID, dirty=dirty, cache=cache, audit=True)

    for _ in range(10):
        result = dist_opt(
            design, params, objective=objective, **kwargs
        )
        objective = result.objective
        if result.moved_cells == 0:
            break
    assert result.moved_cells == 0

    snap = design.placement_snapshot()
    probes_before = cache.hits + cache.misses
    telemetry = RunTelemetry()
    extra = dist_opt(
        design, params, objective=objective,
        telemetry=telemetry, **kwargs,
    )
    assert extra.windows_built == 0
    assert extra.windows_skipped_clean > 0
    assert extra.moved_cells == 0
    assert extra.objective == pytest.approx(objective)
    # Skips happen pre-probe: the cache saw no traffic at all.
    assert cache.hits + cache.misses == probes_before
    assert extra.windows_cached == 0
    assert extra.cache_misses == 0
    assert design.placement_snapshot() == snap
    # Telemetry agrees with the result counters.
    assert telemetry.passes[-1]["windows_skipped_clean"] == (
        extra.windows_skipped_clean
    )
    summary = telemetry.summary()
    assert summary["windows"]["skipped_clean"] == (
        extra.windows_skipped_clean
    )


def test_applied_windows_invalidate_neighbor_marks():
    """After a pass with applies, a second pass re-solves at least the
    dirtied neighborhoods — it cannot be answered entirely by marks."""
    design, tech = small_design()
    params = OptParams.for_arch(tech.arch, **EXACT)
    dirty = DirtyTracker()
    objective = calculate_objective(design, params)
    first = dist_opt(
        design, params, **GRID,
        dirty=dirty, objective=objective, audit=True,
    )
    if first.windows_applied == 0:
        pytest.skip("seed produced no applies")
    second = dist_opt(
        design, params, **GRID,
        dirty=dirty, objective=first.objective, audit=True,
    )
    assert second.windows_built > 0


# ---------------------------------------------- cache_misses semantics
def test_cache_misses_counts_probes_not_builds():
    """Satellite fix: ``cache_misses`` counts cache probes that missed.
    Windows that probe-miss but then have nothing to build (e.g. all
    their cells fixed) still count — so misses >= builds, and both the
    cache's own counter and the telemetry pass entry agree."""
    design, tech = small_design()
    params = OptParams.for_arch(tech.arch, **EXACT)

    # Freeze every cell in the left half of the die: those windows
    # will probe (and miss, cold cache) but slice to None.
    die_mid = (design.die.xlo + design.die.xhi) // 2
    frozen = 0
    for inst in design.instances.values():
        if inst.x < die_mid:
            inst.fixed = True
            frozen += 1
    assert frozen > 0

    cache = WindowSolveCache()
    telemetry = RunTelemetry()
    result = dist_opt(
        design, params, **GRID, cache=cache, telemetry=telemetry,
    )
    assert result.cache_misses == cache.misses
    assert result.cache_misses > result.windows_built
    assert telemetry.passes[-1]["cache_misses"] == result.cache_misses
    assert cache.hits == 0  # cold cache: every probe missed
