"""Figure 4's claim, verified: for windows with disjoint x/y
projections, per-window ΔHPWL values add up to the true total ΔHPWL.

This is the correctness foundation of the distributable optimization
(§4.1): a window's MILP evaluates its objective as if concurrent
windows were frozen; that is only exact when no other concurrently-
optimized window shares a projection.  We verify both directions —
additivity holds for disjoint-projection windows (any perturbation),
and a counterexample exists for windows that share a projection
(Figure 4 case (a)).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.library import build_library
from repro.netlist import Design
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


def build_design():
    """4x4-window-like die with cells in two diagonal regions and
    nets spanning them."""
    die = Rect(0, 0, 80 * TECH.site_width, 8 * TECH.row_height)
    d = Design("t", TECH, die)
    # Region A: columns 0..30, rows 0..3.  Region B: columns 40..70,
    # rows 4..7.  Diagonal -> disjoint projections.
    for i in range(6):
        d.add_instance(f"a{i}", LIB.macro("INV_X1_RVT"))
        d.place(f"a{i}", column=2 + 5 * i, row=i % 4)
        d.add_instance(f"b{i}", LIB.macro("INV_X1_RVT"))
        d.place(f"b{i}", column=42 + 5 * i, row=4 + i % 4)
    for i in range(6):
        d.add_net(f"n{i}")
        d.connect(f"n{i}", f"a{i}", "ZN")
        d.connect(f"n{i}", f"b{i}", "A")
    return d


REGION_A = Rect(0, 0, 31 * TECH.site_width, 4 * TECH.row_height)
REGION_B = Rect(
    40 * TECH.site_width,
    4 * TECH.row_height,
    71 * TECH.site_width,
    8 * TECH.row_height,
)


def perturb(design, names, dx_sites, region):
    """Shift cells by dx_sites, keeping them inside their region."""
    for name in names:
        inst = design.instances[name]
        col = design.column_of(inst) + dx_sites
        row = design.row_of(inst)
        lo = region.xlo // TECH.site_width
        hi = region.xhi // TECH.site_width - inst.macro.width_sites
        col = max(lo, min(col, hi))
        design.place(name, col, row)


@settings(max_examples=30, deadline=None)
@given(st.integers(-6, 6), st.integers(-6, 6))
def test_disjoint_projection_deltas_add_up(dx_a, dx_b):
    """Figure 4(b): disjoint projections => exact decomposition."""
    d = build_design()
    a_names = [f"a{i}" for i in range(6)]
    b_names = [f"b{i}" for i in range(6)]
    total_before = d.total_hpwl()

    # ΔHPWL of moving A alone (B frozen), from A's window view.
    snap = d.placement_snapshot()
    perturb(d, a_names, dx_a, REGION_A)
    delta_a = d.total_hpwl() - total_before
    d.restore_placement(snap)

    perturb(d, b_names, dx_b, REGION_B)
    delta_b = d.total_hpwl() - total_before
    d.restore_placement(snap)

    # Both moves together (what parallel optimization commits).
    perturb(d, a_names, dx_a, REGION_A)
    perturb(d, b_names, dx_b, REGION_B)
    delta_total = d.total_hpwl() - total_before

    assert delta_total == delta_a + delta_b


def test_shared_projection_breaks_additivity():
    """Figure 4(a): windows sharing a y-projection can double-count.

    Two cells on the same net, in the same rows but different x
    ranges: moving each toward the other shrinks the bbox; each
    window predicts the full shrink, so predictions double-count.
    """
    die = Rect(0, 0, 80 * TECH.site_width, 2 * TECH.row_height)
    d = Design("t", TECH, die)
    d.add_instance("left", LIB.macro("INV_X1_RVT"))
    d.place("left", column=0, row=0)
    d.add_instance("right", LIB.macro("INV_X1_RVT"))
    d.place("right", column=70, row=0)  # same row: shared y-projection
    d.add_net("n")
    d.connect("n", "left", "ZN")
    d.connect("n", "right", "A")
    before = d.total_hpwl()
    snap = d.placement_snapshot()

    d.place("left", column=10, row=0)
    delta_left = d.total_hpwl() - before
    d.restore_placement(snap)

    d.place("right", column=60, row=0)
    delta_right = d.total_hpwl() - before
    d.restore_placement(snap)

    d.place("left", column=10, row=0)
    d.place("right", column=60, row=0)
    delta_total = d.total_hpwl() - before

    assert delta_total == delta_left + delta_right  # 1-net special case
    # The real hazard appears with a third stationary pin: bbox
    # ownership can transfer mid-move (the paper's figure).
    d.restore_placement(snap)
    d.add_instance("mid", LIB.macro("INV_X1_RVT"))
    d.place("mid", column=35, row=1)
    d.connect("n", "mid", "A")
    before3 = d.total_hpwl()

    d.place("left", column=40, row=0)  # passes the mid pin
    delta_l3 = d.total_hpwl() - before3
    d.place("left", column=0, row=0)

    d.place("right", column=30, row=0)  # also passes the mid pin
    delta_r3 = d.total_hpwl() - before3
    d.place("right", column=70, row=0)

    d.place("left", column=40, row=0)
    d.place("right", column=30, row=0)
    delta_t3 = d.total_hpwl() - before3
    assert delta_t3 != delta_l3 + delta_r3  # decomposition fails
