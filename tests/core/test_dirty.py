"""DirtyTracker unit tests: intersection geometry, mark/invalidate
protocol (spatial cell rects + exact net identity), seeded
background-clean mode, checkpoint state round-trip, and the eviction
cap."""

import pytest

from repro.core.dirty import (
    DEFAULT_MAX_MARKS,
    DirtyTracker,
    _intersects,
    dirty_write_for_moves,
)


def key(i: int, allow_flip: bool = False):
    """A distinct, well-formed DirtyKey per index."""
    return (i * 100, 0, i * 100 + 90, 80, 3, 1, allow_flip)


# -------------------------------------------------- intersection geometry
def test_closed_intersection_touching_edges_count():
    assert _intersects((0, 0, 10, 10), (10, 0, 20, 10))  # shared edge
    assert _intersects((0, 0, 10, 10), (10, 10, 20, 20))  # corner
    assert not _intersects((0, 0, 10, 10), (11, 0, 20, 10))
    assert not _intersects((0, 0, 10, 10), (0, 11, 10, 20))


def test_degenerate_rects_still_intersect():
    # A single-point net bbox (all pins at one spot) must still dirty
    # whatever contains or touches that point.
    point = (5, 5, 5, 5)
    assert _intersects(point, (0, 0, 10, 10))
    assert _intersects(point, (5, 5, 20, 20))
    assert not _intersects(point, (6, 6, 20, 20))
    # Zero-height horizontal segment.
    assert _intersects((0, 7, 100, 7), (50, 0, 60, 10))


# ------------------------------------------------- mark / skip / dirty
def test_unmarked_is_dirty_by_default():
    tracker = DirtyTracker()
    assert not tracker.is_clean(key(0), (0, 0, 100, 100))
    assert len(tracker) == 0


def test_mark_then_skip_then_invalidate():
    tracker = DirtyTracker()
    probe = (0, 0, 100, 100)
    tracker.mark_clean(key(0), probe)
    assert tracker.is_clean(key(0), probe)
    assert tracker.skips == 1

    # A write far away leaves the mark alone.
    assert tracker.note_dirty([(500, 500, 600, 600)]) == 0
    assert tracker.is_clean(key(0), probe)

    # A write touching the probe (closed test: shared edge) drops it.
    assert tracker.note_dirty([(100, 0, 200, 50)]) == 1
    assert not tracker.is_clean(key(0), probe)
    assert tracker.invalidations == 1


def test_net_identity_invalidation_is_exact():
    """Marks record the net names their build read; a write naming
    one of those nets drops exactly the marks that read it — no
    matter where on the die the write landed spatially."""
    tracker = DirtyTracker()
    tracker.mark_clean(key(0), (0, 0, 100, 100), nets=("n1", "n2"))
    tracker.mark_clean(
        key(1), (1000, 0, 1100, 100), nets=("n2", "n3")
    )
    tracker.mark_clean(key(2), (2000, 0, 2100, 100), nets=("n4",))

    # A spatially-distant write on n3: only the n3 reader dies.
    assert tracker.note_dirty([], nets=("n3",)) == 1
    assert tracker.is_clean(key(0), (0, 0, 100, 100))
    assert not tracker.is_clean(key(1), (1000, 0, 1100, 100))
    assert tracker.is_clean(key(2), (2000, 0, 2100, 100))

    # A shared net drops every reader at once.
    tracker.mark_clean(
        key(1), (1000, 0, 1100, 100), nets=("n2", "n3")
    )
    assert tracker.note_dirty([], nets=("n2",)) == 2
    assert not tracker.is_clean(key(0), (0, 0, 100, 100))
    assert not tracker.is_clean(key(1), (1000, 0, 1100, 100))
    assert tracker.is_clean(key(2), (2000, 0, 2100, 100))

    # Unknown net names are a no-op.
    assert tracker.note_dirty([], nets=("never-seen",)) == 0


def test_cell_rect_and_net_invalidation_compose():
    """One note_dirty call can drop marks both ways; a mark is only
    counted once even when both mechanisms hit it."""
    tracker = DirtyTracker()
    tracker.mark_clean(key(0), (0, 0, 100, 100), nets=("n1",))
    tracker.mark_clean(key(1), (500, 0, 600, 100), nets=("n9",))
    dropped = tracker.note_dirty(
        [(50, 50, 60, 60)], nets=("n1", "n9")
    )
    assert dropped == 2
    assert tracker.invalidations == 2


def test_key_identity_includes_perturbation_and_flip():
    # Same window rect under different (lx, ly, allow_flip) is a
    # different subproblem: a mark for one must not skip the other.
    tracker = DirtyTracker()
    probe = (0, 0, 100, 100)
    rect = (0, 0, 90, 80)
    move_key = rect + (3, 1, False)
    flip_key = rect + (0, 0, True)
    tracker.mark_clean(move_key, probe)
    assert tracker.is_clean(move_key, probe)
    assert not tracker.is_clean(flip_key, probe)


def test_note_dirty_empty_is_noop():
    tracker = DirtyTracker()
    tracker.mark_clean(key(0), (0, 0, 100, 100))
    assert tracker.note_dirty([]) == 0
    assert len(tracker) == 1


# ------------------------------------------------------- eviction cap
def test_eviction_cap_fifo():
    tracker = DirtyTracker(max_marks=2)
    tracker.mark_clean(key(0), (0, 0, 10, 10))
    tracker.mark_clean(key(1), (100, 0, 110, 10))
    tracker.mark_clean(key(2), (200, 0, 210, 10))
    assert len(tracker) == 2
    assert tracker.evictions == 1
    # Oldest mark evicted; eviction is sound — just re-verifies later.
    assert not tracker.is_clean(key(0), (0, 0, 10, 10))
    assert tracker.is_clean(key(1), (100, 0, 110, 10))
    assert tracker.is_clean(key(2), (200, 0, 210, 10))


def test_remark_refreshes_fifo_position():
    tracker = DirtyTracker(max_marks=2)
    tracker.mark_clean(key(0), (0, 0, 10, 10))
    tracker.mark_clean(key(1), (100, 0, 110, 10))
    tracker.mark_clean(key(0), (0, 0, 10, 10))  # refresh, no evict
    assert tracker.evictions == 0
    tracker.mark_clean(key(2), (200, 0, 210, 10))
    # key(1) was the stalest — it goes, key(0) survives.
    assert tracker.is_clean(key(0), (0, 0, 10, 10))
    assert not tracker.is_clean(key(1), (100, 0, 110, 10))


def test_max_marks_validated():
    with pytest.raises(ValueError):
        DirtyTracker(max_marks=0)
    assert DirtyTracker().max_marks == DEFAULT_MAX_MARKS


# ------------------------------------------------ background-clean mode
def test_seeded_mode_clean_unless_probe_hits_seed():
    seam = (0, 90, 1000, 110)
    tracker = DirtyTracker(seed_dirty=[seam])
    # Probe away from the seam band: clean without any mark.
    assert tracker.is_clean(key(0), (0, 0, 100, 80))
    # Probe overlapping the band: dirty.
    assert not tracker.is_clean(key(1), (0, 50, 100, 95))
    # Probe touching the band edge: closed test — dirty.
    assert not tracker.is_clean(key(2), (0, 0, 100, 90))


def test_seeded_mode_accumulates_applied_rects():
    tracker = DirtyTracker(seed_dirty=[(0, 90, 1000, 110)])
    quiet = (500, 200, 600, 300)
    assert tracker.is_clean(key(0), quiet)
    # An apply lands next to the quiet probe: subsequent skips there
    # must stop even though no seed rect is nearby.
    tracker.note_dirty([(590, 250, 650, 260)])
    assert not tracker.is_clean(key(0), quiet)


def test_seeded_mode_accumulates_net_rects_as_background_dirt():
    """Unmarked windows have no recorded net set, so in default-clean
    mode the applied nets' bounding boxes must dirty them spatially."""
    tracker = DirtyTracker(seed_dirty=[(0, 90, 1000, 110)])
    quiet = (5000, 5000, 5100, 5100)
    assert tracker.is_clean(key(0), quiet)
    tracker.note_dirty(
        [(0, 200, 10, 210)],
        nets=("n1",),
        net_rects=((4000, 4000, 5050, 5050),),
    )
    assert not tracker.is_clean(key(1), quiet)


def test_default_mode_does_not_accumulate_background_dirt():
    tracker = DirtyTracker()
    tracker.note_dirty(
        [(0, 0, 10, 10)],
        nets=("n1",),
        net_rects=((0, 0, 500, 500),),
    )
    tracker.mark_clean(key(0), (0, 0, 100, 100), nets=("n1",))
    # Only explicit marks matter outside background mode: the earlier
    # dirt (rects and nets alike) is not replayed against a new mark.
    assert tracker.is_clean(key(0), (0, 0, 100, 100))


# ----------------------------------------------- checkpoint round-trip
def test_export_import_round_trip():
    tracker = DirtyTracker(seed_dirty=[(0, 90, 1000, 110)])
    tracker.mark_clean(key(0), (0, 0, 100, 80), nets=("n1", "n2"))
    tracker.note_dirty([(500, 200, 600, 300)])

    state = tracker.export_state()
    # Simulate a JSON checkpoint round-trip: tuples become lists.
    import json

    state = json.loads(json.dumps(state))

    restored = DirtyTracker()
    restored.import_state(state)
    assert len(restored) == len(tracker)
    assert restored.is_clean(key(0), (0, 0, 100, 80))
    # Background mode and dirty rects survive.
    assert not restored.is_clean(key(9), (550, 250, 560, 260))
    assert restored.is_clean(key(8), (0, 400, 100, 500))
    # The mark's net read-set survives: a net write still drops it.
    # (In background mode callers always pass the net's bbox as
    # net_rects too — that is what keeps the now-unmarked window
    # dirty, since its probe contains one of the net's pins.)
    assert restored.note_dirty(
        [], nets=("n2",), net_rects=((0, 0, 150, 85),)
    ) == 1
    assert not restored.is_clean(key(0), (0, 0, 100, 80))


def test_import_empty_state_stays_default_dirty():
    tracker = DirtyTracker()
    tracker.import_state([])
    assert not tracker.is_clean(key(0), (0, 0, 100, 100))


def test_export_is_deterministic():
    a = DirtyTracker()
    b = DirtyTracker()
    # Same marks in different insertion order (and net order) export
    # identically, so checkpoint bytes don't depend on family order.
    a.mark_clean(key(0), (0, 0, 10, 10), nets=("x", "y"))
    a.mark_clean(key(1), (20, 0, 30, 10))
    b.mark_clean(key(1), (20, 0, 30, 10))
    b.mark_clean(key(0), (0, 0, 10, 10), nets=("y", "x"))
    assert a.export_state() == b.export_state()


# ------------------------------------------------- dirty_write_for_moves
def test_dirty_write_covers_cell_boxes_net_names_and_net_boxes():
    from repro.library import build_library
    from repro.netlist import generate_design
    from repro.placement import place_design
    from repro.tech import CellArchitecture, make_tech

    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("m0", tech, lib, scale=0.01, seed=2)
    place_design(design, seed=1)

    name = next(
        n for n, inst in design.instances.items() if not inst.fixed
    )
    inst = design.instances[name]
    old = (inst.x, inst.y, inst.orientation)
    snapshot = {name: old}
    inst.x += 2 * tech.site_width  # displace without re-legalizing

    write = dirty_write_for_moves(design, [name], snapshot)
    nets = list(design.nets_of_instances({name}))
    assert len(write.cell_rects) == 1
    assert len(write.nets) == len(nets)
    assert len(write.net_rects) == len(nets)

    # The cell rect spans the old and new cell bboxes.
    cell_rect = write.cell_rects[0]
    assert cell_rect[0] == min(old[0], inst.x)
    assert cell_rect[2] == max(old[0], inst.x) + inst.width
    # Net names are exactly the moved cell's nets; net boxes are the
    # post-move net bboxes (background-mode spatial dirt).
    assert write.nets == tuple(net.name for net in nets)
    for rect, net in zip(write.net_rects, nets):
        bbox = design.net_bbox(net)
        assert rect == (bbox.xlo, bbox.ylo, bbox.xhi, bbox.yhi)
