"""Tests for alignment-opportunity analysis."""

import pytest

from repro.core import OptParams
from repro.core.analysis import analyze_opportunities
from repro.geometry import Rect
from repro.library import build_library
from repro.netlist import Design, generate_design
from repro.placement import place_design
from repro.tech import CellArchitecture, make_tech


def pair_design(arch, col0, col1):
    tech = make_tech(arch)
    lib = build_library(tech)
    die = Rect(0, 0, 60 * tech.site_width, 4 * tech.row_height)
    d = Design("t", tech, die)
    d.add_instance("u0", lib.macro("INV_X1_RVT"))
    d.place("u0", column=col0, row=0)
    d.add_instance("u1", lib.macro("INV_X1_RVT"))
    d.place("u1", column=col1, row=1)
    d.add_net("n")
    d.connect("n", "u0", "ZN")
    d.connect("n", "u1", "A")
    return d


def test_realized_pair_counted():
    d = pair_design(CellArchitecture.CLOSED_M1, 10, 11)  # aligned
    params = OptParams.for_arch(d.tech.arch)
    report = analyze_opportunities(d, params)
    assert report.pairs_in_span == 1
    assert report.realized == 1
    assert report.reachable == 1
    assert report.mismatch_histogram[0] == 1
    assert report.realized_fraction == 1.0


def test_reachable_but_not_realized():
    d = pair_design(CellArchitecture.CLOSED_M1, 10, 14)  # 3 sites off
    params = OptParams.for_arch(d.tech.arch)
    report = analyze_opportunities(d, params, budget_sites=2)
    assert report.pairs_in_span == 1
    assert report.realized == 0
    assert report.reachable == 1  # 3 <= 2*2 budget
    assert report.mismatch_histogram[3] == 1


def test_unreachable_with_tiny_budget():
    d = pair_design(CellArchitecture.CLOSED_M1, 10, 14)
    params = OptParams.for_arch(d.tech.arch)
    report = analyze_opportunities(d, params, budget_sites=1)
    assert report.reachable == 0


def test_conventional_has_no_opportunities():
    d = pair_design(CellArchitecture.CONV_12T, 10, 11)
    params = OptParams.for_arch(d.tech.arch)
    report = analyze_opportunities(d, params)
    assert report.pairs_in_span == 0
    assert report.realized_fraction == 0.0


def test_openm1_overlap_shortfall():
    d = pair_design(CellArchitecture.OPEN_M1, 10, 10)  # overlapping
    params = OptParams.for_arch(d.tech.arch)
    report = analyze_opportunities(d, params)
    assert report.realized == 1
    far = pair_design(CellArchitecture.OPEN_M1, 10, 30)
    report_far = analyze_opportunities(far, params)
    assert report_far.realized == 0
    assert report_far.pairs_in_span == 1


def test_full_design_headroom_matches_optimizer_direction():
    """Optimization consumes headroom: realized fraction rises."""
    from repro.core import ParamSet, vm1_opt

    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    d = generate_design("aes", tech, lib, scale=0.012, seed=3)
    place_design(d, seed=1)
    params = OptParams.for_arch(
        tech.arch, sequence=(ParamSet.square(1.0, 3, 1),),
        time_limit=3.0, theta=0.05,
    )
    before = analyze_opportunities(d, params)
    vm1_opt(d, params)
    after = analyze_opportunities(d, params)
    assert after.realized > before.realized
    assert before.reachable >= before.realized
