"""Tests for the global objective (CalculateObj)."""

import pytest

from repro.core import OptParams, alignment_stats, calculate_objective
from repro.geometry import Rect
from repro.library import build_library
from repro.netlist import Design
from repro.tech import CellArchitecture, make_tech


def two_inv_design(arch, col0, row0, col1, row1, flip1=False):
    tech = make_tech(arch)
    lib = build_library(tech)
    die = Rect(0, 0, 60 * tech.site_width, 6 * tech.row_height)
    d = Design("t", tech, die)
    d.add_instance("u0", lib.macro("INV_X1_RVT"))
    d.place("u0", column=col0, row=row0)
    d.add_instance("u1", lib.macro("INV_X1_RVT"))
    d.place("u1", column=col1, row=row1, flipped=flip1)
    d.add_net("n")
    d.connect("n", "u0", "ZN")
    d.connect("n", "u1", "A")
    return d


def test_closedm1_alignment_counted():
    # ZN at col0+2 = 12, A at col1+1 = 12: aligned, adjacent rows.
    d = two_inv_design(CellArchitecture.CLOSED_M1, 10, 0, 11, 1)
    params = OptParams.for_arch(d.tech.arch)
    stats = alignment_stats(d, params)
    assert stats.num_aligned == 1


def test_closedm1_misalignment_not_counted():
    d = two_inv_design(CellArchitecture.CLOSED_M1, 10, 0, 12, 1)
    params = OptParams.for_arch(d.tech.arch)
    assert alignment_stats(d, params).num_aligned == 0


def test_closedm1_gamma_limits_vertical_span():
    d = two_inv_design(CellArchitecture.CLOSED_M1, 10, 0, 11, 3)
    params = OptParams.for_arch(d.tech.arch)  # gamma = 1
    assert alignment_stats(d, params).num_aligned == 0
    wide = OptParams.for_arch(d.tech.arch, gamma=3)
    assert alignment_stats(d, wide).num_aligned == 1


def test_openm1_overlap_counted_with_length():
    d = two_inv_design(CellArchitecture.OPEN_M1, 10, 0, 10, 1)
    params = OptParams.for_arch(d.tech.arch)
    stats = alignment_stats(d, params)
    assert stats.num_aligned == 1
    iv0 = d.instances["u0"].pin_x_interval("ZN")
    iv1 = d.instances["u1"].pin_x_interval("A")
    assert stats.total_overlap == iv0.overlap_length(iv1) - params.delta


def test_openm1_disjoint_not_counted():
    d = two_inv_design(CellArchitecture.OPEN_M1, 10, 0, 30, 1)
    params = OptParams.for_arch(d.tech.arch)
    assert alignment_stats(d, params).num_aligned == 0


def test_objective_combines_terms():
    d = two_inv_design(CellArchitecture.CLOSED_M1, 10, 0, 11, 1)
    params = OptParams.for_arch(d.tech.arch, alpha=500.0)
    obj = calculate_objective(d, params)
    assert obj == pytest.approx(d.total_hpwl() - 500.0)


def test_alpha_zero_is_pure_hpwl():
    d = two_inv_design(CellArchitecture.CLOSED_M1, 10, 0, 11, 1)
    params = OptParams.for_arch(d.tech.arch, alpha=0.0)
    assert calculate_objective(d, params) == pytest.approx(
        d.total_hpwl()
    )


def test_openm1_epsilon_term():
    d = two_inv_design(CellArchitecture.OPEN_M1, 10, 0, 10, 1)
    base = OptParams.for_arch(d.tech.arch, alpha=0.0, epsilon=0.0)
    with_eps = OptParams.for_arch(d.tech.arch, alpha=0.0, epsilon=2.0)
    stats = alignment_stats(d, base)
    diff = calculate_objective(d, base) - calculate_objective(d, with_eps)
    assert diff == pytest.approx(2.0 * stats.total_overlap)


def test_high_degree_nets_skipped():
    d = two_inv_design(CellArchitecture.CLOSED_M1, 10, 0, 11, 1)
    params = OptParams.for_arch(d.tech.arch, max_net_degree=1)
    assert alignment_stats(d, params).num_aligned == 0


def test_conv12t_has_no_alignment_term():
    d = two_inv_design(CellArchitecture.CONV_12T, 10, 0, 11, 1)
    params = OptParams.for_arch(d.tech.arch)
    assert alignment_stats(d, params).num_aligned == 0
    assert calculate_objective(d, params) == pytest.approx(
        d.total_hpwl()
    )


def test_net_subset_evaluation():
    d = two_inv_design(CellArchitecture.CLOSED_M1, 10, 0, 11, 1)
    params = OptParams.for_arch(d.tech.arch)
    full = calculate_objective(d, params)
    subset = calculate_objective(d, params, nets=[d.nets["n"]])
    assert full == pytest.approx(subset)  # only one net exists
    empty = calculate_objective(d, params, nets=[])
    assert empty == 0.0
