"""Tests for the window MILP formulation — §3.1 / §3.2 semantics."""

import pytest

from repro.core import OptParams, Window, build_window_model
from repro.core.formulation import apply_solution
from repro.core.objective import alignment_stats
from repro.geometry import Rect
from repro.library import build_library
from repro.milp import HighsBackend
from repro.netlist import Design
from repro.tech import CellArchitecture, make_tech

SOLVER = HighsBackend()


def make_design(arch, placements, macro="INV_X1_RVT", wire=True):
    tech = make_tech(arch)
    lib = build_library(tech)
    die = Rect(0, 0, 40 * tech.site_width, 4 * tech.row_height)
    d = Design("t", tech, die)
    for i, (col, row) in enumerate(placements):
        d.add_instance(f"u{i}", lib.macro(macro))
        d.place(f"u{i}", column=col, row=row)
    if wire and len(placements) >= 2:
        d.add_net("n")
        u0 = d.instances["u0"].macro
        u1 = d.instances["u1"].macro
        d.connect("n", "u0", u0.output_pins[0].name)
        d.connect("n", "u1", u1.input_pins[0].name)
    return d


def whole_die_window(d):
    return Window(0, 0, d.die)


def solve_window(d, params, lx=3, ly=1, allow_flip=False):
    problem = build_window_model(
        d, whole_die_window(d), params, lx=lx, ly=ly,
        allow_flip=allow_flip,
    )
    assert problem is not None
    solution = SOLVER.solve(problem.model)
    assert solution.status.has_solution
    apply_solution(d, problem, solution)
    return problem, solution


def test_alpha_drives_alignment_closedm1():
    """With a large α the MILP aligns the INV pair; with α=0 it does
    not bother (the pair is 2 sites off; aligning costs HPWL)."""
    d = make_design(CellArchitecture.CLOSED_M1, [(10, 0), (13, 1)])
    params = OptParams.for_arch(d.tech.arch, alpha=5000.0)
    solve_window(d, params)
    assert d.check_legal() == []
    assert alignment_stats(d, params).num_aligned == 1

    d0 = make_design(CellArchitecture.CLOSED_M1, [(10, 0), (13, 1)])
    zero = OptParams.for_arch(d0.tech.arch, alpha=0.0)
    solve_window(d0, zero)
    # Pure HPWL: cells pulled together but no reason to align exactly
    # beyond what HPWL minimization gives for free.
    assert d0.total_hpwl() <= 2 * d.total_hpwl()


def test_milp_never_worsens_objective():
    """Identity is always feasible, so the optimum cannot exceed the
    initial objective."""
    d = make_design(CellArchitecture.CLOSED_M1, [(5, 0), (20, 2)])
    params = OptParams.for_arch(d.tech.arch)
    from repro.core.objective import calculate_objective

    before = calculate_objective(d, params)
    solve_window(d, params)
    after = calculate_objective(d, params)
    assert after <= before + 1e-6


def test_site_packing_prevents_overlap():
    """Two cells squeezed toward each other must not overlap."""
    d = make_design(CellArchitecture.CLOSED_M1, [(10, 0), (14, 0)])
    params = OptParams.for_arch(d.tech.arch, alpha=10**6)
    solve_window(d, params, lx=4, ly=0)
    assert d.check_legal() == []


def test_boundary_cells_block_sites():
    """A cell straddling the window boundary is immovable and its
    sites are unavailable to movable cells."""
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    die = Rect(0, 0, 40 * tech.site_width, 2 * tech.row_height)
    d = Design("t", tech, die)
    d.add_instance("in_w", lib.macro("INV_X1_RVT"))
    d.place("in_w", column=5, row=0)
    d.add_instance("straddle", lib.macro("INV_X1_RVT"))
    d.place("straddle", column=9, row=0)  # covers sites 9..12
    window = Window(0, 0, Rect(0, 0, 10 * tech.site_width,
                               2 * tech.row_height))
    params = OptParams.for_arch(tech.arch)
    problem = build_window_model(
        d, window, params, lx=4, ly=0, allow_flip=False
    )
    assert problem.movable == ["in_w"]
    for cand in problem.candidates["in_w"]:
        assert cand.column + 4 <= 9  # never into the straddler
    solution = SOLVER.solve(problem.model)
    apply_solution(d, problem, solution)
    assert d.check_legal() == []


def test_flip_only_pass_aligns():
    """The f=1 pass (no displacement) can align via mirroring."""
    d = make_design(CellArchitecture.CLOSED_M1, [(10, 0), (10, 1)])
    params = OptParams.for_arch(d.tech.arch, alpha=5000.0)
    assert alignment_stats(d, params).num_aligned == 0
    solve_window(d, params, lx=0, ly=0, allow_flip=True)
    assert alignment_stats(d, params).num_aligned == 1
    assert d.instances["u1"].flipped or d.instances["u0"].flipped


def test_openm1_overlap_objective():
    """OpenM1: the MILP creates pin overlap where ClosedM1-style exact
    alignment is unnecessary."""
    d = make_design(
        CellArchitecture.OPEN_M1, [(5, 0), (15, 1)], macro="NAND2_X1_RVT"
    )
    # Wire ZN(u0) -> A1(u1).
    params = OptParams.for_arch(d.tech.arch, alpha=8000.0)
    before = alignment_stats(d, params)
    assert before.num_aligned == 0
    solve_window(d, params, lx=6, ly=1)
    after = alignment_stats(d, params)
    assert after.num_aligned == 1
    assert d.check_legal() == []


def test_openm1_epsilon_prefers_longer_overlap():
    """With ε large, the chosen placement maximizes overlap length,
    not just the indicator."""
    d1 = make_design(CellArchitecture.OPEN_M1, [(5, 0), (12, 1)])
    p_ind = OptParams.for_arch(d1.tech.arch, alpha=4000.0, epsilon=0.0)
    solve_window(d1, p_ind, lx=6, ly=0)
    s1 = alignment_stats(d1, p_ind)

    d2 = make_design(CellArchitecture.OPEN_M1, [(5, 0), (12, 1)])
    p_eps = OptParams.for_arch(d2.tech.arch, alpha=4000.0, epsilon=50.0)
    solve_window(d2, p_eps, lx=6, ly=0)
    s2 = alignment_stats(d2, p_eps)
    assert s2.num_aligned >= s1.num_aligned
    assert s2.total_overlap >= s1.total_overlap


def test_gamma_blocks_far_pairs():
    """Pins that cannot come within γ rows under any candidate get no
    alignment variable at all (sound pruning)."""
    d = make_design(CellArchitecture.CLOSED_M1, [(10, 0), (11, 3)])
    params = OptParams.for_arch(d.tech.arch)  # gamma = 1
    problem = build_window_model(
        d, whole_die_window(d), params, lx=3, ly=0, allow_flip=False
    )
    assert problem.num_pairs == 0
    # With ly=1 the cells can reach rows 1 and 2: pair kept.
    problem2 = build_window_model(
        d, whole_die_window(d), params, lx=3, ly=1, allow_flip=False
    )
    assert problem2.num_pairs == 1


def test_empty_window_returns_none():
    d = make_design(CellArchitecture.CLOSED_M1, [(10, 0)], wire=False)
    window = Window(
        0, 0, Rect(20 * 36, 0, 30 * 36, d.tech.row_height)
    )
    params = OptParams.for_arch(d.tech.arch)
    assert build_window_model(
        d, window, params, lx=2, ly=0, allow_flip=False
    ) is None


def test_pads_anchor_hpwl():
    """A net with an IO pad keeps the pad inside its bounding box, so
    the MILP cannot pretend HPWL vanishes."""
    from repro.geometry import Point

    d = make_design(CellArchitecture.CLOSED_M1, [(10, 0)], wire=False)
    d.add_net("n")
    d.connect("n", "u0", "ZN")
    d.nets["n"].pads.append(Point(0, 0))
    params = OptParams.for_arch(d.tech.arch, alpha=0.0)
    problem, solution = None, None
    problem = build_window_model(
        d, whole_die_window(d), params, lx=5, ly=1, allow_flip=False
    )
    solution = SOLVER.solve(problem.model)
    apply_solution(d, problem, solution)
    # Pure HPWL pull: the cell walks toward the pad at (0, 0).
    assert d.column_of(d.instances["u0"]) == 5
    assert d.row_of(d.instances["u0"]) == 0


def test_model_objective_matches_local_objective():
    """The MILP objective evaluated at its solution equals the real
    (recomputed) local objective up to the tie-break budget — no
    formulation drift beyond the deliberate λ perturbation."""
    from repro.core.formulation import _TIE_BREAK_BUDGET
    from repro.core.objective import calculate_objective

    d = make_design(CellArchitecture.CLOSED_M1, [(10, 0), (13, 1)])
    params = OptParams.for_arch(d.tech.arch, alpha=700.0)
    problem = build_window_model(
        d, whole_die_window(d), params, lx=3, ly=1, allow_flip=False
    )
    solution = SOLVER.solve(problem.model)
    apply_solution(d, problem, solution)
    nets = [d.nets[name] for name in problem.nets]
    drift = solution.objective - calculate_objective(d, params, nets)
    assert 0.0 <= drift < _TIE_BREAK_BUDGET
