"""Tests for window partitioning and independent-family selection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import independent_families, partition
from repro.geometry import Rect
from repro.library import build_library
from repro.netlist import Design
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


def make_design(cols=100, rows=12):
    die = Rect(0, 0, cols * TECH.site_width, rows * TECH.row_height)
    return Design("t", TECH, die)


def test_partition_covers_die():
    d = make_design()
    windows = partition(d, tx=0, ty=0, bw=900, bh=810)
    area = sum(w.rect.area for w in windows)
    assert area == d.die.area
    for w in windows:
        assert d.die.contains_rect(w.rect)


def test_partition_windows_disjoint():
    d = make_design()
    windows = partition(d, tx=450, ty=405, bw=900, bh=810)
    for i, a in enumerate(windows):
        for b in windows[i + 1 :]:
            assert not a.rect.overlaps_open(b.rect)


def test_shift_changes_boundaries():
    d = make_design()
    w0 = partition(d, tx=0, ty=0, bw=900, bh=810)
    w1 = partition(d, tx=450, ty=405, bw=900, bh=810)
    bounds0 = {w.rect.xlo for w in w0}
    bounds1 = {w.rect.xlo for w in w1}
    assert bounds0 != bounds1
    # Shifted grid still tiles the die.
    assert sum(w.rect.area for w in w1) == d.die.area


def test_families_have_disjoint_projections():
    """The §4.1 guarantee (Figure 3): windows optimized in parallel
    share no x or y projection."""
    d = make_design()
    windows = partition(d, tx=0, ty=0, bw=900, bh=810)
    families = independent_families(windows)
    assert sum(len(f) for f in families) == len(windows)
    for family in families:
        for i, a in enumerate(family):
            for b in family[i + 1 :]:
                # Open-interval disjointness: sharing a single
                # boundary coordinate is fine (no cell can live in a
                # zero-width strip).
                x_disjoint = (
                    a.rect.xhi <= b.rect.xlo or b.rect.xhi <= a.rect.xlo
                )
                y_disjoint = (
                    a.rect.yhi <= b.rect.ylo or b.rect.yhi <= a.rect.ylo
                )
                assert x_disjoint and y_disjoint


def test_family_count_near_sqrt():
    d = make_design(cols=200, rows=24)
    windows = partition(d, tx=0, ty=0, bw=720, bh=1080)
    families = independent_families(windows)
    import math

    assert len(families) <= 2 * math.isqrt(len(windows)) + 2


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 2000),
    st.integers(0, 2000),
    st.integers(300, 3000),
    st.integers(300, 3000),
)
def test_partition_properties(tx, ty, bw, bh):
    """Property: any offset/size tiles the die without overlap."""
    d = make_design()
    windows = partition(d, tx=tx, ty=ty, bw=bw, bh=bh)
    # Full area coverage within a sliver tolerance: a leading and a
    # trailing sliver per axis may be dropped (each thinner than one
    # row/site, so no cell can ever be inside one).
    area = sum(w.rect.area for w in windows)
    sliver = 2 * (
        d.die.width * (TECH.row_height - 1)
        + d.die.height * (TECH.site_width - 1)
    )
    assert area >= d.die.area - sliver
    for i, a in enumerate(windows):
        for b in windows[i + 1 :]:
            assert not a.rect.overlaps_open(b.rect)
    for family in independent_families(windows):
        for i, a in enumerate(family):
            for b in family[i + 1 :]:
                assert (
                    a.rect.xhi <= b.rect.xlo or b.rect.xhi <= a.rect.xlo
                )
                assert (
                    a.rect.yhi <= b.rect.ylo or b.rect.yhi <= a.rect.ylo
                )


def test_empty_when_no_windows():
    assert independent_families([]) == []


# ------------------------------------------------------------------
# Adversarial family-selection cases.  Parallel correctness of the
# repro.runtime engine rests on these invariants, so they get explicit
# coverage beyond the property test above.
# ------------------------------------------------------------------
def _share_edge(a, b) -> bool:
    """True when two window rects share a boundary segment of
    positive length (corner-point contact does not count)."""
    x_overlap = a.xlo < b.xhi and b.xlo < a.xhi
    y_overlap = a.ylo < b.yhi and b.ylo < a.yhi
    x_touch = a.xhi == b.xlo or b.xhi == a.xlo
    y_touch = a.yhi == b.ylo or b.yhi == a.ylo
    return (x_overlap and y_touch) or (y_overlap and x_touch)


def test_edge_touching_windows_never_share_a_family():
    """Windows sharing an edge segment share a projection on one axis
    and must land in different families.  (Corner-point contact is
    fine: anti-diagonal neighbors like (1,0)/(0,1) have equal ix+iy
    and do co-habit a family — their open-interval projections are
    disjoint, and no cell can live on a zero-width boundary.)"""
    d = make_design()
    for tx, ty in [(0, 0), (450, 405), (899, 809)]:
        windows = partition(d, tx=tx, ty=ty, bw=900, bh=810)
        family_of = {}
        for fam_idx, family in enumerate(
            independent_families(windows)
        ):
            for w in family:
                family_of[(w.ix, w.iy)] = fam_idx
        edge_pairs = 0
        for w in windows:
            for other in windows:
                if w is not other and _share_edge(w.rect, other.rect):
                    edge_pairs += 1
                    assert (
                        family_of[(w.ix, w.iy)]
                        != family_of[(other.ix, other.iy)]
                    )
        assert edge_pairs > 0


def test_single_window_partition_is_one_singleton_family():
    """A window bigger than the die yields one window, one family."""
    d = make_design()
    windows = partition(
        d, tx=0, ty=0, bw=d.die.width + 1000, bh=d.die.height + 1000
    )
    assert len(windows) == 1
    families = independent_families(windows)
    assert [len(f) for f in families] == [1]


def test_single_row_and_column_grids_yield_singleton_families():
    """A 1xN (or Nx1) grid shares a projection axis across every
    window pair, so every family must be a singleton."""
    d = make_design(cols=200, rows=12)
    one_row = partition(
        d, tx=0, ty=0, bw=900, bh=d.die.height + 100
    )
    assert len({w.iy for w in one_row}) == 1 and len(one_row) > 1
    for family in independent_families(one_row):
        assert len(family) == 1

    one_col = partition(
        d, tx=0, ty=0, bw=d.die.width + 100, bh=810
    )
    assert len({w.ix for w in one_col}) == 1 and len(one_col) > 1
    for family in independent_families(one_col):
        assert len(family) == 1


def _placed_design(scale=0.015, seed=3):
    from repro.netlist import generate_design
    from repro.placement import place_design

    design = generate_design("aes", TECH, LIB, scale=scale, seed=seed)
    place_design(design, seed=1)
    return design


def test_family_windows_share_no_instance_or_site():
    """No movable cell (and no site it could occupy) belongs to two
    windows of one family: the window MILPs of a family touch disjoint
    λ variables and disjoint site-packing constraints, which is what
    lets them solve concurrently without a shared-resource conflict."""
    design = _placed_design()
    for tx, ty in [(0, 0), (625, 540)]:
        windows = partition(design, tx, ty, 1250, 1080)
        for family in independent_families(windows):
            seen_instances: set[str] = set()
            for window in family:
                names = {
                    inst.name
                    for inst in design.instances_in(window.rect)
                }
                assert not (names & seen_instances)
                seen_instances |= names


def test_family_windows_shared_nets_have_disjoint_projections():
    """Adversarial reality check: nets *can* span two windows of one
    family (long nets cross the die), and §4.1 still allows solving
    them together because the windows' x/y projections are disjoint —
    each window's ΔHPWL contribution is exact (Figure 4 case (b)).
    This documents the actual invariant the parallel engine relies
    on: disjoint projections, not disjoint net sets."""
    design = _placed_design()
    windows = partition(design, 0, 0, 1250, 1080)
    families = independent_families(windows)
    shared_net_pairs = 0
    for family in families:
        nets_of = []
        for window in family:
            names = {
                inst.name for inst in design.instances_in(window.rect)
            }
            nets_of.append(
                (window,
                 {n.name for n in design.nets_of_instances(names)})
            )
        for i, (wa, nets_a) in enumerate(nets_of):
            for wb, nets_b in nets_of[i + 1 :]:
                if nets_a & nets_b:
                    shared_net_pairs += 1
                    # The safety condition for the shared net:
                    assert (
                        wa.rect.xhi <= wb.rect.xlo
                        or wb.rect.xhi <= wa.rect.xlo
                    )
                    assert (
                        wa.rect.yhi <= wb.rect.ylo
                        or wb.rect.yhi <= wa.rect.ylo
                    )
    # The case must actually occur, or this test proves nothing.
    assert shared_net_pairs > 0


def test_families_partition_is_exact():
    """Every window lands in exactly one family (no loss, no dupes),
    even on grids whose sliver-dropping makes them irregular."""
    d = make_design(cols=97, rows=11)
    windows = partition(d, tx=123, ty=77, bw=731, bh=851)
    families = independent_families(windows)
    flattened = [w for family in families for w in family]
    assert len(flattened) == len(windows)
    assert {(w.ix, w.iy) for w in flattened} == {
        (w.ix, w.iy) for w in windows
    }
