"""Tests for window partitioning and independent-family selection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import independent_families, partition
from repro.geometry import Rect
from repro.library import build_library
from repro.netlist import Design
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


def make_design(cols=100, rows=12):
    die = Rect(0, 0, cols * TECH.site_width, rows * TECH.row_height)
    return Design("t", TECH, die)


def test_partition_covers_die():
    d = make_design()
    windows = partition(d, tx=0, ty=0, bw=900, bh=810)
    area = sum(w.rect.area for w in windows)
    assert area == d.die.area
    for w in windows:
        assert d.die.contains_rect(w.rect)


def test_partition_windows_disjoint():
    d = make_design()
    windows = partition(d, tx=450, ty=405, bw=900, bh=810)
    for i, a in enumerate(windows):
        for b in windows[i + 1 :]:
            assert not a.rect.overlaps_open(b.rect)


def test_shift_changes_boundaries():
    d = make_design()
    w0 = partition(d, tx=0, ty=0, bw=900, bh=810)
    w1 = partition(d, tx=450, ty=405, bw=900, bh=810)
    bounds0 = {w.rect.xlo for w in w0}
    bounds1 = {w.rect.xlo for w in w1}
    assert bounds0 != bounds1
    # Shifted grid still tiles the die.
    assert sum(w.rect.area for w in w1) == d.die.area


def test_families_have_disjoint_projections():
    """The §4.1 guarantee (Figure 3): windows optimized in parallel
    share no x or y projection."""
    d = make_design()
    windows = partition(d, tx=0, ty=0, bw=900, bh=810)
    families = independent_families(windows)
    assert sum(len(f) for f in families) == len(windows)
    for family in families:
        for i, a in enumerate(family):
            for b in family[i + 1 :]:
                # Open-interval disjointness: sharing a single
                # boundary coordinate is fine (no cell can live in a
                # zero-width strip).
                x_disjoint = (
                    a.rect.xhi <= b.rect.xlo or b.rect.xhi <= a.rect.xlo
                )
                y_disjoint = (
                    a.rect.yhi <= b.rect.ylo or b.rect.yhi <= a.rect.ylo
                )
                assert x_disjoint and y_disjoint


def test_family_count_near_sqrt():
    d = make_design(cols=200, rows=24)
    windows = partition(d, tx=0, ty=0, bw=720, bh=1080)
    families = independent_families(windows)
    import math

    assert len(families) <= 2 * math.isqrt(len(windows)) + 2


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 2000),
    st.integers(0, 2000),
    st.integers(300, 3000),
    st.integers(300, 3000),
)
def test_partition_properties(tx, ty, bw, bh):
    """Property: any offset/size tiles the die without overlap."""
    d = make_design()
    windows = partition(d, tx=tx, ty=ty, bw=bw, bh=bh)
    # Full area coverage within a sliver tolerance: a leading and a
    # trailing sliver per axis may be dropped (each thinner than one
    # row/site, so no cell can ever be inside one).
    area = sum(w.rect.area for w in windows)
    sliver = 2 * (
        d.die.width * (TECH.row_height - 1)
        + d.die.height * (TECH.site_width - 1)
    )
    assert area >= d.die.area - sliver
    for i, a in enumerate(windows):
        for b in windows[i + 1 :]:
            assert not a.rect.overlaps_open(b.rect)
    for family in independent_families(windows):
        for i, a in enumerate(family):
            for b in family[i + 1 :]:
                assert (
                    a.rect.xhi <= b.rect.xlo or b.rect.xhi <= a.rect.xlo
                )
                assert (
                    a.rect.yhi <= b.rect.ylo or b.rect.yhi <= a.rect.ylo
                )


def test_empty_when_no_windows():
    assert independent_families([]) == []
