"""Tests for Algorithm 2 (DistOpt)."""

import pytest

from repro.core import OptParams
from repro.core.distopt import dist_opt
from repro.core.objective import calculate_objective
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.tech import CellArchitecture, make_tech


@pytest.fixture(scope="module")
def placed():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("aes", tech, lib, scale=0.015, seed=3)
    place_design(design, seed=1)
    return design


def run_pass(design, params, **kwargs):
    defaults = dict(
        tx=0, ty=0, bw=1250, bh=1080, lx=3, ly=1, allow_flip=False
    )
    defaults.update(kwargs)
    return dist_opt(design, params, **defaults)


def test_objective_never_increases(placed):
    snap = placed.placement_snapshot()
    try:
        params = OptParams.for_arch(placed.tech.arch, time_limit=5.0)
        before = calculate_objective(placed, params)
        result = run_pass(placed, params)
        assert result.objective <= before + 1e-6
        assert result.windows_built > 0
    finally:
        placed.restore_placement(snap)


def test_legality_preserved(placed):
    snap = placed.placement_snapshot()
    try:
        params = OptParams.for_arch(placed.tech.arch, time_limit=5.0)
        run_pass(placed, params)
        assert placed.check_legal() == []
    finally:
        placed.restore_placement(snap)


def test_alignment_increases_with_alpha(placed):
    from repro.core.objective import alignment_stats

    snap = placed.placement_snapshot()
    params = OptParams.for_arch(
        placed.tech.arch, alpha=5000.0, time_limit=5.0
    )
    try:
        before = alignment_stats(placed, params).num_aligned
        run_pass(placed, params)
        after = alignment_stats(placed, params).num_aligned
        assert after > before
    finally:
        placed.restore_placement(snap)


def test_flip_only_pass_moves_nothing_off_site(placed):
    snap = placed.placement_snapshot()
    try:
        params = OptParams.for_arch(placed.tech.arch, time_limit=5.0)
        before_pos = {
            name: (inst.x, inst.y)
            for name, inst in placed.instances.items()
        }
        run_pass(placed, params, lx=0, ly=0, allow_flip=True)
        for name, inst in placed.instances.items():
            assert (inst.x, inst.y) == before_pos[name]
        assert placed.check_legal() == []
    finally:
        placed.restore_placement(snap)


def test_modeled_parallel_time_not_more_than_wall(placed):
    snap = placed.placement_snapshot()
    try:
        params = OptParams.for_arch(placed.tech.arch, time_limit=5.0)
        result = run_pass(placed, params)
        assert 0 < result.modeled_parallel_seconds <= (
            result.wall_seconds + 1e-9
        )
        assert result.family_count >= 1
    finally:
        placed.restore_placement(snap)


def test_determinism(placed):
    params = OptParams.for_arch(placed.tech.arch, time_limit=5.0)
    snap = placed.placement_snapshot()
    run_pass(placed, params)
    first = placed.placement_snapshot()
    placed.restore_placement(snap)
    run_pass(placed, params)
    second = placed.placement_snapshot()
    placed.restore_placement(snap)
    assert first == second
