"""Tests for repro.core.windowcache — LRU bounding of the fixpoint
cache.

Semantic coverage (cache hits skip only provably-unchanged windows)
lives in the hot-path equivalence suite; these tests pin the memory
bound: the cache never exceeds ``max_entries``, evicts
least-recently-used first, and keeps the cap across checkpoint
restores.
"""

import pytest

from repro.core.windowcache import (
    DEFAULT_MAX_ENTRIES,
    CacheToken,
    WindowSolveCache,
)


def token(k: int, content: bytes = b"\x01") -> CacheToken:
    return CacheToken(key=(k, 0, 0, 0, 0, 0, False), content=content)


def test_default_capacity():
    cache = WindowSolveCache()
    assert cache.max_entries == DEFAULT_MAX_ENTRIES
    assert len(cache) == 0


def test_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        WindowSolveCache(max_entries=0)


def test_store_evicts_oldest_at_capacity():
    cache = WindowSolveCache(max_entries=3)
    for k in (1, 2, 3):
        cache.store(token(k))
    assert len(cache) == 3 and cache.evictions == 0
    cache.store(token(4))
    assert len(cache) == 3
    assert cache.evictions == 1
    assert token(1).key not in cache._entries
    assert token(4).key in cache._entries


def test_restore_refreshes_recency():
    cache = WindowSolveCache(max_entries=3)
    for k in (1, 2, 3):
        cache.store(token(k))
    # Re-storing key 1 marks it most recent; capacity unchanged.
    cache.store(token(1, b"\x02"))
    assert len(cache) == 3 and cache.evictions == 0
    cache.store(token(4))
    # Key 2 (now the stalest) was evicted, not key 1.
    assert token(2).key not in cache._entries
    assert cache._entries[token(1).key] == b"\x02"


def test_eviction_is_lru_not_fifo():
    cache = WindowSolveCache(max_entries=2)
    cache.store(token(1))
    cache.store(token(2))
    # Touch key 1 through the same path a probe hit takes.
    cache._entries[token(1).key] = cache._entries.pop(token(1).key)
    cache.store(token(3))
    assert token(1).key in cache._entries
    assert token(2).key not in cache._entries


def test_import_state_respects_capacity():
    big = WindowSolveCache(max_entries=100)
    for k in range(10):
        big.store(token(k))
    snapshot = big.export_state()
    small = WindowSolveCache(max_entries=4)
    small.import_state(snapshot)
    assert len(small) == 4
    assert small.evictions == 6
    # Determinism: importing the same snapshot keeps the same keys.
    again = WindowSolveCache(max_entries=4)
    again.import_state(snapshot)
    assert again._entries == small._entries


def test_roundtrip_below_capacity_is_lossless():
    cache = WindowSolveCache(max_entries=10)
    for k in range(5):
        cache.store(token(k, bytes([k])))
    restored = WindowSolveCache(max_entries=10)
    restored.import_state(cache.export_state())
    assert restored._entries == cache._entries
    assert restored.evictions == 0
