"""Tests for SCP candidate enumeration."""

import pytest

from repro.geometry import Orientation, Rect
from repro.core import enumerate_candidates
from repro.library import build_library
from repro.netlist import Design
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


@pytest.fixture()
def design():
    die = Rect(0, 0, 40 * TECH.site_width, 4 * TECH.row_height)
    d = Design("t", TECH, die)
    d.add_instance("u1", LIB.macro("INV_X1_RVT"))
    d.place("u1", column=10, row=1)
    return d


def test_identity_candidate_first(design):
    inst = design.instances["u1"]
    cands = enumerate_candidates(
        design, inst, design.die, lx=2, ly=1, allow_flip=True
    )
    first = cands[0]
    assert (first.column, first.row, first.flipped) == (10, 1, False)
    assert first.orientation is Orientation.FS


def test_candidate_count(design):
    inst = design.instances["u1"]
    cands = enumerate_candidates(
        design, inst, design.die, lx=2, ly=1, allow_flip=True
    )
    # 5 columns x 3 rows x 2 flips, all interior: 30
    assert len(cands) == 30
    keys = {(c.column, c.row, c.flipped) for c in cands}
    assert len(keys) == len(cands)


def test_zero_perturbation_flip_only(design):
    inst = design.instances["u1"]
    cands = enumerate_candidates(
        design, inst, design.die, lx=0, ly=0, allow_flip=True
    )
    assert len(cands) == 2
    assert {c.flipped for c in cands} == {False, True}
    assert all(c.column == 10 and c.row == 1 for c in cands)


def test_region_containment(design):
    inst = design.instances["u1"]
    region = Rect(
        9 * TECH.site_width,
        TECH.row_height,
        16 * TECH.site_width,
        2 * TECH.row_height,
    )
    cands = enumerate_candidates(
        design, inst, region, lx=4, ly=2, allow_flip=False
    )
    for cand in cands:
        footprint = Rect(
            cand.x, cand.y, cand.x + inst.width, cand.y + inst.height
        )
        assert region.contains_rect(footprint)
    assert all(c.row == 1 for c in cands)  # region is one row tall
    assert {c.column for c in cands} == {9, 10, 11, 12}


def test_die_boundary_clipping(design):
    design.place("u1", column=0, row=0)
    inst = design.instances["u1"]
    cands = enumerate_candidates(
        design, inst, design.die, lx=3, ly=2, allow_flip=False
    )
    assert all(c.column >= 0 and c.row >= 0 for c in cands)
    assert min(c.column for c in cands) == 0


def test_orientation_follows_row(design):
    inst = design.instances["u1"]
    cands = enumerate_candidates(
        design, inst, design.die, lx=0, ly=1, allow_flip=False
    )
    for cand in cands:
        assert cand.orientation is Orientation.for_row(
            cand.row, cand.flipped
        )


def test_covered_sites(design):
    inst = design.instances["u1"]
    cands = enumerate_candidates(
        design, inst, design.die, lx=0, ly=0, allow_flip=False
    )
    sites = list(cands[0].covered_sites(inst.macro.width_sites))
    assert sites == [(1, 10), (1, 11), (1, 12), (1, 13)]


def test_covered_sites_precomputed_at_construction(design):
    """Satellite: every enumerated candidate carries its site tuple so
    the site-packing rows never recompute it per pair."""
    inst = design.instances["u1"]
    width = inst.macro.width_sites
    for cand in enumerate_candidates(
        design, inst, design.die, lx=2, ly=1, allow_flip=True
    ):
        assert cand.sites  # populated, not lazily derived
        assert cand.sites == tuple(
            (cand.row, col)
            for col in range(cand.column, cand.column + width)
        )
        assert cand.covered_sites(width) is cand.sites


def test_no_flips_when_flip_disabled(design):
    inst = design.instances["u1"]
    cands = enumerate_candidates(
        design, inst, design.die, lx=3, ly=2, allow_flip=False
    )
    assert cands
    assert all(not c.flipped for c in cands)


def test_zero_perturbation_no_flip_is_exactly_identity(design):
    inst = design.instances["u1"]
    cands = enumerate_candidates(
        design, inst, design.die, lx=0, ly=0, allow_flip=False
    )
    assert len(cands) == 1
    only = cands[0]
    assert (only.column, only.row, only.flipped) == (10, 1, False)
    assert (only.x, only.y) == (inst.x, inst.y)


def test_identity_always_first_with_perturbation(design):
    """The identity candidate is index 0 regardless of lx/ly/flip —
    the warm start and the presolve rely on that ordering."""
    inst = design.instances["u1"]
    for lx, ly, flip in [(1, 0, False), (3, 2, True), (0, 1, True)]:
        cands = enumerate_candidates(
            design, inst, design.die, lx=lx, ly=ly, allow_flip=flip
        )
        first = cands[0]
        assert (first.column, first.row, first.flipped) == (
            10, 1, False,
        )
