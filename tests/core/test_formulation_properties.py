"""Property tests of the window MILP: soundness on random designs.

For arbitrary small legal designs, the window MILP must (1) be
feasible (the identity placement is always a candidate), (2) never
return an objective above the initial local objective, (3) produce a
legal placement, and (4) report an objective that exactly matches the
re-evaluated placement — the formulation and the evaluator agree.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OptParams, Window, build_window_model
from repro.core.formulation import apply_solution
from repro.core.objective import calculate_objective
from repro.geometry import Rect
from repro.library import build_library
from repro.milp import HighsBackend
from repro.netlist import Design
from repro.tech import CellArchitecture, make_tech

SOLVER = HighsBackend(time_limit=10.0)
MACRO_NAMES = ("INV_X1_RVT", "NAND2_X1_RVT", "BUF_X1_RVT")


def random_design(arch, seed):
    rng = np.random.RandomState(seed)
    tech = make_tech(arch)
    lib = build_library(tech)
    die = Rect(0, 0, 40 * tech.site_width, 4 * tech.row_height)
    d = Design("t", tech, die)
    # Greedy legal placement of 4-8 random cells.
    frontier = [0, 0, 0, 0]
    n_cells = rng.randint(4, 9)
    for i in range(n_cells):
        macro = lib.macro(MACRO_NAMES[rng.randint(len(MACRO_NAMES))])
        row = int(rng.randint(4))
        gap = int(rng.randint(0, 5))
        col = frontier[row] + gap
        if col + macro.spec.width_sites > 40:
            continue
        name = f"u{i}"
        d.add_instance(name, macro)
        d.place(name, column=col, row=row,
                flipped=bool(rng.randint(2)))
        frontier[row] = col + macro.spec.width_sites
    names = sorted(d.instances)
    if len(names) < 2:
        return None
    # Random 2-3 pin nets.
    for k in range(max(2, len(names) - 2)):
        net = d.add_net(f"n{k}")
        members = rng.choice(
            len(names), size=min(len(names), 2 + (k % 2)),
            replace=False,
        )
        used_output = False
        for idx in members:
            inst = d.instances[names[idx]]
            pins = (
                inst.macro.output_pins
                if not used_output
                else inst.macro.input_pins
            )
            free = [
                p for p in pins if p.name not in inst.net_of_pin
            ]
            if not free:
                continue
            d.connect(net.name, names[idx], free[0].name)
            used_output = True
    return d


@settings(max_examples=20, deadline=None)
@given(
    st.sampled_from(
        [CellArchitecture.CLOSED_M1, CellArchitecture.OPEN_M1]
    ),
    st.integers(0, 10**6),
)
def test_window_milp_soundness(arch, seed):
    design = random_design(arch, seed)
    if design is None:
        return
    assert design.check_legal() == []
    params = OptParams.for_arch(arch, alpha=800.0, time_limit=10.0)
    window = Window(0, 0, design.die)
    problem = build_window_model(
        design, window, params, lx=3, ly=1, allow_flip=True
    )
    if problem is None:
        return
    nets = [design.nets[n] for n in problem.nets]
    before = calculate_objective(design, params, nets)

    solution = SOLVER.solve(problem.model)
    # (1) feasible — identity always exists.
    assert solution.status.has_solution
    apply_solution(design, problem, solution)
    after = calculate_objective(design, params, nets)
    # (2) never worse than the initial placement.
    assert after <= before + 1e-6
    # (3) legal.
    assert design.check_legal() == []
    # (4) model objective == re-evaluated objective, up to the
    # deliberate λ tie-break perturbation (always in [0, budget)).
    from repro.core.formulation import _TIE_BREAK_BUDGET

    drift = solution.objective - after
    assert -1e-6 <= drift < _TIE_BREAK_BUDGET
