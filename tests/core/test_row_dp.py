"""Tests for the row-DP baseline placer."""

import pytest

from repro.baseline import row_dp_refine
from repro.core import OptParams
from repro.core.objective import alignment_stats
from repro.geometry import Rect
from repro.library import build_library
from repro.netlist import Design, generate_design
from repro.placement import place_design
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


@pytest.fixture()
def placed():
    d = generate_design("aes", TECH, LIB, scale=0.02, seed=3)
    place_design(d, seed=1)
    return d


def test_improves_hpwl_and_stays_legal(placed):
    before = placed.total_hpwl()
    result = row_dp_refine(placed)
    assert placed.check_legal() == []
    assert result.initial_hpwl == before
    assert result.final_hpwl <= before
    assert result.final_hpwl == placed.total_hpwl()
    assert result.improvement >= 0.0
    assert result.moved_cells > 0


def test_preserves_row_and_order(placed):
    rows_before = {
        n: placed.row_of(i) for n, i in placed.instances.items()
    }
    order_before = {}
    for name, inst in placed.instances.items():
        order_before.setdefault(placed.row_of(inst), []).append(
            (inst.x, name)
        )
    row_dp_refine(placed)
    for name, inst in placed.instances.items():
        assert placed.row_of(inst) == rows_before[name]
    for row, pairs in order_before.items():
        want = [n for _, n in sorted(pairs)]
        got = sorted(
            (inst.x, n)
            for n, inst in placed.instances.items()
            if placed.row_of(inst) == row
        )
        assert [n for _, n in got] == want


def test_idempotent_at_fixed_point(placed):
    row_dp_refine(placed, max_sweeps=10)
    again = row_dp_refine(placed, max_sweeps=2)
    assert again.improvement <= 0.002


def test_single_cell_goes_to_median():
    die = Rect(0, 0, 60 * TECH.site_width, 2 * TECH.row_height)
    d = Design("t", TECH, die)
    d.add_instance("mov", LIB.macro("INV_X1_RVT"))
    d.place("mov", column=0, row=0)
    d.add_instance("anchor", LIB.macro("INV_X1_RVT"))
    d.place("anchor", column=40, row=1)
    d.instances["anchor"].fixed = True
    d.add_net("n")
    d.connect("n", "mov", "ZN")
    d.connect("n", "anchor", "A")
    before = d.total_hpwl()
    row_dp_refine(d)
    assert d.total_hpwl() < before
    assert abs(d.column_of(d.instances["mov"]) - 40) <= 2


def test_dp_baseline_cannot_bank_alignments(placed):
    """The §2 contrast: row-DP optimizes wirelength but leaves the
    alignment count essentially where it was."""
    params = OptParams.for_arch(TECH.arch)
    before = alignment_stats(placed, params).num_aligned
    result = row_dp_refine(placed)
    after = alignment_stats(placed, params).num_aligned
    assert result.improvement > 0.005  # it does optimize wirelength
    # Alignments move only incidentally (a few either way), nothing
    # like the multiples the MILP banks.
    assert after <= max(3 * max(before, 1), before + 5)
