"""Tests for OptParams and the parameter sequences."""

import pytest

from repro.core.params import (
    EXPTA3_SEQUENCES,
    OptParams,
    ParamSet,
    default_sequence,
)
from repro.tech import CellArchitecture


def test_for_arch_paper_alphas():
    closed = OptParams.for_arch(CellArchitecture.CLOSED_M1)
    opened = OptParams.for_arch(CellArchitecture.OPEN_M1)
    assert closed.alpha == 1200.0
    assert opened.alpha == 1000.0
    assert closed.gamma == 1
    assert opened.gamma == 3


def test_for_arch_overrides():
    params = OptParams.for_arch(
        CellArchitecture.CLOSED_M1, alpha=50.0, theta=0.2, gamma=2
    )
    assert params.alpha == 50.0
    assert params.theta == 0.2
    assert params.gamma == 2


def test_default_sequence_is_expta3_winner():
    seq = default_sequence()
    assert seq == (ParamSet.square(20.0, 4, 1),)
    assert EXPTA3_SEQUENCES[1] == seq


def test_expta3_sequences_match_paper():
    # Sequence 5 is the four-set sequence of §5.2.
    assert [
        (u.bw_um, u.lx, u.ly) for u in EXPTA3_SEQUENCES[5]
    ] == [(10.0, 3, 1), (10.0, 3, 0), (20.0, 3, 1), (20.0, 3, 0)]
    assert len(EXPTA3_SEQUENCES) == 5


def test_square_helper():
    u = ParamSet.square(12.5, 3, 1)
    assert u.bw_um == u.bh_um == 12.5
    assert (u.lx, u.ly) == (3, 1)


def test_defaults_are_paper_values():
    params = OptParams()
    assert params.beta == 1.0  # §5: "we use beta = 1"
    assert params.theta == 0.01  # "we use theta = 1%"
    assert params.net_beta is None
