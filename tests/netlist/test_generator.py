"""Tests for repro.netlist.generator — synthetic benchmarks."""

import pytest

from repro.library import build_library
from repro.netlist import DESIGN_PROFILES, generate_design
from repro.tech import CellArchitecture, make_tech


@pytest.fixture(scope="module")
def env():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    return tech, build_library(tech)


@pytest.fixture(scope="module")
def small_design(env):
    tech, lib = env
    return generate_design("aes", tech, lib, scale=0.03, seed=7)


def test_paper_instance_counts():
    """Profiles carry the Table 2 instance counts at scale 1."""
    assert DESIGN_PROFILES["m0"].instances == 9922
    assert DESIGN_PROFILES["aes"].instances == 12345
    assert DESIGN_PROFILES["jpeg"].instances == 54570
    assert DESIGN_PROFILES["vga"].instances == 68606


def test_scale_controls_size(env):
    tech, lib = env
    d = generate_design("m0", tech, lib, scale=0.02, seed=1)
    assert abs(len(d.instances) - 0.02 * 9922) < 0.02 * 9922 * 0.15


def test_determinism(env):
    tech, lib = env
    d1 = generate_design("aes", tech, lib, scale=0.02, seed=5)
    d2 = generate_design("aes", tech, lib, scale=0.02, seed=5)
    assert sorted(d1.instances) == sorted(d2.instances)
    for name in d1.instances:
        assert d1.instances[name].macro.name == d2.instances[name].macro.name
    assert sorted(d1.nets) == sorted(d2.nets)
    for name in d1.nets:
        assert d1.nets[name].pins == d2.nets[name].pins


def test_seed_changes_netlist(env):
    tech, lib = env
    d1 = generate_design("aes", tech, lib, scale=0.02, seed=5)
    d2 = generate_design("aes", tech, lib, scale=0.02, seed=6)
    same = all(
        d1.nets[n].pins == d2.nets[n].pins
        for n in d1.nets
        if n in d2.nets
    )
    assert not same


def test_every_input_driven_once(small_design):
    d = small_design
    for name, inst in d.instances.items():
        for pin in inst.macro.signal_pins:
            if pin.direction.value == "INPUT":
                assert pin.name in inst.net_of_pin, (name, pin.name)


def test_single_driver_per_net(small_design):
    d = small_design
    for net in d.nets.values():
        drivers = [
            ref
            for ref in net.pins
            if d.instances[ref.instance]
            .macro.pin(ref.pin)
            .direction.value
            == "OUTPUT"
        ]
        assert len(drivers) <= 1, net.name


def test_combinational_acyclic(small_design):
    """The generator promises acyclic combinational logic (STA needs
    it).  Kahn's algorithm must consume every combinational gate."""
    d = small_design
    indegree = {}
    sinks = {}
    for name, inst in d.instances.items():
        if inst.macro.spec.is_sequential:
            continue
        deg = 0
        for pin in inst.macro.input_pins:
            net_name = inst.net_of_pin.get(pin.name)
            if net_name is None:
                continue
            driver = d.driver_of(d.nets[net_name])
            if driver and not d.instances[
                driver.instance
            ].macro.spec.is_sequential:
                deg += 1
                sinks.setdefault(driver.instance, []).append(name)
        indegree[name] = deg
    queue = [n for n, deg in indegree.items() if deg == 0]
    seen = 0
    while queue:
        n = queue.pop()
        seen += 1
        for s in sinks.get(n, []):
            indegree[s] -= 1
            if indegree[s] == 0:
                queue.append(s)
    assert seen == len(indegree)


def test_clock_tree_wiring(small_design):
    d = small_design
    assert "clk_root" in d.nets
    flops = [
        inst
        for inst in d.instances.values()
        if inst.macro.spec.is_sequential
    ]
    assert flops
    for flop in flops:
        net = flop.net_of_pin[flop.macro.spec.clock_pin]
        assert net.startswith("clk_leaf")


def test_io_pads_on_boundary(small_design):
    d = small_design
    die = d.die
    pad_count = 0
    for net in d.nets.values():
        for pad in net.pads:
            pad_count += 1
            on_edge = (
                pad.x in (die.xlo, die.xhi) or pad.y in (die.ylo, die.yhi)
            )
            assert on_edge
    assert pad_count > 0


def test_die_sized_for_utilization(env):
    tech, lib = env
    d = generate_design("aes", tech, lib, scale=0.05, seed=1,
                        utilization=0.6)
    assert abs(d.utilization() - 0.6) < 0.05


def test_profile_mix_differs(env):
    tech, lib = env
    aes = generate_design("aes", tech, lib, scale=0.05, seed=1)
    vga = generate_design("vga", tech, lib, scale=0.01, seed=1)

    def xor_frac(d):
        n = sum(
            1
            for i in d.instances.values()
            if i.macro.spec.function in ("XOR2", "XNOR2")
        )
        return n / len(d.instances)

    assert xor_frac(aes) > xor_frac(vga)
