"""Verilog writer/parser round-trip tests."""

import pytest

from repro.geometry import Rect
from repro.library import build_library
from repro.netlist import Design, generate_design
from repro.netlist.verilog import (
    design_from_verilog,
    parse_verilog,
    write_verilog,
)
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


@pytest.fixture(scope="module")
def design():
    return generate_design("aes", TECH, LIB, scale=0.01, seed=4)


def test_roundtrip_structure(design):
    module = parse_verilog(write_verilog(design))
    assert module.name == design.name
    assert set(module.instances) == set(design.instances)
    for inst_name, (macro, pins) in module.instances.items():
        inst = design.instances[inst_name]
        assert macro == inst.macro.name
        assert pins == inst.net_of_pin


def test_ports_split_by_direction(design):
    module = parse_verilog(write_verilog(design))
    pad_nets = {
        name for name, net in design.nets.items() if net.pads
    }
    assert set(module.inputs) | set(module.outputs) == pad_nets
    # clk_root is pad-driven with no cell driver: an input.
    if "clk_root" in pad_nets:
        assert "clk_root" in module.inputs


def test_design_from_verilog_rebuilds(design):
    module = parse_verilog(write_verilog(design))

    def factory(name):
        die = Rect(0, 0, design.die.xhi, design.die.yhi)
        return Design(name, TECH, die)

    factory.library = LIB
    rebuilt = design_from_verilog(module, factory)
    assert set(rebuilt.instances) == set(design.instances)
    for name, net in design.nets.items():
        want = {(r.instance, r.pin) for r in net.pins}
        got = {(r.instance, r.pin) for r in rebuilt.nets[name].pins}
        assert got == want


def test_escaped_identifiers():
    die = Rect(0, 0, 40 * TECH.site_width, 2 * TECH.row_height)
    d = Design("top", TECH, die)
    d.add_instance("u/weird[0]", LIB.macro("INV_X1_RVT"))
    d.add_net("net.with:chars")
    d.connect("net.with:chars", "u/weird[0]", "A")
    module = parse_verilog(write_verilog(d))
    assert "u/weird[0]" in module.instances
    assert (
        module.instances["u/weird[0]"][1]["A"] == "net.with:chars"
    )


def test_comments_stripped():
    text = (
        "// line comment\nmodule m (a);\n input a;\n"
        "/* block\ncomment */\n"
        " INV_X1_RVT u0 (.A(a), .ZN(b));\nendmodule\n"
    )
    module = parse_verilog(text)
    assert module.name == "m"
    assert module.instances["u0"][0] == "INV_X1_RVT"


def test_parse_error_is_informative():
    with pytest.raises(ValueError, match="expected"):
        parse_verilog("module m (a) input a; endmodule")
