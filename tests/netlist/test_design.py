"""Tests for repro.netlist.design — the layout database."""

import pytest

from repro.geometry import Orientation, Point, Rect
from repro.library import build_library
from repro.netlist import Design
from repro.tech import CellArchitecture, make_tech


@pytest.fixture()
def small():
    """Two-row, 40-column empty design plus library handles."""
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    die = Rect(0, 0, 40 * tech.site_width, 2 * tech.row_height)
    design = Design("small", tech, die)
    return design, lib


def test_misaligned_die_rejected():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    with pytest.raises(ValueError):
        Design("bad", tech, Rect(7, 0, 367, 270))


def test_add_and_connect(small):
    design, lib = small
    design.add_instance("u1", lib.macro("INV_X1_RVT"))
    design.add_instance("u2", lib.macro("INV_X1_RVT"))
    design.add_net("n1")
    design.connect("n1", "u1", "ZN")
    design.connect("n1", "u2", "A")
    net = design.nets["n1"]
    assert net.degree == 2
    assert design.instances["u1"].net_of_pin["ZN"] == "n1"
    assert design.driver_of(net).instance == "u1"


def test_duplicate_names_rejected(small):
    design, lib = small
    design.add_instance("u1", lib.macro("INV_X1_RVT"))
    with pytest.raises(ValueError):
        design.add_instance("u1", lib.macro("INV_X1_RVT"))
    design.add_net("n1")
    with pytest.raises(ValueError):
        design.add_net("n1")


def test_double_connect_rejected(small):
    design, lib = small
    design.add_instance("u1", lib.macro("INV_X1_RVT"))
    design.add_net("n1")
    design.add_net("n2")
    design.connect("n1", "u1", "A")
    with pytest.raises(ValueError):
        design.connect("n2", "u1", "A")
    with pytest.raises(KeyError):
        design.connect("n2", "u1", "NOPE")


def test_place_and_rows(small):
    design, lib = small
    design.add_instance("u1", lib.macro("INV_X1_RVT"))
    design.place("u1", column=5, row=1)
    inst = design.instances["u1"]
    assert inst.x == 5 * design.tech.site_width
    assert inst.y == design.tech.row_height
    assert inst.orientation is Orientation.FS  # odd row
    assert design.row_of(inst) == 1
    assert design.column_of(inst) == 5


def test_pin_position_respects_flip(small):
    design, lib = small
    design.add_instance("u1", lib.macro("INV_X1_RVT"))
    design.place("u1", column=0, row=0, flipped=False)
    pos_n = design.instances["u1"].pin_position("A")
    design.place("u1", column=0, row=0, flipped=True)
    pos_f = design.instances["u1"].pin_position("A")
    width = design.instances["u1"].width
    assert pos_f.x == width - pos_n.x
    assert pos_f.y == pos_n.y  # flip never moves pins vertically


def test_pin_x_interval_respects_flip():
    tech = make_tech(CellArchitecture.OPEN_M1)
    lib = build_library(tech)
    die = Rect(0, 0, 40 * tech.site_width, 2 * tech.row_height)
    design = Design("o", tech, die)
    design.add_instance("u1", lib.macro("NAND2_X1_RVT"))
    design.place("u1", column=2, row=0, flipped=False)
    iv_n = design.instances["u1"].pin_x_interval("A1")
    design.place("u1", column=2, row=0, flipped=True)
    iv_f = design.instances["u1"].pin_x_interval("A1")
    assert iv_f.length == iv_n.length
    assert iv_f != iv_n  # A1 is off-center, so the flip moves it


def test_hpwl(small):
    design, lib = small
    design.add_instance("u1", lib.macro("INV_X1_RVT"))
    design.add_instance("u2", lib.macro("INV_X1_RVT"))
    design.add_net("n1")
    design.connect("n1", "u1", "ZN")
    design.connect("n1", "u2", "A")
    design.place("u1", column=0, row=0)
    design.place("u2", column=10, row=1)
    p1 = design.instances["u1"].pin_position("ZN")
    p2 = design.instances["u2"].pin_position("A")
    expected = abs(p1.x - p2.x) + abs(p1.y - p2.y)
    assert design.net_hpwl(design.nets["n1"]) == expected
    assert design.total_hpwl() == expected


def test_hpwl_includes_pads(small):
    design, lib = small
    design.add_instance("u1", lib.macro("INV_X1_RVT"))
    design.add_net("n1")
    design.connect("n1", "u1", "ZN")
    design.nets["n1"].pads.append(Point(0, 0))
    design.place("u1", column=10, row=0)
    assert design.net_hpwl(design.nets["n1"]) > 0


def test_check_legal_detects_overlap(small):
    design, lib = small
    design.add_instance("u1", lib.macro("INV_X1_RVT"))
    design.add_instance("u2", lib.macro("INV_X1_RVT"))
    design.place("u1", column=0, row=0)
    design.place("u2", column=2, row=0)  # INV is 4 sites wide
    errors = design.check_legal()
    assert any("overlap" in e for e in errors)
    design.place("u2", column=4, row=0)  # abutting is legal
    assert design.check_legal() == []


def test_check_legal_detects_offgrid_and_orientation(small):
    design, lib = small
    design.add_instance("u1", lib.macro("INV_X1_RVT"))
    design.place("u1", column=0, row=0)
    design.instances["u1"].x += 7
    assert any("off site grid" in e for e in design.check_legal())
    design.place("u1", column=0, row=1)
    design.instances["u1"].orientation = Orientation.N  # wrong parity
    assert any("orientation" in e for e in design.check_legal())


def test_check_legal_detects_outside_die(small):
    design, lib = small
    design.add_instance("u1", lib.macro("INV_X1_RVT"))
    design.place("u1", column=38, row=0)  # 38+4 > 40 columns
    assert any("outside die" in e for e in design.check_legal())


def test_snapshot_restore(small):
    design, lib = small
    design.add_instance("u1", lib.macro("INV_X1_RVT"))
    design.place("u1", column=3, row=0)
    snap = design.placement_snapshot()
    design.place("u1", column=9, row=1, flipped=True)
    design.restore_placement(snap)
    inst = design.instances["u1"]
    assert design.column_of(inst) == 3
    assert inst.orientation is Orientation.N


def test_m1_blocked_columns_abs(small):
    design, lib = small
    macro = lib.macro("INV_X1_RVT")
    design.add_instance("u1", macro)
    design.place("u1", column=10, row=0)
    cols = design.instances["u1"].m1_blocked_columns_abs(design.tech)
    assert cols == sorted(10 + c for c in macro.m1_blocked_columns)
    # Flipping mirrors the blocked columns within the cell.
    design.place("u1", column=10, row=0, flipped=True)
    flipped = design.instances["u1"].m1_blocked_columns_abs(design.tech)
    w = macro.width_sites
    assert flipped == sorted(
        10 + (w - 1 - c) for c in macro.m1_blocked_columns
    )


def test_utilization_and_area(small):
    design, lib = small
    design.add_instance("u1", lib.macro("INV_X1_RVT"))
    design.place("u1", column=0, row=0)
    inst = design.instances["u1"]
    assert design.total_cell_area() == inst.width * inst.height
    assert 0 < design.utilization() < 1


def test_instances_in_region(small):
    design, lib = small
    design.add_instance("u1", lib.macro("INV_X1_RVT"))
    design.add_instance("u2", lib.macro("INV_X1_RVT"))
    design.place("u1", column=0, row=0)
    design.place("u2", column=20, row=1)
    region = Rect(0, 0, 10 * design.tech.site_width,
                  design.tech.row_height)
    names = [i.name for i in design.instances_in(region)]
    assert names == ["u1"]
