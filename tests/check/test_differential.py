"""Acceptance gate: the brute-force oracle certifies the MILP optimal
on ≥100 seeded random small windows per architecture."""

import pytest

from repro.check import generate_case, run_case
from repro.check.serialize import case_to_doc
from repro.tech import CellArchitecture

TARGET = 100
MAX_SEEDS = 150


@pytest.mark.parametrize(
    "arch", list(CellArchitecture), ids=lambda a: a.value
)
def test_brute_force_certifies_100_windows(arch):
    certified = 0
    failures = []
    enumerated = 0
    for seed in range(MAX_SEEDS):
        report = run_case(generate_case(seed, arch=arch))
        if report.status == "failed":
            failures.append(report.describe())
        elif report.status == "certified":
            certified += 1
            enumerated += report.num_assignments
            assert report.milp_objective == pytest.approx(
                report.brute_objective
            )
        if certified >= TARGET and not failures:
            break
    assert not failures, "\n".join(failures[:5])
    assert certified >= TARGET
    # Certification must rest on real enumeration, not empty searches.
    assert enumerated >= certified


def test_report_describe_mentions_case_and_status():
    report = run_case(generate_case(0))
    text = report.describe()
    assert "seed=0" in text and report.status in text


def test_run_case_does_not_mutate_the_input_case():
    case = generate_case(7)
    doc = case_to_doc(case)
    run_case(case)
    assert case_to_doc(case) == doc
