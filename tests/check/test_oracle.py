"""The oracle vs the production implementation — two independent
derivations of pin geometry, legality, and the objective must agree on
real designs, and the oracle must catch constructed violations the
production optimizer could introduce."""

import pytest

from repro.check.oracle import (
    check_displacement,
    check_fixed_unmoved,
    check_legal,
    oracle_alignment_stats,
    oracle_objective,
    oracle_pin_interval,
    oracle_pin_point,
)
from repro.core.objective import alignment_stats, calculate_objective
from repro.core.params import OptParams
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.tech import CellArchitecture, make_tech

ARCHS = list(CellArchitecture)


def _placed(arch, seed=4, scale=0.01):
    tech = make_tech(arch)
    library = build_library(tech)
    design = generate_design("aes", tech, library, scale=scale, seed=seed)
    place_design(design, seed=seed)
    return design


@pytest.fixture(scope="module", params=ARCHS, ids=lambda a: a.value)
def design(request):
    return _placed(request.param)


def test_oracle_pin_geometry_matches_production(design):
    for inst in design.instances.values():
        for pin_name, pin in inst.macro.pins.items():
            x, y = oracle_pin_point(inst, pin_name)
            pos = inst.pin_position(pin_name)
            assert (x, y) == (pos.x, pos.y), (inst.name, pin_name)
            lo, hi = oracle_pin_interval(inst, pin_name)
            iv = inst.pin_x_interval(pin_name)
            assert (lo, hi) == (iv.lo, iv.hi), (inst.name, pin_name)


def test_oracle_legality_agrees_on_legal_design(design):
    assert design.check_legal() == []
    assert check_legal(design) == []


def test_oracle_alignment_stats_match_production(design):
    params = OptParams.for_arch(design.tech.arch)
    ours = oracle_alignment_stats(design, params)
    theirs = alignment_stats(design, params)
    assert ours.num_aligned == theirs.num_aligned
    assert ours.total_overlap == theirs.total_overlap


def test_oracle_objective_matches_production(design):
    params = OptParams.for_arch(design.tech.arch)
    assert oracle_objective(design, params) == pytest.approx(
        calculate_objective(design, params)
    )


# ------------------------------------------------ violation detection
def test_oracle_catches_off_grid_x():
    design = _placed(CellArchitecture.CLOSED_M1)
    inst = next(iter(design.instances.values()))
    inst.x += 7
    errors = check_legal(design)
    assert any("site grid" in e for e in errors)


def test_oracle_catches_overlap():
    design = _placed(CellArchitecture.CLOSED_M1)
    names = sorted(design.instances)
    a, b = design.instances[names[0]], design.instances[names[1]]
    b.x, b.y, b.orientation = a.x, a.y, a.orientation
    errors = check_legal(design)
    assert any("occupied by both" in e for e in errors)


def test_oracle_catches_orientation_parity():
    design = _placed(CellArchitecture.CLOSED_M1)
    inst = next(iter(design.instances.values()))
    row = design.row_of(inst)
    inst.orientation = inst.orientation.flipped()  # keeps parity
    assert not any(
        "orientation" in e for e in check_legal(design)
    )
    # Re-place into the adjacent row WITHOUT fixing the orientation.
    inst.y += design.tech.row_height * (1 if row == 0 else -1)
    errors = check_legal(design)
    assert any("illegal in row" in e for e in errors)


def test_oracle_catches_fixed_cell_motion():
    design = _placed(CellArchitecture.CLOSED_M1)
    before = design.placement_snapshot()
    name = sorted(design.instances)[0]
    design.instances[name].fixed = True
    design.instances[name].x += design.tech.site_width
    errors = check_fixed_unmoved(design, before)
    assert errors and name in errors[0]


def test_oracle_catches_displacement_violation():
    design = _placed(CellArchitecture.CLOSED_M1)
    before = design.placement_snapshot()
    name = sorted(design.instances)[0]
    inst = design.instances[name]
    inst.x += 5 * design.tech.site_width
    errors = check_displacement(
        design, before, [name], design.die, lx=2, ly=0,
        allow_flip=True,
    )
    assert any("moved 5 sites" in e for e in errors)
    # And a non-window cell moving at all is flagged.
    other = sorted(design.instances)[1]
    design.instances[other].x += design.tech.site_width
    errors = check_displacement(
        design, before, [name], design.die, lx=8, ly=0,
        allow_flip=True,
    )
    assert any(other in e and "non-window" in e for e in errors)


def test_oracle_catches_forbidden_flip():
    design = _placed(CellArchitecture.CLOSED_M1)
    before = design.placement_snapshot()
    name = sorted(design.instances)[0]
    inst = design.instances[name]
    inst.orientation = inst.orientation.flipped()
    errors = check_displacement(
        design, before, [name], design.die, lx=1, ly=0,
        allow_flip=False,
    )
    assert any("allow_flip" in e for e in errors)
