"""The differential equivalence axes: presolve on/off, serial vs
pooled executors, and checkpoint-resume vs straight run.

The quick variants run in tier-1; the heavyweight process-pool and
full-flow resume variants carry ``slow`` and run in the nightly job
(plus the check-smoke CI job via ``repro check --axes ...``).
"""

import pytest

from repro.check import generate_case
from repro.check.differential import (
    check_executor_axis,
    check_presolve_axis,
    check_resume_axis,
)


@pytest.mark.parametrize("seed", range(12))
def test_presolve_axis_on_generated_cases(seed):
    errors = check_presolve_axis(generate_case(seed))
    assert errors == []


def test_executor_axis_thread_matches_serial():
    assert check_executor_axis(kinds=("serial", "thread")) == []


@pytest.mark.slow
def test_executor_axis_process_matches_serial():
    assert check_executor_axis(kinds=("serial", "process")) == []


@pytest.mark.slow
def test_resume_axis_matches_straight_run():
    assert check_resume_axis() == []
