"""Case generators: determinism, legality of every kind, and the
metamorphic objective invariants."""

import pytest

from repro.check.generators import (
    CASE_KINDS,
    generate_case,
    mirror_x,
    relabel_nets,
    translate_x,
)
from repro.check.oracle import oracle_objective
from repro.check.serialize import case_to_doc
from repro.tech import CellArchitecture


def test_same_seed_same_case():
    for seed in range(10):
        a = case_to_doc(generate_case(seed))
        b = case_to_doc(generate_case(seed))
        assert a == b, seed


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown case kind"):
        generate_case(0, kind="nope")


@pytest.mark.parametrize("kind", CASE_KINDS)
@pytest.mark.parametrize(
    "arch", list(CellArchitecture), ids=lambda a: a.value
)
def test_every_kind_produces_a_legal_case(kind, arch):
    for seed in range(5):
        case = generate_case(seed, arch=arch, kind=kind)
        assert case.kind == kind and case.arch is arch
        assert case.design.check_legal() == []
        assert case.design.instances
        # Every instance sits fully inside the (single) window.
        for inst in case.design.instances.values():
            assert case.window.rect.contains_rect(inst.bbox)


def test_single_site_case_has_no_freedom():
    case = generate_case(3, kind="single_site")
    inst = next(iter(case.design.instances.values()))
    assert inst.width == case.design.die.width


def test_all_fixed_row_has_fixed_row():
    case = generate_case(3, kind="all_fixed_row")
    fixed_rows = {
        case.design.row_of(i)
        for i in case.design.instances.values()
        if i.fixed
    }
    assert 0 in fixed_rows


def test_dup_pin_x_duplicates_pin_x_coords():
    case = generate_case(3, kind="dup_pin_x")
    from repro.check.oracle import oracle_pin_point

    xs = [
        oracle_pin_point(inst, pin_name)[0]
        for inst in case.design.instances.values()
        for pin_name in inst.macro.pins
    ]
    assert len(set(xs)) < len(xs)


@pytest.mark.parametrize("seed", range(8))
def test_metamorphic_invariants(seed):
    case = generate_case(seed)
    base = oracle_objective(case.design, case.params)

    translated = translate_x(case, 5)
    assert translated.design.check_legal() == []
    assert oracle_objective(
        translated.design, translated.params
    ) == pytest.approx(base)

    mirrored = mirror_x(case)
    assert mirrored.design.check_legal() == []
    assert oracle_objective(
        mirrored.design, mirrored.params
    ) == pytest.approx(base)

    relabeled = relabel_nets(case, seed + 1)
    assert relabeled.design.check_legal() == []
    assert sorted(relabeled.design.nets) == sorted(case.design.nets)
    assert oracle_objective(
        relabeled.design, relabeled.params
    ) == pytest.approx(base)


def test_transforms_do_not_mutate_the_original():
    case = generate_case(1)
    doc = case_to_doc(case)
    translate_x(case, 4)
    mirror_x(case)
    relabel_nets(case, 9)
    assert case_to_doc(case) == doc
