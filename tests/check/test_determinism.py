"""Randomness audit: every generator takes an explicit seed, nothing
falls back to global RNG state, and the whole flow is seed-stable."""

import inspect
import re
from pathlib import Path

import pytest

from repro.check.generators import generate_case
from repro.flow import FlowConfig, run_flow
from repro.lefdef import write_def
from repro.netlist.generator import generate_design
from repro.placement.api import place_design
from repro.placement.global_place import global_place

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Module-level RNG calls that would make output depend on interpreter-
#: global state.  Seeded objects (random.Random, np.random.RandomState,
#: np.random.default_rng) are the only sanctioned sources.
_GLOBAL_RANDOM = re.compile(
    r"\brandom\.(random|randint|randrange|choice|choices|sample|"
    r"shuffle|uniform|gauss|seed)\s*\("
)
_GLOBAL_NP_RANDOM = re.compile(
    r"np\.random\.(?!RandomState|default_rng|Generator)\w+\s*\("
)


@pytest.mark.parametrize(
    "func",
    [generate_design, global_place, place_design, generate_case],
    ids=lambda f: f.__name__,
)
def test_every_generator_entry_point_takes_a_seed(func):
    assert "seed" in inspect.signature(func).parameters


def test_no_module_uses_global_random_state():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text()
        for pattern in (_GLOBAL_RANDOM, _GLOBAL_NP_RANDOM):
            for match in pattern.finditer(text):
                offenders.append(f"{path.name}: {match.group(0)}")
    assert not offenders, offenders


def test_two_same_seed_flow_runs_are_byte_identical():
    def one_run():
        config = FlowConfig(
            profile="aes", scale=0.005, window_um=1.0,
            time_limit=2.0, seed=7,
        )
        result = run_flow(config)
        return write_def(result.design), result

    def_a, result_a = one_run()
    def_b, result_b = one_run()
    assert def_a == def_b
    assert (
        result_a.opt.final_objective == result_b.opt.final_objective
    )
