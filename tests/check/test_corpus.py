"""Replay every committed corpus reproducer; all must run clean."""

from pathlib import Path

import pytest

from repro.check import generate_case, replay_reproducer, run_case
from repro.check.serialize import (
    case_from_doc,
    case_to_doc,
    load_reproducer,
    save_reproducer,
)

CORPUS = Path(__file__).parent / "corpus"
DOCS = sorted(CORPUS.glob("*.json"))


def test_corpus_is_not_empty():
    assert DOCS, "the committed corpus must hold at least one case"


@pytest.mark.parametrize("path", DOCS, ids=lambda p: p.stem)
def test_corpus_reproducer_replays_clean(path):
    report = replay_reproducer(path)
    assert report.ok, report.describe()


def test_save_load_roundtrip(tmp_path):
    case = generate_case(11)
    path = save_reproducer(case, tmp_path, failure="unit test")
    loaded = load_reproducer(path)
    assert case_to_doc(loaded) == case_to_doc(case)
    # The document itself carries the failure note.
    import json

    doc = json.loads(path.read_text())
    assert doc["failure"] == "unit test"
    assert doc["schema"] == "repro.check.case/v1"


def test_case_from_doc_rejects_wrong_schema():
    doc = case_to_doc(generate_case(0))
    doc["schema"] = "repro.check.case/v999"
    with pytest.raises(ValueError, match="not a repro.check.case/v1"):
        case_from_doc(doc)


def test_loaded_case_certifies_like_the_original(tmp_path):
    case = generate_case(13)
    original = run_case(case)
    path = save_reproducer(case, tmp_path, failure="roundtrip probe")
    replayed = run_case(load_reproducer(path))
    assert replayed.status == original.status
    if original.status == "certified":
        assert replayed.brute_objective == original.brute_objective
