"""Mutation smoke tests: deliberately corrupt the window model and
verify the oracles catch it.

Two injected bugs, mirroring real formulation failure modes:

* zeroing the alignment rewards (an objective bug) — the solver then
  optimizes the wrong function, and the brute-force comparison must
  flag the resulting placement as suboptimal;
* deleting the site-packing constraints (a legality bug) — the solver
  may stack cells, and the independent site-occupancy checker must
  report the overlap.
"""

import pytest

from repro.check import generate_case, run_case, shrink_case

# Seeds whose clean runs certify AND whose optimum depends on the
# alignment reward / site packing (verified stable by construction:
# generate_case is fully seed-deterministic).
SEED_RANGE = range(20)


def _kill_alignment_rewards(problem):
    objective = problem.model.objective
    for d in problem.d_vars:
        objective.coefs[d.index] = 0.0


def _drop_site_constraints(problem):
    problem.model.constraints = [
        c
        for c in problem.model.constraints
        if not (c.name or "").startswith("site[")
    ]


def test_objective_bug_is_caught_by_brute_force():
    caught = []
    for seed in SEED_RANGE:
        case = generate_case(seed)
        if run_case(case).status != "certified":
            continue
        report = run_case(
            case, problem_transform=_kill_alignment_rewards
        )
        if report.status == "failed":
            caught.append((seed, report))
    assert caught, "no seed exposed the zeroed alignment reward"
    assert any(
        "WORSE" in err or "drift" in err
        for _, report in caught
        for err in report.errors
    )


def test_site_constraint_bug_is_caught_by_legality_oracle():
    caught = []
    for seed in SEED_RANGE:
        case = generate_case(seed)
        if run_case(case).status != "certified":
            continue
        report = run_case(
            case, problem_transform=_drop_site_constraints
        )
        if report.status == "failed":
            caught.append((seed, report))
    assert caught, "no seed exposed the missing site constraints"
    assert any(
        "occupied by both" in err
        for _, report in caught
        for err in report.errors
    )


def test_shrink_produces_a_minimal_still_failing_case():
    for seed in SEED_RANGE:
        case = generate_case(seed)
        if run_case(case).status != "certified":
            continue

        def failing(candidate):
            report = run_case(
                candidate, problem_transform=_drop_site_constraints
            )
            return (
                report.errors if report.status == "failed" else []
            )

        if not failing(case):
            continue
        shrunk = shrink_case(case, failing)
        assert failing(shrunk), "shrunk case no longer fails"
        assert len(shrunk.design.instances) <= len(
            case.design.instances
        )
        assert len(shrunk.design.nets) <= len(case.design.nets)
        # 1-minimality over nets: no single net can still be dropped.
        return
    pytest.fail("no certified seed exposed the mutation to shrink")
