"""Tests for repro.geometry.orientation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Interval, Orientation


def test_x_mirror_classification():
    assert not Orientation.N.is_x_mirrored
    assert Orientation.FN.is_x_mirrored
    assert Orientation.S.is_x_mirrored
    assert not Orientation.FS.is_x_mirrored


def test_y_mirror_classification():
    assert not Orientation.N.is_y_mirrored
    assert Orientation.FS.is_y_mirrored
    assert Orientation.S.is_y_mirrored
    assert not Orientation.FN.is_y_mirrored


def test_flip_pairs():
    assert Orientation.N.flipped() is Orientation.FN
    assert Orientation.FS.flipped() is Orientation.S


@given(st.sampled_from(list(Orientation)))
def test_flip_involution(orient):
    assert orient.flipped().flipped() is orient


@given(st.sampled_from(list(Orientation)))
def test_flip_preserves_row_parity(orient):
    """Flipping mirrors x but must not change y mirroring (a flipped
    cell stays legal in its row)."""
    assert orient.flipped().is_y_mirrored == orient.is_y_mirrored
    assert orient.flipped().is_x_mirrored != orient.is_x_mirrored


def test_for_row():
    assert Orientation.for_row(0) is Orientation.N
    assert Orientation.for_row(1) is Orientation.FS
    assert Orientation.for_row(2) is Orientation.N
    assert Orientation.for_row(0, flipped=True) is Orientation.FN
    assert Orientation.for_row(1, flipped=True) is Orientation.S


def test_transform_x():
    width = 100
    assert Orientation.N.transform_x(30, width) == 30
    assert Orientation.FN.transform_x(30, width) == 70


@given(
    st.sampled_from(list(Orientation)),
    st.integers(0, 200),
    st.integers(1, 200),
)
def test_transform_x_involution(orient, x, width):
    x = min(x, width)
    once = orient.transform_x(x, width)
    assert 0 <= once <= width
    assert orient.transform_x(once, width) == x


@given(st.integers(0, 50), st.integers(0, 50), st.integers(1, 60))
def test_transform_interval_matches_point_transform(lo, length, width):
    hi = lo + length
    width = max(width, hi)
    iv = Interval(lo, hi)
    out = Orientation.FN.transform_x_interval(iv, width)
    assert out.lo == width - hi
    assert out.hi == width - lo
    assert out.length == iv.length
