"""Tests for repro.geometry.interval."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Interval


def ivals(lo=-(10**6), hi=10**6):
    return st.tuples(
        st.integers(lo, hi), st.integers(lo, hi)
    ).map(lambda t: Interval(min(t), max(t)))


def test_malformed_rejected():
    with pytest.raises(ValueError):
        Interval(5, 4)


def test_length_and_center():
    iv = Interval(10, 30)
    assert iv.length == 20
    assert iv.center2 == 40


def test_contains():
    iv = Interval(2, 8)
    assert iv.contains(2) and iv.contains(8) and iv.contains(5)
    assert not iv.contains(1) and not iv.contains(9)
    assert iv.contains_interval(Interval(3, 7))
    assert not iv.contains_interval(Interval(3, 9))


def test_overlap_length_positive_and_negative():
    assert Interval(0, 10).overlap_length(Interval(5, 20)) == 5
    # Negative value = gap between disjoint intervals.
    assert Interval(0, 10).overlap_length(Interval(14, 20)) == -4
    # Point touch counts as zero overlap.
    assert Interval(0, 10).overlap_length(Interval(10, 20)) == 0


def test_intersection():
    assert Interval(0, 10).intersection(Interval(5, 20)) == Interval(5, 10)
    assert Interval(0, 4).intersection(Interval(5, 9)) is None


def test_union_span():
    assert Interval(0, 3).union_span(Interval(10, 12)) == Interval(0, 12)


def test_mirror_in_span():
    span = Interval(0, 100)
    assert Interval(10, 30).mirrored_in(span) == Interval(70, 90)


@given(ivals(), ivals())
def test_overlap_symmetry(a, b):
    assert a.overlaps(b) == b.overlaps(a)
    assert a.overlap_length(b) == b.overlap_length(a)


@given(ivals(), ivals())
def test_overlap_consistency(a, b):
    """overlaps() iff overlap_length() >= 0 for closed intervals."""
    assert a.overlaps(b) == (a.overlap_length(b) >= 0)


@given(ivals(-1000, 1000), ivals(-1000, 1000))
def test_mirror_involution(a, span):
    """Mirroring twice in the same span is the identity."""
    assert a.mirrored_in(span).mirrored_in(span) == a


@given(ivals(0, 500))
def test_mirror_preserves_length_and_containment(a):
    span = Interval(0, 500)
    m = a.mirrored_in(span)
    assert m.length == a.length
    assert span.contains_interval(m)
