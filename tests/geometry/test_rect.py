"""Tests for repro.geometry.rect."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Interval, Point, Rect


def rects(bound=10**5):
    c = st.integers(-bound, bound)
    return st.tuples(c, c, c, c).map(
        lambda t: Rect(
            min(t[0], t[2]), min(t[1], t[3]), max(t[0], t[2]),
            max(t[1], t[3]),
        )
    )


def test_malformed_rejected():
    with pytest.raises(ValueError):
        Rect(10, 0, 0, 10)


def test_basic_properties():
    r = Rect(0, 0, 10, 4)
    assert r.width == 10
    assert r.height == 4
    assert r.area == 40
    assert r.half_perimeter == 14
    assert r.center == Point(5, 2)
    assert r.x_interval == Interval(0, 10)
    assert r.y_interval == Interval(0, 4)


def test_from_points():
    assert Rect.from_points(Point(5, 1), Point(2, 9)) == Rect(2, 1, 5, 9)


def test_containment():
    r = Rect(0, 0, 10, 10)
    assert r.contains_point(Point(0, 0))
    assert r.contains_point(Point(10, 10))
    assert not r.contains_point(Point(11, 5))
    assert r.contains_rect(Rect(1, 1, 9, 9))
    assert r.contains_rect(r)
    assert not r.contains_rect(Rect(1, 1, 11, 9))


def test_overlap_closed_vs_open():
    a = Rect(0, 0, 10, 10)
    touching = Rect(10, 0, 20, 10)
    assert a.overlaps(touching)  # closed: edge contact counts
    assert not a.overlaps_open(touching)  # open: abutment is legal
    assert a.overlaps_open(Rect(9, 9, 20, 20))


def test_intersection_and_union():
    a = Rect(0, 0, 10, 10)
    b = Rect(5, 5, 20, 20)
    assert a.intersection(b) == Rect(5, 5, 10, 10)
    assert a.intersection(Rect(11, 11, 12, 12)) is None
    assert a.union_span(b) == Rect(0, 0, 20, 20)


def test_expand_translate():
    r = Rect(5, 5, 10, 10)
    assert r.expanded(2) == Rect(3, 3, 12, 12)
    assert r.translated(1, -1) == Rect(6, 4, 11, 9)


@given(rects(), rects())
def test_overlap_symmetry(a, b):
    assert a.overlaps(b) == b.overlaps(a)
    assert a.overlaps_open(b) == b.overlaps_open(a)


@given(rects(), rects())
def test_intersection_inside_both(a, b):
    inter = a.intersection(b)
    if inter is not None:
        assert a.contains_rect(inter)
        assert b.contains_rect(inter)
        assert a.overlaps(b)
    else:
        assert not a.overlaps(b)


@given(rects(), rects())
def test_union_contains_both(a, b):
    u = a.union_span(b)
    assert u.contains_rect(a)
    assert u.contains_rect(b)
