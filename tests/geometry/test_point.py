"""Tests for repro.geometry.point."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point

coords = st.integers(min_value=-(10**6), max_value=10**6)


def test_translated():
    assert Point(3, 4).translated(10, -2) == Point(13, 2)


def test_manhattan_distance():
    assert Point(0, 0).manhattan_distance(Point(3, 4)) == 7
    assert Point(-2, 5).manhattan_distance(Point(1, 1)) == 7


def test_as_tuple_and_ordering():
    assert Point(1, 2).as_tuple() == (1, 2)
    assert Point(1, 5) < Point(2, 0)
    assert Point(1, 2) < Point(1, 3)


def test_equality_and_hash():
    assert Point(7, 8) == Point(7, 8)
    assert len({Point(1, 1), Point(1, 1), Point(1, 2)}) == 2


@given(coords, coords, coords, coords)
def test_distance_symmetry(x1, y1, x2, y2):
    a, b = Point(x1, y1), Point(x2, y2)
    assert a.manhattan_distance(b) == b.manhattan_distance(a)
    assert a.manhattan_distance(a) == 0


@given(coords, coords, coords, coords, coords, coords)
def test_triangle_inequality(x1, y1, x2, y2, x3, y3):
    a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
    assert a.manhattan_distance(c) <= (
        a.manhattan_distance(b) + b.manhattan_distance(c)
    )
