"""Tests for repro.library.library."""

import pytest

from repro.library import build_library
from repro.library.specs import DEFAULT_CELL_SPECS
from repro.tech import CellArchitecture, make_tech


@pytest.fixture(scope="module")
def lib():
    return build_library(make_tech(CellArchitecture.CLOSED_M1))


def test_full_triple_vt_coverage(lib):
    assert len(lib) == len(DEFAULT_CELL_SPECS) * 3
    assert "NAND2_X1_RVT" in lib
    assert "NAND2_X1_LVT" in lib
    assert "NAND2_X1_HVT" in lib


def test_lookup_and_contains(lib):
    macro = lib.macro("INV_X1_RVT")
    assert macro.spec.function == "INV"
    assert "NOPE_X1_RVT" not in lib
    with pytest.raises(KeyError):
        lib.macro("NOPE_X1_RVT")


def test_duplicate_rejected(lib):
    with pytest.raises(ValueError):
        lib.add(lib.macro("INV_X1_RVT"))


def test_combinational_sequential_split(lib):
    comb = lib.combinational()
    seq = lib.sequential()
    assert len(comb) + len(seq) == len(lib)
    assert all(not m.spec.is_sequential for m in comb)
    assert all(m.spec.is_sequential for m in seq)
    assert seq  # DFFs exist


def test_names_sorted(lib):
    assert lib.names == sorted(lib.names)
