"""Tests for repro.library.generator — the Figure 1 geometry contracts."""

import pytest

from repro.library import PinDirection, build_library
from repro.library.generator import make_macro, signal_pin_columns
from repro.library.specs import VtClass, spec_by_name
from repro.tech import CellArchitecture, make_tech


@pytest.fixture(scope="module")
def libs():
    return {
        arch: build_library(make_tech(arch)) for arch in CellArchitecture
    }


def test_closedm1_pins_are_vertical_m1_stripes(libs):
    """ClosedM1 (Figure 1b): 1-D vertical M1 pins on the site grid."""
    tech = make_tech(CellArchitecture.CLOSED_M1)
    for macro in libs[CellArchitecture.CLOSED_M1].macros.values():
        for pin in macro.signal_pins:
            shape = pin.access_shape
            assert shape.layer_index == 1
            # Tall, thin: 1-D vertical.
            assert shape.rect.height > shape.rect.width
            # Centered on an M1 track inside the cell.
            column = tech.m1_track_of(pin.x_rel)
            assert tech.m1_track_x(column) == pin.x_rel
            assert 0 <= column < macro.width_sites


def test_closedm1_power_at_boundaries(libs):
    for macro in libs[CellArchitecture.CLOSED_M1].macros.values():
        vdd = macro.pin("VDD")
        vss = macro.pin("VSS")
        assert vdd.direction is PinDirection.POWER
        assert vss.direction is PinDirection.GROUND
        assert 0 in macro.m1_blocked_columns
        assert macro.width_sites - 1 in macro.m1_blocked_columns


def test_closedm1_pins_block_their_columns(libs):
    tech = make_tech(CellArchitecture.CLOSED_M1)
    for macro in libs[CellArchitecture.CLOSED_M1].macros.values():
        for pin in macro.signal_pins:
            assert tech.m1_track_of(pin.x_rel) in macro.m1_blocked_columns


def test_closedm1_distinct_pin_columns(libs):
    tech = make_tech(CellArchitecture.CLOSED_M1)
    for macro in libs[CellArchitecture.CLOSED_M1].macros.values():
        columns = [
            tech.m1_track_of(pin.x_rel) for pin in macro.signal_pins
        ]
        assert len(columns) == len(set(columns)), macro.name


def test_openm1_pins_are_horizontal_m0_bars(libs):
    """OpenM1 (Figure 1c): horizontal M0 pins, M1 fully open."""
    for macro in libs[CellArchitecture.OPEN_M1].macros.values():
        assert not macro.m1_blocked_columns
        for pin in macro.signal_pins:
            shape = pin.access_shape
            assert shape.layer_index == 0
            assert shape.rect.width > shape.rect.height
            # Bar inside the cell outline.
            assert macro.bbox.contains_rect(shape.rect)


def test_openm1_output_bars_are_wide(libs):
    """Output pins span most of the cell (Figure 1c ZN pin)."""
    for macro in libs[CellArchitecture.OPEN_M1].macros.values():
        out_len = macro.output_pins[0].x_interval_rel.length
        for pin in macro.input_pins:
            assert out_len >= pin.x_interval_rel.length


def test_conv12t_blocks_all_m1(libs):
    """Conventional cells: M1 rails block inter-row M1 everywhere."""
    for macro in libs[CellArchitecture.CONV_12T].macros.values():
        assert macro.m1_blocked_columns == frozenset(
            range(macro.width_sites)
        )


def test_macro_dimensions(libs):
    for arch, lib in libs.items():
        tech = make_tech(arch)
        for macro in lib.macros.values():
            assert macro.height == tech.row_height
            assert macro.width == macro.width_sites * tech.site_width


def test_timing_model_vt_scaling():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    spec = spec_by_name("NAND2_X1")
    lvt = make_macro(tech, spec, VtClass.LVT)
    hvt = make_macro(tech, spec, VtClass.HVT)
    assert lvt.timing.intrinsic_ps < hvt.timing.intrinsic_ps
    assert lvt.timing.leakage_nw > hvt.timing.leakage_nw


def test_signal_pin_columns_interior_and_unique():
    for name in ("INV_X1", "NAND2_X1", "DFF_X1", "MUX2_X1"):
        spec = spec_by_name(name)
        columns = signal_pin_columns(spec)
        values = list(columns.values())
        assert len(values) == len(set(values))
        for col in values:
            assert 1 <= col <= spec.width_sites - 2
