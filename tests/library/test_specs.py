"""Tests for repro.library.specs."""

import pytest

from repro.library import DEFAULT_CELL_SPECS, VtClass
from repro.library.specs import spec_by_name


def test_vt_scaling_ordering():
    """LVT is fast and leaky, HVT slow and frugal."""
    assert VtClass.LVT.delay_scale < VtClass.RVT.delay_scale
    assert VtClass.RVT.delay_scale < VtClass.HVT.delay_scale
    assert VtClass.LVT.leakage_scale > VtClass.RVT.leakage_scale
    assert VtClass.RVT.leakage_scale > VtClass.HVT.leakage_scale


def test_spec_names_unique():
    names = [spec.name for spec in DEFAULT_CELL_SPECS]
    assert len(names) == len(set(names))


def test_pin_budget_fits_width():
    """Every spec must fit its signal pins in interior columns."""
    for spec in DEFAULT_CELL_SPECS:
        assert len(spec.signal_pins) <= spec.width_sites - 2, spec.name


def test_sequential_have_clock():
    for spec in DEFAULT_CELL_SPECS:
        if spec.is_sequential:
            assert spec.clock_pin in spec.inputs
        else:
            assert spec.clock_pin is None


def test_contains_core_functions():
    functions = {spec.function for spec in DEFAULT_CELL_SPECS}
    assert {"INV", "BUF", "NAND2", "NOR2", "DFF", "XOR2", "MUX2"} <= (
        functions
    )


def test_spec_by_name():
    spec = spec_by_name("NAND2_X1")
    assert spec.function == "NAND2"
    assert spec.drive == 1
    with pytest.raises(KeyError):
        spec_by_name("NAND9_X9")


def test_drive_variants_scale_cap():
    x1 = spec_by_name("INV_X1")
    x4 = spec_by_name("INV_X4")
    assert x4.base_input_cap_ff > x1.base_input_cap_ff
    assert x4.base_delay_ps < x1.base_delay_ps
    assert x4.width_sites > x1.width_sites
