"""Tests for power estimation."""

import pytest

from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.routing import DetailedRouter
from repro.tech import CellArchitecture, make_tech
from repro.timing import estimate_power

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


@pytest.fixture(scope="module")
def design():
    d = generate_design("aes", TECH, LIB, scale=0.03, seed=2)
    place_design(d, seed=1)
    return d


def test_components_positive(design):
    report = estimate_power(design)
    assert report.switching_mw > 0
    assert report.internal_mw > 0
    assert report.leakage_mw > 0
    assert report.total_mw == pytest.approx(
        report.switching_mw + report.internal_mw + report.leakage_mw
    )


def test_power_tracks_wirelength(design):
    metrics = DetailedRouter(design).route()
    base = estimate_power(design, metrics.net_lengths)
    longer = {k: v * 2 for k, v in metrics.net_lengths.items()}
    worse = estimate_power(design, longer)
    assert worse.switching_mw > base.switching_mw
    assert worse.leakage_mw == base.leakage_mw  # leakage is net-free
    assert worse.internal_mw == base.internal_mw


def test_power_scale_is_plausible(design):
    """~0.1-1.5 uW per instance at 1 GHz for this library."""
    report = estimate_power(design)
    per_inst_uw = report.total_mw * 1000 / len(design.instances)
    assert 0.05 < per_inst_uw < 2.0
