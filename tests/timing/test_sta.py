"""Tests for the STA engine."""

import pytest

from repro.geometry import Rect
from repro.library import build_library
from repro.netlist import Design, generate_design
from repro.placement import place_design
from repro.routing import DetailedRouter
from repro.tech import CellArchitecture, make_tech
from repro.timing import analyze_timing
from repro.timing.sta import _SETUP_PS, _stage_delay_ps

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


def flop_chain(n_inv):
    """DFF -> n_inv INVs -> DFF, all in one row."""
    die = Rect(0, 0, 200 * TECH.site_width, 2 * TECH.row_height)
    d = Design("chain", TECH, die)
    d.add_instance("ff0", LIB.macro("DFF_X1_RVT"))
    d.place("ff0", column=0, row=0)
    d.add_net("clk")
    d.connect("clk", "ff0", "CK")
    prev_net = "n0"
    d.add_net(prev_net)
    d.connect(prev_net, "ff0", "Q")
    col = 14
    for i in range(n_inv):
        d.add_instance(f"inv{i}", LIB.macro("INV_X1_RVT"))
        d.place(f"inv{i}", column=col, row=0)
        col += 5
        d.connect(prev_net, f"inv{i}", "A")
        prev_net = f"n{i + 1}"
        d.add_net(prev_net)
        d.connect(prev_net, f"inv{i}", "ZN")
    d.add_instance("ff1", LIB.macro("DFF_X1_RVT"))
    d.place("ff1", column=col, row=0)
    d.connect("clk", "ff1", "CK")
    d.connect(prev_net, "ff1", "D")
    return d


def test_chain_delay_matches_hand_computation():
    d = flop_chain(2)
    report = analyze_timing(d, net_lengths={})
    expected = _SETUP_PS
    for net_name, driver in (("n0", "ff0"), ("n1", "inv0"),
                             ("n2", "inv1")):
        net = d.nets[net_name]
        expected += _stage_delay_ps(d, driver, net, d.net_hpwl(net))
    assert report.critical_path_ps == pytest.approx(expected)


def test_zero_slack_reference():
    d = flop_chain(3)
    report = analyze_timing(d)
    assert report.wns_ps == pytest.approx(0.0, abs=1e-9)
    assert report.wns_ns == 0.0
    assert report.tns_ps == pytest.approx(0.0, abs=1e-9)


def test_longer_chain_is_slower():
    t2 = analyze_timing(flop_chain(2)).critical_path_ps
    t6 = analyze_timing(flop_chain(6)).critical_path_ps
    assert t6 > t2


def test_tight_period_creates_violations():
    d = flop_chain(4)
    ref = analyze_timing(d)
    stressed = analyze_timing(
        d, clock_period_ps=ref.critical_path_ps / 2
    )
    assert stressed.wns_ps < 0
    assert stressed.wns_ns < 0
    assert stressed.tns_ps <= stressed.wns_ps


def test_wire_length_increases_delay():
    d = flop_chain(2)
    short = analyze_timing(d, net_lengths={})
    long_nets = {name: 50_000 for name in d.nets}
    slow = analyze_timing(d, net_lengths=long_nets)
    assert slow.critical_path_ps > short.critical_path_ps


def test_full_design_sta_runs():
    design = generate_design("aes", TECH, LIB, scale=0.03, seed=2)
    place_design(design, seed=1)
    metrics = DetailedRouter(design).route()
    report = analyze_timing(design, metrics.net_lengths)
    assert report.critical_path_ps > 0
    assert report.wns_ps == pytest.approx(0.0, abs=1e-9)
    assert len(report.arrival_ps) > 0


def test_optimized_wirelength_cannot_hurt_wns_much():
    """Route-length reductions translate to equal-or-better timing at
    the same period — the paper's 'no adverse timing impact' claim."""
    design = generate_design("aes", TECH, LIB, scale=0.03, seed=2)
    place_design(design, seed=1)
    metrics = DetailedRouter(design).route()
    base = analyze_timing(design, metrics.net_lengths)
    shorter = {k: int(v * 0.9) for k, v in metrics.net_lengths.items()}
    better = analyze_timing(
        design, shorter, clock_period_ps=base.clock_period_ps
    )
    assert better.wns_ps >= base.wns_ps - 1e-9
