"""Tests for criticality-weighted net betas (§6 extension)."""

import pytest

from repro.core import OptParams, calculate_objective
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.tech import CellArchitecture, make_tech
from repro.timing import analyze_timing
from repro.timing.criticality import criticality_weights

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


@pytest.fixture(scope="module")
def analyzed():
    d = generate_design("aes", TECH, LIB, scale=0.02, seed=2)
    place_design(d, seed=1)
    report = analyze_timing(d)
    return d, report


def test_weights_bounded_and_peak_on_critical(analyzed):
    design, report = analyzed
    weights = criticality_weights(design, report, boost=4.0)
    assert weights
    for w in weights.values():
        assert 1.0 <= w <= 5.0 + 1e-9
    # The critical net carries (near) the max weight.
    critical_net = max(
        report.arrival_ps, key=lambda n: report.arrival_ps[n]
    )
    assert weights[critical_net] == pytest.approx(5.0, rel=1e-6)


def test_boost_zero_is_uniform(analyzed):
    design, report = analyzed
    weights = criticality_weights(design, report, boost=0.0)
    assert all(w == 1.0 for w in weights.values())


def test_weighted_objective_differs(analyzed):
    design, report = analyzed
    plain = OptParams.for_arch(TECH.arch)
    weighted = OptParams.for_arch(
        TECH.arch,
        net_beta=criticality_weights(design, report),
    )
    obj_plain = calculate_objective(design, plain)
    obj_weighted = calculate_objective(design, weighted)
    # Weights >= 1 everywhere: weighted HPWL must be larger.
    assert obj_weighted > obj_plain


def test_beta_of_lookup():
    params = OptParams(beta=2.0, net_beta={"n1": 3.0})
    assert params.beta_of("n1") == 6.0
    assert params.beta_of("other") == 2.0
    uniform = OptParams(beta=2.0)
    assert uniform.beta_of("n1") == 2.0


def test_timing_driven_flow_runs():
    from repro.flow import FlowConfig, run_flow

    result = run_flow(
        FlowConfig(
            profile="aes",
            scale=0.008,
            window_um=1.0,
            time_limit=2.0,
            timing_driven=True,
        )
    )
    assert result.final_route is not None
    assert result.design.check_legal() == []
    # No adverse timing impact under the same period.
    assert result.final_timing.wns_ns >= (
        result.init_timing.wns_ns - 0.005
    )
