"""Tests for the §6 recharacterization study."""

from repro.library import build_library
from repro.tech import CellArchitecture, make_tech
from repro.timing.characterization import (
    PIN_EXTENSION_DBU,
    characterize_pin_extension,
)


def test_inv_pin_extension_is_negligible():
    """The paper's claim: extending an INV pin by 32 nm changes delay
    and slew by <= 0.1 ps."""
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    result = characterize_pin_extension(tech, lib.macro("INV_X1_RVT"))
    assert result.negligible
    assert abs(result.delay_delta_ps) <= 0.1
    assert abs(result.slew_delta_ps) <= 0.1


def test_whole_library_is_negligible():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    for macro in lib.macros.values():
        assert characterize_pin_extension(tech, macro).negligible


def test_extension_scales_linearly():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    macro = lib.macro("INV_X1_RVT")
    r1 = characterize_pin_extension(tech, macro, PIN_EXTENSION_DBU)
    r2 = characterize_pin_extension(tech, macro, PIN_EXTENSION_DBU * 2)
    assert r2.added_cap_ff == 2 * r1.added_cap_ff
    assert r2.delay_delta_ps == 2 * r1.delay_delta_ps


def test_absurd_extension_not_negligible():
    """Sanity: the negligibility test can fail (a 100 um stub)."""
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    result = characterize_pin_extension(
        tech, lib.macro("INV_X1_RVT"), extension_dbu=100_000
    )
    assert not result.negligible
