"""Tests for trace persistence + HTML reporting (repro.obs.export)."""

import json

from repro.obs.export import (
    TraceWriter,
    read_trace,
    render_timeline_html,
    write_report,
)
from repro.obs.trace import TRACE_SCHEMA, make_span_dict, new_id


def _span_doc(name, trace_id, parent_id=None, **kw):
    defaults = dict(started_at=0.0, wall_seconds=0.1)
    defaults.update(kw)
    return make_span_dict(
        name=name, trace_id=trace_id, parent_id=parent_id, **defaults
    )


def test_writer_header_then_spans(tmp_path):
    path = tmp_path / "t.ndjson"
    writer = TraceWriter(path)
    tid = new_id()
    writer.write(_span_doc("a", tid))
    writer.close()
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header == {"type": "header", "schema": TRACE_SCHEMA}
    assert json.loads(lines[1])["name"] == "a"


def test_writer_opens_lazily(tmp_path):
    path = tmp_path / "t.ndjson"
    writer = TraceWriter(path)
    writer.close()
    assert not path.exists()  # nothing written, no file


def test_append_to_existing_file_writes_no_second_header(tmp_path):
    path = tmp_path / "t.ndjson"
    tid = new_id()
    first = TraceWriter(path)
    first.write(_span_doc("attempt1", tid))
    first.close()
    second = TraceWriter(path)  # the resume case
    second.write(_span_doc("attempt2", tid))
    second.close()
    lines = path.read_text().splitlines()
    headers = [
        ln for ln in lines if json.loads(ln).get("type") == "header"
    ]
    assert len(headers) == 1
    assert [s.name for s in read_trace(path)] == [
        "attempt1",
        "attempt2",
    ]


def test_read_trace_skips_torn_and_junk_lines(tmp_path):
    path = tmp_path / "t.ndjson"
    tid = new_id()
    good = json.dumps(_span_doc("ok", tid))
    path.write_text(
        "\n".join(
            [
                json.dumps({"type": "header", "schema": TRACE_SCHEMA}),
                good,
                '{"name": "torn", "span_',  # SIGKILL mid-write
                "not json at all",
                json.dumps({"no_name": True}),
                "",
            ]
        )
    )
    spans = read_trace(path)
    assert [s.name for s in spans] == ["ok"]


def test_render_timeline_html_structure():
    tid = new_id()
    root = _span_doc("flow", tid, wall_seconds=2.0)
    child = _span_doc(
        "opt",
        tid,
        parent_id=root["span_id"],
        started_at=0.5,
        wall_seconds=1.0,
    )
    bad = _span_doc(
        "route",
        tid,
        parent_id=root["span_id"],
        started_at=1.5,
        wall_seconds=0.2,
    )
    bad["status"] = "error:ValueError"
    from repro.obs.trace import Span

    html_text = render_timeline_html(
        [Span.from_dict(d) for d in (root, child, bad)],
        title="my trace",
    )
    assert html_text.startswith("<!DOCTYPE html>")
    assert "my trace" in html_text
    assert "flow" in html_text and "opt" in html_text
    assert "bar err" in html_text  # errored span is highlighted
    assert "3 spans" in html_text
    # self-contained: no external refs
    assert "src=" not in html_text and "href=" not in html_text


def test_write_report_defaults_to_html_suffix(tmp_path):
    path = tmp_path / "run.ndjson"
    writer = TraceWriter(path)
    writer.write(_span_doc("only", new_id()))
    writer.close()
    out = write_report(path)
    assert out == tmp_path / "run.html"
    assert "only" in out.read_text()
