"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    escape_help,
    escape_label_value,
    format_value,
)


def test_counter_unlabeled():
    reg = MetricsRegistry()
    c = reg.counter("hits_total", "Hits.")
    c.inc()
    c.inc(2)
    assert c.value() == 3
    assert reg.to_dict() == {"hits_total": 3}


def test_counter_rejects_decrease():
    c = MetricsRegistry().counter("n", "h")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_labeled_series():
    reg = MetricsRegistry()
    c = reg.counter("jobs_total", "Jobs.", ("state",))
    c.inc(state="done")
    c.inc(state="done")
    c.inc(state="failed")
    assert c.value(state="done") == 2
    assert reg.to_dict() == {
        "jobs_total": {"done": 2, "failed": 1}
    }


def test_label_mismatch_raises():
    c = MetricsRegistry().counter("n", "h", ("a",))
    with pytest.raises(ValueError):
        c.inc()  # missing label
    with pytest.raises(ValueError):
        c.inc(a="x", b="y")  # extra label


def test_get_or_create_returns_same_metric():
    reg = MetricsRegistry()
    a = reg.counter("n", "h", ("x",))
    b = reg.counter("n", "other help ignored", ("x",))
    assert a is b


def test_conflicting_registration_raises():
    reg = MetricsRegistry()
    reg.counter("n", "h", ("x",))
    with pytest.raises(ValueError):
        reg.gauge("n", "h", ("x",))  # type conflict
    with pytest.raises(ValueError):
        reg.counter("n", "h", ("y",))  # label conflict


def test_gauge_set_inc_dec():
    g = MetricsRegistry().gauge("temp", "h")
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.value() == 13


def test_gauge_callback_pulls_at_exposition():
    reg = MetricsRegistry()
    state = {"v": 1}
    reg.gauge("live", "h", callback=lambda: state["v"])
    assert reg.to_dict() == {"live": 1}
    state["v"] = 7
    assert "live 7" in reg.render_prometheus()


def test_labeled_gauge_callback():
    reg = MetricsRegistry()
    reg.gauge(
        "jobs",
        "h",
        ("state",),
        callback=lambda: {("queued",): 2, ("done",): 5},
    )
    text = reg.render_prometheus()
    assert 'jobs{state="done"} 5' in text
    assert 'jobs{state="queued"} 2' in text


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("lat", "h", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    text = reg.render_prometheus()
    assert 'lat_bucket{le="0.1"} 1' in text
    assert 'lat_bucket{le="1"} 3' in text
    assert 'lat_bucket{le="10"} 4' in text
    assert 'lat_bucket{le="+Inf"} 5' in text
    assert "lat_count 5" in text
    assert f"lat_sum {repr(0.05 + 0.5 + 0.5 + 5.0 + 50.0)}" in text
    assert reg.to_dict()["lat"]["count"] == 5


def test_exposition_help_type_and_stable_order():
    reg = MetricsRegistry()
    reg.counter("b_total", "Second.").inc()
    reg.gauge("a_gauge", "First.").set(1)
    lines = reg.render_prometheus().splitlines()
    assert lines == [
        "# HELP a_gauge First.",
        "# TYPE a_gauge gauge",
        "a_gauge 1",
        "# HELP b_total Second.",
        "# TYPE b_total counter",
        "b_total 1",
    ]
    # Idempotent: a second render is byte-identical.
    assert (
        "\n".join(lines) + "\n" == reg.render_prometheus()
    )


def test_label_value_escaping_in_exposition():
    reg = MetricsRegistry()
    c = reg.counter("n", "h", ("path",))
    c.inc(path='a\\b"c\nd')
    line = reg.render_prometheus().splitlines()[-1]
    assert line == 'n{path="a\\\\b\\"c\\nd"} 1'


def test_escape_helpers():
    assert escape_label_value('x"y') == 'x\\"y'
    assert escape_label_value("a\nb") == "a\\nb"
    assert escape_help("a\nb\\c") == "a\\nb\\\\c"


def test_format_value():
    assert format_value(3) == "3"
    assert format_value(3.0) == "3"
    assert format_value(0.25) == "0.25"


def test_series_sorted_within_metric():
    reg = MetricsRegistry()
    c = reg.counter("n", "h", ("k",))
    c.inc(k="zebra")
    c.inc(k="apple")
    body = [
        ln
        for ln in reg.render_prometheus().splitlines()
        if not ln.startswith("#")
    ]
    assert body == ['n{k="apple"} 1', 'n{k="zebra"} 1']
