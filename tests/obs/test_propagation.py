"""Cross-executor and cross-attempt span propagation.

The acceptance bar from the obs design: the span tree of a run has the
same *shape* no matter which executor ran the windows (worker-side
build/presolve/solve spans come back as dicts and are absorbed in
canonical task order), and a resumed run re-joins the interrupted
attempt's trace via the context riding the checkpoint.
"""

import pytest

from repro.core import OptParams
from repro.core.checkpoint import VM1Checkpoint
from repro.core.distopt import dist_opt
from repro.core.params import ParamSet
from repro.core.vm1opt import vm1_opt
from repro.library import build_library
from repro.netlist import generate_design
from repro.obs.trace import Tracer, tracer_scope, tree_shape
from repro.placement import place_design
from repro.runtime import make_executor
from repro.tech import CellArchitecture, make_tech


def _fresh_design(seed=2):
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("m0", tech, lib, scale=0.01, seed=seed)
    place_design(design, seed=1)
    return design


def _traced_pass(executor_kind: str) -> Tracer:
    design = _fresh_design()
    params = OptParams.for_arch(design.tech.arch, time_limit=2.0)
    tracer = Tracer()
    with tracer_scope(tracer):
        with make_executor(executor_kind, 2) as executor:
            dist_opt(
                design,
                params,
                tx=0,
                ty=0,
                bw=1250,
                bh=1080,
                lx=2,
                ly=1,
                allow_flip=False,
                executor=executor,
                pass_label="move[test]",
            )
    return tracer


def test_serial_run_has_rooted_window_tree():
    tracer = _traced_pass("serial")
    shape = tree_shape(tracer.spans)
    assert len(shape) == 1
    assert shape[0][0] == "distopt"
    window_shapes = shape[0][1]
    assert window_shapes, "expected window spans under the pass"
    assert all(ws[0] == "window" for ws in window_shapes)
    # every built window carries worker-side child spans
    child_names = {
        name for ws in window_shapes for name, _ in ws[1]
    }
    assert child_names <= {"build", "presolve", "solve"}
    assert "solve" in child_names


def test_window_spans_carry_apply_verdict():
    tracer = _traced_pass("serial")
    outcomes = [
        s.attrs["outcome"]
        for s in tracer.spans
        if s.name == "window"
    ]
    assert outcomes, "expected absorbed window spans"
    known = {
        "applied", "reverted", "no_move", "no_solution",
        "failed", "timed_out", "empty",
    }
    assert set(outcomes) <= known


@pytest.mark.parametrize("kind", ["thread", "process"])
def test_tree_shape_identical_across_executors(kind):
    serial = tree_shape(_traced_pass("serial").spans)
    other = tree_shape(_traced_pass(kind).spans)
    assert other == serial


def test_trace_files_are_order_deterministic():
    """Absorption follows canonical task order, so two runs record
    window spans in the same sequence regardless of completion order."""
    a = [s.name for s in _traced_pass("thread").spans]
    b = [s.name for s in _traced_pass("thread").spans]
    assert a == b


def test_checkpoint_carries_context_and_resume_rejoins_trace():
    params = OptParams.for_arch(
        CellArchitecture.CLOSED_M1,
        sequence=(ParamSet.square(1.0, 2, 1),),
        time_limit=2.0,
    )

    checkpoints = []
    first = Tracer()
    with tracer_scope(first):
        vm1_opt(
            _fresh_design(),
            params,
            checkpoint_sink=lambda cp: checkpoints.append(cp),
        )
    assert checkpoints, "expected per-pass checkpoints"
    vm1_span = next(
        s for s in first.spans if s.name == "vm1_opt"
    )
    for cp in checkpoints:
        assert cp.trace == (first.trace_id, vm1_span.span_id)

    # Resume from the first checkpoint after a JSON round trip (what
    # the jobstore does), seeding the tracer from the stored context —
    # exactly the service's resume path.
    restored = VM1Checkpoint.loads(checkpoints[0].dumps())
    second = Tracer(
        trace_id=restored.trace[0],
        root_parent_id=restored.trace[1],
    )
    with tracer_scope(second):
        vm1_opt(_fresh_design(), params, resume=restored)

    combined = first.spans + second.spans
    assert {s.trace_id for s in combined} == {first.trace_id}
    shape = tree_shape(combined)
    assert len(shape) == 1, "both attempts must share one root"
    assert shape[0][0] == "vm1_opt"


def test_untraced_run_ships_no_spans():
    design = _fresh_design()
    params = OptParams.for_arch(design.tech.arch, time_limit=2.0)
    result = dist_opt(
        design,
        params,
        tx=0,
        ty=0,
        bw=1250,
        bh=1080,
        lx=2,
        ly=1,
        allow_flip=False,
        pass_label="move[untraced]",
    )
    assert result.objective == result.objective  # ran fine
