"""Logger hygiene: importing repro must emit nothing, ever."""

import logging
import subprocess
import sys
from pathlib import Path

import pytest

from repro.log import install_null_handler, subsystem_logger

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def test_importing_repro_emits_nothing():
    """A library must be silent on import — no stderr, no stdout,
    even when the importer configures no logging at all."""
    code = (
        "import repro\n"
        "import repro.obs\n"
        "import repro.runtime\n"
        "import repro.service\n"
        "import repro.flow\n"
        "import logging\n"
        # Emitting on a repro logger with zero user configuration must
        # also stay silent: the NullHandler stops logging.lastResort.
        "logging.getLogger('repro.runtime').warning('hidden')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": _SRC},
        check=True,
    )
    assert proc.stdout == ""
    assert proc.stderr == ""


def test_every_package_has_a_child_logger():
    import repro

    pkg_dir = Path(repro.__file__).parent
    packages = sorted(
        p.name
        for p in pkg_dir.iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    )
    assert packages, "expected repro subpackages"
    for name in packages:
        module = __import__(f"repro.{name}", fromlist=["logger"])
        logger = getattr(module, "logger", None)
        assert isinstance(logger, logging.Logger), (
            f"repro.{name} has no module logger"
        )
        assert logger.name == f"repro.{name}"


def test_subsystem_logger_rejects_foreign_names():
    with pytest.raises(ValueError):
        subsystem_logger("notrepro.thing")
    assert subsystem_logger("repro").name == "repro"
    assert subsystem_logger("repro.obs").name == "repro.obs"


def test_null_handler_installed_once():
    install_null_handler()
    install_null_handler()
    root = logging.getLogger("repro")
    nulls = [
        h
        for h in root.handlers
        if type(h) is logging.NullHandler
    ]
    assert len(nulls) == 1
