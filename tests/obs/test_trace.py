"""Unit tests for the span tracer (repro.obs.trace)."""

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    Span,
    SpanContext,
    Tracer,
    active,
    collecting,
    current_context,
    disable,
    enable,
    make_span_dict,
    new_id,
    span,
    tracer_scope,
    tree_shape,
)


@pytest.fixture(autouse=True)
def _no_global_tracer():
    """Tests that call enable() must not leak into each other."""
    yield
    disable()


def test_span_is_noop_when_disabled():
    assert active() is None
    handle = span("anything", key="value")
    assert handle is NULL_SPAN
    with handle as sp:
        assert sp.set(more=1) is sp  # chainable, still a no-op
    assert current_context() is None


def test_null_span_is_shared_singleton():
    assert span("a") is span("b")


def test_nesting_parents_and_ids():
    tracer = Tracer()
    with tracer_scope(tracer):
        with span("outer") as outer:
            with span("inner", depth=1) as inner:
                assert inner.parent_id == outer.span_id
            assert inner.trace_id == outer.trace_id == tracer.trace_id
        assert outer.parent_id is None
    names = [s.name for s in tracer.spans]
    assert names == ["inner", "outer"]  # children finish first
    assert all(s.wall_seconds >= 0 for s in tracer.spans)


def test_root_parent_id_seeds_orphan_spans():
    tracer = Tracer(trace_id="t" * 16, root_parent_id="p" * 16)
    with tracer_scope(tracer):
        with span("child") as sp:
            assert sp.parent_id == "p" * 16
            assert sp.trace_id == "t" * 16


def test_exception_marks_status_and_propagates():
    tracer = Tracer()
    with tracer_scope(tracer):
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("nope")
    assert tracer.spans[0].status == "error:RuntimeError"


def test_attrs_via_kwargs_and_set():
    tracer = Tracer()
    with tracer_scope(tracer):
        with span("work", a=1) as sp:
            sp.set(b=2)
    assert tracer.spans[0].attrs == {"a": 1, "b": 2}


def test_current_context_follows_stack():
    tracer = Tracer()
    with tracer_scope(tracer):
        assert current_context() == (tracer.trace_id, None)
        with span("outer") as outer:
            assert current_context() == (
                tracer.trace_id,
                outer.span_id,
            )
        assert current_context() == (tracer.trace_id, None)


def test_tracer_scope_none_masks_global():
    enable(sink=None)
    assert active() is not None
    with tracer_scope(None):
        assert active() is None
        assert span("hidden") is NULL_SPAN
    assert active() is not None


def test_tracer_scope_restores_previous_scope():
    a, b = Tracer(), Tracer()
    with tracer_scope(a):
        with span("a-span"):
            with tracer_scope(b):
                assert active() is b
                # fresh stack: b's spans are roots, not children of
                # a's open span
                with span("b-span") as sp:
                    assert sp.parent_id is None
            assert active() is a
    assert [s.name for s in a.spans] == ["a-span"]
    assert [s.name for s in b.spans] == ["b-span"]


def test_enable_installs_process_global():
    tracer = enable(sink=None)
    try:
        assert active() is tracer
        with span("global-span"):
            pass
        assert [s.name for s in tracer.spans] == ["global-span"]
    finally:
        assert disable() is tracer
    assert active() is None


def test_absorb_reparents_nothing_and_keeps_order():
    tracer = Tracer()
    docs = [
        make_span_dict(
            name=f"w{i}",
            trace_id=tracer.trace_id,
            parent_id=None,
            started_at=float(i),
            wall_seconds=0.5,
        )
        for i in range(3)
    ]
    tracer.absorb(docs)
    assert [s.name for s in tracer.spans] == ["w0", "w1", "w2"]


def test_make_span_dict_round_trips_through_span():
    doc = make_span_dict(
        name="solve",
        trace_id="t" * 16,
        parent_id="p" * 16,
        started_at=100.0,
        wall_seconds=1.5,
        cpu_seconds=1.2,
        attrs={"num_pairs": 7},
    )
    sp = Span.from_dict(doc)
    assert sp.name == "solve"
    assert sp.parent_id == "p" * 16
    assert sp.wall_seconds == 1.5
    assert sp.attrs == {"num_pairs": 7}
    assert len(sp.span_id) == 16


def test_collecting_seeds_from_context_and_exports():
    ctx = ("t" * 16, "r" * 16)
    with collecting(ctx) as collector:
        with span("worker-side") as sp:
            assert sp.trace_id == "t" * 16
            assert sp.parent_id == "r" * 16
    docs = collector.export()
    assert [d["name"] for d in docs] == ["worker-side"]


def test_collecting_none_is_inert():
    with collecting(None) as collector:
        assert span("ignored") is NULL_SPAN
    assert collector.export() == []


def test_span_context_tuple_round_trip():
    ctx = SpanContext("t" * 16, "s" * 16)
    assert SpanContext.from_tuple(ctx.to_tuple()) == ctx
    assert SpanContext.from_tuple(None) is None


def test_tree_shape_is_structural_and_name_sorted():
    tid = new_id()
    root = make_span_dict(
        name="root", trace_id=tid, parent_id=None,
        started_at=0.0, wall_seconds=1.0,
    )
    kid_b = make_span_dict(
        name="b", trace_id=tid, parent_id=root["span_id"],
        started_at=0.1, wall_seconds=0.1,
    )
    kid_a = make_span_dict(
        name="a", trace_id=tid, parent_id=root["span_id"],
        started_at=0.2, wall_seconds=0.1,
    )
    # Shape ignores recording order and timing; only structure counts.
    assert tree_shape([root, kid_b, kid_a]) == tree_shape(
        [kid_a, root, kid_b]
    )
    assert tree_shape([root, kid_a, kid_b]) == [
        ["root", [["a", []], ["b", []]]]
    ]


def test_tree_shape_roots_are_spans_with_absent_parents():
    tid = new_id()
    orphan = make_span_dict(
        name="shipped", trace_id=tid, parent_id="gone" * 4,
        started_at=0.0, wall_seconds=0.1,
    )
    assert tree_shape([orphan]) == [["shipped", []]]
