"""Tests for the sampling profiler (repro.obs.profile)."""

import time

from repro.obs.profile import SamplingProfiler, profile_block
from repro.obs.trace import Tracer, span, tracer_scope


def _busy(deadline: float) -> int:
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


def test_profiler_samples_current_thread():
    profiler = SamplingProfiler(interval=0.001)
    profiler.start()
    _busy(time.perf_counter() + 0.15)
    result = profiler.stop()
    assert result["samples"] > 0
    assert result["interval"] == 0.001
    assert result["stacks"], "expected at least one collapsed stack"
    top = result["stacks"][0]
    assert top["count"] >= 1
    # outermost-first collapsed frames, file:func joined with ';'
    assert ";" in top["stack"] or ":" in top["stack"]
    assert "_busy" in top["stack"]


def test_profiler_stop_is_idempotent_and_joins():
    profiler = SamplingProfiler(interval=0.001)
    profiler.start()
    time.sleep(0.02)
    first = profiler.stop()
    second = profiler.stop()
    assert second["samples"] == first["samples"]


def test_profile_block_helper():
    with profile_block(interval=0.001) as handle:
        _busy(time.perf_counter() + 0.08)
    result = handle.result
    assert result["samples"] > 0


def test_tracer_attaches_profile_to_named_spans():
    tracer = Tracer(profile_spans=("hot",), profile_interval=0.001)
    with tracer_scope(tracer):
        with span("cold"):
            pass
        with span("hot"):
            _busy(time.perf_counter() + 0.1)
    by_name = {s.name: s for s in tracer.spans}
    assert "profile" not in by_name["cold"].attrs
    prof = by_name["hot"].attrs["profile"]
    assert prof["samples"] > 0
