"""Tests for the placement entry point."""

from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.tech import CellArchitecture, make_tech


def test_place_design_returns_hpwl_and_is_legal():
    tech = make_tech(CellArchitecture.OPEN_M1)
    lib = build_library(tech)
    d = generate_design("m0", tech, lib, scale=0.02, seed=7)
    hpwl = place_design(d, seed=2)
    assert hpwl == d.total_hpwl()
    assert hpwl > 0
    assert d.check_legal() == []


def test_place_design_seed_reproducible():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    d1 = generate_design("m0", tech, lib, scale=0.015, seed=7)
    d2 = generate_design("m0", tech, lib, scale=0.015, seed=7)
    h1 = place_design(d1, seed=3)
    h2 = place_design(d2, seed=3)
    assert h1 == h2
    assert d1.placement_snapshot() == d2.placement_snapshot()


def test_placement_seed_insensitive_after_convergence():
    """The relaxation + quantile-spread pipeline washes out the
    random initial coordinates: different placer seeds land within a
    few percent HPWL of each other (often identically)."""
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    d1 = generate_design("m0", tech, lib, scale=0.015, seed=7)
    d2 = generate_design("m0", tech, lib, scale=0.015, seed=7)
    h1 = place_design(d1, seed=3)
    h2 = place_design(d2, seed=4)
    assert abs(h1 - h2) <= 0.05 * max(h1, h2)


def test_different_netlist_seed_different_placement():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    d1 = generate_design("m0", tech, lib, scale=0.015, seed=7)
    d2 = generate_design("m0", tech, lib, scale=0.015, seed=8)
    place_design(d1, seed=3)
    place_design(d2, seed=3)
    assert d1.placement_snapshot() != d2.placement_snapshot()
