"""Tests for the legalizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.library import build_library
from repro.netlist import Design, generate_design
from repro.placement import global_place, legalize
from repro.placement.legalize import LegalizationError, _Row
from repro.tech import CellArchitecture, make_tech

TECH = make_tech(CellArchitecture.CLOSED_M1)
LIB = build_library(TECH)


def make_design(n_cols, n_rows):
    die = Rect(0, 0, n_cols * TECH.site_width, n_rows * TECH.row_height)
    return Design("t", TECH, die)


def test_row_interval_bookkeeping():
    row = _Row(0, [(0, 20)])
    assert row.best_position(5, 4) == 5
    row.occupy(5, 4)
    assert row.free == [(0, 5), (9, 20)]
    # Displacement ties (col 1 vs col 9, both |dx|=4) go to the
    # leftmost interval; an asymmetric target resolves to the right.
    assert row.best_position(5, 4) in (1, 9)
    assert row.best_position(6, 4) == 9
    row.occupy(0, 5)
    row.occupy(9, 11)
    assert row.free == []
    assert row.best_position(0, 1) is None


def test_occupy_outside_free_raises():
    row = _Row(0, [(0, 10)])
    row.occupy(0, 10)
    with pytest.raises(LegalizationError):
        row.occupy(0, 1)


def test_legalize_simple_collision():
    d = make_design(40, 2)
    d.add_instance("a", LIB.macro("INV_X1_RVT"))
    d.add_instance("b", LIB.macro("INV_X1_RVT"))
    for inst in d.instances.values():
        inst.x, inst.y = 100, 10  # both on the same spot
    legalize(d)
    assert d.check_legal() == []


def test_legalize_respects_fixed_instances():
    d = make_design(12, 1)
    d.add_instance("fix", LIB.macro("INV_X1_RVT"))
    d.place("fix", column=4, row=0)
    d.instances["fix"].fixed = True
    d.add_instance("mov", LIB.macro("INV_X1_RVT"))
    d.instances["mov"].x, d.instances["mov"].y = 4 * 36, 0
    legalize(d)
    assert d.check_legal() == []
    assert d.column_of(d.instances["fix"]) == 4  # untouched
    assert d.column_of(d.instances["mov"]) in (0, 8)


def test_legalize_overflow_raises():
    d = make_design(4, 1)  # room for exactly one INV (4 sites)
    d.add_instance("a", LIB.macro("INV_X1_RVT"))
    d.add_instance("b", LIB.macro("INV_X1_RVT"))
    with pytest.raises(LegalizationError):
        legalize(d)


def test_legalize_prefers_near_target():
    d = make_design(40, 4)
    d.add_instance("a", LIB.macro("INV_X1_RVT"))
    d.instances["a"].x = 20 * 36
    d.instances["a"].y = 2 * 270 + 10
    legalize(d)
    inst = d.instances["a"]
    assert d.row_of(inst) == 2
    assert abs(d.column_of(inst) - 20) <= 1


def test_full_pipeline_is_legal_at_high_utilization():
    design = generate_design(
        "aes", TECH, LIB, scale=0.03, seed=4, utilization=0.9
    )
    global_place(design, seed=1)
    legalize(design)
    assert design.check_legal() == []


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_legalize_random_blobs(seed):
    """Property: any in-die blob of cells (<= capacity) legalizes."""
    import numpy as np

    rng = np.random.RandomState(seed)
    d = make_design(30, 3)
    macros = [LIB.macro("INV_X1_RVT"), LIB.macro("NAND2_X1_RVT")]
    used = 0
    i = 0
    while used < 60:  # 90 sites capacity, stay below
        macro = macros[rng.randint(len(macros))]
        d.add_instance(f"u{i}", macro)
        inst = d.instances[f"u{i}"]
        inst.x = int(rng.randint(0, d.die.xhi))
        inst.y = int(rng.randint(0, d.die.yhi))
        used += macro.width_sites
        i += 1
    legalize(d)
    assert d.check_legal() == []
