"""Tests for the global placer."""

import numpy as np
import pytest

from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import global_place
from repro.placement.global_place import _quantile_spread
from repro.tech import CellArchitecture, make_tech


@pytest.fixture(scope="module")
def placed():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("aes", tech, lib, scale=0.03, seed=2)
    global_place(design, seed=1)
    return design


def test_all_instances_inside_die(placed):
    die = placed.die
    for inst in placed.instances.values():
        assert die.xlo <= inst.x <= die.xhi
        assert die.ylo <= inst.y <= die.yhi


def test_spreading_roughly_uniform(placed):
    """No quadrant should hold a grossly disproportionate area share."""
    die = placed.die
    mid_x = (die.xlo + die.xhi) / 2
    mid_y = (die.ylo + die.yhi) / 2
    quadrants = [0, 0, 0, 0]
    for inst in placed.instances.values():
        idx = (inst.x >= mid_x) * 2 + (inst.y >= mid_y)
        quadrants[idx] += inst.width * inst.height
    total = sum(quadrants)
    for q in quadrants:
        assert 0.15 < q / total < 0.35


def test_connected_cells_are_near(placed):
    """Average 2-pin net span must beat the random-pair expectation."""
    spans = []
    for net in placed.nets.values():
        if net.degree == 2 and len(net.pins) == 2:
            a = placed.instances[net.pins[0].instance]
            b = placed.instances[net.pins[1].instance]
            spans.append(abs(a.x - b.x) + abs(a.y - b.y))
    random_expectation = (placed.die.width + placed.die.height) / 3
    assert np.mean(spans) < 0.6 * random_expectation


def test_determinism():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    d1 = generate_design("aes", tech, lib, scale=0.02, seed=2)
    d2 = generate_design("aes", tech, lib, scale=0.02, seed=2)
    global_place(d1, seed=9)
    global_place(d2, seed=9)
    for name in d1.instances:
        assert d1.instances[name].x == d2.instances[name].x
        assert d1.instances[name].y == d2.instances[name].y


def test_quantile_spread_uniform_and_monotone():
    rng = np.random.RandomState(0)
    coords = rng.normal(500, 50, size=200)  # collapsed blob
    areas = np.ones(200)
    spread = _quantile_spread(coords, areas, 0, 1000)
    order_in = np.argsort(coords)
    assert (np.diff(spread[order_in]) >= 0).all()  # order preserved
    hist, _ = np.histogram(spread, bins=4, range=(0, 1000))
    assert hist.max() - hist.min() <= 2  # near-uniform fill


def test_quantile_spread_weights_by_area():
    coords = np.array([0.0, 1.0, 2.0])
    areas = np.array([1.0, 1.0, 98.0])
    spread = _quantile_spread(coords, areas, 0, 1000)
    # The heavy cell's area midpoint sits at (2+98/2)/100 of the span.
    assert spread[2] == pytest.approx(510.0, abs=1.0)
