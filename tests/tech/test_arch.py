"""Tests for repro.tech.arch — the Figure 1 architecture contracts."""

from repro.tech import AlignmentMode, CellArchitecture


def test_track_counts():
    assert CellArchitecture.CONV_12T.track_count == 12.0
    assert CellArchitecture.CLOSED_M1.track_count == 7.5
    assert CellArchitecture.OPEN_M1.track_count == 7.5


def test_pin_layers():
    # ClosedM1 pins are on M1, OpenM1 pins on M0 (paper Figure 1).
    assert CellArchitecture.CLOSED_M1.pin_layer_index == 1
    assert CellArchitecture.OPEN_M1.pin_layer_index == 0
    assert CellArchitecture.CONV_12T.pin_layer_index == 1


def test_alignment_modes():
    assert CellArchitecture.CLOSED_M1.alignment_mode is AlignmentMode.ALIGN
    assert CellArchitecture.OPEN_M1.alignment_mode is AlignmentMode.OVERLAP
    assert CellArchitecture.CONV_12T.alignment_mode is AlignmentMode.NONE


def test_direct_m1_support():
    assert CellArchitecture.CLOSED_M1.supports_direct_m1
    assert CellArchitecture.OPEN_M1.supports_direct_m1
    assert not CellArchitecture.CONV_12T.supports_direct_m1


def test_default_gamma_matches_paper():
    # ClosedM1 constraint (4) allows adjacent rows; OpenM1 uses gamma=3.
    assert CellArchitecture.CLOSED_M1.default_gamma == 1
    assert CellArchitecture.OPEN_M1.default_gamma == 3
