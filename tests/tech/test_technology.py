"""Tests for repro.tech.technology."""

import pytest

from repro.tech import CellArchitecture, make_tech


@pytest.fixture(scope="module")
def tech():
    return make_tech(CellArchitecture.CLOSED_M1)


def test_row_heights_by_arch():
    assert make_tech(CellArchitecture.CLOSED_M1).row_height == 270
    assert make_tech(CellArchitecture.OPEN_M1).row_height == 270
    assert make_tech(CellArchitecture.CONV_12T).row_height == 432


def test_m1_pitch_equals_site_width(tech):
    """The ClosedM1 property the whole paper relies on (§1.1)."""
    assert tech.m1.pitch == tech.site_width


def test_layer_stack_order(tech):
    names = [layer.name for layer in tech.layers]
    assert names[:5] == ["M0", "M1", "M2", "M3", "M4"]
    for i, layer in enumerate(tech.layers):
        assert layer.index == i


def test_alternating_directions(tech):
    for below, above in zip(tech.layers, tech.layers[1:]):
        assert below.direction != above.direction


def test_layer_lookup(tech):
    assert tech.layer("M2").index == 2
    with pytest.raises(KeyError):
        tech.layer("M99")


def test_via_between(tech):
    assert tech.via_between(1, 2).name == "V12"
    with pytest.raises(KeyError):
        tech.via_between(0, 2)


def test_unit_conversions(tech):
    assert tech.dbu(1.5) == 1500
    assert tech.microns(2700) == 2.7


def test_site_and_row_grids(tech):
    assert tech.site_x(10) == 360
    assert tech.column_of(360) == 10
    assert tech.column_of(395) == 10
    assert tech.row_y(3) == 810
    assert tech.row_of(815) == 3


def test_m1_track_centering(tech):
    """One M1 track per site, centered in the site."""
    for column in (0, 1, 17):
        x = tech.m1_track_x(column)
        assert tech.site_x(column) < x < tech.site_x(column + 1)
        assert tech.m1_track_of(x) == column


def test_bad_layer_index_rejected():
    from repro.tech.layers import Direction, Layer
    from repro.tech.technology import Technology

    with pytest.raises(ValueError):
        Technology(
            name="bad",
            arch=CellArchitecture.CLOSED_M1,
            site_width=36,
            row_height=270,
            layers=(Layer("M0", 1, Direction.HORIZONTAL, 36, 18, 18),),
            via_layers=(),
        )
