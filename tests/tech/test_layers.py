"""Tests for repro.tech.layers."""

from repro.tech import Direction, Layer, ViaLayer


def test_direction_orthogonal():
    assert Direction.HORIZONTAL.orthogonal() is Direction.VERTICAL
    assert Direction.VERTICAL.orthogonal() is Direction.HORIZONTAL


def test_track_coord_roundtrip():
    layer = Layer("M2", 2, Direction.HORIZONTAL, pitch=36, offset=18,
                  width=18)
    assert layer.track_coord(0) == 18
    assert layer.track_coord(10) == 378
    for track in (0, 1, 7, 100):
        assert layer.nearest_track(layer.track_coord(track)) == track


def test_nearest_track_rounds():
    layer = Layer("M2", 2, Direction.HORIZONTAL, pitch=36, offset=18,
                  width=18)
    assert layer.nearest_track(18 + 19) == 1  # closer to track 1
    assert layer.nearest_track(18 + 17) == 0  # closer to track 0


def test_via_layer_fields():
    via = ViaLayer("V12", 1, 2)
    assert via.below == 1 and via.above == 2
    assert via.resistance > 0
