"""Legacy setup shim: lets ``pip install -e .`` work without the
``wheel`` package (offline environment has no PEP 517 backend deps)."""

from setuptools import setup

setup()
