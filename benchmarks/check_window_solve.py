"""Perf smoke gate for the window-solve hot path.

Reads ``BENCH_window_solve.json`` (written by running
``benchmarks/test_microbench.py``) and fails when the combined
build + presolve + solve time on the fixture window has regressed more
than ``MAX_REGRESSION``x past the committed pre-hot-path baseline in
``benchmarks/results/window_solve_baseline.json``.

The gate is deliberately loose: CI runners are noisy and the baseline
was measured on different hardware, so it only catches real order-of-
magnitude regressions (an accidental O(n^2) build, presolve running
twice, dense extraction creeping back in) — not percent-level drift.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT = REPO_ROOT / "BENCH_window_solve.json"
BASELINE = Path(__file__).parent / "results" / "window_solve_baseline.json"

#: Fail when combined time exceeds baseline * MAX_REGRESSION.
MAX_REGRESSION = 3.0


def main() -> int:
    if not REPORT.exists():
        print(f"missing {REPORT}; run benchmarks/test_microbench.py first")
        return 2
    report = json.loads(REPORT.read_text())
    combined = report.get("combined_seconds")
    if combined is None:
        print("report has no combined_seconds (hot-path benches skipped?)")
        return 2
    baseline = json.loads(BASELINE.read_text())
    limit = baseline["combined_seconds"] * MAX_REGRESSION
    speedup = report.get("speedup_vs_baseline")
    print(
        f"combined build+presolve+solve: {combined * 1e3:.2f} ms "
        f"(baseline {baseline['combined_seconds'] * 1e3:.2f} ms, "
        f"limit {limit * 1e3:.2f} ms, "
        f"min-speedup {speedup:.2f}x)"
        if speedup is not None
        else f"combined: {combined * 1e3:.2f} ms (limit {limit * 1e3:.2f} ms)"
    )
    if combined > limit:
        print(
            f"FAIL: window solve regressed >{MAX_REGRESSION:.0f}x "
            f"vs committed baseline"
        )
        return 1
    print("perf smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
