"""Perf smoke gate for the window-solve hot path.

Reads ``benchmarks/results/BENCH_window_solve.json`` (written by
running ``benchmarks/test_microbench.py``) and fails when the combined
build + presolve + solve time on the fixture window has regressed more
than ``MAX_REGRESSION``x past the committed pre-hot-path baseline in
``benchmarks/results/window_solve_baseline.json``.

The gate is deliberately loose: CI runners are noisy and the baseline
was measured on different hardware, so it only catches real order-of-
magnitude regressions (an accidental O(n^2) build, presolve running
twice, dense extraction creeping back in) — not percent-level drift.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).parent / "results"
REPORT = RESULTS_DIR / "BENCH_window_solve.json"
BASELINE = RESULTS_DIR / "window_solve_baseline.json"

#: Fail when combined time exceeds baseline * MAX_REGRESSION.
MAX_REGRESSION = 3.0


def _load_json(path: Path, role: str) -> dict | None:
    """Read a report/baseline file; None (with a message) on any
    missing, unreadable, or non-object document."""
    if not path.exists():
        print(f"missing {role} {path}; run benchmarks/test_microbench.py first")
        return None
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"malformed {role} {path}: {exc}")
        return None
    if not isinstance(doc, dict):
        print(f"malformed {role} {path}: expected a JSON object, got "
              f"{type(doc).__name__}")
        return None
    return doc


def main() -> int:
    report = _load_json(REPORT, "report")
    if report is None:
        return 2
    combined = report.get("combined_seconds")
    if not isinstance(combined, (int, float)):
        print("report has no combined_seconds (hot-path benches skipped?)")
        return 2
    baseline = _load_json(BASELINE, "baseline")
    if baseline is None:
        return 2
    base_combined = baseline.get("combined_seconds")
    if not isinstance(base_combined, (int, float)) or base_combined <= 0:
        print(f"malformed baseline {BASELINE}: combined_seconds must be "
              f"a positive number, got {base_combined!r}")
        return 2
    baseline = dict(baseline, combined_seconds=float(base_combined))
    limit = baseline["combined_seconds"] * MAX_REGRESSION
    speedup = report.get("speedup_vs_baseline")
    print(
        f"combined build+presolve+solve: {combined * 1e3:.2f} ms "
        f"(baseline {baseline['combined_seconds'] * 1e3:.2f} ms, "
        f"limit {limit * 1e3:.2f} ms, "
        f"min-speedup {speedup:.2f}x)"
        if speedup is not None
        else f"combined: {combined * 1e3:.2f} ms (limit {limit * 1e3:.2f} ms)"
    )
    if combined > limit:
        print(
            f"FAIL: window solve regressed >{MAX_REGRESSION:.0f}x "
            f"vs committed baseline"
        )
        return 1
    print("perf smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
