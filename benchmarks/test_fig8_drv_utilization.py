"""Figure 8: DRVs before/after optimization vs initial utilization.

Paper shape targets: raising utilization induces congestion DRVs; the
optimizer avoids a substantial fraction of them while keeping a large
#dM1 count.  (The paper also notes DRV counts are not perfectly
monotonic in utilization — initial placement quality dominates — so
we assert the aggregate trend, not per-point monotonicity.)
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval import render_markdown_table
from repro.eval.expt_b import expt_b_fig8_drv_sweep

UTILIZATIONS = (0.80, 0.83, 0.86)


@pytest.mark.benchmark(group="fig8")
def test_fig8_drv_utilization(benchmark, eval_scale, save_rows):
    rows = run_once(
        benchmark,
        expt_b_fig8_drv_sweep,
        eval_scale,
        utilizations=UTILIZATIONS,
    )
    save_rows("fig8_drv_sweep", rows)
    print("\n" + render_markdown_table(rows))

    # Shape 1: optimization reduces DRVs in aggregate and (modulo a
    # small noise floor on individual points) per utilization.
    total_orig = sum(row["#DRVs orig"] for row in rows)
    total_opt = sum(row["#DRVs opt"] for row in rows)
    for row in rows:
        assert row["#DRVs opt"] <= row["#DRVs orig"] * 1.05 + 2, row
    assert total_orig > 0
    assert total_opt < 0.95 * total_orig

    # Shape 2: #dM1 grows at every utilization point.
    for row in rows:
        assert row["#dM1 opt"] > row["#dM1 orig"], row
