"""Microbenchmarks of the heavy inner kernels.

These are genuine multi-round pytest benchmarks (unlike the one-shot
experiment regenerations): window MILP construction, window MILP
solve, and full-design routing — the three costs that dominate the
flow and that Figure 5's runtime axis is made of.
"""

import pytest

from repro.core import OptParams, Window, build_window_model
from repro.core.window import partition
from repro.library import build_library
from repro.milp import HighsBackend
from repro.netlist import generate_design
from repro.placement import place_design
from repro.routing import DetailedRouter
from repro.tech import CellArchitecture, make_tech


@pytest.fixture(scope="module")
def placed_design():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("aes", tech, lib, scale=0.03, seed=3)
    place_design(design, seed=1)
    return design


@pytest.fixture(scope="module")
def one_window(placed_design):
    windows = partition(placed_design, 0, 0, 1250, 1080)
    # Pick the fullest window for a representative MILP.
    return max(
        windows,
        key=lambda w: len(placed_design.instances_in(w.rect)),
    )


@pytest.mark.benchmark(group="micro")
def test_bench_window_model_build(benchmark, placed_design, one_window):
    params = OptParams.for_arch(placed_design.tech.arch)
    problem = benchmark(
        build_window_model,
        placed_design,
        one_window,
        params,
        lx=3,
        ly=1,
        allow_flip=False,
    )
    assert problem is not None
    assert problem.model.num_binaries > 0


@pytest.mark.benchmark(group="micro")
def test_bench_window_milp_solve(benchmark, placed_design, one_window):
    params = OptParams.for_arch(placed_design.tech.arch)
    problem = build_window_model(
        placed_design, one_window, params, lx=3, ly=1, allow_flip=False
    )
    solver = HighsBackend(time_limit=10.0, mip_rel_gap=0.01)
    solution = benchmark(solver.solve, problem.model)
    assert solution.status.has_solution


@pytest.mark.benchmark(group="micro")
def test_bench_full_route(benchmark, placed_design):
    metrics = benchmark(lambda: DetailedRouter(placed_design).route())
    assert metrics.routed_wirelength > 0
