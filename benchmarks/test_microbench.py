"""Microbenchmarks of the heavy inner kernels.

These are genuine multi-round pytest benchmarks (unlike the one-shot
experiment regenerations): window MILP construction, the presolve
reductions, the (presolved) window MILP solve, and full-design routing
— the costs that dominate the flow and that Figure 5's runtime axis is
made of.

After the module runs, the per-stage medians are written to
``benchmarks/results/BENCH_window_solve.json`` together with the
committed pre-hot-path baseline
(``benchmarks/results/window_solve_baseline.json``) and the resulting
combined build+presolve+solve speedup.  CI uploads the file as an
artifact and the perf smoke job fails on a >3x regression.
"""

import json
from pathlib import Path

import pytest

from repro.core import OptParams, Window, build_window_model
from repro.core.window import partition
from repro.library import build_library
from repro.milp import HighsBackend
from repro.milp.presolve import presolve
from repro.netlist import generate_design
from repro.placement import place_design
from repro.routing import DetailedRouter
from repro.tech import CellArchitecture, make_tech

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "window_solve_baseline.json"
REPORT_PATH = RESULTS_DIR / "BENCH_window_solve.json"

#: Stage name -> {"median": s, "min": s}, filled by each bench below.
_stage_stats: dict[str, dict[str, float]] = {}


def _record(name: str, benchmark) -> None:
    stats = benchmark.stats.stats
    _stage_stats[name] = {
        "median": stats.median,
        "min": stats.min,
    }


@pytest.fixture(scope="module", autouse=True)
def window_solve_report():
    """Write the bench report once the benches have run.

    Reports are working artifacts, not source: they land in
    ``benchmarks/results/`` (gitignored apart from the committed
    baseline) instead of the repository root.
    """
    yield
    if not _stage_stats:
        return
    report: dict = {
        "schema": "repro.bench.window_solve/v1",
        "fixture": {
            "design": "aes",
            "arch": "CLOSED_M1",
            "scale": 0.03,
            "netlist_seed": 3,
            "placement_seed": 1,
            "window": "fullest window of partition(0, 0, 1250, 1080)",
            "lx": 3,
            "ly": 1,
            "allow_flip": False,
        },
        "stages": dict(sorted(_stage_stats.items())),
    }
    hot_path = ("model_build", "presolve", "solve")
    if all(stage in _stage_stats for stage in hot_path):
        combined = sum(
            _stage_stats[stage]["median"] for stage in hot_path
        )
        combined_min = sum(
            _stage_stats[stage]["min"] for stage in hot_path
        )
        report["combined_seconds"] = combined
        report["combined_seconds_min"] = combined_min
        if BASELINE_PATH.exists():
            baseline = json.loads(BASELINE_PATH.read_text())
            base_med = baseline["combined_seconds"]
            base_min = (
                baseline["build_seconds_min"]
                + baseline["solve_seconds_min"]
            )
            report["baseline"] = {
                "combined_seconds": base_med,
                "combined_seconds_min": base_min,
                "build_seconds": baseline["build_seconds"],
                "solve_seconds": baseline["solve_seconds"],
            }
            # Headline ratio uses the per-round minimum — the
            # noise-robust statistic pytest-benchmark itself ranks
            # by; the median-based ratio rides along for context.
            report["speedup_vs_baseline"] = base_min / combined_min
            report["speedup_vs_baseline_median"] = (
                base_med / combined
            )
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(json.dumps(report, indent=1) + "\n")


@pytest.fixture(scope="module")
def placed_design():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("aes", tech, lib, scale=0.03, seed=3)
    place_design(design, seed=1)
    return design


@pytest.fixture(scope="module")
def one_window(placed_design):
    windows = partition(placed_design, 0, 0, 1250, 1080)
    # Pick the fullest window for a representative MILP.
    return max(
        windows,
        key=lambda w: len(placed_design.instances_in(w.rect)),
    )


@pytest.fixture(scope="module")
def one_problem(placed_design, one_window):
    params = OptParams.for_arch(placed_design.tech.arch)
    return build_window_model(
        placed_design, one_window, params, lx=3, ly=1, allow_flip=False
    )


@pytest.mark.benchmark(group="micro")
def test_bench_window_model_build(benchmark, placed_design, one_window):
    params = OptParams.for_arch(placed_design.tech.arch)
    problem = benchmark(
        build_window_model,
        placed_design,
        one_window,
        params,
        lx=3,
        ly=1,
        allow_flip=False,
    )
    assert problem is not None
    assert problem.model.num_binaries > 0
    _record("model_build", benchmark)


@pytest.mark.benchmark(group="micro")
def test_bench_window_presolve(benchmark, one_problem):
    result = benchmark(presolve, one_problem.model)
    assert result.stats.rows_dropped > 0
    _record("presolve", benchmark)


# Enough rounds for the per-round minimum to shake off scheduler
# noise — the headline speedup statistic is built from it.
@pytest.mark.benchmark(group="micro", min_rounds=40)
def test_bench_window_milp_solve(benchmark, one_problem):
    # The hot path solves the presolved model; the reductions
    # themselves are timed separately above.
    reduced = presolve(one_problem.model)
    solver = HighsBackend(time_limit=10.0, mip_rel_gap=0.01)
    solution = benchmark(solver.solve, reduced.model)
    assert solution.status.has_solution
    assert reduced.lift(solution).status.has_solution
    _record("solve", benchmark)


@pytest.mark.benchmark(group="micro")
def test_bench_full_route(benchmark, placed_design):
    metrics = benchmark(lambda: DetailedRouter(placed_design).route())
    assert metrics.routed_wirelength > 0
    _record("route", benchmark)
