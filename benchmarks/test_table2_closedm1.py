"""Table 2 (top half): ClosedM1-based designs, full flow.

Paper shape targets: #dM1 increases by well over 2x (the paper sees
4-4.6x; our exact-alignment baseline is rarer so the multiplier is
larger), routed wirelength and #via12 decrease, there is no adverse
WNS impact, total power does not increase, and DRVs do not increase.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval import render_markdown_table
from repro.eval.expt_b import expt_b_table2
from repro.tech import CellArchitecture


@pytest.mark.benchmark(group="table2")
def test_table2_closedm1(benchmark, eval_scale, save_rows):
    rows = run_once(
        benchmark,
        expt_b_table2,
        eval_scale,
        archs=(CellArchitecture.CLOSED_M1,),
    )
    save_rows("table2_closedm1", rows)
    print("\n" + render_markdown_table(rows))

    assert len(rows) == 4
    for row in rows:
        design = row["design"]
        assert row["#dM1 final"] > 2 * max(row["#dM1 init"], 1), design
        assert row["RWL %"] < 0, design
        assert row["#via12 %"] < 0, design
        assert row["WNS final (ns)"] >= row["WNS init (ns)"] - 0.005, (
            design
        )
        assert row["power %"] <= 0.5, design
        assert row["#DRV final"] <= row["#DRV init"], design
