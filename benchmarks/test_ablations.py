"""Ablation benches for the design choices DESIGN.md calls out.

Three ablations:

* **Metaheuristic passes** — Algorithm 1's flip pass (lines 7-8) and
  window-grid shifting (line 9) both contribute alignments; disabling
  either must not improve the objective.
* **Jogged-M1 route modeling** — the router's near-direct M1+M2 jog
  stage is what makes the initial M1 wirelength and via12 counts
  realistic; without it stage 1 books strictly fewer M1 routes.
* **Timing-criticality weights (§6 extension)** — under a stressed
  clock, criticality-weighted β must not worsen WNS relative to the
  uniform objective.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core import OptParams, ParamSet, vm1_opt
from repro.core.objective import alignment_stats
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.routing import DetailedRouter, RouterConfig
from repro.tech import CellArchitecture, make_tech


def _fresh_design(scale=0.02, seed=3):
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("aes", tech, lib, scale=scale, seed=seed)
    place_design(design, seed=1)
    return design


def _params(tech_arch, theta=0.05):
    return OptParams.for_arch(
        tech_arch,
        sequence=(ParamSet.square(1.0, 3, 1),),
        time_limit=3.0,
        theta=theta,
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_metaheuristic_passes(benchmark, save_rows):
    def run():
        rows = []
        for label, kwargs in (
            ("full", {}),
            ("no-flip", {"enable_flip": False}),
            ("no-shift", {"enable_shift": False}),
        ):
            design = _fresh_design()
            params = _params(design.tech.arch)
            result = vm1_opt(design, params, **kwargs)
            stats = alignment_stats(design, params)
            rows.append(
                {
                    "variant": label,
                    "objective": result.final_objective,
                    "#aligned": stats.num_aligned,
                    "iterations": result.iterations,
                    "runtime (s)": result.wall_seconds,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    save_rows("ablation_metaheuristic", rows)
    by = {row["variant"]: row for row in rows}
    # Removing a pass must not improve the final objective.
    assert by["full"]["objective"] <= by["no-flip"]["objective"] + 1e-6
    assert by["full"]["objective"] <= by["no-shift"]["objective"] + 1e-6
    # The flip degree of freedom contributes alignments.
    assert by["full"]["#aligned"] >= by["no-flip"]["#aligned"]


@pytest.mark.benchmark(group="ablation")
def test_ablation_jog_modeling(benchmark, save_rows):
    def run():
        design = _fresh_design(scale=0.04)
        with_jogs = DetailedRouter(design).route()
        without = DetailedRouter(
            design, RouterConfig(jog_max_sites=0)
        ).route()
        return [
            {
                "variant": "with jogs",
                "#jogs": with_jogs.num_jog_m1,
                "#dM1": with_jogs.num_dm1,
                "M1WL (um)": with_jogs.m1_wirelength / 1000,
                "#via12": with_jogs.num_via12,
            },
            {
                "variant": "no jogs",
                "#jogs": without.num_jog_m1,
                "#dM1": without.num_dm1,
                "M1WL (um)": without.m1_wirelength / 1000,
                "#via12": without.num_via12,
            },
        ]

    rows = run_once(benchmark, run)
    save_rows("ablation_jogs", rows)
    with_jogs, without = rows
    assert with_jogs["#jogs"] > 0
    assert without["#jogs"] == 0
    assert without["#dM1"] == with_jogs["#dM1"]  # dM1 unaffected
    assert without["M1WL (um)"] < with_jogs["M1WL (um)"]


@pytest.mark.benchmark(group="ablation")
def test_ablation_timing_driven(benchmark, save_rows):
    from dataclasses import replace

    from repro.routing import DetailedRouter
    from repro.timing import analyze_timing
    from repro.timing.criticality import criticality_weights

    def run():
        rows = []
        for label, timing_driven in (
            ("uniform beta", False),
            ("criticality beta", True),
        ):
            design = _fresh_design()
            init_metrics = DetailedRouter(design).route()
            init_timing = analyze_timing(
                design, init_metrics.net_lengths
            )
            period = 0.95 * init_timing.critical_path_ps
            params = _params(design.tech.arch)
            if timing_driven:
                params = replace(
                    params,
                    net_beta=criticality_weights(design, init_timing),
                )
            vm1_opt(design, params)
            metrics = DetailedRouter(design).route()
            timing = analyze_timing(
                design, metrics.net_lengths, clock_period_ps=period
            )
            rows.append(
                {
                    "variant": label,
                    "WNS (ps)": timing.wns_ps,
                    "TNS (ps)": timing.tns_ps,
                    "RWL (um)": metrics.routed_wirelength / 1000,
                    "#dM1": metrics.num_dm1,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    save_rows("ablation_timing_driven", rows)
    uniform, weighted = rows
    # Criticality weighting must not hurt WNS (and usually helps).
    assert weighted["WNS (ps)"] >= uniform["WNS (ps)"] - 10.0
