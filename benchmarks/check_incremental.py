"""CI smoke gate for the incremental DistOpt engine.

Reads ``benchmarks/results/BENCH_incremental.json`` (written by
running ``benchmarks/test_incremental.py``) and fails when the
incremental run broke equivalence — placements not byte-identical,
delta-accounted objective drifting past tolerance, the dirty tracker
not engaging at all — or when the converged-tail speedup fell under
``MIN_SPEEDUP``.

The speedup floor here is looser than the benchmark's own assertion:
CI runners are noisy and share cores, so the gate only catches the
feature being effectively off (skips not engaging, or the tracker
costing more than it saves) — not percent-level drift.  Exit codes:
0 ok, 1 regression, 2 missing/malformed report.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPORT = (
    Path(__file__).parent / "results" / "BENCH_incremental.json"
)

#: Equivalence bound on |incremental − recomputed| final objective;
#: mirrors repro.core.distopt.DRIFT_TOLERANCE (not imported: the gate
#: must run without the package installed).
DRIFT_TOLERANCE = 1e-6

#: CI floor on converged-tail speedup (benchmark itself asserts 1.5x).
MIN_SPEEDUP = 1.2


def main() -> int:
    if not REPORT.exists():
        print(
            f"missing report {REPORT}; run "
            f"benchmarks/test_incremental.py first"
        )
        return 2
    try:
        doc = json.loads(REPORT.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"malformed report {REPORT}: {exc}")
        return 2
    if not isinstance(doc, dict):
        print(
            f"malformed report {REPORT}: expected a JSON object, "
            f"got {type(doc).__name__}"
        )
        return 2

    speedup = doc.get("speedup")
    identical = doc.get("placements_identical")
    drift = doc.get("objective_delta")
    skipped = (doc.get("dirty_on") or {}).get("windows_skipped_clean")
    for field, value in (
        ("speedup", speedup),
        ("objective_delta", drift),
        ("dirty_on.windows_skipped_clean", skipped),
    ):
        if not isinstance(value, (int, float)):
            print(f"malformed report: {field} missing or non-numeric")
            return 2

    print(
        f"incremental vs full recompute: {speedup:.2f}x "
        f"(floor {MIN_SPEEDUP}x), skipped_clean={skipped}, "
        f"objective drift {drift:.2e}, "
        f"placements identical: {identical}"
    )
    failed = False
    if identical is not True:
        print("FAIL: dirty-on placement differs from dirty-off")
        failed = True
    if drift >= DRIFT_TOLERANCE:
        print(
            f"FAIL: objective drift {drift} >= {DRIFT_TOLERANCE}"
        )
        failed = True
    if skipped <= 0:
        print("FAIL: dirty tracker never skipped a window")
        failed = True
    if speedup < MIN_SPEEDUP:
        print(
            f"FAIL: converged-tail speedup {speedup:.2f}x under "
            f"{MIN_SPEEDUP}x floor"
        )
        failed = True
    if failed:
        return 1
    print("incremental smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
