"""Macrobenchmark: sharded full-chip optimization vs single-shard.

Generates the 10k-cell Rent-connectivity reference design
(``repro.shard.synth``), optimizes it unsharded (``shards=1``,
``jobs=1``) and region-sharded (``shards=4``, process-parallel), and
writes ``benchmarks/results/BENCH_shard_scale.json`` with wall-clock,
speedup, per-variant objective, stitched-vs-single objective delta,
and peak RSS.  The stitched placement must verify legal in both
variants; the CI ``shard-smoke`` job uploads the report.

On a machine with fewer than 2 usable cores the speedup measurement is
meaningless; the JSON is still written with an explicit
``"skipped": "1-core"`` marker and the pytest run is skipped.
"""

from __future__ import annotations

import json
import resource
import time
from pathlib import Path

import pytest

from repro.core import OptParams, ParamSet
from repro.library import build_library
from repro.netlist import Design
from repro.placement import place_design
from repro.runtime import available_cores
from repro.shard import generate_scaled_design, run_sharded
from repro.tech import CellArchitecture, make_tech

RESULTS_PATH = (
    Path(__file__).parent / "results" / "BENCH_shard_scale.json"
)

NUM_INSTANCES = 10_000
SEED = 1
SHARDS = 4
HALO_ROWS = 2
#: Stitched objective must stay within this fraction of single-shard.
MAX_OBJECTIVE_DELTA = 0.01


def _params() -> OptParams:
    return OptParams.for_arch(
        CellArchitecture.CLOSED_M1,
        sequence=(ParamSet.square(1.0, 3, 1),),
        time_limit=1.0,
    )


def _reference_design() -> Design:
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_scaled_design(
        NUM_INSTANCES, tech, lib, seed=SEED
    )
    place_design(design, seed=SEED)
    return design


def _peak_rss_mb() -> float:
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    kids = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return max(own, kids) / 1024.0  # Linux reports KiB


def _run_variant(shards: int, jobs: int) -> dict:
    design = _reference_design()
    started = time.perf_counter()
    result = run_sharded(
        design,
        _params(),
        shards=shards,
        halo_rows=HALO_ROWS,
        jobs=jobs,
    )
    wall = time.perf_counter() - started
    legal = result.stitch.legal if result.stitch else True
    assert legal, "stitched placement must verify legal"
    return {
        "shards": result.num_shards,
        "jobs": jobs,
        "wall_seconds": wall,
        "initial_objective": result.initial_objective,
        "final_objective": result.final_objective,
        "improvement": result.improvement,
        "peak_rss_mb": _peak_rss_mb(),
        "shard_executor": result.shard_executor,
        "inner_executor": result.inner_executor,
        "legal": legal,
    }


def test_shard_scaling():
    cores = available_cores()
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    if cores < 2:
        RESULTS_PATH.write_text(json.dumps(
            {
                "schema": "repro.bench.shard_scale/v1",
                "skipped": "1-core",
                "cores": cores,
                "note": (
                    "shard scaling needs >= 2 usable cores; run on "
                    "a multi-core machine to populate"
                ),
            },
            indent=1,
        ) + "\n")
        pytest.skip("shard scaling benchmark needs >= 2 cores")

    single = _run_variant(shards=1, jobs=1)
    sharded = _run_variant(shards=SHARDS, jobs=min(SHARDS, cores))
    speedup = single["wall_seconds"] / sharded["wall_seconds"]
    delta = abs(
        sharded["final_objective"] - single["final_objective"]
    ) / abs(single["final_objective"])
    report = {
        "schema": "repro.bench.shard_scale/v1",
        "cores": cores,
        "design": {
            "family": "synth",
            "instances": NUM_INSTANCES,
            "seed": SEED,
            "halo_rows": HALO_ROWS,
        },
        "single": single,
        "sharded": sharded,
        "speedup": speedup,
        "objective_delta": delta,
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=1) + "\n")

    assert delta <= MAX_OBJECTIVE_DELTA, (
        f"stitched objective drifted {delta:.2%} from single-shard "
        f"(limit {MAX_OBJECTIVE_DELTA:.0%})"
    )
    if cores >= SHARDS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at {SHARDS} shards on {cores} "
            f"cores, measured {speedup:.2f}x"
        )
