"""Table 2 (bottom half): OpenM1-based designs, full flow.

Paper shape targets: #dM1 increases far less than for ClosedM1 (the
paper sees ~50-70% vs 4x+), RWL improves but by less than ClosedM1's
improvement on the same designs, no DRV/WNS degradation.
"""

import json
from pathlib import Path

import pytest

from benchmarks.conftest import RESULTS_DIR, run_once
from repro.eval import render_markdown_table
from repro.eval.expt_b import expt_b_table2
from repro.tech import CellArchitecture


@pytest.mark.benchmark(group="table2")
def test_table2_openm1(benchmark, eval_scale, save_rows):
    rows = run_once(
        benchmark,
        expt_b_table2,
        eval_scale,
        archs=(CellArchitecture.OPEN_M1,),
    )
    save_rows("table2_openm1", rows)
    print("\n" + render_markdown_table(rows))

    assert len(rows) == 4
    for row in rows:
        design = row["design"]
        assert row["#dM1 final"] > row["#dM1 init"], design
        assert row["RWL %"] <= 0.2, design
        assert row["WNS final (ns)"] >= row["WNS init (ns)"] - 0.005, (
            design
        )
        assert row["#DRV final"] <= row["#DRV init"] + 1, design

    # Cross-architecture shape (Table 2's headline contrast): the
    # ClosedM1 relative #dM1 gain dwarfs OpenM1's on every design.
    closed_path = RESULTS_DIR / "table2_closedm1.json"
    if closed_path.exists():
        closed = {
            r["design"]: r for r in json.loads(closed_path.read_text())
        }
        for row in rows:
            ref = closed.get(row["design"])
            if ref is None:
                continue
            open_gain = row["#dM1 final"] / max(row["#dM1 init"], 1)
            closed_gain = ref["#dM1 final"] / max(ref["#dM1 init"], 1)
            assert closed_gain > open_gain, row["design"]
