"""Disabled-tracing overhead budget for the obs instrumentation.

ISSUE 9 sets a hard budget: with no tracer installed, the ``span()``
calls threaded through vm1_opt / dist_opt / run_flow must cost the
hot path **under 2%** of wall time.  A naive A/B wall-clock diff of
two real runs cannot resolve 2% on a shared CI runner, so the
benchmark bounds the overhead from two noise-robust measurements:

1. the per-call cost of the *disabled* fast path — ``span()`` with no
   active tracer returns the ``NULL_SPAN`` singleton, so a tight loop
   against an empty-loop baseline measures it to a few nanoseconds;
2. the number of span entries a real DistOpt pass executes — counted
   exactly by running the same workload once under an in-memory
   tracer (the disabled path executes *at most* that many: worker
   child spans are only synthesised when a trace context ships).

``overhead <= span_calls * per_call_cost / workload_wall`` is then an
upper bound on what the instrumentation can take from an untraced
run.  The result lands in
``benchmarks/results/BENCH_obs_overhead.json`` for the CI gate
(``check_obs_overhead.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core import OptParams
from repro.core.distopt import dist_opt
from repro.library import build_library
from repro.netlist import generate_design
from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    span,
    tracer_scope,
)
from repro.placement import place_design
from repro.tech import CellArchitecture, make_tech

RESULTS_PATH = (
    Path(__file__).parent / "results" / "BENCH_obs_overhead.json"
)

#: Hard budget from ISSUE 9: instrumentation may take <2% of an
#: untraced run's wall time.
MAX_OVERHEAD = 0.02

#: Tight-loop iterations for the per-call measurement; large enough
#: that the perf_counter read at each end is amortised to nothing.
CALIBRATION_LOOPS = 200_000


def _per_call_seconds() -> float:
    """Cost of one disabled ``with span(...)`` against an empty loop."""
    with tracer_scope(None):  # mask any ambient tracer
        best_span = float("inf")
        best_empty = float("inf")
        for _ in range(5):  # best-of-N defeats scheduler noise
            t0 = time.perf_counter()
            for _ in range(CALIBRATION_LOOPS):
                with span("bench"):
                    pass
            best_span = min(best_span, time.perf_counter() - t0)
            t0 = time.perf_counter()
            for _ in range(CALIBRATION_LOOPS):
                pass
            best_empty = min(best_empty, time.perf_counter() - t0)
    return max(0.0, best_span - best_empty) / CALIBRATION_LOOPS


def _workload(tracer: Tracer | None) -> float:
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("m0", tech, lib, scale=0.01, seed=2)
    place_design(design, seed=1)
    params = OptParams.for_arch(design.tech.arch, time_limit=2.0)
    started = time.perf_counter()
    with tracer_scope(tracer):
        dist_opt(
            design,
            params,
            tx=0,
            ty=0,
            bw=1250,
            bh=1080,
            lx=2,
            ly=1,
            allow_flip=False,
            pass_label="move[bench]",
        )
    return time.perf_counter() - started


def test_disabled_tracing_overhead_under_budget():
    with tracer_scope(None):
        assert span("probe") is NULL_SPAN

    per_call = _per_call_seconds()

    # Exact span census for this workload: one traced run.
    tracer = Tracer()
    _workload(tracer)
    span_calls = len(tracer.spans)
    assert span_calls > 0, "workload emitted no spans when traced"

    # Untraced wall time — the denominator the budget is against.
    workload_wall = min(_workload(None), _workload(None))

    overhead = span_calls * per_call / workload_wall
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    report = {
        "schema": "repro.bench.obs_overhead/v1",
        "per_call_ns": per_call * 1e9,
        "calibration_loops": CALIBRATION_LOOPS,
        "span_calls": span_calls,
        "workload_wall_seconds": workload_wall,
        "overhead_fraction": overhead,
        "budget_fraction": MAX_OVERHEAD,
        "workload": {
            "design": "m0",
            "scale": 0.01,
            "seed": 2,
            "pass": "move 2x1 @ 1250x1080",
            "time_limit": 2.0,
        },
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=1) + "\n")

    assert overhead < MAX_OVERHEAD, (
        f"disabled-tracing overhead bound {overhead:.4%} exceeds the "
        f"{MAX_OVERHEAD:.0%} budget ({span_calls} spans x "
        f"{per_call * 1e9:.0f}ns over {workload_wall:.2f}s)"
    )
