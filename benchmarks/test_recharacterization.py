"""§6 recharacterization study: pin-extension timing impact.

Paper claim: extending a ClosedM1 INV pin by 32 nm (the landing of a
direct vertical M1 route) changes cell delay and slew by <= 0.1 ps —
negligible, so the standard library model remains valid.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval import render_markdown_table
from repro.library import build_library
from repro.tech import CellArchitecture, make_tech
from repro.timing.characterization import characterize_pin_extension


def run_study():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    library = build_library(tech)
    rows = []
    for name in library.names:
        result = characterize_pin_extension(tech, library.macro(name))
        rows.append(
            {
                "cell": result.cell,
                "added cap (fF)": result.added_cap_ff,
                "delay delta (ps)": result.delay_delta_ps,
                "slew delta (ps)": result.slew_delta_ps,
                "negligible": result.negligible,
            }
        )
    return rows


@pytest.mark.benchmark(group="recharacterization")
def test_recharacterization_study(benchmark, save_rows):
    rows = run_once(benchmark, run_study)
    save_rows("recharacterization", rows)
    print("\n" + render_markdown_table(rows[:6]))
    # The paper's claim must hold for the whole library.
    assert all(row["negligible"] for row in rows)
    worst = max(abs(row["delay delta (ps)"]) for row in rows)
    assert worst <= 0.1
