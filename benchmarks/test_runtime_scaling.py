"""Microbenchmark: window-solve scaling over executor workers.

Runs one DistOpt pass on a fixed-seed design with the serial executor
and with process pools of 1/2/4 workers, recording wall-clock and
achieved speedup into ``benchmarks/results/runtime_scaling.json``
(telemetry schema alongside the scaling table).

On a machine with fewer than 2 usable cores the measurement is
meaningless; the JSON is still written with an explicit
``"skipped": "1-core"`` marker (the PR acceptance bar's 1-core escape
hatch) and the pytest run is skipped.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core import OptParams
from repro.core.distopt import dist_opt
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.runtime import (
    MultiprocessExecutor,
    RunTelemetry,
    SerialExecutor,
    available_cores,
)
from repro.tech import CellArchitecture, make_tech

RESULTS_PATH = Path(__file__).parent / "results" / "runtime_scaling.json"

SCALE = 0.03
SEED = 3
JOB_COUNTS = (1, 2, 4)


def _fresh_design(tech, lib):
    design = generate_design(
        "aes", tech, lib, scale=SCALE, seed=SEED
    )
    place_design(design, seed=1)
    return design


def _run(executor, tech, lib, params):
    design = _fresh_design(tech, lib)
    telemetry = RunTelemetry(
        executor=executor.name, jobs=executor.jobs
    )
    started = time.perf_counter()
    result = dist_opt(
        design, params, tx=0, ty=0, bw=1250, bh=1080, lx=3, ly=1,
        allow_flip=False, executor=executor, telemetry=telemetry,
    )
    wall = time.perf_counter() - started
    telemetry.wall_seconds = wall
    return design.placement_snapshot(), result, telemetry, wall


def test_runtime_scaling():
    cores = available_cores()
    if cores < 2:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(json.dumps(
            {
                "skipped": "1-core",
                "cores": cores,
                "note": (
                    "scaling benchmark needs >= 2 usable cores; "
                    "run on a multi-core machine to populate"
                ),
            },
            indent=1,
        ))
        pytest.skip(
            f"runtime scaling needs >= 2 cores (have {cores}); "
            "wrote 1-core marker"
        )

    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    params = OptParams.for_arch(tech.arch, time_limit=30.0)

    serial_snapshot, serial_result, serial_tel, serial_wall = _run(
        SerialExecutor(), tech, lib, params
    )

    runs = [{
        "executor": "serial",
        "jobs": 1,
        "wall_seconds": serial_wall,
        "solve_seconds": serial_result.solve_seconds,
        "measured_parallel_seconds":
            serial_result.measured_parallel_seconds,
        "modeled_parallel_seconds":
            serial_result.modeled_parallel_seconds,
        "speedup_vs_serial": 1.0,
        "identical_placement": True,
    }]
    best_measured = serial_result.measured_parallel_seconds
    for jobs in JOB_COUNTS:
        with MultiprocessExecutor(jobs=jobs) as executor:
            snapshot, result, _tel, wall = _run(
                executor, tech, lib, params
            )
        runs.append({
            "executor": "process",
            "jobs": jobs,
            "wall_seconds": wall,
            "solve_seconds": result.solve_seconds,
            "measured_parallel_seconds":
                result.measured_parallel_seconds,
            "modeled_parallel_seconds":
                result.modeled_parallel_seconds,
            "speedup_vs_serial": serial_wall / wall if wall else None,
            "identical_placement": snapshot == serial_snapshot,
        })
        best_measured = min(
            best_measured, result.measured_parallel_seconds
        )
        assert snapshot == serial_snapshot  # determinism contract

    document = {
        "cores": cores,
        "design": {"profile": "aes", "scale": SCALE, "seed": SEED},
        "serial_wall_seconds": serial_wall,
        "runs": runs,
        "telemetry": serial_tel.summary(),
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(document, indent=1, default=str)
    )

    # Acceptance bar: with >= 2 cores the engine's dispatch+solve
    # phase must not be slower than the serial run's.
    assert best_measured <= serial_result.measured_parallel_seconds * 1.05
