"""Macrobenchmark: incremental DistOpt vs full recompute at 10k cells.

Runs the full VM1Opt loop on the 10k-cell Rent-connectivity reference
design twice — ``dirty_tracking=False`` (legacy: every window hashed /
sliced / probed every pass, objective fully recomputed per pass) and
``dirty_tracking=True`` with the drift audit armed (any pass whose
delta-accounted objective strays more than ``DRIFT_TOLERANCE`` from a
full recompute raises *inside* the run) — and writes
``benchmarks/results/BENCH_incremental.json`` with wall-clocks,
per-pass window accounting, and the speedup.

The loop is driven into its **converged tail** (fixed window grid,
small θ), the regime the dirty tracker targets: late passes revisit
settled windows, and proving "unchanged" by content hash costs a
sort + scan of every instance per window while a clean-mark lookup is
O(1).  A default-θ run stops after ~1 iteration whose move and flip
passes key disjoint subproblems — there the tracker engages barely at
all (and the JSON records that honestly if parameters drift).

Both variants keep the §7 window cache on, so the speedup isolates
what dirty tracking adds *on top of* the existing hot path.  The
dirty win is algorithmic (skipped O(N)-per-window scans), not
parallelism, so the benchmark measures on any core count; ``jobs``
follows ``min(4, cores)``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core import OptParams, ParamSet
from repro.core.distopt import DRIFT_TOLERANCE
from repro.core.vm1opt import vm1_opt
from repro.library import build_library
from repro.netlist import Design
from repro.placement import place_design
from repro.runtime import available_cores, make_executor
from repro.shard import generate_scaled_design
from repro.tech import CellArchitecture, make_tech

RESULTS_PATH = (
    Path(__file__).parent / "results" / "BENCH_incremental.json"
)

NUM_INSTANCES = 10_000
SEED = 1
#: Small θ + enable_shift=False drives the loop into the converged
#: tail where identical passes repeat until the improvement dies out.
THETA = 1e-5
#: Wall-clock floor asserted here; the CI gate
#: (``check_incremental.py``) uses a looser floor for runner noise.
MIN_SPEEDUP = 1.5


def _params() -> OptParams:
    return OptParams.for_arch(
        CellArchitecture.CLOSED_M1,
        sequence=(ParamSet.square(1.0, 3, 1),),
        time_limit=1.0,
        theta=THETA,
    )


def _reference_design() -> Design:
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_scaled_design(
        NUM_INSTANCES, tech, lib, seed=SEED
    )
    place_design(design, seed=SEED)
    return design


def _run_variant(*, dirty: bool, jobs: int) -> tuple[dict, dict]:
    design = _reference_design()
    started = time.perf_counter()
    result = vm1_opt(
        design,
        _params(),
        executor=make_executor("auto", jobs),
        enable_shift=False,
        dirty_tracking=dirty,
        # Audit only the incremental run: it is the one whose
        # objective is delta-accounted; the legacy run *is* the full
        # recompute the audit compares against.
        objective_audit=dirty,
    )
    wall = time.perf_counter() - started
    report = {
        "dirty_tracking": dirty,
        "wall_seconds": wall,
        "iterations": result.iterations,
        "final_objective": result.final_objective,
        "windows_built": sum(p.windows_built for p in result.passes),
        "windows_skipped_clean": result.windows_skipped_clean,
        "windows_cached": result.windows_cached,
        "passes": [
            {
                "built": p.windows_built,
                "applied": p.windows_applied,
                "skipped_clean": p.windows_skipped_clean,
                "cached": p.windows_cached,
                "wall_seconds": p.wall_seconds,
                "build_seconds": p.build_seconds,
                "solve_seconds": p.solve_seconds,
            }
            for p in result.passes
        ],
    }
    return report, design.placement_snapshot()


def test_incremental_speedup():
    cores = available_cores()
    jobs = min(4, cores)
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)

    off, snapshot_off = _run_variant(dirty=False, jobs=jobs)
    on, snapshot_on = _run_variant(dirty=True, jobs=jobs)

    identical = snapshot_on == snapshot_off
    objective_delta = abs(
        on["final_objective"] - off["final_objective"]
    )
    speedup = off["wall_seconds"] / on["wall_seconds"]
    report = {
        "schema": "repro.bench.incremental/v1",
        "cores": cores,
        "jobs": jobs,
        "design": {
            "family": "synth",
            "instances": NUM_INSTANCES,
            "seed": SEED,
        },
        "params": {
            "sequence": "square(1.0, 3, 1)",
            "theta": THETA,
            "time_limit": 1.0,
            "enable_shift": False,
        },
        "dirty_off": off,
        "dirty_on": on,
        "speedup": speedup,
        "placements_identical": identical,
        "objective_delta": objective_delta,
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=1) + "\n")

    assert identical, (
        "dirty tracking must not change the placement"
    )
    assert objective_delta < DRIFT_TOLERANCE, (
        f"delta-accounted objective drifted {objective_delta} from "
        f"the full-recompute run"
    )
    assert on["windows_skipped_clean"] > 0, (
        "converged-tail run engaged zero clean skips — the benchmark "
        "is not measuring the incremental path"
    )
    assert off["windows_skipped_clean"] == 0
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x from dirty-window skipping in "
        f"the converged tail, measured {speedup:.2f}x"
    )
