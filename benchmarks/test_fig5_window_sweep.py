"""Figure 5: RWL / runtime vs window size and perturbation range.

Paper shape targets: routed wirelength falls as windows grow; runtime
grows superlinearly with window size; the knee rule picks a mid-size
window with lx = 4, ly = 1.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval import render_markdown_table
from repro.eval.expt_a1 import expt_a1_window_sweep, knee_configuration

WINDOWS = (5.0, 10.0, 20.0, 40.0)


@pytest.mark.benchmark(group="fig5")
def test_fig5_window_sweep(benchmark, eval_scale, save_rows):
    rows = run_once(
        benchmark,
        expt_a1_window_sweep,
        eval_scale,
        window_sizes_um=WINDOWS,
    )
    save_rows("fig5_window_sweep", rows)
    print("\n" + render_markdown_table(rows))

    by_size = {}
    for row in rows:
        by_size.setdefault(row["window (paper um)"], []).append(row)

    # Shape 1: the largest window gives the best (or tied-best) RWL.
    mean_rwl = {
        size: sum(r["RWL (um)"] for r in rs) / len(rs)
        for size, rs in by_size.items()
    }
    assert mean_rwl[WINDOWS[-1]] <= mean_rwl[WINDOWS[0]] * 1.002

    # Shape 2: runtime grows with window size (largest vs smallest).
    mean_rt = {
        size: sum(r["runtime (s)"] for r in rs) / len(rs)
        for size, rs in by_size.items()
    }
    assert mean_rt[WINDOWS[-1]] > 1.5 * mean_rt[WINDOWS[0]]

    # The knee rule produces a configuration within 1% of best RWL.
    knee = knee_configuration(rows)
    assert knee["RWL (norm)"] <= 1.01
