"""Figure 7: optimization-sequence comparison.

Paper shape targets: the lx = 4 sequences (1 and 2) reach the best
RWL, multi-set sequences buy no extra quality, so the single-set
(20, 4, 1) sequence is the preferred choice.

Note on runtime: in the paper's regime sequence 2 costs ~2x sequence
1.  At this reproduction's compressed window scale the tiny early
windows of the multi-set sequences are both fast and weak, so the
relative *runtime* ordering is scale-dependent; runtimes are reported
but the assertion is on the quality ordering that drives the paper's
conclusion.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval import render_markdown_table
from repro.eval.expt_a3 import expt_a3_sequences

SEQUENCES = (1, 2, 4)


@pytest.mark.benchmark(group="fig7")
def test_fig7_sequences(benchmark, eval_scale, save_rows):
    rows = run_once(
        benchmark, expt_a3_sequences, eval_scale,
        sequence_ids=SEQUENCES,
    )
    save_rows("fig7_sequences", rows)
    print("\n" + render_markdown_table(rows))

    by_id = {row["sequence"]: row for row in rows}

    # Shape 1: the lx=4 single-set sequence reaches the best RWL
    # (within 1%) — the basis of the paper's "(20, 4, 1) preferred"
    # conclusion.
    best = min(row["RWL (um)"] for row in rows)
    assert by_id[1]["RWL (um)"] <= best * 1.01

    # Shape 2: the extra passes of the multi-set sequences buy no
    # meaningful quality over sequence 1.
    for seq_id, row in by_id.items():
        if seq_id != 1:
            assert row["RWL (um)"] >= by_id[1]["RWL (um)"] * 0.99
