"""Shared benchmark fixtures.

Benchmarks run each experiment once (``benchmark.pedantic`` with one
round — these are minutes-long flows, not microseconds) and save the
result rows under ``benchmarks/results/`` so that
``examples/generate_experiments_report.py`` can assemble
EXPERIMENTS.md without re-running anything.

Set ``REPRO_EVAL_PRESET=quick|default|paper`` to pick the experiment
scale (see ``repro.eval.EvalScale``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.eval import EvalScale

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def eval_scale() -> EvalScale:
    preset = os.environ.get("REPRO_EVAL_PRESET", "default")
    if preset == "quick":
        return EvalScale.quick()
    if preset == "paper":
        return EvalScale.paper()
    return EvalScale()


@pytest.fixture(scope="session")
def save_rows():
    """Persist experiment rows as JSON keyed by experiment id."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(experiment_id: str, rows: list[dict]) -> None:
        path = RESULTS_DIR / f"{experiment_id}.json"
        path.write_text(json.dumps(rows, indent=1, default=str))

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )
