"""Disabled-chaos overhead budget for the fault-injection hooks.

The chaos tier's contract is that production runs pay (almost)
nothing: with no controller installed every hook — ``barrier()``,
the scheduler's arm probe, the worker's directive tests — is one
attribute load plus an ``is None`` test.  The budget is **under 1%**
of an unfaulted run's wall time.

Same measurement strategy as ``test_obs_overhead.py`` (an A/B
wall-clock diff cannot resolve 1% on a shared runner):

1. per-call cost of the heaviest disabled hook (``barrier()``: a
   function call, a thread-local ``getattr`` and an ``is None``
   test), from a tight loop against an empty-loop baseline;
2. an exact census of hook consultations for a real DistOpt pass,
   counted by running the same workload once with a never-firing
   controller installed (every consultation lands in
   ``ChaosController.observed``).

``overhead <= consultations * per_call / workload_wall`` then bounds
what the hooks can take from an unfaulted run.  The result lands in
``benchmarks/results/BENCH_chaos_overhead.json`` for the CI gate
(``check_chaos_overhead.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.chaos import (
    ChaosController,
    FaultPlan,
    FaultRule,
    active_chaos,
    barrier,
    chaos_scope,
)
from repro.core import OptParams
from repro.core.distopt import dist_opt
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.tech import CellArchitecture, make_tech

RESULTS_PATH = (
    Path(__file__).parent / "results" / "BENCH_chaos_overhead.json"
)

#: Hard budget from ISSUE 10: disabled chaos hooks may take <1% of an
#: unfaulted run's wall time.
MAX_OVERHEAD = 0.01

#: Tight-loop iterations for the per-call measurement.
CALIBRATION_LOOPS = 200_000


def _per_call_seconds() -> float:
    """Cost of one disabled ``barrier()`` against an empty loop."""
    with chaos_scope(None):  # mask any ambient controller
        best_hook = float("inf")
        best_empty = float("inf")
        for _ in range(5):  # best-of-N defeats scheduler noise
            t0 = time.perf_counter()
            for _ in range(CALIBRATION_LOOPS):
                barrier("bench")
            best_hook = min(best_hook, time.perf_counter() - t0)
            t0 = time.perf_counter()
            for _ in range(CALIBRATION_LOOPS):
                pass
            best_empty = min(best_empty, time.perf_counter() - t0)
    return max(0.0, best_hook - best_empty) / CALIBRATION_LOOPS


def _workload(controller: ChaosController | None) -> float:
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("m0", tech, lib, scale=0.01, seed=2)
    place_design(design, seed=1)
    params = OptParams.for_arch(design.tech.arch, time_limit=2.0)
    started = time.perf_counter()
    with chaos_scope(controller):
        dist_opt(
            design,
            params,
            tx=0,
            ty=0,
            bw=1250,
            bh=1080,
            lx=2,
            ly=1,
            allow_flip=False,
            pass_label="move[bench]",
        )
    return time.perf_counter() - started


def test_disabled_chaos_overhead_under_budget():
    with chaos_scope(None):
        assert active_chaos() is None

    per_call = _per_call_seconds()

    # Exact consultation census: one run with a never-firing
    # controller installed — every hook consultation is recorded.
    controller = ChaosController(
        plan=FaultPlan(
            seed=0,
            faults=(
                FaultRule(site="barrier", action="raise", nth=10**9),
            ),
        )
    )
    _workload(controller)
    consultations = len(controller.observed)
    assert consultations > 0, (
        "workload consulted no chaos hooks when armed"
    )
    assert controller.total_fires() == 0

    # Unfaulted wall time — the denominator the budget is against.
    workload_wall = min(_workload(None), _workload(None))

    overhead = consultations * per_call / workload_wall
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    report = {
        "schema": "repro.bench.chaos_overhead/v1",
        "per_call_ns": per_call * 1e9,
        "calibration_loops": CALIBRATION_LOOPS,
        "hook_consultations": consultations,
        "workload_wall_seconds": workload_wall,
        "overhead_fraction": overhead,
        "budget_fraction": MAX_OVERHEAD,
        "workload": {
            "design": "m0",
            "scale": 0.01,
            "seed": 2,
            "pass": "move 2x1 @ 1250x1080",
            "time_limit": 2.0,
        },
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=1) + "\n")

    assert overhead < MAX_OVERHEAD, (
        f"disabled-chaos overhead bound {overhead:.4%} exceeds the "
        f"{MAX_OVERHEAD:.0%} budget ({consultations} hooks x "
        f"{per_call * 1e9:.0f}ns over {workload_wall:.2f}s)"
    )
