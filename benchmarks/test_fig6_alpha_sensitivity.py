"""Figure 6: sensitivity of routed wirelength and #dM1 to α.

Paper shape targets: #dM1 grows monotonically with α; every positive
α beats the initial routing; RWL is non-monotonic in α (the largest α
is not the best RWL point — maximizing alignments is not the same as
minimizing wirelength).
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval import render_markdown_table
from repro.eval.expt_a2 import expt_a2_alpha_sweep

ALPHAS = (0.0, 300.0, 1200.0, 3000.0, 6000.0)


@pytest.mark.benchmark(group="fig6")
def test_fig6_alpha_sensitivity(benchmark, eval_scale, save_rows):
    rows = run_once(
        benchmark, expt_a2_alpha_sweep, eval_scale, alphas=ALPHAS
    )
    save_rows("fig6_alpha_sweep", rows)
    print("\n" + render_markdown_table(rows))

    init = rows[0]
    swept = rows[1:]

    # Shape 1: #dM1 grows (weakly) with α and far exceeds init at the
    # high end.
    dm1 = [row["#dM1"] for row in swept]
    assert dm1[-1] > 2 * max(init["#dM1"], 1)
    assert dm1[-1] >= dm1[0]
    # Allow small local non-monotonicity, require a rising trend.
    rises = sum(1 for a, b in zip(dm1, dm1[1:]) if b >= a)
    assert rises >= len(dm1) - 2

    # Shape 2: any positive α reduces RWL vs the initial routing.
    for row in swept[1:]:
        assert row["RWL (um)"] < init["RWL (um)"]

    # Shape 3: alignment-maximization != wirelength-minimization —
    # across the positive-α range #dM1 more than doubles while RWL
    # moves only within a narrow band (the paper's Figure 6 message:
    # RWL is non-monotonic/insensitive once alignment is priced in).
    positive = [r for r in swept if r["alpha"] > 0]
    rwls = [r["RWL (um)"] for r in positive]
    dm1s = [r["#dM1"] for r in positive]
    assert max(dm1s) >= 1.8 * max(min(dm1s), 1)
    mean_rwl = sum(rwls) / len(rwls)
    assert (max(rwls) - min(rwls)) <= 0.03 * mean_rwl
