"""CI gate for the disabled-chaos overhead budget (ISSUE 10).

Reads ``benchmarks/results/BENCH_chaos_overhead.json`` (written by
running ``benchmarks/test_chaos_overhead.py``) and fails when the
measured upper bound on hook overhead — consultations times disabled
per-call cost, over the unfaulted workload wall time — reaches the
1% budget, or when the census shows the hooks were effectively
absent (zero consultations: the bound would be vacuous).

Exit codes: 0 ok, 1 over budget, 2 missing/malformed report.  The
gate imports nothing from the package so it runs without an install.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPORT = (
    Path(__file__).parent / "results" / "BENCH_chaos_overhead.json"
)

#: Mirrors benchmarks/test_chaos_overhead.MAX_OVERHEAD (not imported:
#: the gate must run without the package importable).
MAX_OVERHEAD = 0.01


def main() -> int:
    if not REPORT.exists():
        print(
            f"missing report {REPORT}; run "
            f"benchmarks/test_chaos_overhead.py first"
        )
        return 2
    try:
        doc = json.loads(REPORT.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"malformed report {REPORT}: {exc}")
        return 2
    if not isinstance(doc, dict):
        print(
            f"malformed report {REPORT}: expected a JSON object, "
            f"got {type(doc).__name__}"
        )
        return 2

    overhead = doc.get("overhead_fraction")
    consultations = doc.get("hook_consultations")
    per_call_ns = doc.get("per_call_ns")
    wall = doc.get("workload_wall_seconds")
    for field, value in (
        ("overhead_fraction", overhead),
        ("hook_consultations", consultations),
        ("per_call_ns", per_call_ns),
        ("workload_wall_seconds", wall),
    ):
        if not isinstance(value, (int, float)):
            print(f"malformed report: {field} missing or non-numeric")
            return 2

    print(
        f"disabled-chaos overhead bound: {overhead:.4%} "
        f"(budget {MAX_OVERHEAD:.0%}) — {consultations} hooks x "
        f"{per_call_ns:.0f}ns over {wall:.2f}s unfaulted"
    )
    failed = False
    if consultations <= 0:
        print(
            "FAIL: armed census saw zero consultations — bound is "
            "vacuous"
        )
        failed = True
    if overhead >= MAX_OVERHEAD:
        print(
            f"FAIL: overhead bound {overhead:.4%} >= "
            f"{MAX_OVERHEAD:.0%} budget"
        )
        failed = True
    if failed:
        return 1
    print("chaos overhead ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
