"""Baseline contrast: single-row DP vs the windowed MILP (§2).

The paper positions its MILP against the classic DP/graph single-row
detailed placers: those optimize wirelength efficiently but cannot
express *inter-row* vertical M1 alignment.  This bench runs both on
the same placement and measures the contrast:

* the DP baseline improves HPWL but leaves the alignment count near
  its incidental level;
* VM1Opt banks several times more alignments, accepting small HPWL
  sacrifices the router converts into RWL/via12 wins.
"""

import pytest

from benchmarks.conftest import run_once
from repro.baseline import row_dp_refine
from repro.core import OptParams, ParamSet, vm1_opt
from repro.core.objective import alignment_stats
from repro.eval import render_markdown_table
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.routing import DetailedRouter
from repro.tech import CellArchitecture, make_tech


def _run_contrast():
    tech = make_tech(CellArchitecture.CLOSED_M1)
    lib = build_library(tech)
    design = generate_design("aes", tech, lib, scale=0.03, seed=3)
    place_design(design, seed=1)
    initial = design.placement_snapshot()
    params = OptParams.for_arch(
        tech.arch, sequence=(ParamSet.square(1.2, 4, 1),),
        time_limit=4.0, theta=0.02,
    )

    rows = []

    def measure(label):
        metrics = DetailedRouter(design).route()
        stats = alignment_stats(design, params)
        rows.append(
            {
                "placer": label,
                "HPWL (um)": design.total_hpwl() / 1000,
                "#aligned": stats.num_aligned,
                "#dM1 routed": metrics.num_dm1,
                "RWL (um)": metrics.routed_wirelength / 1000,
                "#via12": metrics.num_via12,
            }
        )

    measure("initial")
    row_dp_refine(design)
    measure("row-DP [5,8]")
    design.restore_placement(initial)
    vm1_opt(design, params)
    measure("VM1Opt (MILP)")
    design.restore_placement(initial)
    return rows


@pytest.mark.benchmark(group="baseline")
def test_dp_vs_milp_contrast(benchmark, save_rows):
    rows = run_once(benchmark, _run_contrast)
    save_rows("baseline_contrast", rows)
    print("\n" + render_markdown_table(rows))

    init, dp, milp = rows
    # DP optimizes wirelength...
    assert dp["HPWL (um)"] < init["HPWL (um)"]
    # ...but cannot bank alignments the way the MILP does.
    assert milp["#aligned"] > 2 * max(dp["#aligned"], 1)
    assert milp["#dM1 routed"] > 2 * max(dp["#dM1 routed"], 1)
    # And the MILP's alignments monetize into routed wirelength.
    assert milp["RWL (um)"] < init["RWL (um)"]
    assert milp["#via12"] < init["#via12"]
