"""Technology description: layers, sites, tracks, cell architectures.

This package plays the role of the 7nm technology files the paper
obtains from an industrial consortium.  It defines:

* :class:`Layer` / :class:`ViaLayer` — routing layer stack with
  preferred directions and pitches.
* :class:`CellArchitecture` — the three standard-cell templates the
  paper compares (conventional 12-track, ClosedM1 7.5-track, OpenM1
  7.5-track) and the alignment semantics each implies.
* :class:`Technology` — the assembled technology with site geometry and
  grid-snapping helpers.
* :func:`make_tech` — the default sub-10nm technology factory.
"""

from repro.tech.arch import AlignmentMode, CellArchitecture
from repro.tech.layers import Direction, Layer, ViaLayer
from repro.tech.technology import Technology, make_tech

__all__ = [
    "AlignmentMode",
    "CellArchitecture",
    "Direction",
    "Layer",
    "ViaLayer",
    "Technology",
    "make_tech",
]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.tech")
