"""The three standard-cell architectures the paper studies (Figure 1).

The architecture determines two things the optimizer cares about:

* which layer signal pins live on, and hence their shape (1-D vertical
  M1 stripes for ClosedM1, horizontal M0 bars for OpenM1, horizontal M1
  pins plus M1 power rails for the conventional 12-track template); and
* the *direct vertical M1 route* feasibility predicate — exact x
  alignment for ClosedM1 versus x-projection overlap for OpenM1 — which
  selects between the §3.1 and §3.2 MILP formulations.
"""

from __future__ import annotations

import enum


class AlignmentMode(enum.Enum):
    """How two pins must relate in x for a direct vertical M1 route."""

    #: Pins must share the exact same x coordinate (ClosedM1 — pins are
    #: 1-D vertical stripes on the site-pitch M1 grid).
    ALIGN = "align"

    #: Pin x-projections must overlap by at least delta (OpenM1 — pins
    #: are horizontal M0 bars; the M1 segment lands anywhere inside the
    #: shared x-range).
    OVERLAP = "overlap"

    #: Direct vertical M1 routing unavailable (conventional cells block
    #: M1 with power rails; pin access is via M2 only).
    NONE = "none"


class CellArchitecture(enum.Enum):
    """Standard-cell template (paper §1.1, Figure 1)."""

    #: Conventional 12-track cell: M1 VDD/VSS rails, horizontal M1 pins.
    CONV_12T = "conv12t"

    #: ClosedM1 7.5-track cell: 1-D vertical M1 pins (including
    #: VDD/VSS at the cell boundary), M1 pitch = site width.
    CLOSED_M1 = "closedm1"

    #: OpenM1 7.5-track cell: horizontal M0 pins, M1 fully open for
    #: routing.
    OPEN_M1 = "openm1"

    @property
    def track_count(self) -> float:
        """Cell height in M2 tracks."""
        return 12.0 if self is CellArchitecture.CONV_12T else 7.5

    @property
    def pin_layer_index(self) -> int:
        """Routing level of signal pins (0 = M0, 1 = M1)."""
        return 0 if self is CellArchitecture.OPEN_M1 else 1

    @property
    def alignment_mode(self) -> AlignmentMode:
        """Direct-vertical-M1 feasibility predicate for this template."""
        if self is CellArchitecture.CLOSED_M1:
            return AlignmentMode.ALIGN
        if self is CellArchitecture.OPEN_M1:
            return AlignmentMode.OVERLAP
        return AlignmentMode.NONE

    @property
    def supports_direct_m1(self) -> bool:
        """True when inter-row M1 routing is possible at all."""
        return self.alignment_mode is not AlignmentMode.NONE

    @property
    def default_gamma(self) -> int:
        """Paper default for the maximum dM1 row span (γ).

        ClosedM1 constraint (4) allows |Δy| <= H, i.e. γ = 1; OpenM1
        experiments use γ = 3 (§3.2).
        """
        return 3 if self is CellArchitecture.OPEN_M1 else 1
