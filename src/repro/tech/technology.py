"""Assembled technology: layer stack, site geometry, grid helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tech.arch import CellArchitecture
from repro.tech.layers import Direction, Layer, ViaLayer

#: Database units per micron.  1 DBU = 1 nm.
DBU_PER_MICRON = 1000

#: M2 (and M1/M0) track pitch in DBU for the sub-10nm node we model.
_METAL_PITCH = 36


@dataclass(frozen=True)
class Technology:
    """A process technology as seen by placement and routing.

    Attributes:
        name: technology name.
        arch: standard-cell architecture the libraries of this
            technology follow.
        site_width: placement site width in DBU.  For ClosedM1 the M1
            pitch equals this value (paper §1.1), which is what makes
            exact pin alignment meaningful on the site grid.
        row_height: placement row height in DBU (H in the MILP).
        layers: metal layers, indexed by routing level (M0 first).
        via_layers: cut layers between adjacent metals.
        unit_r: wire resistance per DBU of routed length (ohm/nm).
        unit_c: wire capacitance per DBU of routed length (fF/nm).
    """

    name: str
    arch: CellArchitecture
    site_width: int
    row_height: int
    layers: tuple[Layer, ...]
    via_layers: tuple[ViaLayer, ...]
    unit_r: float = 2.0
    unit_c: float = 0.0002
    dbu_per_micron: int = DBU_PER_MICRON
    _layer_by_name: dict[str, Layer] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        for i, layer in enumerate(self.layers):
            if layer.index != i:
                raise ValueError(
                    f"layer {layer.name} has index {layer.index}, "
                    f"expected {i}"
                )
        object.__setattr__(
            self,
            "_layer_by_name",
            {layer.name: layer for layer in self.layers},
        )

    # ----------------------------------------------------------- layers
    def layer(self, name: str) -> Layer:
        """Look a metal layer up by name (raises KeyError if unknown)."""
        return self._layer_by_name[name]

    @property
    def m1(self) -> Layer:
        return self.layers[1]

    def via_between(self, below: int, above: int) -> ViaLayer:
        """Return the cut layer joining metal levels ``below``/``above``."""
        for via in self.via_layers:
            if via.below == below and via.above == above:
                return via
        raise KeyError(f"no via layer between M{below} and M{above}")

    # ------------------------------------------------------------ grids
    def microns(self, dbu: float) -> float:
        """Convert DBU to microns."""
        return dbu / self.dbu_per_micron

    def dbu(self, microns: float) -> int:
        """Convert microns to (rounded) DBU."""
        return round(microns * self.dbu_per_micron)

    def site_x(self, column: int) -> int:
        """x coordinate of the left edge of site ``column``."""
        return column * self.site_width

    def column_of(self, x: int) -> int:
        """Site column containing coordinate ``x`` (floor division)."""
        return x // self.site_width

    def row_y(self, row: int) -> int:
        """y coordinate of the bottom edge of placement row ``row``."""
        return row * self.row_height

    def row_of(self, y: int) -> int:
        """Placement row containing coordinate ``y`` (floor division)."""
        return y // self.row_height

    def m1_track_x(self, column: int) -> int:
        """x coordinate of the M1 track in site column ``column``.

        ClosedM1 has exactly one M1 track per site (M1 pitch = site
        width), centered in the site.
        """
        return self.site_x(column) + self.site_width // 2

    def m1_track_of(self, x: int) -> int:
        """Index of the M1 track at (or containing) coordinate ``x``."""
        return self.column_of(x)


def make_tech(
    arch: CellArchitecture = CellArchitecture.CLOSED_M1,
) -> Technology:
    """Build the default sub-10nm technology for ``arch``.

    The 7.5-track templates (ClosedM1, OpenM1) use a 36 nm metal pitch,
    270 nm row height and a 36 nm site whose width equals the M1 pitch.
    The conventional 12-track template keeps the same site width with a
    432 nm row.
    """
    pitch = _METAL_PITCH
    row_height = round(arch.track_count * pitch)
    layers = (
        Layer("M0", 0, Direction.HORIZONTAL, pitch, pitch // 2, 18),
        Layer("M1", 1, Direction.VERTICAL, pitch, pitch // 2, 18),
        Layer("M2", 2, Direction.HORIZONTAL, pitch, pitch // 2, 18),
        Layer("M3", 3, Direction.VERTICAL, 48, 24, 24),
        Layer("M4", 4, Direction.HORIZONTAL, 48, 24, 24),
        Layer("M5", 5, Direction.VERTICAL, 64, 32, 32),
        Layer("M6", 6, Direction.HORIZONTAL, 64, 32, 32),
    )
    vias = (
        ViaLayer("V01", 0, 1),
        ViaLayer("V12", 1, 2),
        ViaLayer("V23", 2, 3),
        ViaLayer("V34", 3, 4),
        ViaLayer("V45", 4, 5),
        ViaLayer("V56", 5, 6),
    )
    return Technology(
        name=f"sub10nm-{arch.value}",
        arch=arch,
        site_width=pitch,
        row_height=row_height,
        layers=layers,
        via_layers=vias,
    )
