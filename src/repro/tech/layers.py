"""Routing layer stack primitives."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Direction(enum.Enum):
    """Preferred routing direction of a metal layer."""

    HORIZONTAL = "H"
    VERTICAL = "V"

    def orthogonal(self) -> "Direction":
        if self is Direction.HORIZONTAL:
            return Direction.VERTICAL
        return Direction.HORIZONTAL


@dataclass(frozen=True, slots=True)
class Layer:
    """A routing metal layer.

    Attributes:
        name: layer name, e.g. ``"M1"``.
        index: routing level; M0 is 0, M1 is 1, and so on.
        direction: preferred (and, in sub-10nm SAMP regimes, mandatory)
            routing direction.
        pitch: track pitch in DBU.
        offset: offset of track 0 from the origin, in DBU.
        width: drawn wire width in DBU.
    """

    name: str
    index: int
    direction: Direction
    pitch: int
    offset: int
    width: int

    def track_coord(self, track: int) -> int:
        """Coordinate of track ``track`` along the non-preferred axis."""
        return self.offset + track * self.pitch

    def nearest_track(self, coord: int) -> int:
        """Index of the track closest to ``coord``."""
        return round((coord - self.offset) / self.pitch)


@dataclass(frozen=True, slots=True)
class ViaLayer:
    """A cut layer connecting two adjacent metal layers.

    Attributes:
        name: via layer name, e.g. ``"V12"``.
        below: index of the lower metal layer.
        above: index of the upper metal layer.
        resistance: lumped per-cut resistance in ohm, used by the
            timing estimator.
    """

    name: str
    below: int
    above: int
    resistance: float = 20.0
