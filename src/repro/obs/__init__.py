"""repro.obs — the observability spine: tracing, metrics, profiling.

Four pieces, one surface:

* :mod:`repro.obs.trace` — hierarchical spans propagated across
  thread and process executors (``span()``, ``SpanContext``,
  ``Tracer``, ``collecting``);
* :mod:`repro.obs.metrics` — labeled counter/gauge/histogram registry
  rendering both Prometheus text and telemetry JSON;
* :mod:`repro.obs.export` — append-only NDJSON trace sink plus the
  self-contained HTML timeline report;
* :mod:`repro.obs.profile` — opt-in sampling profiler attachable to
  any span.

See DESIGN.md §12 for the architecture and the v3→v4 telemetry
migration.
"""

from repro.log import subsystem_logger

from repro.obs.export import (
    TraceWriter,
    read_trace,
    render_timeline_html,
    write_report,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import SamplingProfiler, profile_block
from repro.obs.trace import (
    NULL_SPAN,
    TRACE_SCHEMA,
    Span,
    SpanContext,
    Tracer,
    active,
    collecting,
    current_context,
    disable,
    enable,
    make_span_dict,
    new_id,
    span,
    tracer_scope,
    tree_shape,
)

logger = subsystem_logger("repro.obs")

__all__ = [
    "TRACE_SCHEMA",
    "NULL_SPAN",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SamplingProfiler",
    "Span",
    "SpanContext",
    "TraceWriter",
    "Tracer",
    "active",
    "collecting",
    "current_context",
    "disable",
    "enable",
    "make_span_dict",
    "new_id",
    "profile_block",
    "read_trace",
    "render_timeline_html",
    "span",
    "tracer_scope",
    "tree_shape",
    "write_report",
]
