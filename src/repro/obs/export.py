"""Trace persistence and reporting.

The on-disk form is append-only NDJSON, same idiom as the job store's
``events.ndjson``: a header line identifying the schema
(``repro.obs.trace/v1``), then one span dict per line, each flushed as
written.  Appends are atomic enough for our purposes (single writer
per file, O_APPEND); readers tolerate a torn final line from a
SIGKILLed writer by skipping anything that doesn't parse.  A resumed
run re-opens the same file in append mode and keeps the same
``trace_id``, so one file holds one coherent trace across attempts.

:func:`render_timeline_html` turns a trace into a self-contained HTML
page — no JavaScript, no external assets — with a nested span tree,
proportional wall-time bars, and a per-name aggregate table (the
"flame view" is the tree with bars; sorting by self-time lives in the
aggregate table).  ``repro trace report`` is a thin CLI wrapper over
:func:`write_report`.
"""

from __future__ import annotations

import html
import json
import os
import threading
from pathlib import Path

from repro.obs.trace import (
    TRACE_SCHEMA,
    Span,
    span_children,
)


class TraceWriter:
    """Append-only NDJSON span sink (``sink=`` for a Tracer).

    Opens lazily on first write so enabling tracing never creates an
    empty file for a run that records nothing.  The header line is
    written once per *file* (skipped when appending to an existing
    non-empty file — the resume case).
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = None
        self._lock = threading.Lock()

    def _open(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = (
                not self.path.exists()
                or self.path.stat().st_size == 0
            )
            self._fh = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._fh.write(
                    json.dumps(
                        {"type": "header", "schema": TRACE_SCHEMA},
                        sort_keys=True,
                    )
                    + "\n"
                )
                self._fh.flush()
        return self._fh

    def write(self, doc: dict) -> None:
        line = json.dumps(doc, sort_keys=True, default=str)
        with self._lock:
            fh = self._open()
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def close(self) -> None:
        with self._lock:
            fh, self._fh = self._fh, None
            if fh is not None:
                fh.close()


def read_trace(path) -> list[Span]:
    """Load spans from an NDJSON trace file.

    Torn-line tolerant: unparseable lines (a writer killed mid-write)
    and unknown record types are skipped, never fatal.  Raises
    ``FileNotFoundError`` only for a missing file.
    """
    spans: list[Span] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(doc, dict):
                continue
            if doc.get("type") == "header":
                continue
            if "name" not in doc or "span_id" not in doc:
                continue
            try:
                spans.append(Span.from_dict(doc))
            except (KeyError, TypeError, ValueError):
                continue
    return spans


# ------------------------------------------------------------- report
_CSS = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       font-size: 13px; margin: 1.5em; color: #222; }
h1, h2 { font-family: system-ui, sans-serif; }
.lane { display: flex; align-items: baseline; margin: 1px 0;
        white-space: nowrap; }
.lbl { width: 34em; overflow: hidden; text-overflow: ellipsis;
       flex: none; }
.bar-rail { flex: 1; background: #f2f2f2; height: 0.9em;
            position: relative; min-width: 20em; }
.bar { position: absolute; top: 0; height: 100%; background: #4c78a8;
       opacity: 0.85; }
.bar.err { background: #d62728; }
.t { width: 8em; text-align: right; flex: none; color: #555;
     padding-left: 0.6em; }
.attrs { color: #888; padding-left: 1em; font-size: 11px; }
table { border-collapse: collapse; margin-top: 0.5em; }
th, td { border: 1px solid #ccc; padding: 2px 8px; text-align: right; }
th { background: #f2f2f2; }
td.name, th.name { text-align: left; }
.meta { color: #555; }
"""


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def _lane(span: Span, depth: int, t0: float, total: float) -> str:
    left = 0.0 if total <= 0 else (span.started_at - t0) / total * 100
    width = 0.0 if total <= 0 else span.wall_seconds / total * 100
    left = min(max(left, 0.0), 100.0)
    width = min(max(width, 0.05), 100.0 - left)
    cls = "bar err" if span.status != "ok" else "bar"
    indent = "&nbsp;" * (depth * 2)
    attrs = ""
    if span.attrs:
        shown = {
            k: v for k, v in span.attrs.items() if k != "profile"
        }
        if shown:
            attrs = (
                f'<span class="attrs">'
                f"{html.escape(json.dumps(shown, sort_keys=True, default=str))}"
                f"</span>"
            )
    title = html.escape(
        f"{span.name} wall={_fmt_s(span.wall_seconds)} "
        f"cpu={_fmt_s(span.cpu_seconds)} status={span.status}"
    )
    return (
        f'<div class="lane" title="{title}">'
        f'<span class="lbl">{indent}{html.escape(span.name)}{attrs}</span>'
        f'<span class="bar-rail">'
        f'<span class="{cls}" style="left:{left:.3f}%;width:{width:.3f}%">'
        f"</span></span>"
        f'<span class="t">{_fmt_s(span.wall_seconds)}</span>'
        f"</div>"
    )


def render_timeline_html(spans: list[Span], title: str = "trace") -> str:
    """Self-contained HTML timeline + per-name aggregate table."""
    spans = sorted(spans, key=lambda s: (s.started_at, s.span_id))
    ids = {s.span_id for s in spans}
    children = span_children(spans)
    roots = [s for s in spans if s.parent_id not in ids]
    t0 = min((s.started_at for s in spans), default=0.0)
    t1 = max(
        (s.started_at + s.wall_seconds for s in spans), default=0.0
    )
    total = max(t1 - t0, 1e-9)

    lanes: list[str] = []

    def walk(node: Span, depth: int) -> None:
        lanes.append(_lane(node, depth, t0, total))
        for child in sorted(
            children.get(node.span_id, []),
            key=lambda s: (s.started_at, s.span_id),
        ):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)

    # per-name aggregate: total wall, self wall (minus direct
    # children), cpu, count — the "where did time go" table.
    agg: dict[str, dict] = {}
    for s in spans:
        child_wall = sum(
            c.wall_seconds for c in children.get(s.span_id, [])
        )
        row = agg.setdefault(
            s.name,
            {"count": 0, "wall": 0.0, "self": 0.0, "cpu": 0.0},
        )
        row["count"] += 1
        row["wall"] += s.wall_seconds
        row["self"] += max(s.wall_seconds - child_wall, 0.0)
        row["cpu"] += s.cpu_seconds
    table_rows = "".join(
        f'<tr><td class="name">{html.escape(name)}</td>'
        f"<td>{row['count']}</td>"
        f"<td>{_fmt_s(row['wall'])}</td>"
        f"<td>{_fmt_s(row['self'])}</td>"
        f"<td>{_fmt_s(row['cpu'])}</td></tr>"
        for name, row in sorted(
            agg.items(), key=lambda kv: -kv[1]["self"]
        )
    )

    trace_ids = sorted({s.trace_id for s in spans})
    n_err = sum(1 for s in spans if s.status != "ok")
    meta = (
        f"{len(spans)} spans · trace {', '.join(trace_ids) or '—'}"
        f" · wall {_fmt_s(total)}"
        + (f" · {n_err} errored" if n_err else "")
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        f'<p class="meta">{html.escape(meta)}</p>'
        f"<h2>Timeline</h2>{''.join(lanes)}"
        "<h2>By span name (sorted by self time)</h2>"
        '<table><tr><th class="name">name</th><th>count</th>'
        "<th>wall</th><th>self</th><th>cpu</th></tr>"
        f"{table_rows}</table>"
        "</body></html>"
    )


def write_report(trace_path, out_path=None, title: str | None = None):
    """Render a trace NDJSON file to an HTML report; returns the
    output path (defaults to the trace path with ``.html``)."""
    trace_path = Path(trace_path)
    spans = read_trace(trace_path)
    if out_path is None:
        out_path = trace_path.with_suffix(".html")
    out_path = Path(out_path)
    out_path.write_text(
        render_timeline_html(spans, title=title or trace_path.name),
        encoding="utf-8",
    )
    return out_path
