"""Opt-in sampling profiler attachable to any span.

A daemon thread polls :func:`sys._current_frames` at a fixed interval
and aggregates collapsed stacks (``file:func;file:func;...``) for the
thread being profiled.  Pure stdlib, no signals (so it works off the
main thread, where the service runs jobs), and nothing runs at all
unless a span name is listed in the tracer's ``profile_spans`` — the
profiler never touches the disabled-tracing hot path.

The result is a small JSON-able digest stored in the span's
``profile`` attribute: sample count, interval, and the top collapsed
stacks by hit count.  It is an attribution aid ("which phase of the
solve dominates this span"), not a microbenchmark.
"""

from __future__ import annotations

import sys
import threading

#: Cap on distinct stacks kept in a digest (top by sample count).
MAX_STACKS = 25
#: Cap on frames per collapsed stack (innermost kept).
MAX_DEPTH = 40


def _collapse(frame) -> str:
    parts: list[str] = []
    while frame is not None and len(parts) < MAX_DEPTH:
        code = frame.f_code
        filename = code.co_filename.rsplit("/", 1)[-1]
        parts.append(f"{filename}:{code.co_name}")
        frame = frame.f_back
    parts.reverse()  # outermost first, flamegraph convention
    return ";".join(parts)


class SamplingProfiler:
    """Samples one thread's stack until stopped.

    Args:
        interval: sampling period in seconds.
        thread_id: thread to sample; defaults to the calling thread
            (the span owner).
    """

    def __init__(
        self, interval: float = 0.005, thread_id: int | None = None
    ) -> None:
        self.interval = float(interval)
        self.thread_id = (
            thread_id
            if thread_id is not None
            else threading.get_ident()
        )
        self.samples = 0
        self.stacks: dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self.thread_id)
            if frame is None:
                continue
            self.samples += 1
            key = _collapse(frame)
            self.stacks[key] = self.stacks.get(key, 0) + 1

    def start(self) -> "SamplingProfiler":
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> dict:
        """Stop sampling; returns the digest dict."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(1.0, self.interval * 10))
            self._thread = None
        top = sorted(
            self.stacks.items(), key=lambda kv: (-kv[1], kv[0])
        )[:MAX_STACKS]
        return {
            "samples": self.samples,
            "interval": self.interval,
            "stacks": [
                {"stack": stack, "count": count}
                for stack, count in top
            ],
        }


def profile_block(interval: float = 0.005):
    """Standalone context manager yielding a profiler whose digest is
    available as ``.result`` after exit (handy in tests)."""

    class _Block:
        def __init__(self) -> None:
            self.profiler = SamplingProfiler(interval=interval)
            self.result: dict | None = None

        def __enter__(self) -> "_Block":
            self.profiler.start()
            return self

        def __exit__(self, *exc_info) -> None:
            self.result = self.profiler.stop()

    return _Block()
