"""Hierarchical spans: the tracing half of the observability spine.

A *span* is one timed, named unit of work — a flow stage, a DistOpt
pass, a window build/presolve/solve — with wall time, per-thread CPU
time, free-form attributes, and a parent link.  Spans of one run share
a ``trace_id``; the parent links form the tree rendered by
``repro trace report``.

Design constraints, in priority order:

1. **Disabled is free.**  When no tracer is active, :func:`span`
   returns a shared no-op object without allocating — the hot paths
   (one call per DistOpt pass, not per window) stay under the <2%
   overhead budget enforced by ``benchmarks/check_obs_overhead.py``.
   Per-window spans cost nothing extra either way: workers synthesize
   them from timings they already measure (see
   :meth:`repro.runtime.task.WindowTask.run`).
2. **Cross-executor propagation.**  A :class:`SpanContext` is a
   ``(trace_id, span_id)`` pair small enough to pickle into every
   :class:`~repro.runtime.task.WindowTask` and shard worker payload.
   Workers cannot write to the submitting process's sink, so their
   spans come *back* as plain dicts inside the task result and the
   parent absorbs them — the same mechanism under serial, thread, and
   process executors, which is why all three produce the same tree
   shape.
3. **Thread isolation.**  The active tracer and span stack are
   thread-local (with a process-global fallback set by
   :func:`enable`), so the job service can trace concurrent jobs into
   separate sinks via :func:`tracer_scope`.

Spans ride checkpoints: ``VM1Checkpoint`` stores the run's
:func:`current_context`, and a resumed run seeds its tracer from it
(:class:`Tracer` ``trace_id=``/``root_parent_id=``), so both attempts
append to one coherent trace.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field

#: Schema identifier of the NDJSON trace documents (see export.py).
TRACE_SCHEMA = "repro.obs.trace/v1"


def new_id() -> str:
    """A fresh 16-hex-digit identifier (collision-safe across
    processes — workers mint their own span ids)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class SpanContext:
    """Compact, picklable pointer to a span in some process's trace."""

    trace_id: str
    span_id: str

    def to_tuple(self) -> tuple[str, str]:
        return (self.trace_id, self.span_id)

    @classmethod
    def from_tuple(
        cls, pair: tuple[str, str] | None
    ) -> "SpanContext | None":
        if pair is None:
            return None
        return cls(str(pair[0]), str(pair[1]))


@dataclass
class Span:
    """One finished (or in-flight) unit of work."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    #: wall-clock start (epoch seconds).
    started_at: float = 0.0
    wall_seconds: float = 0.0
    #: CPU time of the owning thread across the span.
    cpu_seconds: float = 0.0
    status: str = "ok"
    attrs: dict = field(default_factory=dict)
    # live-timing anchors; not serialized.
    _t0: float = field(default=0.0, repr=False)
    _c0: float = field(default=0.0, repr=False)

    def set(self, **attrs) -> "Span":
        """Attach attributes; chainable."""
        self.attrs.update(attrs)
        return self

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def to_dict(self) -> dict:
        doc = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_at": self.started_at,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "status": self.status,
        }
        if self.attrs:
            doc["attrs"] = self.attrs
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "Span":
        return cls(
            name=str(doc["name"]),
            trace_id=str(doc["trace_id"]),
            span_id=str(doc["span_id"]),
            parent_id=doc.get("parent_id"),
            started_at=float(doc.get("started_at", 0.0)),
            wall_seconds=float(doc.get("wall_seconds", 0.0)),
            cpu_seconds=float(doc.get("cpu_seconds", 0.0)),
            status=str(doc.get("status", "ok")),
            attrs=dict(doc.get("attrs", {})),
        )


def make_span_dict(
    name: str,
    *,
    trace_id: str,
    parent_id: str | None,
    started_at: float,
    wall_seconds: float,
    cpu_seconds: float = 0.0,
    attrs: dict | None = None,
    span_id: str | None = None,
) -> dict:
    """Synthesize a finished span record from timings measured out of
    band.  The window-solve hot path uses this: workers already time
    build/presolve/solve, so when a :class:`SpanContext` rides the
    task they mint span dicts after the fact instead of paying for
    live span bookkeeping inside the solve loop."""
    span = Span(
        name=name,
        trace_id=trace_id,
        span_id=span_id or new_id(),
        parent_id=parent_id,
        started_at=started_at,
        wall_seconds=wall_seconds,
        cpu_seconds=cpu_seconds,
        attrs=dict(attrs or {}),
    )
    return span.to_dict()


class Tracer:
    """Collects finished spans, optionally streaming them to a sink.

    Args:
        trace_id: adopt an existing trace id (resume, worker-side
            collection); default mints a fresh one.
        root_parent_id: parent for spans started with an empty stack —
            how worker- and resume-side spans attach under the span
            that shipped their context.
        sink: object with ``write(dict)`` (e.g.
            :class:`repro.obs.export.TraceWriter`) receiving every
            finished span; spans are also kept in memory.
        profile_spans: span names that get a sampling profiler
            attached (see :mod:`repro.obs.profile`); the aggregated
            stacks land in the span's ``profile`` attribute.
        profile_interval: profiler sampling period in seconds.
    """

    def __init__(
        self,
        *,
        trace_id: str | None = None,
        root_parent_id: str | None = None,
        sink=None,
        profile_spans: tuple[str, ...] | frozenset = (),
        profile_interval: float = 0.005,
    ) -> None:
        self.trace_id = trace_id or new_id()
        self.root_parent_id = root_parent_id
        self.sink = sink
        self.profile_spans = frozenset(profile_spans)
        self.profile_interval = profile_interval
        self.spans: list[Span] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------- recording
    def finish(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)
            if self.sink is not None:
                self.sink.write(span.to_dict())

    def absorb(self, span_dicts) -> None:
        """Fold spans collected in a worker (plain dicts) into this
        tracer, in the order given — the caller iterates outcomes in
        canonical task order, so trace files are deterministic under
        any executor."""
        for doc in span_dicts:
            self.finish(Span.from_dict(doc))

    def export(self) -> list[dict]:
        """Finished spans as plain dicts (what crosses a process
        boundary back to the submitting side)."""
        with self._lock:
            return [span.to_dict() for span in self.spans]

    def close(self) -> None:
        sink, self.sink = self.sink, None
        if sink is not None and hasattr(sink, "close"):
            sink.close()


# --------------------------------------------------------------- state
_TLS = threading.local()
_GLOBAL: Tracer | None = None
#: Distinguishes "no thread-local tracer set" from an explicit
#: ``tracer_scope(None)`` masking the process-global tracer.
_UNSET = object()


def enable(
    path=None,
    *,
    sink=None,
    trace_id: str | None = None,
    root_parent_id: str | None = None,
    profile_spans: tuple[str, ...] = (),
    profile_interval: float = 0.005,
) -> Tracer:
    """Install a process-global tracer (the ``--trace`` entry point).

    ``path`` opens an append-mode NDJSON
    :class:`~repro.obs.export.TraceWriter` sink; pass ``sink=`` for
    anything else.  Returns the tracer; :func:`disable` uninstalls and
    closes it.
    """
    global _GLOBAL
    if path is not None and sink is None:
        from repro.obs.export import TraceWriter

        sink = TraceWriter(path)
    _GLOBAL = Tracer(
        trace_id=trace_id,
        root_parent_id=root_parent_id,
        sink=sink,
        profile_spans=profile_spans,
        profile_interval=profile_interval,
    )
    return _GLOBAL


def disable() -> Tracer | None:
    """Uninstall the process-global tracer; returns it (sink closed)."""
    global _GLOBAL
    tracer, _GLOBAL = _GLOBAL, None
    if tracer is not None:
        tracer.close()
    return tracer


def active() -> Tracer | None:
    """The tracer in effect on this thread (thread-local override
    first, then the process-global one)."""
    tracer = getattr(_TLS, "tracer", _UNSET)
    if tracer is _UNSET:
        return _GLOBAL
    return tracer


class tracer_scope:
    """Activate ``tracer`` for the current thread only.

    The job service runs concurrent jobs on worker threads; each wraps
    its flow in a ``tracer_scope`` so spans land in per-job sinks.
    ``tracer=None`` masks a process-global tracer for the scope.
    """

    def __init__(self, tracer: Tracer | None) -> None:
        self.tracer = tracer
        self._prev_tracer = None
        self._prev_stack = None
        self._had = False

    def __enter__(self) -> Tracer | None:
        self._had = hasattr(_TLS, "tracer")
        self._prev_tracer = getattr(_TLS, "tracer", None)
        self._prev_stack = getattr(_TLS, "stack", None)
        _TLS.tracer = self.tracer
        _TLS.stack = []
        return self.tracer

    def __exit__(self, *exc_info) -> None:
        if self._had:
            _TLS.tracer = self._prev_tracer
        else:
            del _TLS.tracer
        if self._prev_stack is not None:
            _TLS.stack = self._prev_stack
        elif hasattr(_TLS, "stack"):
            del _TLS.stack


def _stack() -> list:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = []
        _TLS.stack = stack
    return stack


class _NullSpan:
    """Shared no-op stand-in returned by :func:`span` when tracing is
    off — one object, zero allocation per call site."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":  # noqa: ARG002
        return self


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager for one live span (returned by :func:`span`)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span", "_profiler")

    def __init__(self, tracer: Tracer, name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None
        self._profiler = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        stack = _stack()
        parent = (
            stack[-1].span_id if stack else tracer.root_parent_id
        )
        span_obj = Span(
            name=self._name,
            trace_id=tracer.trace_id,
            span_id=new_id(),
            parent_id=parent,
            started_at=time.time(),
            attrs=self._attrs,
        )
        span_obj._t0 = time.perf_counter()
        span_obj._c0 = time.thread_time()
        stack.append(span_obj)
        self._span = span_obj
        if self._name in tracer.profile_spans:
            from repro.obs.profile import SamplingProfiler

            self._profiler = SamplingProfiler(
                interval=tracer.profile_interval
            )
            self._profiler.start()
        return span_obj

    def __exit__(self, exc_type, exc, tb) -> bool:
        span_obj = self._span
        span_obj.wall_seconds = time.perf_counter() - span_obj._t0
        span_obj.cpu_seconds = time.thread_time() - span_obj._c0
        if exc_type is not None:
            span_obj.status = f"error:{exc_type.__name__}"
        if self._profiler is not None:
            span_obj.attrs["profile"] = self._profiler.stop()
        stack = _stack()
        if stack and stack[-1] is span_obj:
            stack.pop()
        elif span_obj in stack:  # tolerate mis-nested exits
            stack.remove(span_obj)
        self._tracer.finish(span_obj)
        return False


def span(name: str, **attrs):
    """Open a span under the active tracer; no-op when tracing is off.

    Usage::

        with span("vm1_pass", pass_idx=3) as sp:
            ...
            sp.set(windows=built)
    """
    tracer = getattr(_TLS, "tracer", _UNSET)
    if tracer is _UNSET:
        tracer = _GLOBAL
    if tracer is None:
        return NULL_SPAN
    return _SpanHandle(tracer, name, attrs)


def current_context() -> tuple[str, str | None] | None:
    """The ``(trace_id, span_id)`` to ship into a worker payload so
    its spans parent under the current span; ``None`` when tracing is
    off (workers then skip span synthesis entirely)."""
    tracer = getattr(_TLS, "tracer", _UNSET)
    if tracer is _UNSET:
        tracer = _GLOBAL
    if tracer is None:
        return None
    stack = getattr(_TLS, "stack", None)
    if stack:
        return (tracer.trace_id, stack[-1].span_id)
    return (tracer.trace_id, tracer.root_parent_id)


def current_span_names() -> tuple[str, ...]:
    """Names of the spans open on this thread, outermost first.

    Cheap introspection for callers that predicate on *where* they
    are in the trace tree (e.g. chaos span-match triggers) without
    holding span objects; empty when tracing is off.
    """
    stack = getattr(_TLS, "stack", None)
    if not stack:
        return ()
    return tuple(s.name for s in stack)


class collecting:
    """Worker-side span collection seeded from a shipped context.

    Installs a fresh in-memory :class:`Tracer` as this thread's active
    tracer (``ctx[1]`` becomes the root parent) so library code inside
    the worker — e.g. a shard's whole ``vm1_opt`` — traces normally;
    ``export()`` then hands the spans back as dicts to return across
    the process boundary.  ``ctx=None`` (tracing off in the parent)
    yields a stub whose ``export()`` is empty and activates nothing.
    """

    def __init__(self, ctx: tuple[str, str | None] | None) -> None:
        self.ctx = ctx
        self._scope: tracer_scope | None = None
        self.tracer: Tracer | None = None

    def __enter__(self) -> "collecting":
        if self.ctx is not None:
            self.tracer = Tracer(
                trace_id=self.ctx[0], root_parent_id=self.ctx[1]
            )
            self._scope = tracer_scope(self.tracer)
            self._scope.__enter__()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._scope is not None:
            self._scope.__exit__(*exc_info)

    def export(self) -> list[dict]:
        if self.tracer is None:
            return []
        return self.tracer.export()


def span_children(spans: list[Span]) -> dict[str | None, list[Span]]:
    """Parent-id -> children index over a span list (report helper)."""
    children: dict[str | None, list[Span]] = {}
    for span_obj in spans:
        children.setdefault(span_obj.parent_id, []).append(span_obj)
    return children


def tree_shape(spans) -> list:
    """Canonical (name-sorted) nested-list shape of a span forest.

    Two runs produce the same value exactly when their span trees have
    the same structure — the cross-executor propagation tests compare
    serial vs thread vs process runs with this.  Accepts spans or
    span dicts.  Roots are spans whose parent is absent from the set
    (the shipped-in root parent id, or ``None``).
    """
    objs = [
        s if isinstance(s, Span) else Span.from_dict(s) for s in spans
    ]
    ids = {s.span_id for s in objs}
    children: dict[str | None, list[Span]] = {}
    roots: list[Span] = []
    for s in objs:
        if s.parent_id in ids:
            children.setdefault(s.parent_id, []).append(s)
        else:
            roots.append(s)

    def shape(node: Span) -> list:
        subs = sorted(
            (shape(c) for c in children.get(node.span_id, [])),
            key=repr,
        )
        return [node.name, subs]

    return sorted((shape(r) for r in roots), key=repr)
