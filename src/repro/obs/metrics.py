"""Labeled counters, gauges, and histograms with two renderings.

One :class:`MetricsRegistry` is the single source of truth a process
(or a component — the job manager and each :class:`RunTelemetry` own
their own) reports from.  The *same* registry renders both:

* :meth:`MetricsRegistry.render_prometheus` — the text exposition the
  service serves at ``/metrics`` (HELP/TYPE lines, escaped labels,
  metrics and series in stable sorted order), replacing the
  hand-concatenated strings that used to live in ``service/http.py``;
* :meth:`MetricsRegistry.to_dict` — the JSON shape embedded in
  telemetry documents (schema v4's ``counters`` section).

Metric handles are get-or-create: asking twice for the same name
returns the same object, and asking with a conflicting type or label
set raises — a typo never silently forks a series.  All mutation is
lock-protected, so pool worker threads can bump shared series.

A process-wide default registry (:data:`REGISTRY`) exists for code
without a natural owner; prefer passing a registry explicitly.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

_TYPES = ("counter", "gauge", "histogram")

#: Default buckets for timing histograms (seconds).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)


def escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def escape_help(text: str) -> str:
    """Prometheus HELP-text escaping: backslash and newline."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Exposition value format: ints bare, floats via ``repr`` (which
    round-trips exactly and never switches to locale formatting)."""
    if isinstance(value, bool):  # pragma: no cover — defensive
        return str(int(value))
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_key(
    labelnames: tuple[str, ...], labels: dict
) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class Metric:
    """Base: one named family of labeled series."""

    type: str = "untyped"

    def __init__(
        self, name: str, help: str, labelnames: tuple[str, ...] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    # pretty label rendering shared by all exposition paths
    def _series_name(self, key: tuple[str, ...], extra: str = "") -> str:
        pairs = [
            f'{n}="{escape_label_value(v)}"'
            for n, v in zip(self.labelnames, key)
        ]
        if extra:
            pairs.append(extra)
        if not pairs:
            return self.name
        return f"{self.name}{{{','.join(pairs)}}}"

    def expose(self) -> list[str]:
        raise NotImplementedError

    def to_value(self):
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing value(s)."""

    type = "counter"

    def __init__(self, name, help, labelnames=()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0)

    def expose(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self._series_name(key)} {format_value(value)}"
            for key, value in items
        ]

    def to_value(self):
        with self._lock:
            if not self.labelnames:
                return self._values.get((), 0)
            if len(self.labelnames) == 1:
                return {k[0]: v for k, v in sorted(self._values.items())}
            return {
                ",".join(k): v for k, v in sorted(self._values.items())
            }


class Gauge(Counter):
    """Value(s) that can go anywhere; optional pull callback.

    A ``callback`` (zero-arg callable returning a number, or a dict of
    label-value-tuple -> number for labeled gauges) is evaluated at
    exposition time — used for derived values like uptime.
    """

    type = "gauge"

    def __init__(self, name, help, labelnames=(), callback=None) -> None:
        super().__init__(name, help, labelnames)
        self.callback = callback

    def inc(self, amount: float = 1, **labels) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = value

    def _pull(self) -> None:
        if self.callback is None:
            return
        result = self.callback()
        with self._lock:
            if isinstance(result, dict):
                self._values.update(result)
            else:
                self._values[()] = result

    def expose(self) -> list[str]:
        self._pull()
        return super().expose()

    def to_value(self):
        self._pull()
        return super().to_value()


class Histogram(Metric):
    """Cumulative-bucket distribution (Prometheus semantics)."""

    type = "histogram"

    def __init__(
        self,
        name,
        help,
        labelnames=(),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets))
        self._counts: dict[tuple[str, ...], list[int]] = {}
        self._sums: dict[tuple[str, ...], float] = {}
        self._totals: dict[tuple[str, ...], int] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            counts = self._counts.setdefault(
                key, [0] * len(self.buckets)
            )
            idx = bisect_left(self.buckets, value)
            if idx < len(counts):
                counts[idx] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def _labels_suffix(self, key: tuple[str, ...], extra: str = "") -> str:
        """The ``{a="b",...}`` tail (possibly empty) for one series."""
        return self._series_name(key, extra)[len(self.name):]

    def expose(self) -> list[str]:
        lines: list[str] = []
        with self._lock:
            keys = sorted(self._totals)
            for key in keys:
                cumulative = 0
                for bound, count in zip(
                    self.buckets, self._counts[key]
                ):
                    cumulative += count
                    le = 'le="%s"' % format_value(bound)
                    lines.append(
                        f"{self.name}_bucket"
                        f"{self._labels_suffix(key, le)} {cumulative}"
                    )
                inf_le = 'le="+Inf"'
                lines.append(
                    f"{self.name}_bucket"
                    f"{self._labels_suffix(key, inf_le)}"
                    f" {self._totals[key]}"
                )
                lines.append(
                    f"{self.name}_sum{self._labels_suffix(key)}"
                    f" {format_value(self._sums[key])}"
                )
                lines.append(
                    f"{self.name}_count{self._labels_suffix(key)}"
                    f" {self._totals[key]}"
                )
        return lines

    def to_value(self):
        with self._lock:
            out = {}
            for key in sorted(self._totals):
                doc = {
                    "count": self._totals[key],
                    "sum": self._sums[key],
                }
                out[",".join(key) if key else ""] = doc
            if not self.labelnames:
                return out.get("", {"count": 0, "sum": 0.0})
            return out


class MetricsRegistry:
    """Get-or-create registry of metrics with stable rendering."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _register(self, cls, name, help, labelnames, **kwargs):
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if (
                    type(existing) is not cls
                    or existing.labelnames != labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.type} with labels "
                        f"{existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name, help, labelnames=()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name, help, labelnames=(), callback=None) -> Gauge:
        return self._register(
            Gauge, name, help, labelnames, callback=callback
        )

    def histogram(
        self, name, help, labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._register(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def render_prometheus(self) -> str:
        """Full text exposition: metrics sorted by name, one HELP and
        TYPE line each, then their series in sorted label order."""
        lines: list[str] = []
        with self._lock:
            metrics = [
                self._metrics[name] for name in sorted(self._metrics)
            ]
        for metric in metrics:
            lines.append(
                f"# HELP {metric.name} {escape_help(metric.help)}"
            )
            lines.append(f"# TYPE {metric.name} {metric.type}")
            lines.extend(metric.expose())
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """JSON form: name -> value (scalar, label -> value map, or
        histogram digest) — the telemetry ``counters`` section."""
        with self._lock:
            metrics = [
                self._metrics[name] for name in sorted(self._metrics)
            ]
        return {metric.name: metric.to_value() for metric in metrics}


#: Process-wide default registry for code without a natural owner.
REGISTRY = MetricsRegistry()
