"""Closed integer interval with the overlap algebra the optimizer needs.

The OpenM1 formulation reasons about horizontal pin *overlap*: two pins
can be joined by a direct vertical M1 segment only if the projections of
their pin shapes onto the x-axis intersect (paper §1.1).  ``Interval``
is the primitive carrying that projection.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True, order=True)
class Interval:
    """A closed interval ``[lo, hi]`` in integer DBU with ``lo <= hi``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"Interval lo {self.lo} > hi {self.hi}")

    @property
    def length(self) -> int:
        """Extent of the interval (``hi - lo``; 0 for a point interval)."""
        return self.hi - self.lo

    @property
    def center2(self) -> int:
        """Twice the interval center (kept integral for odd extents)."""
        return self.lo + self.hi

    def contains(self, value: int) -> bool:
        """Return True when ``lo <= value <= hi``."""
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """Return True when ``other`` lies entirely inside this interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """Return True when the two closed intervals intersect."""
        return self.lo <= other.hi and other.lo <= self.hi

    def overlap_length(self, other: "Interval") -> int:
        """Length of the intersection, or a negative gap when disjoint.

        A negative return value is the distance between the intervals,
        which the MILP uses directly: overlap ``b - a`` in constraint
        (11) of the paper is exactly this quantity.
        """
        return min(self.hi, other.hi) - max(self.lo, other.lo)

    def intersection(self, other: "Interval") -> "Interval | None":
        """Return the intersection interval, or None when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def union_span(self, other: "Interval") -> "Interval":
        """Return the smallest interval containing both intervals."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def translated(self, delta: int) -> "Interval":
        """Return a copy shifted by ``delta``."""
        return Interval(self.lo + delta, self.hi + delta)

    def mirrored_in(self, span: "Interval") -> "Interval":
        """Mirror this interval about the center of ``span``.

        Used to flip pin x-extents when a cell is placed in a mirrored
        orientation: a pin at ``[lo, hi]`` inside a cell of width ``w``
        maps to ``[w - hi, w - lo]``.
        """
        return Interval(
            span.lo + span.hi - self.hi, span.lo + span.hi - self.lo
        )
