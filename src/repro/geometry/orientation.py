"""DEF placement orientations and their coordinate transforms.

Standard-cell rows alternate between ``N`` (R0) and ``FS`` (mirrored
about the x-axis) so that power rails of vertically adjacent rows abut.
The detailed-placement *flip* operation of the paper (binary ``fc``)
mirrors a cell about its own vertical center line, which maps ``N`` to
``FN`` and ``FS`` to ``S``.

Only the x-transform matters to the optimizer: ClosedM1 pins are 1-D
vertical shapes whose y-span always covers the cell, and OpenM1 pin
overlap is computed on x-projections.  The y mirroring between ``N`` and
``FS`` rows therefore does not change any pin x-extent.
"""

from __future__ import annotations

import enum

from repro.geometry.interval import Interval


class Orientation(enum.Enum):
    """The four row-legal DEF orientations for single-row-height cells."""

    N = "N"
    S = "S"
    FN = "FN"
    FS = "FS"

    @property
    def is_x_mirrored(self) -> bool:
        """Return True when the orientation mirrors x (the paper's flip)."""
        return self in (Orientation.FN, Orientation.S)

    @property
    def is_y_mirrored(self) -> bool:
        """Return True for orientations used in odd (flipped-south) rows."""
        return self in (Orientation.FS, Orientation.S)

    def flipped(self) -> "Orientation":
        """Return the orientation after mirroring about the cell's
        vertical center line (the ``fc`` operation of the MILP)."""
        return _FLIP[self]

    @classmethod
    def for_row(cls, row_index: int, flipped: bool = False) -> "Orientation":
        """Return the legal orientation for a cell in ``row_index``.

        Even rows place cells ``N``, odd rows ``FS``; ``flipped`` applies
        the detailed-placement x-mirror on top.
        """
        base = cls.FS if row_index % 2 else cls.N
        return base.flipped() if flipped else base

    def transform_x(self, x_rel: int, cell_width: int) -> int:
        """Map a pin's library x-offset into the placed cell frame."""
        return cell_width - x_rel if self.is_x_mirrored else x_rel

    def transform_x_interval(
        self, iv: Interval, cell_width: int
    ) -> Interval:
        """Map a pin's library x-extent into the placed cell frame."""
        if self.is_x_mirrored:
            return iv.mirrored_in(Interval(0, cell_width))
        return iv


_FLIP = {
    Orientation.N: Orientation.FN,
    Orientation.FN: Orientation.N,
    Orientation.S: Orientation.FS,
    Orientation.FS: Orientation.S,
}
