"""Immutable integer 2-D point."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True, order=True)
class Point:
    """A point in the layout plane, in integer DBU.

    Points are ordered lexicographically (x first) so that pin and cell
    collections can be sorted deterministically.
    """

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Point":
        """Return a copy moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def manhattan_distance(self, other: "Point") -> int:
        """Return the L1 (Manhattan) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def as_tuple(self) -> tuple[int, int]:
        """Return ``(x, y)``."""
        return (self.x, self.y)
