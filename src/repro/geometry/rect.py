"""Axis-aligned integer rectangle."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.interval import Interval
from repro.geometry.point import Point


@dataclass(frozen=True, slots=True, order=True)
class Rect:
    """Axis-aligned rectangle ``[xlo, xhi] x [ylo, yhi]`` in DBU."""

    xlo: int
    ylo: int
    xhi: int
    yhi: int

    def __post_init__(self) -> None:
        if self.xlo > self.xhi or self.ylo > self.yhi:
            raise ValueError(f"malformed Rect {self}")

    @classmethod
    def from_points(cls, a: Point, b: Point) -> "Rect":
        """Build the bounding rectangle of two points."""
        return cls(
            min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y)
        )

    @classmethod
    def from_intervals(cls, x: Interval, y: Interval) -> "Rect":
        """Build a rectangle from x and y extents."""
        return cls(x.lo, y.lo, x.hi, y.hi)

    @property
    def width(self) -> int:
        return self.xhi - self.xlo

    @property
    def height(self) -> int:
        return self.yhi - self.ylo

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def half_perimeter(self) -> int:
        """Half-perimeter (HPWL contribution of this bounding box)."""
        return self.width + self.height

    @property
    def x_interval(self) -> Interval:
        return Interval(self.xlo, self.xhi)

    @property
    def y_interval(self) -> Interval:
        return Interval(self.ylo, self.yhi)

    @property
    def center(self) -> Point:
        """Integer center (rounded down for odd extents)."""
        return Point((self.xlo + self.xhi) // 2, (self.ylo + self.yhi) // 2)

    def contains_point(self, p: Point) -> bool:
        """Closed containment test."""
        return self.xlo <= p.x <= self.xhi and self.ylo <= p.y <= self.yhi

    def contains_rect(self, other: "Rect") -> bool:
        """Return True when ``other`` lies fully inside this rectangle."""
        return (
            self.xlo <= other.xlo
            and other.xhi <= self.xhi
            and self.ylo <= other.ylo
            and other.yhi <= self.yhi
        )

    def overlaps(self, other: "Rect") -> bool:
        """Closed-rectangle intersection test (edge touch counts)."""
        return (
            self.xlo <= other.xhi
            and other.xlo <= self.xhi
            and self.ylo <= other.yhi
            and other.ylo <= self.yhi
        )

    def overlaps_open(self, other: "Rect") -> bool:
        """Open intersection test: touching edges do NOT count.

        This is the test used for cell-overlap legality, where two
        abutting cells share a boundary without overlapping.
        """
        return (
            self.xlo < other.xhi
            and other.xlo < self.xhi
            and self.ylo < other.yhi
            and other.ylo < self.yhi
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Return the intersection rectangle, or None when disjoint."""
        xlo = max(self.xlo, other.xlo)
        ylo = max(self.ylo, other.ylo)
        xhi = min(self.xhi, other.xhi)
        yhi = min(self.yhi, other.yhi)
        if xlo > xhi or ylo > yhi:
            return None
        return Rect(xlo, ylo, xhi, yhi)

    def union_span(self, other: "Rect") -> "Rect":
        """Return the smallest rectangle containing both rectangles."""
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def expanded(self, margin: int) -> "Rect":
        """Return a copy grown by ``margin`` on all four sides."""
        return Rect(
            self.xlo - margin,
            self.ylo - margin,
            self.xhi + margin,
            self.yhi + margin,
        )

    def translated(self, dx: int, dy: int) -> "Rect":
        """Return a copy moved by ``(dx, dy)``."""
        return Rect(
            self.xlo + dx, self.ylo + dy, self.xhi + dx, self.yhi + dy
        )
