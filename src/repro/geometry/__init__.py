"""Planar geometry primitives used across the layout database.

All coordinates are integer database units (DBU); 1 DBU = 1 nm in the
default technology.  The module provides:

* :class:`Point` — an immutable 2-D integer point.
* :class:`Interval` — a closed 1-D integer interval with overlap algebra.
* :class:`Rect` — an axis-aligned rectangle built from two intervals.
* :class:`Orientation` — the DEF placement orientations (``N``/``S``/
  ``FN``/``FS``) with the coordinate transforms cells undergo when placed.
"""

from repro.geometry.interval import Interval
from repro.geometry.orientation import Orientation
from repro.geometry.point import Point
from repro.geometry.rect import Rect

__all__ = ["Point", "Interval", "Rect", "Orientation"]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.geometry")
