"""In-memory layout/netlist database."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Interval, Orientation, Point, Rect
from repro.library.macro import Macro
from repro.library.pins import Pin, PinDirection
from repro.tech.technology import Technology


@dataclass(frozen=True, slots=True, order=True)
class PinRef:
    """Reference to one instance pin: ``(instance_name, pin_name)``."""

    instance: str
    pin: str


@dataclass
class Instance:
    """A placed standard-cell instance.

    Placement state is the cell origin ``(x, y)`` (lower-left corner of
    the cell bounding box in DBU — always on a site/row boundary for a
    legal placement) plus the DEF orientation.
    """

    name: str
    macro: Macro
    x: int = 0
    y: int = 0
    orientation: Orientation = Orientation.N
    fixed: bool = False
    #: pin name -> net name, maintained by Design.connect().
    net_of_pin: dict[str, str] = field(default_factory=dict)

    @property
    def width(self) -> int:
        return self.macro.width

    @property
    def height(self) -> int:
        return self.macro.height

    @property
    def bbox(self) -> Rect:
        return Rect(self.x, self.y, self.x + self.width, self.y + self.height)

    @property
    def flipped(self) -> bool:
        """The paper's ``fc``: x-mirrored relative to the row default."""
        return self.orientation.is_x_mirrored

    def pin_offset(self, pin: Pin) -> tuple[int, int]:
        """Orientation-aware cell-relative pin access point (xp, yp)."""
        xp = self.orientation.transform_x(pin.x_rel, self.width)
        return xp, pin.y_rel

    def pin_position(self, pin_name: str) -> Point:
        """Absolute access point of ``pin_name``."""
        pin = self.macro.pin(pin_name)
        xp, yp = self.pin_offset(pin)
        return Point(self.x + xp, self.y + yp)

    def pin_x_interval(self, pin_name: str) -> Interval:
        """Absolute x-extent of ``pin_name`` (OpenM1 overlap geometry)."""
        pin = self.macro.pin(pin_name)
        iv = self.orientation.transform_x_interval(
            pin.x_interval_rel, self.width
        )
        return iv.translated(self.x)

    def m1_blocked_columns_abs(self, tech: Technology) -> list[int]:
        """Absolute site columns whose M1 track this instance blocks."""
        base = self.x // tech.site_width
        w = self.macro.width_sites
        if self.flipped:
            return sorted(
                base + (w - 1 - c) for c in self.macro.m1_blocked_columns
            )
        return sorted(base + c for c in self.macro.m1_blocked_columns)


@dataclass
class Net:
    """A signal net: instance pins plus optional fixed IO pad points."""

    name: str
    pins: list[PinRef] = field(default_factory=list)
    #: Fixed terminals (primary IO pads) in absolute DBU coordinates.
    pads: list[Point] = field(default_factory=list)

    @property
    def degree(self) -> int:
        """Number of terminals (pins + pads)."""
        return len(self.pins) + len(self.pads)

    def is_trivial(self) -> bool:
        """True when the net cannot contribute wirelength."""
        return self.degree < 2


class Design:
    """A placed design over one technology/library.

    The class is deliberately mutation-friendly — the optimizer moves
    instances in place — while keeping net membership immutable after
    construction (detailed placement never rewires).
    """

    def __init__(self, name: str, tech: Technology, die: Rect) -> None:
        if die.ylo % tech.row_height or die.xlo % tech.site_width:
            raise ValueError("die origin must be row/site aligned")
        self.name = name
        self.tech = tech
        self.die = die
        self.instances: dict[str, Instance] = {}
        self.nets: dict[str, Net] = {}

    # ------------------------------------------------------ construction
    def add_instance(self, name: str, macro: Macro) -> Instance:
        """Create and register an (unplaced) instance."""
        if name in self.instances:
            raise ValueError(f"duplicate instance {name}")
        inst = Instance(name=name, macro=macro)
        self.instances[name] = inst
        return inst

    def add_net(self, name: str) -> Net:
        """Create and register an empty net."""
        if name in self.nets:
            raise ValueError(f"duplicate net {name}")
        net = Net(name=name)
        self.nets[name] = net
        return net

    def connect(self, net_name: str, instance: str, pin: str) -> None:
        """Attach ``instance.pin`` to ``net_name``."""
        inst = self.instances[instance]
        if pin not in inst.macro.pins:
            raise KeyError(f"{inst.macro.name} has no pin {pin}")
        if pin in inst.net_of_pin:
            raise ValueError(f"{instance}.{pin} already connected")
        self.nets[net_name].pins.append(PinRef(instance, pin))
        inst.net_of_pin[pin] = net_name

    # ----------------------------------------------------------- queries
    @property
    def num_rows(self) -> int:
        return self.die.height // self.tech.row_height

    @property
    def num_columns(self) -> int:
        return self.die.width // self.tech.site_width

    def net_terminals(self, net: Net) -> list[Point]:
        """Absolute locations of every terminal of ``net``."""
        points = [
            self.instances[ref.instance].pin_position(ref.pin)
            for ref in net.pins
        ]
        points.extend(net.pads)
        return points

    def net_bbox(self, net: Net) -> Rect | None:
        """Bounding box of the net's terminals (None for degree<1)."""
        points = self.net_terminals(net)
        if not points:
            return None
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def net_hpwl(self, net: Net) -> int:
        """Half-perimeter wirelength of one net."""
        bbox = self.net_bbox(net)
        return bbox.half_perimeter if bbox else 0

    def total_hpwl(self) -> int:
        """HPWL summed over all non-trivial nets."""
        return sum(
            self.net_hpwl(net)
            for net in self.nets.values()
            if not net.is_trivial()
        )

    def driver_of(self, net: Net) -> PinRef | None:
        """The output pin driving ``net`` (None for pad-driven nets)."""
        for ref in net.pins:
            inst = self.instances[ref.instance]
            pin = inst.macro.pin(ref.pin)
            if pin.direction is PinDirection.OUTPUT:
                return ref
        return None

    def instances_in(self, region: Rect) -> list[Instance]:
        """Instances whose bbox lies fully inside ``region``, sorted by
        name for determinism."""
        xlo, ylo, xhi, yhi = region.xlo, region.ylo, region.xhi, region.yhi
        matches = [
            inst
            for inst in self.instances.values()
            if xlo <= inst.x
            and ylo <= inst.y
            and inst.x + inst.width <= xhi
            and inst.y + inst.height <= yhi
        ]
        matches.sort(key=lambda inst: inst.name)
        return matches

    def nets_of_instances(self, names: set[str]) -> list[Net]:
        """All nets touching any instance in ``names`` (sorted)."""
        seen: set[str] = set()
        for name in names:
            seen.update(self.instances[name].net_of_pin.values())
        return [self.nets[n] for n in sorted(seen)]

    def total_cell_area(self) -> int:
        """Sum of instance footprint areas."""
        return sum(
            inst.width * inst.height for inst in self.instances.values()
        )

    def utilization(self) -> float:
        """Cell area over die area."""
        return self.total_cell_area() / self.die.area

    # --------------------------------------------------------- placement
    def place(
        self,
        instance: str,
        column: int,
        row: int,
        flipped: bool = False,
    ) -> None:
        """Place ``instance`` with its left edge at ``column`` in
        ``row``, in the row-legal orientation."""
        inst = self.instances[instance]
        inst.x = self.die.xlo + column * self.tech.site_width
        inst.y = self.die.ylo + row * self.tech.row_height
        inst.orientation = Orientation.for_row(row, flipped)

    def row_of(self, inst: Instance) -> int:
        """Row index of ``inst`` relative to the die origin."""
        return (inst.y - self.die.ylo) // self.tech.row_height

    def column_of(self, inst: Instance) -> int:
        """Site column of ``inst``'s left edge relative to the die."""
        return (inst.x - self.die.xlo) // self.tech.site_width

    def placement_snapshot(self) -> dict[str, tuple[int, int, Orientation]]:
        """Capture every instance's placement for later restore."""
        return {
            name: (inst.x, inst.y, inst.orientation)
            for name, inst in self.instances.items()
        }

    def restore_placement(
        self, snapshot: dict[str, tuple[int, int, Orientation]]
    ) -> None:
        """Restore a placement captured by :meth:`placement_snapshot`."""
        for name, (x, y, orient) in snapshot.items():
            inst = self.instances[name]
            inst.x, inst.y, inst.orientation = x, y, orient

    def check_legal(self) -> list[str]:
        """Return a list of legality violations (empty when legal).

        Checks: on-grid origins, die containment, row-legal
        orientation, and no cell overlap.
        """
        errors: list[str] = []
        tech = self.tech
        by_row: dict[int, list[Instance]] = {}
        for name, inst in sorted(self.instances.items()):
            if (inst.x - self.die.xlo) % tech.site_width:
                errors.append(f"{name}: x {inst.x} off site grid")
            if (inst.y - self.die.ylo) % tech.row_height:
                errors.append(f"{name}: y {inst.y} off row grid")
            if not self.die.contains_rect(inst.bbox):
                errors.append(f"{name}: outside die")
            row = self.row_of(inst)
            if inst.orientation.is_y_mirrored != bool(row % 2):
                errors.append(f"{name}: illegal orientation in row {row}")
            by_row.setdefault(row, []).append(inst)
        for row, insts in sorted(by_row.items()):
            insts.sort(key=lambda i: (i.x, i.name))
            for left, right in zip(insts, insts[1:]):
                if left.x + left.width > right.x:
                    errors.append(
                        f"overlap in row {row}: {left.name} / {right.name}"
                    )
        return errors
