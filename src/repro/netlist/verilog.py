"""Structural (gate-level) Verilog writer and parser.

The paper's testcases are synthesized gate-level netlists; this module
provides the matching interchange for this repository's database: a
flat structural module with one instance statement per cell and
explicit port connections, plus a parser for the same subset.

The writer emits primary IO for nets with boundary pads; pad
coordinates are layout data and therefore travel in the DEF, not
here.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.library.library import Library
from repro.library.pins import PinDirection
from repro.netlist.design import Design


def _escape(name: str) -> str:
    """Escape identifiers that are not plain Verilog identifiers."""
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_$]*", name):
        return name
    return f"\\{name} "


def write_verilog(design: Design) -> str:
    """Serialize ``design``'s netlist as a flat structural module."""
    inputs: list[str] = []
    outputs: list[str] = []
    wires: list[str] = []
    for name, net in sorted(design.nets.items()):
        if net.pads:
            driver = design.driver_of(net)
            if driver is None:
                inputs.append(name)
            else:
                outputs.append(name)
        else:
            wires.append(name)

    lines = [f"module {_escape(design.name)} ("]
    ports = [_escape(n) for n in inputs + outputs]
    lines.append("  " + ",\n  ".join(ports))
    lines.append(");")
    for name in inputs:
        lines.append(f"  input {_escape(name)};")
    for name in outputs:
        lines.append(f"  output {_escape(name)};")
    for name in wires:
        lines.append(f"  wire {_escape(name)};")
    lines.append("")

    for inst_name, inst in sorted(design.instances.items()):
        conns = []
        for pin_name, net_name in sorted(inst.net_of_pin.items()):
            conns.append(
                f".{_escape(pin_name)}({_escape(net_name)})"
            )
        lines.append(
            f"  {_escape(inst.macro.name)} {_escape(inst_name)} "
            f"({', '.join(conns)});"
        )
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


@dataclass
class VerilogModule:
    """Parsed structural module."""

    name: str
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    wires: list[str] = field(default_factory=list)
    #: instance name -> (macro name, {pin: net}).
    instances: dict[str, tuple[str, dict[str, str]]] = field(
        default_factory=dict
    )


_TOKEN = re.compile(
    r"\\(?P<escaped>\S+)\s|(?P<id>[A-Za-z_][A-Za-z0-9_$]*)"
    r"|(?P<punct>[().,;])"
)


def _tokenize(text: str) -> list[str]:
    text = re.sub(r"//.*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    tokens: list[str] = []
    for match in _TOKEN.finditer(text):
        if match.group("escaped") is not None:
            tokens.append(match.group("escaped"))
        elif match.group("id") is not None:
            tokens.append(match.group("id"))
        else:
            tokens.append(match.group("punct"))
    return tokens


def parse_verilog(text: str) -> VerilogModule:
    """Parse a flat structural module (the :func:`write_verilog`
    subset)."""
    tokens = _tokenize(text)
    i = 0

    def expect(value: str) -> None:
        nonlocal i
        if tokens[i] != value:
            raise ValueError(
                f"expected {value!r}, got {tokens[i]!r} at token {i}"
            )
        i += 1

    expect("module")
    module = VerilogModule(name=tokens[i])
    i += 1
    expect("(")
    while tokens[i] != ")":
        if tokens[i] != ",":
            pass  # port list is re-derived from input/output decls
        i += 1
    i += 1  # ')'
    expect(";")

    while tokens[i] != "endmodule":
        head = tokens[i]
        if head in ("input", "output", "wire"):
            i += 1
            names = []
            while tokens[i] != ";":
                if tokens[i] != ",":
                    names.append(tokens[i])
                i += 1
            i += 1  # ';'
            target = {
                "input": module.inputs,
                "output": module.outputs,
                "wire": module.wires,
            }[head]
            target.extend(names)
        else:
            macro = tokens[i]
            inst_name = tokens[i + 1]
            i += 2
            expect("(")
            pins: dict[str, str] = {}
            while tokens[i] != ")":
                if tokens[i] == ",":
                    i += 1
                    continue
                expect(".")
                pin = tokens[i]
                i += 1
                expect("(")
                net = tokens[i]
                i += 1
                expect(")")
                pins[pin] = net
            i += 1  # ')'
            expect(";")
            module.instances[inst_name] = (macro, pins)
    return module


def design_from_verilog(
    module: VerilogModule, design_factory
) -> Design:
    """Build an (unplaced) :class:`Design` from a parsed module.

    Args:
        module: parsed structural module.
        design_factory: callable ``(name) -> Design`` that creates the
            empty design (the caller owns technology/die choices) and
            whose library resolves the macro names, exposed as
            ``design_factory.library``.
    """
    design: Design = design_factory(module.name)
    library: Library = design_factory.library
    net_names: set[str] = set(
        module.inputs + module.outputs + module.wires
    )
    for _, (__, pins) in module.instances.items():
        net_names.update(pins.values())
    for net_name in sorted(net_names):
        design.add_net(net_name)
    for inst_name, (macro_name, pins) in sorted(
        module.instances.items()
    ):
        macro = library.macro(macro_name)
        design.add_instance(inst_name, macro)
        for pin_name, net_name in sorted(pins.items()):
            pin = macro.pin(pin_name)
            if pin.direction.is_signal:
                design.connect(net_name, inst_name, pin_name)
    return design
