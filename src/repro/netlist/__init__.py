"""Netlist / layout database and synthetic benchmark generation.

:class:`Design` is the in-memory equivalent of the paper's OpenAccess
database: macros placed on a row/site grid, signal nets over instance
pins and boundary IO pads, and the geometric queries placement, the
MILP formulations and the router need (absolute pin locations, net
bounding boxes, HPWL).

:mod:`repro.netlist.generator` synthesizes the four benchmark designs
(``m0``, ``aes``, ``jpeg``, ``vga``) with paper-matching instance
counts, Rent's-rule locality and a realistic fanout distribution.
"""

from repro.netlist.design import Design, Instance, Net, PinRef
from repro.netlist.generator import (
    DESIGN_PROFILES,
    DesignProfile,
    generate_design,
)

__all__ = [
    "Design",
    "Instance",
    "Net",
    "PinRef",
    "DESIGN_PROFILES",
    "DesignProfile",
    "generate_design",
]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.netlist")
