"""Synthetic gate-level benchmark generation.

The paper evaluates on an ARM Cortex M0 core and three OpenCores
designs (aes, jpeg, vga) synthesized with a commercial flow.  Those
netlists are not redistributable, so this module generates structural
equivalents: seeded random netlists with

* paper-matching instance counts per profile (scalable via ``scale``),
* Rent's-rule-like locality — sinks prefer drivers that are close in a
  linear structural order, which global placement then embeds in 2-D,
* a heavy-tailed fanout distribution with a controllable mean,
* a profile-specific cell mix (jpeg is register-rich, aes is
  XOR-heavy, vga is buffer/datapath-heavy), and
* a buffered clock tree for the sequential elements plus boundary IO
  pads.

The optimizer and router consume only the hypergraph and pin geometry,
so this is the behaviour-preserving substitution documented in
DESIGN.md §2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry import Point, Rect
from repro.library.library import Library
from repro.library.macro import Macro
from repro.netlist.design import Design
from repro.tech.technology import Technology

#: Flops per clock-tree leaf buffer.
_FLOPS_PER_CLOCK_BUFFER = 40

#: Gate count at and above which signal-net wiring switches from the
#: original per-pin rejection-sampling loop to the vectorized
#: locality-bucketed path (``wiring="auto"``).  Designs below the
#: threshold keep the legacy RNG stream bit for bit, so every
#: committed small-scale expectation stays valid.
_BUCKETED_WIRING_MIN = 20_000


@dataclass(frozen=True)
class DesignProfile:
    """Statistical description of one benchmark design.

    Attributes:
        name: design name (``m0``/``aes``/``jpeg``/``vga``).
        instances: target instance count at ``scale`` = 1.0 (matches
            Table 2 of the paper).
        seq_fraction: fraction of instances that are flip-flops.
        mix: weight per combinational function family.
        mean_fanout: mean signal-net fanout.
        locality: mean structural distance between a sink and its
            driver, as a fraction of the design size.  Smaller is more
            local (lower Rent exponent).
        io_count: number of primary IO pads.
    """

    name: str
    instances: int
    seq_fraction: float
    mix: dict[str, float]
    mean_fanout: float = 2.2
    locality: float = 0.02
    io_count: int = 64


_BASE_MIX = {
    "INV": 0.16,
    "BUF": 0.08,
    "NAND2": 0.18,
    "NAND3": 0.05,
    "NOR2": 0.12,
    "NOR3": 0.04,
    "AND2": 0.06,
    "OR2": 0.05,
    "AOI21": 0.08,
    "OAI21": 0.08,
    "XOR2": 0.03,
    "XNOR2": 0.02,
    "MUX2": 0.05,
}


def _mix(**overrides: float) -> dict[str, float]:
    mix = dict(_BASE_MIX)
    mix.update(overrides)
    return mix


#: The four designs of Table 2 with paper-matching instance counts.
DESIGN_PROFILES: dict[str, DesignProfile] = {
    "m0": DesignProfile(
        name="m0",
        instances=9922,
        seq_fraction=0.17,
        mix=_mix(),
        locality=0.03,
        io_count=120,
    ),
    "aes": DesignProfile(
        name="aes",
        instances=12345,
        seq_fraction=0.12,
        mix=_mix(XOR2=0.12, XNOR2=0.08, NAND2=0.14, NOR2=0.09),
        locality=0.02,
        io_count=260,
    ),
    "jpeg": DesignProfile(
        name="jpeg",
        instances=54570,
        seq_fraction=0.22,
        mix=_mix(MUX2=0.09, AND2=0.08),
        locality=0.015,
        io_count=100,
    ),
    "vga": DesignProfile(
        name="vga",
        instances=68606,
        seq_fraction=0.25,
        mix=_mix(BUF=0.12, MUX2=0.08, INV=0.18),
        locality=0.012,
        io_count=130,
    ),
}


@dataclass
class _MacroPool:
    """Pre-resolved macro choices with sampling weights."""

    macros: list[Macro]
    weights: np.ndarray = field(repr=False, default=None)  # type: ignore


def _vt_for(rng: np.random.RandomState) -> str:
    """Triple-Vt mix: mostly RVT, some HVT for leakage, a little LVT."""
    return str(rng.choice(["RVT", "HVT", "LVT"], p=[0.6, 0.3, 0.1]))


def _build_pool(
    library: Library, mix: dict[str, float], rng: np.random.RandomState
) -> _MacroPool:
    names: list[str] = []
    weights: list[float] = []
    for function, weight in sorted(mix.items()):
        drives = [
            m
            for m in library.combinational()
            if m.spec.function == function and m.vt.value == "RVT"
        ]
        if not drives:
            raise KeyError(f"library has no macros for {function}")
        for macro in drives:
            names.append(macro.name)
            # Higher drives are rarer.
            weights.append(weight / macro.spec.drive)
    macros = [library.macro(n) for n in names]
    w = np.asarray(weights, dtype=float)
    return _MacroPool(macros=macros, weights=w / w.sum())


def _die_for(
    tech: Technology, total_cell_area: int, utilization: float
) -> Rect:
    """Square die sized for ``utilization``, snapped to rows/sites."""
    area = total_cell_area / utilization
    side = math.sqrt(area)
    rows = max(2, round(side / tech.row_height))
    columns = max(2, math.ceil(area / (rows * tech.row_height) / tech.site_width))
    return Rect(0, 0, columns * tech.site_width, rows * tech.row_height)


def generate_design(
    profile: DesignProfile | str,
    tech: Technology,
    library: Library,
    *,
    scale: float = 1.0,
    utilization: float = 0.75,
    seed: int = 1,
) -> Design:
    """Generate an unplaced benchmark design.

    Args:
        profile: a :class:`DesignProfile` or one of the registered
            names (``m0``/``aes``/``jpeg``/``vga``).
        tech: target technology (chooses the cell architecture).
        library: library generated for ``tech``.
        scale: instance-count multiplier.  ``1.0`` matches the paper;
            experiments default to a smaller scale for Python+HiGHS
            tractability (see DESIGN.md §2).
        utilization: target placement utilization used to size the die.
        seed: RNG seed; generation is fully deterministic given
            (profile, scale, seed).

    Returns:
        A :class:`Design` with instances and nets but no placement.
    """
    if isinstance(profile, str):
        profile = DESIGN_PROFILES[profile]
    rng = np.random.RandomState(seed)
    n_total = max(8, round(profile.instances * scale))
    n_seq = round(n_total * profile.seq_fraction)
    n_clock_buffers = max(1, math.ceil(n_seq / _FLOPS_PER_CLOCK_BUFFER))
    n_comb = max(4, n_total - n_seq - n_clock_buffers)

    pool = _build_pool(library, profile.mix, rng)
    seq_macros = [
        m for m in library.sequential() if m.vt.value == "RVT"
    ]
    if n_seq and not seq_macros:
        raise ValueError("profile needs flops but library has none")

    # ---------------------------------------------------------- instances
    # Structural order: combinational and sequential cells interleaved
    # so that locality-based sink selection mixes them naturally.
    kinds = np.array([0] * n_comb + [1] * n_seq)
    rng.shuffle(kinds)
    comb_choice = rng.choice(len(pool.macros), size=n_comb, p=pool.weights)
    seq_choice = rng.choice(len(seq_macros), size=max(n_seq, 1))

    design_name = f"{profile.name}_s{scale:g}_{tech.arch.value}"
    # Die sizing needs areas first; collect macros then build.
    chosen: list[Macro] = []
    ci = si = 0
    for kind in kinds:
        if kind == 0:
            chosen.append(pool.macros[comb_choice[ci]])
            ci += 1
        else:
            chosen.append(seq_macros[seq_choice[si]])
            si += 1
    clock_buf = _clock_buffer_macro(library)
    chosen.extend([clock_buf] * n_clock_buffers)

    cell_area = sum(m.width * m.height for m in chosen)
    die = _die_for(tech, cell_area, utilization)
    design = Design(design_name, tech, die)

    names: list[str] = []
    for i, macro in enumerate(chosen):
        name = f"U{i:06d}"
        design.add_instance(name, macro)
        names.append(name)
    gate_names = names[: n_comb + n_seq]
    buf_names = names[n_comb + n_seq :]

    # --------------------------------------------------------------- nets
    _wire_signal_nets(design, gate_names, profile, rng)
    _wire_clock_tree(design, gate_names, buf_names, rng)
    _attach_io_pads(design, profile, rng)
    return design


def _clock_buffer_macro(library: Library) -> Macro:
    for name in ("BUF_X2_RVT", "BUF_X1_RVT"):
        if name in library:
            return library.macro(name)
    return library.combinational()[0]


def _wire_signal_nets(
    design: Design,
    gate_names: list[str],
    profile: DesignProfile,
    rng: np.random.RandomState,
) -> None:
    """Create one net per gate output and attach locality-chosen sinks.

    Every gate input chooses a driver whose structural index is a
    two-sided geometric distance away, producing Rent-like locality.
    Driver sampling is also weighted so the resulting fanout
    distribution is heavy-tailed around ``profile.mean_fanout``.

    Two implementations share the same acceptance rule:

    * the original per-pin rejection loop (kept bit-identical for
      designs under :data:`_BUCKETED_WIRING_MIN` gates, whose RNG
      stream existing expectations depend on), and
    * a vectorized path for large designs
      (:func:`_wire_inputs_bucketed`) that runs the same rejection
      process in whole-array rounds and resolves the rare exhausted
      pins from a locality-sorted candidate pool.
    """
    n = len(gate_names)
    # Net of gate i's output pin.
    for i, name in enumerate(gate_names):
        net = design.add_net(f"n{i:06d}")
        inst = design.instances[name]
        out_pin = inst.macro.output_pins[0]
        design.connect(net.name, name, out_pin.name)

    scale = max(2.0, profile.locality * n)
    p_geom = min(0.75, 1.0 / scale)
    is_seq = [
        design.instances[name].macro.spec.is_sequential
        for name in gate_names
    ]

    if n >= _BUCKETED_WIRING_MIN:
        _wire_inputs_bucketed(design, gate_names, is_seq, p_geom, rng)
        return

    def acceptable(i: int, j: int) -> bool:
        """Keep combinational logic acyclic: a combinational gate may
        only be driven by a flop or by a lower-index gate."""
        if not 0 <= j < n or j == i:
            return False
        return is_seq[j] or is_seq[i] or j < i

    fallback = [j for j in range(n) if is_seq[j]]
    for i, name in enumerate(gate_names):
        inst = design.instances[name]
        for pin in inst.macro.input_pins:
            if pin.name == inst.macro.spec.clock_pin:
                continue  # clock wired separately
            for _attempt in range(12):
                distance = int(rng.geometric(p_geom))
                sign = -1 if rng.random_sample() < 0.5 else 1
                j = i + sign * distance
                if acceptable(i, j):
                    break
            else:
                if i > 0:
                    j = i - 1
                elif fallback:
                    j = fallback[0]
                else:
                    j = (i + 1) % n  # degenerate tiny all-comb design
            design.connect(f"n{j:06d}", name, pin.name)


def _data_input_pins(design: Design, gate_names: list[str]):
    """Yield ``(gate_index, pin_name)`` for every non-clock input, in
    the same order the legacy wiring loop visits them."""
    per_macro: dict[str, list[str]] = {}
    for i, name in enumerate(gate_names):
        macro = design.instances[name].macro
        pins = per_macro.get(macro.name)
        if pins is None:
            pins = [
                p.name
                for p in macro.input_pins
                if p.name != macro.spec.clock_pin
            ]
            per_macro[macro.name] = pins
        for pin in pins:
            yield i, pin


def _wire_inputs_bucketed(
    design: Design,
    gate_names: list[str],
    is_seq: list[bool],
    p_geom: float,
    rng: np.random.RandomState,
) -> None:
    """Vectorized driver selection for large designs.

    The legacy loop draws from the RNG once per rejection attempt per
    pin — hundreds of thousands of scalar ``rng.geometric`` /
    ``rng.random_sample`` calls that dominate 50k+-cell generation.
    This path runs the *same* rejection process in whole-array rounds:
    each round draws (distance, sign) for every still-unassigned pin
    at once and keeps the draws the acceptance rule admits.  The
    active set shrinks geometrically, so total drawn values stay
    within ~2x the pin count.

    Pins that exhaust all rounds (possible only near the low-index
    boundary, where a combinational sink has few acceptable drivers)
    are resolved from the locality-sorted candidate pool: the always-
    acceptable drivers — flops, plus the sink's lower-index neighbor —
    sorted by structural position, snapping each pin to the pool
    member nearest its last drawn target so the geometric locality
    profile is preserved.

    The RNG stream differs from the legacy loop's, which is why this
    path is gated to ``n >= _BUCKETED_WIRING_MIN`` where no committed
    design expectations exist.
    """
    n = len(gate_names)
    sinks: list[int] = []
    pin_names: list[str] = []
    for i, pin in _data_input_pins(design, gate_names):
        sinks.append(i)
        pin_names.append(pin)
    m = len(sinks)
    if m == 0:
        return
    seq = np.asarray(is_seq, dtype=bool)
    i_arr = np.asarray(sinks, dtype=np.int64)

    drivers = np.full(m, -1, dtype=np.int64)
    last_target = i_arr.copy()
    active = np.arange(m)
    for _attempt in range(12):
        if active.size == 0:
            break
        ia = i_arr[active]
        distance = rng.geometric(p_geom, size=active.size).astype(
            np.int64
        )
        sign = np.where(
            rng.random_sample(active.size) < 0.5, -1, 1
        ).astype(np.int64)
        cand = ia + sign * distance
        clipped = np.clip(cand, 0, n - 1)
        last_target[active] = clipped
        ok = (cand >= 0) & (cand < n) & (cand != ia)
        ok &= seq[clipped] | seq[ia] | (cand < ia)
        drivers[active[ok]] = cand[ok]
        active = active[~ok]
    if active.size:
        drivers[active] = _snap_to_pool(
            i_arr[active], last_target[active], n, seq
        )

    nets = [f"n{j:06d}" for j in drivers]
    for k in range(m):
        design.connect(nets[k], gate_names[i_arr[k]], pin_names[k])


def _snap_to_pool(
    i_bad: np.ndarray, t_bad: np.ndarray, n: int, seq: np.ndarray
) -> np.ndarray:
    """Resolve rejection-exhausted pins from the acceptable-driver pool.

    For each (sink ``i``, last target ``t``) pick the acceptable driver
    closest to ``t``: a sequential sink accepts anything, so ``t``
    itself (nudged off ``i``); a combinational sink accepts any flop or
    any lower index, so the nearer of ``min(t, i - 1)`` and the flop
    adjacent to ``t`` in the sorted flop pool.
    """
    seq_pool = np.flatnonzero(seq)
    out = np.empty(i_bad.size, dtype=np.int64)
    for k in range(i_bad.size):
        i = int(i_bad[k])
        t = int(t_bad[k])
        if seq[i]:
            if t == i:
                t = i - 1 if i > 0 else i + 1
            out[k] = t
            continue
        best = min(t, i - 1) if i > 0 else -1
        if seq_pool.size:
            pos = int(np.searchsorted(seq_pool, t))
            for cand_pos in (pos - 1, pos):
                if 0 <= cand_pos < seq_pool.size:
                    c = int(seq_pool[cand_pos])
                    if c != i and (
                        best < 0 or abs(c - t) < abs(best - t)
                    ):
                        best = c
        out[k] = best if best >= 0 else (i + 1) % n
    return out


def _wire_clock_tree(
    design: Design,
    gate_names: list[str],
    buf_names: list[str],
    rng: np.random.RandomState,
) -> None:
    """Buffered clock distribution: root net -> leaf buffers -> flops."""
    flops = [
        name
        for name in gate_names
        if design.instances[name].macro.spec.is_sequential
    ]
    if not flops:
        return
    root = design.add_net("clk_root")
    root.pads.append(Point(design.die.xlo, design.die.ylo))
    for b, buf in enumerate(buf_names):
        inst = design.instances[buf]
        design.connect(root.name, buf, inst.macro.input_pins[0].name)
        design.add_net(f"clk_leaf{b:03d}")
        design.connect(
            f"clk_leaf{b:03d}", buf, inst.macro.output_pins[0].name
        )
    for i, flop in enumerate(flops):
        inst = design.instances[flop]
        leaf = (i * len(buf_names)) // len(flops)
        design.connect(
            f"clk_leaf{leaf:03d}",
            flop,
            inst.macro.spec.clock_pin,
        )


def _attach_io_pads(
    design: Design, profile: DesignProfile, rng: np.random.RandomState
) -> None:
    """Attach boundary pads to a random subset of signal nets."""
    die = design.die
    signal_nets = sorted(
        name for name in design.nets if name.startswith("n")
    )
    if not signal_nets:
        return
    count = min(profile.io_count, len(signal_nets))
    picks = rng.choice(len(signal_nets), size=count, replace=False)
    for k, idx in enumerate(sorted(picks)):
        net = design.nets[signal_nets[idx]]
        edge = k % 4
        t = rng.random_sample()
        if edge == 0:
            pad = Point(die.xlo, die.ylo + int(t * die.height))
        elif edge == 1:
            pad = Point(die.xhi, die.ylo + int(t * die.height))
        elif edge == 2:
            pad = Point(die.xlo + int(t * die.width), die.ylo)
        else:
            pad = Point(die.xlo + int(t * die.width), die.yhi)
        net.pads.append(pad)
