"""Stage 1: direct and near-direct (jogged) vertical M1 routing.

A *direct vertical M1 route* (dM1) is a subnet routed with exactly one
M1 segment (paper §1.1).  The feasibility predicate depends on the
cell architecture:

* ClosedM1 — the two pins must sit on the same M1 track (equal x) with
  a free track span across any intervening rows (γ limits the span).
* OpenM1 — the pins' x-projections must overlap by at least δ and a
  free M1 column must exist inside the overlap within the γ row span.

Nearly-aligned pins can still be connected mostly on M1 with a short
M2 jog.  Such routes consume M1 wirelength and two via12 per route —
they are what a commercial router produces *before* the optimizer
aligns pins, and they are exactly the "long vertical M1 routings that
are not used for direct vertical routing" the paper observes being
removed (ExptB-1 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.design import Design
from repro.routing.m1book import M1TrackBook
from repro.routing.subnets import Subnet
from repro.tech.arch import AlignmentMode


@dataclass(frozen=True)
class M1Route:
    """A routed stage-1 subnet."""

    subnet: Subnet
    direct: bool  # True: dM1; False: jogged M1+M2 route
    length: int  # routed wirelength contribution (DBU)
    m1_length: int  # M1 portion of the length (DBU)
    num_via12: int


class M1Stage:
    """Attempts stage-1 routes against the M1 track book."""

    def __init__(
        self,
        design: Design,
        book: M1TrackBook,
        *,
        gamma: int,
        delta: int,
        jog_max_sites: int,
    ) -> None:
        self.design = design
        self.book = book
        self.gamma = gamma
        self.delta = delta
        self.jog_max = jog_max_sites * design.tech.site_width
        self.mode = design.tech.arch.alignment_mode

    def try_route(self, subnet: Subnet) -> M1Route | None:
        """Try a direct then a jogged M1 route for ``subnet``."""
        if self.mode is AlignmentMode.NONE:
            return None
        if not (subnet.a.is_pin and subnet.b.is_pin):
            return None
        if self.mode is AlignmentMode.ALIGN:
            route = self._direct_closedm1(subnet)
        else:
            route = self._direct_openm1(subnet)
        if route is not None:
            return route
        return self._jog(subnet)

    # -------------------------------------------------------- ClosedM1
    def _direct_closedm1(self, subnet: Subnet) -> M1Route | None:
        a, b = subnet.a.point, subnet.b.point
        if a.x != b.x:
            return None
        tech = self.design.tech
        row_a = tech.row_of(a.y - self.design.die.ylo)
        row_b = tech.row_of(b.y - self.design.die.ylo)
        span = abs(row_a - row_b)
        if not 1 <= span <= self.gamma:
            return None
        column = tech.m1_track_of(a.x)
        # The pins' own stripes occupy their rows; only the gap across
        # intervening rows needs to be free.
        ylo = self.design.die.ylo + (min(row_a, row_b) + 1) * (
            tech.row_height
        )
        yhi = self.design.die.ylo + max(row_a, row_b) * tech.row_height - 1
        if ylo <= yhi:
            if not self.book.is_free(column, ylo, yhi):
                return None
            self.book.book(column, ylo, yhi)
        length = abs(a.y - b.y)
        return M1Route(
            subnet, direct=True, length=length, m1_length=length,
            num_via12=0,
        )

    # --------------------------------------------------------- OpenM1
    def _direct_openm1(self, subnet: Subnet) -> M1Route | None:
        overlap = self._pin_overlap(subnet)
        if overlap is None:
            return None
        a, b = subnet.a.point, subnet.b.point
        lo, hi = overlap
        if hi - lo < self.delta:
            return None
        if abs(a.y - b.y) > self.gamma * self.design.tech.row_height:
            return None
        column = self._free_column(lo, hi, min(a.y, b.y), max(a.y, b.y))
        if column is None:
            return None
        ylo, yhi = min(a.y, b.y), max(a.y, b.y)
        self.book.book(column, ylo, max(yhi, ylo + 1))
        track_x = self.design.tech.m1_track_x(column)
        # Small horizontal landing on the pins' own M0 bars.
        length = (yhi - ylo) + abs(track_x - a.x) + abs(track_x - b.x)
        return M1Route(
            subnet,
            direct=True,
            length=length,
            m1_length=yhi - ylo,
            num_via12=0,  # V01 x2, no via12
        )

    def _pin_overlap(self, subnet: Subnet) -> tuple[int, int] | None:
        iv_a = self.design.instances[
            subnet.a.pin.instance
        ].pin_x_interval(subnet.a.pin.pin)
        iv_b = self.design.instances[
            subnet.b.pin.instance
        ].pin_x_interval(subnet.b.pin.pin)
        lo = max(iv_a.lo, iv_b.lo)
        hi = min(iv_a.hi, iv_b.hi)
        return (lo, hi) if lo <= hi else None

    def _free_column(
        self, xlo: int, xhi: int, ylo: int, yhi: int
    ) -> int | None:
        """Free M1 column whose track lies inside ``[xlo, xhi]``,
        preferring the overlap center."""
        tech = self.design.tech
        first = tech.column_of(xlo + tech.site_width - 1)
        last = tech.column_of(xhi)
        candidates = [
            c
            for c in range(first, last + 1)
            if xlo <= tech.m1_track_x(c) <= xhi
        ]
        mid = (xlo + xhi) / 2
        candidates.sort(key=lambda c: abs(tech.m1_track_x(c) - mid))
        for column in candidates:
            if self.book.is_free(column, ylo, max(yhi, ylo + 1)):
                return column
        return None

    # ------------------------------------------------------------- jog
    def _jog(self, subnet: Subnet) -> M1Route | None:
        a, b = subnet.a.point, subnet.b.point
        tech = self.design.tech
        row_a = tech.row_of(a.y - self.design.die.ylo)
        row_b = tech.row_of(b.y - self.design.die.ylo)
        span = abs(row_a - row_b)
        if not 1 <= span <= self.gamma:
            return None
        dx = abs(a.x - b.x)
        if dx == 0 or dx > self.jog_max:
            return None
        dy = abs(a.y - b.y)
        # Two vertical M1 pieces joined by an M2 jog: M1 carries the
        # vertical travel plus the overshoot to reach the jog track,
        # M2 the dx, with a via12 pair at the jog.  The 3/2 overshoot
        # models the detour to a free M2 track at the row boundary.
        m1_len = dy + dy // 2
        return M1Route(
            subnet,
            direct=False,
            length=dx + m1_len,
            m1_length=m1_len,
            num_via12=2,
        )
