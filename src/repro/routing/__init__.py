"""Routing substrate: direct-M1 stage + congestion-aware gcell router.

This package stands in for the commercial route step the paper
evaluates with (Innovus).  Routing happens in two stages, mirroring how
a sub-10nm router exploits the new cell architectures:

1. **Direct/near-direct M1 stage** (:mod:`repro.routing.m1route`) —
   for every 2-pin subnet whose pins satisfy the architecture's
   alignment (ClosedM1) or overlap (OpenM1) predicate within the γ row
   span, a single vertical M1 segment is booked on the per-column M1
   track resource (a *direct vertical M1 route*, dM1).  Nearly-aligned
   pins may instead get a jogged M1+M2 route — the longer,
   via12-consuming M1 usage commercial routers produce before the
   paper's optimizer aligns the pins.
2. **GCell stage** (:mod:`repro.routing.gcell`) — remaining subnets are
   routed over a capacity-limited gcell grid (M2/M3/M4 resources,
   plus leftover M1 verticals for OpenM1) with congestion-aware A*
   and history-cost rip-up-and-reroute; leftover overflow counts as
   routing DRVs.

The metrics object reports exactly the Table 2 columns: routed
wirelength, M1 wirelength, #via12, #dM1 and #DRVs.
"""

from repro.routing.metrics import RouteMetrics
from repro.routing.router import DetailedRouter, RouterConfig

__all__ = ["RouteMetrics", "DetailedRouter", "RouterConfig"]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.routing")
