"""Capacity-limited gcell routing grid with congestion-aware search.

The grid models the M2+ routing resource the way a global router sees
it: horizontal edge capacity comes from the horizontal layers (M2, M4)
crossing a gcell boundary, vertical capacity from M3 — plus, for
OpenM1 designs, the open M1 verticals that architecture frees up
(paper §1.1: "OpenM1 effectively enables an additional metal layer").

Subnets are routed with L-shape probing first and congestion-aware A*
when both L candidates are badly overflowed; a history-cost rip-up and
re-route pass resolves what it can, and remaining overflow is reported
as routing DRVs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.geometry import Point
from repro.netlist.design import Design
from repro.tech.arch import CellArchitecture

#: Cost multiplier applied per unit of (prospective) overflow.
_OVERFLOW_PENALTY = 6.0
#: Cost added per bend (layer change via23/via34).
_BEND_COST = 40.0
#: Extra A* search margin around the subnet bounding box, in gcells.
_SEARCH_MARGIN = 4


@dataclass(frozen=True)
class GridConfig:
    """Geometry and derating of the gcell grid.

    Attributes:
        width_sites: gcell width in placement sites.
        height_rows: gcell height in placement rows.
        derate: fraction of raw tracks usable for signal routing
            (the rest models pins, power, and rule losses).
        openm1_m1_share: extra vertical capacity for OpenM1, as a
            fraction of the raw M1 tracks crossing a gcell boundary
            (M1 is fully open above OpenM1 cells).
        closedm1_m1_share: same for ClosedM1, much smaller — only the
            pin-free feedthrough columns and empty sites are usable.
    """

    width_sites: int = 15
    height_rows: int = 2
    derate: float = 0.70
    openm1_m1_share: float = 0.35
    closedm1_m1_share: float = 0.33


class GCellGrid:
    """Routing capacity/usage bookkeeping plus path search."""

    def __init__(self, design: Design, config: GridConfig) -> None:
        self.design = design
        self.config = config
        tech = design.tech
        die = design.die
        self.pitch_x = config.width_sites * tech.site_width
        self.pitch_y = config.height_rows * tech.row_height
        self.nx = max(1, -(-die.width // self.pitch_x))
        self.ny = max(1, -(-die.height // self.pitch_y))

        h_layers = [
            layer
            for layer in tech.layers[2:]
            if layer.direction.value == "H"
        ]
        v_layers = [
            layer
            for layer in tech.layers[3:]
            if layer.direction.value == "V"
        ]
        h_tracks = config.height_rows * tech.row_height * sum(
            1.0 / layer.pitch for layer in h_layers
        )
        v_tracks = config.width_sites * tech.site_width * sum(
            1.0 / layer.pitch for layer in v_layers
        )
        m1_tracks = config.width_sites  # one M1 track per site
        if tech.arch is CellArchitecture.OPEN_M1:
            m1_bonus = config.openm1_m1_share * m1_tracks
        elif tech.arch is CellArchitecture.CLOSED_M1:
            m1_bonus = config.closedm1_m1_share * m1_tracks
        else:
            m1_bonus = 0.0
        self.cap_h = max(1, round(h_tracks * config.derate))
        self.cap_v = max(1, round(v_tracks * config.derate + m1_bonus))
        #: Fraction of vertical gcell wirelength carried by M1 (OpenM1).
        self.m1_vertical_share = m1_bonus / max(
            1.0, v_tracks * config.derate + m1_bonus
        )

        # Edge arrays: usage_h[y, x] is the edge (x,y)-(x+1,y).
        self.usage_h = np.zeros((self.ny, self.nx - 1), dtype=np.int32)
        self.usage_v = np.zeros((self.ny - 1, self.nx), dtype=np.int32)
        self.history_h = np.zeros_like(self.usage_h, dtype=np.float64)
        self.history_v = np.zeros_like(self.usage_v, dtype=np.float64)

    # ------------------------------------------------------------ coords
    def cell_of(self, point: Point) -> tuple[int, int]:
        """GCell (x, y) indices containing ``point``."""
        die = self.design.die
        gx = min(self.nx - 1, max(0, (point.x - die.xlo) // self.pitch_x))
        gy = min(self.ny - 1, max(0, (point.y - die.ylo) // self.pitch_y))
        return int(gx), int(gy)

    def center(self, gx: int, gy: int) -> Point:
        die = self.design.die
        return Point(
            die.xlo + gx * self.pitch_x + self.pitch_x // 2,
            die.ylo + gy * self.pitch_y + self.pitch_y // 2,
        )

    # ------------------------------------------------------------- edges
    def _edge_cost(self, horizontal: bool, ex: int, ey: int) -> float:
        if horizontal:
            usage = self.usage_h[ey, ex]
            cap = self.cap_h
            history = self.history_h[ey, ex]
            base = self.pitch_x
        else:
            usage = self.usage_v[ey, ex]
            cap = self.cap_v
            history = self.history_v[ey, ex]
            base = self.pitch_y
        overflow = max(0, usage + 1 - cap)
        congestion = 0.4 * (usage / cap) ** 2
        return base * (1.0 + congestion + _OVERFLOW_PENALTY * overflow
                       + history)

    def _apply(self, path: list[tuple[int, int]], delta: int) -> None:
        for (x0, y0), (x1, y1) in zip(path, path[1:]):
            if y0 == y1:
                self.usage_h[y0, min(x0, x1)] += delta
            else:
                self.usage_v[min(y0, y1), x0] += delta

    def path_cost(self, path: list[tuple[int, int]]) -> float:
        """Congestion-aware cost of ``path`` under current usage."""
        total = 0.0
        bends = 0
        for i, ((x0, y0), (x1, y1)) in enumerate(
            zip(path, path[1:])
        ):
            if y0 == y1:
                total += self._edge_cost(True, min(x0, x1), y0)
            else:
                total += self._edge_cost(False, x0, min(y0, y1))
            if i > 0:
                (px, py) = path[i - 1]
                if (x1 - x0, y1 - y0) != (x0 - px, y0 - py):
                    bends += 1
        return total + bends * _BEND_COST

    # ------------------------------------------------------------ search
    @staticmethod
    def l_paths(
        src: tuple[int, int], dst: tuple[int, int]
    ) -> list[list[tuple[int, int]]]:
        """The two L-shaped gcell paths between ``src`` and ``dst``."""

        def straight(a, b):
            (ax, ay), (bx, by) = a, b
            out = []
            if ax == bx:
                step = 1 if by > ay else -1
                out = [(ax, y) for y in range(ay, by + step, step)]
            else:
                step = 1 if bx > ax else -1
                out = [(x, ay) for x in range(ax, bx + step, step)]
            return out

        if src == dst:
            return [[src]]
        if src[0] == dst[0] or src[1] == dst[1]:
            return [straight(src, dst)]
        via1 = (dst[0], src[1])
        via2 = (src[0], dst[1])
        return [
            straight(src, via1) + straight(via1, dst)[1:],
            straight(src, via2) + straight(via2, dst)[1:],
        ]

    def astar(
        self, src: tuple[int, int], dst: tuple[int, int]
    ) -> list[tuple[int, int]] | None:
        """Congestion-aware A* restricted to the expanded bbox."""
        xlo = max(0, min(src[0], dst[0]) - _SEARCH_MARGIN)
        xhi = min(self.nx - 1, max(src[0], dst[0]) + _SEARCH_MARGIN)
        ylo = max(0, min(src[1], dst[1]) - _SEARCH_MARGIN)
        yhi = min(self.ny - 1, max(src[1], dst[1]) + _SEARCH_MARGIN)

        def heuristic(node: tuple[int, int]) -> float:
            return (
                abs(node[0] - dst[0]) * self.pitch_x
                + abs(node[1] - dst[1]) * self.pitch_y
            )

        open_heap: list[tuple[float, float, tuple[int, int]]] = [
            (heuristic(src), 0.0, src)
        ]
        best_g: dict[tuple[int, int], float] = {src: 0.0}
        parent: dict[tuple[int, int], tuple[int, int]] = {}
        while open_heap:
            f, g, node = heapq.heappop(open_heap)
            if node == dst:
                path = [node]
                while node in parent:
                    node = parent[node]
                    path.append(node)
                path.reverse()
                return path
            if g > best_g.get(node, float("inf")):
                continue
            x, y = node
            neighbors = []
            if x > xlo:
                neighbors.append(((x - 1, y), True, x - 1, y))
            if x < xhi:
                neighbors.append(((x + 1, y), True, x, y))
            if y > ylo:
                neighbors.append(((x, y - 1), False, x, y - 1))
            if y < yhi:
                neighbors.append(((x, y + 1), False, x, y))
            for nxt, horizontal, ex, ey in neighbors:
                ng = g + self._edge_cost(horizontal, ex, ey)
                if ng < best_g.get(nxt, float("inf")):
                    best_g[nxt] = ng
                    parent[nxt] = node
                    heapq.heappush(
                        open_heap, (ng + heuristic(nxt), ng, nxt)
                    )
        return None

    # ------------------------------------------------------------ routes
    def route_subnet(
        self, a: Point, b: Point
    ) -> list[tuple[int, int]]:
        """Route one 2-pin subnet; commits usage; returns the path."""
        src = self.cell_of(a)
        dst = self.cell_of(b)
        candidates = self.l_paths(src, dst)
        best = min(candidates, key=self.path_cost)
        ideal = (
            abs(src[0] - dst[0]) * self.pitch_x
            + abs(src[1] - dst[1]) * self.pitch_y
        )
        if ideal and self.path_cost(best) > 1.8 * ideal:
            found = self.astar(src, dst)
            if found is not None and self.path_cost(found) < (
                self.path_cost(best)
            ):
                best = found
        self._apply(best, +1)
        return best

    def unroute(self, path: list[tuple[int, int]]) -> None:
        """Remove a previously committed path from usage."""
        self._apply(path, -1)

    def add_history(self) -> None:
        """Accumulate history cost on currently overflowed edges."""
        self.history_h += 0.5 * np.maximum(
            0, self.usage_h - self.cap_h
        )
        self.history_v += 0.5 * np.maximum(
            0, self.usage_v - self.cap_v
        )

    def overflow_edges(self) -> int:
        """Number of overflowed edge units (the DRV count proxy)."""
        over_h = np.maximum(0, self.usage_h - self.cap_h).sum()
        over_v = np.maximum(0, self.usage_v - self.cap_v).sum()
        return int(over_h + over_v)

    def path_length_dbu(
        self, path: list[tuple[int, int]], a: Point, b: Point
    ) -> int:
        """Routed length: pin-to-pin distance plus detour excess.

        The gcell path is an abstraction; the realized wire follows the
        pins, so a detour-free path costs exactly the Manhattan
        distance and detours add full gcell-step lengths.
        """
        ideal = a.manhattan_distance(b)
        if len(path) < 2:
            return ideal
        length = 0
        for (x0, y0), (x1, y1) in zip(path, path[1:]):
            length += self.pitch_x if y0 == y1 else self.pitch_y
        src, dst = path[0], path[-1]
        straight = (
            abs(src[0] - dst[0]) * self.pitch_x
            + abs(src[1] - dst[1]) * self.pitch_y
        )
        return ideal + max(0, length - straight)

    def vertical_length_dbu(self, path: list[tuple[int, int]]) -> int:
        """Vertical portion of the routed length."""
        return sum(
            self.pitch_y
            for (x0, y0), (x1, y1) in zip(path, path[1:])
            if x0 == x1
        )
