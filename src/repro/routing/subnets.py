"""Net decomposition into 2-pin subnets (Prim MST on Manhattan
distance).

The paper counts dM1 per (sub)net — "a (sub)net routing using only one
M1 routing segment".  We reproduce that accounting by decomposing each
multi-terminal net into MST edges and routing each edge independently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Point
from repro.netlist.design import Design, Net, PinRef


@dataclass(frozen=True)
class Terminal:
    """One routable net terminal: an instance pin or a fixed pad."""

    point: Point
    pin: PinRef | None  # None for IO pads

    @property
    def is_pin(self) -> bool:
        return self.pin is not None


@dataclass(frozen=True)
class Subnet:
    """A 2-terminal routing task produced by MST decomposition."""

    net: str
    a: Terminal
    b: Terminal

    @property
    def manhattan_length(self) -> int:
        return self.a.point.manhattan_distance(self.b.point)


def net_terminals(design: Design, net: Net) -> list[Terminal]:
    """Collect the net's terminals at current placement."""
    terminals = [
        Terminal(
            design.instances[ref.instance].pin_position(ref.pin), ref
        )
        for ref in net.pins
    ]
    terminals.extend(Terminal(pad, None) for pad in net.pads)
    return terminals


def decompose(design: Design, net: Net) -> list[Subnet]:
    """Prim MST decomposition of ``net`` into 2-pin subnets."""
    terminals = net_terminals(design, net)
    k = len(terminals)
    if k < 2:
        return []
    in_tree = [False] * k
    dist = [float("inf")] * k
    closest = [0] * k
    in_tree[0] = True
    for i in range(1, k):
        dist[i] = terminals[0].point.manhattan_distance(
            terminals[i].point
        )
    edges: list[Subnet] = []
    for _ in range(k - 1):
        best = -1
        best_d = float("inf")
        for i in range(k):
            if not in_tree[i] and dist[i] < best_d:
                best_d = dist[i]
                best = i
        in_tree[best] = True
        edges.append(
            Subnet(net.name, terminals[closest[best]], terminals[best])
        )
        for i in range(k):
            if not in_tree[i]:
                d = terminals[best].point.manhattan_distance(
                    terminals[i].point
                )
                if d < dist[i]:
                    dist[i] = d
                    closest[i] = best
    return edges
