"""Routing result metrics — the Table 2 columns."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RouteMetrics:
    """Aggregate routing metrics of one route run.

    All lengths are DBU.  ``num_dm1`` counts subnets routed with a
    single direct vertical M1 segment (the paper's #dM1); jogged
    M1+M2 routes contribute to ``m1_wirelength`` but not to
    ``num_dm1``.
    """

    routed_wirelength: int = 0
    m1_wirelength: int = 0
    num_dm1: int = 0
    num_jog_m1: int = 0
    num_via12: int = 0
    num_drvs: int = 0
    num_subnets: int = 0
    num_gcell_subnets: int = 0
    hpwl: int = 0
    route_seconds: float = 0.0
    #: Routed length per net (DBU) — consumed by timing and power.
    net_lengths: dict[str, int] = field(default_factory=dict)

    def as_row(self, dbu_per_micron: int = 1000) -> dict[str, float]:
        """Human-unit dictionary for reporting (microns for lengths)."""
        return {
            "RWL (um)": self.routed_wirelength / dbu_per_micron,
            "M1 WL (um)": self.m1_wirelength / dbu_per_micron,
            "#dM1": self.num_dm1,
            "#via12": self.num_via12,
            "#DRVs": self.num_drvs,
            "HPWL (um)": self.hpwl / dbu_per_micron,
        }
