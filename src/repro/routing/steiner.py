"""Rectilinear Steiner topology for net decomposition.

The router decomposes nets into 2-pin subnets; MST decomposition
(:mod:`repro.routing.subnets`) overestimates wirelength for nets
whose terminals could share trunks.  This module provides a greedy
rectilinear Steiner minimal tree: starting from the Manhattan MST, it
repeatedly adds the Hanan-grid point that shrinks the tree the most
(Borah-style improvement), giving the classic 5-10% average reduction
at small cost for the net sizes that matter.

Select it with ``RouterConfig(topology="steiner")``; nets larger than
:data:`MAX_STEINER_TERMINALS` fall back to plain MST.
"""

from __future__ import annotations

from repro.geometry import Point
from repro.netlist.design import Design, Net
from repro.routing.subnets import Subnet, Terminal, net_terminals

#: Nets with more terminals than this use plain MST (the greedy Hanan
#: search is O(k^3) per added point).
MAX_STEINER_TERMINALS = 8


def _mst_length_and_edges(
    points: list[Point],
) -> tuple[int, list[tuple[int, int]]]:
    """Prim MST over Manhattan distance; returns (length, edges)."""
    k = len(points)
    if k < 2:
        return 0, []
    in_tree = [False] * k
    dist = [0] * k
    closest = [0] * k
    in_tree[0] = True
    for i in range(1, k):
        dist[i] = points[0].manhattan_distance(points[i])
    edges: list[tuple[int, int]] = []
    total = 0
    for _ in range(k - 1):
        best = -1
        best_d = None
        for i in range(k):
            if not in_tree[i] and (
                best_d is None or dist[i] < best_d
            ):
                best_d = dist[i]
                best = i
        in_tree[best] = True
        total += best_d
        edges.append((closest[best], best))
        for i in range(k):
            if not in_tree[i]:
                d = points[best].manhattan_distance(points[i])
                if d < dist[i]:
                    dist[i] = d
                    closest[i] = best
    return total, edges


def steiner_points(terminal_points: list[Point]) -> list[Point]:
    """Greedy Hanan-grid Steiner point selection.

    Returns the added Steiner points (possibly empty).  The tree over
    ``terminal_points + result`` is never longer than the MST over
    ``terminal_points`` alone.
    """
    if not 3 <= len(terminal_points) <= MAX_STEINER_TERMINALS:
        return []
    points = list(terminal_points)
    added: list[Point] = []
    best_len, _ = _mst_length_and_edges(points)
    xs = sorted({p.x for p in points})
    ys = sorted({p.y for p in points})
    for _round in range(len(terminal_points) - 2):
        best_gain = 0
        best_point: Point | None = None
        existing = set(points)
        for x in xs:
            for y in ys:
                candidate = Point(x, y)
                if candidate in existing:
                    continue
                length, _ = _mst_length_and_edges(
                    points + [candidate]
                )
                gain = best_len - length
                if gain > best_gain:
                    best_gain = gain
                    best_point = candidate
        if best_point is None:
            break
        points.append(best_point)
        added.append(best_point)
        best_len -= best_gain
        xs = sorted({p.x for p in points})
        ys = sorted({p.y for p in points})
    return added


def decompose_steiner(design: Design, net: Net) -> list[Subnet]:
    """Steiner-topology decomposition of ``net`` into 2-pin subnets.

    Steiner points become pad-like terminals (``pin=None``), so they
    never contribute via12 or stage-1 M1 bookings — they are pure
    trunk junctions.
    """
    terminals = net_terminals(design, net)
    if len(terminals) < 2:
        return []
    points = [t.point for t in terminals]
    extra = steiner_points(points)
    all_terminals = terminals + [Terminal(p, None) for p in extra]
    _, edges = _mst_length_and_edges(
        [t.point for t in all_terminals]
    )
    return [
        Subnet(net.name, all_terminals[i], all_terminals[j])
        for i, j in edges
    ]
