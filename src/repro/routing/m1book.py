"""Per-column M1 track resource booking.

The M1 layer has one vertical track per site column (pitch = site
width).  A direct vertical M1 route occupies a y-interval of one
column's track; cell-internal M1 shapes (ClosedM1 pin stripes, power
stripes, OpenM1 PDN staples) block parts of columns.  This module
keeps both, and answers "is this span free?" queries for the router.
"""

from __future__ import annotations

from bisect import bisect_left, insort

from repro.netlist.design import Design
from repro.tech.arch import CellArchitecture

#: OpenM1 power-staple pitch in columns (paper footnote 1: vertical M1
#: segments at a fixed pitch staple the M0/M2 power rails).
PDN_STAPLE_PITCH = 16


class M1TrackBook:
    """Occupancy of the per-column vertical M1 tracks.

    Intervals are closed ``[ylo, yhi]`` DBU spans per absolute site
    column.  Two reservations on the same column may not overlap.
    """

    def __init__(self) -> None:
        # column -> sorted list of (ylo, yhi) reservations.
        self._booked: dict[int, list[tuple[int, int]]] = {}

    def is_free(self, column: int, ylo: int, yhi: int) -> bool:
        """True when ``[ylo, yhi]`` on ``column`` has no reservation."""
        spans = self._booked.get(column)
        if not spans:
            return True
        idx = bisect_left(spans, (ylo, ylo))
        # Check the neighbor on each side of the insertion point.
        if idx < len(spans) and spans[idx][0] <= yhi:
            return False
        if idx > 0 and spans[idx - 1][1] >= ylo:
            return False
        return True

    def book(self, column: int, ylo: int, yhi: int) -> None:
        """Reserve ``[ylo, yhi]`` on ``column``.

        Raises:
            ValueError: when the span is already (partially) booked.
        """
        if not self.is_free(column, ylo, yhi):
            raise ValueError(
                f"M1 track column {column} span [{ylo}, {yhi}] busy"
            )
        insort(self._booked.setdefault(column, []), (ylo, yhi))

    def booked_length(self) -> int:
        """Total booked track length in DBU (M1 wirelength bookings)."""
        return sum(
            yhi - ylo
            for spans in self._booked.values()
            for ylo, yhi in spans
        )


def build_blockage_book(design: Design) -> M1TrackBook:
    """Book all cell-internal M1 blockages of ``design``.

    * ClosedM1: every pin/power stripe blocks its column over the cell
      row span.
    * OpenM1: cells leave M1 open, but PDN staples block every
      ``PDN_STAPLE_PITCH``-th column over the full die height.
    * Conventional 12-track: M1 power rails block every column of every
      placed cell (no inter-row M1 at all).
    """
    book = M1TrackBook()
    tech = design.tech
    for _, inst in sorted(design.instances.items()):
        for col in inst.m1_blocked_columns_abs(tech):
            book.book(col, inst.y, inst.y + inst.height - 1)
    if tech.arch is CellArchitecture.OPEN_M1:
        die = design.die
        first = die.xlo // tech.site_width
        last = die.xhi // tech.site_width
        for col in range(first, last + 1, PDN_STAPLE_PITCH):
            book.book(col, die.ylo, die.yhi)
    return book
