"""Route orchestration: stage 1 + stage 2 + rip-up/re-route + metrics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.netlist.design import Design, PinRef
from repro.routing.gcell import GCellGrid, GridConfig
from repro.routing.m1book import build_blockage_book
from repro.routing.m1route import M1Route, M1Stage
from repro.routing.metrics import RouteMetrics
from repro.routing.subnets import Subnet, decompose


@dataclass(frozen=True)
class RouterConfig:
    """Router knobs.

    Attributes:
        grid: gcell grid geometry/derating.
        gamma: maximum dM1 row span; None selects the architecture
            default (1 for ClosedM1, 3 for OpenM1 — paper §3).
        delta: minimum OpenM1 pin overlap (DBU) for a direct route.
        jog_max_sites: maximum x mismatch (sites) for a jogged M1 route.
        rr_passes: rip-up-and-reroute iterations after the first pass.
        topology: net decomposition — ``"mst"`` (default) or
            ``"steiner"`` (greedy Hanan RSMT; see
            :mod:`repro.routing.steiner`).
    """

    grid: GridConfig = field(default_factory=GridConfig)
    gamma: int | None = None
    delta: int = 36
    jog_max_sites: int = 4
    rr_passes: int = 2
    topology: str = "mst"


class DetailedRouter:
    """Two-stage router producing Table 2-style metrics.

    The router is deterministic: subnets are processed shortest-first
    with name tiebreaks, and all resources are booked in that order.
    """

    def __init__(
        self, design: Design, config: RouterConfig | None = None
    ) -> None:
        self.design = design
        self.config = config or RouterConfig()
        gamma = self.config.gamma
        if gamma is None:
            gamma = design.tech.arch.default_gamma
        self.gamma = gamma
        #: Populated by route(): stage-1 routes, gcell paths and the
        #: grid itself — consumed by visualization and debugging.
        self.last_m1_routes: list[M1Route] = []
        self.last_paths: list[tuple[Subnet, list[tuple[int, int]]]] = []
        self.last_grid: GCellGrid | None = None

    def route(self) -> RouteMetrics:
        """Route the whole design and return aggregate metrics."""
        started = time.perf_counter()
        design = self.design
        book = build_blockage_book(design)
        stage1 = M1Stage(
            design,
            book,
            gamma=self.gamma,
            delta=self.config.delta,
            jog_max_sites=self.config.jog_max_sites,
        )
        grid = GCellGrid(design, self.config.grid)

        if self.config.topology == "steiner":
            from repro.routing.steiner import decompose_steiner

            decompose_fn = decompose_steiner
        else:
            decompose_fn = decompose
        subnets: list[Subnet] = []
        for _, net in sorted(design.nets.items()):
            subnets.extend(decompose_fn(design, net))
        subnets.sort(key=lambda s: (s.manhattan_length, s.net))

        m1_routes: list[M1Route] = []
        gcell_tasks: list[Subnet] = []
        for subnet in subnets:
            route = stage1.try_route(subnet)
            if route is not None:
                m1_routes.append(route)
            else:
                gcell_tasks.append(subnet)

        paths: list[tuple[Subnet, list[tuple[int, int]]]] = []
        for subnet in gcell_tasks:
            path = grid.route_subnet(subnet.a.point, subnet.b.point)
            paths.append((subnet, path))

        for _ in range(self.config.rr_passes):
            if grid.overflow_edges() == 0:
                break
            grid.add_history()
            paths = self._reroute_overflowed(grid, paths)

        self.last_m1_routes = m1_routes
        self.last_paths = paths
        self.last_grid = grid
        return self._collect(grid, m1_routes, paths, started)

    def _reroute_overflowed(
        self,
        grid: GCellGrid,
        paths: list[tuple[Subnet, list[tuple[int, int]]]],
    ) -> list[tuple[Subnet, list[tuple[int, int]]]]:
        """Rip up paths through overflowed edges and route them again."""

        def uses_overflow(path: list[tuple[int, int]]) -> bool:
            for (x0, y0), (x1, y1) in zip(path, path[1:]):
                if y0 == y1:
                    if grid.usage_h[y0, min(x0, x1)] > grid.cap_h:
                        return True
                elif grid.usage_v[min(y0, y1), x0] > grid.cap_v:
                    return True
            return False

        keep: list[tuple[Subnet, list[tuple[int, int]]]] = []
        redo: list[Subnet] = []
        for subnet, path in paths:
            if uses_overflow(path):
                grid.unroute(path)
                redo.append(subnet)
            else:
                keep.append((subnet, path))
        for subnet in redo:
            keep.append(
                (subnet, grid.route_subnet(subnet.a.point, subnet.b.point))
            )
        return keep

    def _collect(
        self,
        grid: GCellGrid,
        m1_routes: list[M1Route],
        paths: list[tuple[Subnet, list[tuple[int, int]]]],
        started: float,
    ) -> RouteMetrics:
        metrics = RouteMetrics()
        metrics.hpwl = self.design.total_hpwl()
        metrics.num_subnets = len(m1_routes) + len(paths)
        metrics.num_gcell_subnets = len(paths)

        via12_pins: set[PinRef] = set()
        for route in m1_routes:
            metrics.routed_wirelength += route.length
            metrics.m1_wirelength += route.m1_length
            metrics.num_via12 += route.num_via12
            net = route.subnet.net
            metrics.net_lengths[net] = (
                metrics.net_lengths.get(net, 0) + route.length
            )
            if route.direct:
                metrics.num_dm1 += 1
            else:
                metrics.num_jog_m1 += 1

        m1_share = grid.m1_vertical_share
        for subnet, path in paths:
            length = grid.path_length_dbu(
                path, subnet.a.point, subnet.b.point
            )
            metrics.routed_wirelength += length
            metrics.net_lengths[subnet.net] = (
                metrics.net_lengths.get(subnet.net, 0) + length
            )
            vertical = grid.vertical_length_dbu(path)
            metrics.m1_wirelength += round(vertical * m1_share)
            for terminal in (subnet.a, subnet.b):
                if terminal.is_pin:
                    via12_pins.add(terminal.pin)

        metrics.num_via12 += len(via12_pins)
        metrics.num_drvs = grid.overflow_edges()
        metrics.route_seconds = time.perf_counter() - started
        return metrics
