"""On-disk job journal: atomic writes, crash-safe recovery.

Layout (one directory per job under ``<root>/jobs/``)::

    <root>/jobs/<job_id>/
        job.json         # the JobRecord — always atomically replaced
        events.ndjson    # append-only progress events (one JSON/line)
        checkpoint.json  # latest VM1Checkpoint — atomically replaced
        result.json      # Table-2 row + summary, written on DONE
        telemetry.json   # repro.runtime.telemetry/v2 document
        post.def         # final optimized placement (DEF)

Write discipline:

* ``job.json`` / ``checkpoint.json`` / ``result.json`` are written via
  *write-temp, fsync, rename* — a reader (or a restarted server) never
  sees a torn document, even across SIGKILL.
* ``events.ndjson`` is append-only with one flushed line per event; a
  SIGKILL can at worst truncate the final line, which readers skip.

Lifecycle::

    queued -> running -> done | failed | cancelled
       ^         |
       +---------+   (crash / graceful shutdown: recover() re-queues)

The store is single-writer by design: exactly one service process owns
a root at a time (the manager's threads coordinate through
``_lock``).  Crash recovery therefore never races another writer —
any job found ``running`` at startup is a leftover of a dead process
and goes back to ``queued``, keeping its checkpoint so the next
attempt resumes instead of starting over.
"""

from __future__ import annotations

import enum
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.checkpoint import VM1Checkpoint
from repro.log import subsystem_logger

logger = subsystem_logger("repro.service")

#: Schema identifier written into every job record.
JOB_SCHEMA = "repro.service.job/v1"


class JobState(str, enum.Enum):
    """Lifecycle states of a job."""

    QUEUED = "queued"
    RUNNING = "running"
    CANCELLED = "cancelled"
    FAILED = "failed"
    DONE = "done"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.CANCELLED,
            JobState.FAILED,
            JobState.DONE,
        )


@dataclass
class JobRecord:
    """One job as journaled in ``job.json``."""

    job_id: str
    kind: str
    spec: dict
    state: JobState = JobState.QUEUED
    created_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    attempts: int = 0
    cancel_requested: bool = False
    error: str = ""
    schema: str = JOB_SCHEMA

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "job_id": self.job_id,
            "kind": self.kind,
            "spec": self.spec,
            "state": self.state.value,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "JobRecord":
        return cls(
            job_id=str(doc["job_id"]),
            kind=str(doc["kind"]),
            spec=dict(doc.get("spec", {})),
            state=JobState(doc.get("state", "queued")),
            created_at=float(doc.get("created_at", 0.0)),
            started_at=float(doc.get("started_at", 0.0)),
            finished_at=float(doc.get("finished_at", 0.0)),
            attempts=int(doc.get("attempts", 0)),
            cancel_requested=bool(doc.get("cancel_requested", False)),
            error=str(doc.get("error", "")),
            schema=str(doc.get("schema", JOB_SCHEMA)),
        )


def atomic_write_text(path: Path, text: str, *, chaos=None) -> None:
    """Write ``text`` to ``path`` crash-safely (temp + fsync + rename).

    ``chaos`` is an optional fault controller: the ``fs.fsync`` site
    models a durability syscall failing mid-write.  The temp file is
    removed on any failure so a faulted write leaves no debris (and
    crucially leaves the *previous* document intact — the rename
    never happens).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            if (
                chaos is not None
                and chaos.check("fs.fsync", path.name) is not None
            ):
                raise OSError(f"chaos: fsync failed for {path.name}")
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


class JobStore:
    """Journal of jobs under one root directory (single-writer)."""

    def __init__(self, root: str | Path, *, chaos=None) -> None:
        self.root = Path(root)
        self.jobs_root = self.root / "jobs"
        self.jobs_root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        #: last issued id timestamp (ms) — bumped so ids stay strictly
        #: monotonic even when two submits land in the same millisecond
        #: (the uuid suffix would otherwise order them randomly and
        #: break claim_next's FIFO promise).
        self._last_id_ms = 0
        #: optional fault controller driving the ``jobstore.*`` /
        #: ``fs.fsync`` injection sites.  Deliberately NOT applied to
        #: ``job.json`` writes: the job record is the ledger recovery
        #: itself depends on — faulting it models a broken disk, not
        #: a crash, and is out of scope for the chaos tier.
        self.chaos = chaos

    # ------------------------------------------------------- layout
    def job_dir(self, job_id: str) -> Path:
        return self.jobs_root / job_id

    def _record_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "job.json"

    def _events_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "events.ndjson"

    def checkpoint_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "checkpoint.json"

    def result_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "result.json"

    def telemetry_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "telemetry.json"

    def artifact_path(self, job_id: str, name: str) -> Path:
        if "/" in name or "\\" in name or name.startswith("."):
            raise ValueError(f"illegal artifact name {name!r}")
        return self.job_dir(job_id) / name

    # ------------------------------------------------------ records
    def _write(self, record: JobRecord) -> JobRecord:
        atomic_write_text(
            self._record_path(record.job_id),
            json.dumps(record.to_dict(), indent=1),
        )
        return record

    def submit(self, kind: str, spec: dict) -> JobRecord:
        """Journal a new queued job; returns its record."""
        with self._lock:
            now_ms = max(
                int(time.time() * 1000), self._last_id_ms + 1
            )
            self._last_id_ms = now_ms
            job_id = f"{now_ms:013d}-{uuid.uuid4().hex[:8]}"
            record = JobRecord(
                job_id=job_id,
                kind=kind,
                spec=dict(spec),
                created_at=time.time(),
            )
            self.job_dir(job_id).mkdir(parents=True, exist_ok=True)
            self._write(record)
            self.append_event(
                job_id, {"type": "state", "state": "queued"}
            )
            return record

    def get(self, job_id: str) -> JobRecord:
        path = self._record_path(job_id)
        if not path.exists():
            raise KeyError(f"unknown job {job_id!r}")
        return JobRecord.from_dict(json.loads(path.read_text()))

    def list_jobs(self) -> list[JobRecord]:
        """All journaled jobs, oldest first (ids sort by submit time)."""
        records = []
        for path in sorted(self.jobs_root.iterdir()):
            if (path / "job.json").exists():
                records.append(self.get(path.name))
        return records

    def counts_by_state(self) -> dict[str, int]:
        counts = {state.value: 0 for state in JobState}
        for record in self.list_jobs():
            counts[record.state.value] += 1
        return counts

    # -------------------------------------------------- transitions
    def claim_next(self) -> JobRecord | None:
        """Atomically move the oldest queued job to ``running``.

        Jobs whose cancellation was requested while still queued are
        finalized as ``cancelled`` here instead of being claimed.
        """
        with self._lock:
            for record in self.list_jobs():
                if record.state is not JobState.QUEUED:
                    continue
                if record.cancel_requested:
                    self._finish(record, JobState.CANCELLED)
                    continue
                record.state = JobState.RUNNING
                record.started_at = time.time()
                record.attempts += 1
                self._write(record)
                self.append_event(
                    record.job_id,
                    {
                        "type": "state",
                        "state": "running",
                        "attempt": record.attempts,
                    },
                )
                return record
        return None

    def _finish(
        self, record: JobRecord, state: JobState, error: str = ""
    ) -> JobRecord:
        record.state = state
        record.error = error
        record.finished_at = time.time()
        self._write(record)
        event = {"type": "state", "state": state.value}
        if error:
            event["error"] = error
        self.append_event(record.job_id, event)
        return record

    def mark_done(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._finish(self.get(job_id), JobState.DONE)

    def mark_failed(self, job_id: str, error: str) -> JobRecord:
        with self._lock:
            return self._finish(
                self.get(job_id), JobState.FAILED, error=error
            )

    def mark_cancelled(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._finish(self.get(job_id), JobState.CANCELLED)

    def requeue(self, job_id: str, reason: str) -> JobRecord:
        """Put an interrupted running job back in the queue.

        The job keeps its checkpoint, so the next attempt resumes from
        the last completed DistOpt pass.
        """
        with self._lock:
            record = self.get(job_id)
            record.state = JobState.QUEUED
            self._write(record)
            self.append_event(
                job_id,
                {
                    "type": "state",
                    "state": "requeued",
                    "reason": reason,
                },
            )
            return record

    def request_cancel(self, job_id: str) -> JobRecord:
        """Flag a job for cooperative cancellation (idempotent)."""
        with self._lock:
            record = self.get(job_id)
            if record.state.terminal:
                return record
            record.cancel_requested = True
            self._write(record)
            self.append_event(job_id, {"type": "cancel_requested"})
            return record

    # ------------------------------------------------------ recovery
    def recover(self) -> list[str]:
        """Re-queue every job left ``running`` by a dead process.

        Returns the re-queued job ids.  Call once at service startup,
        before the manager starts claiming work.
        """
        requeued = []
        with self._lock:
            for record in self.list_jobs():
                if record.state is JobState.RUNNING:
                    self.requeue(record.job_id, reason="recovered")
                    requeued.append(record.job_id)
        return requeued

    # ----------------------------------------------------- artifacts
    def append_event(self, job_id: str, event: dict) -> dict:
        """Append one progress event (stamped with ``ts``)."""
        event = {"ts": time.time(), **event}
        line = json.dumps(event) + "\n"
        if (
            self.chaos is not None
            and self.chaos.check(
                "jobstore.event", str(event.get("type", ""))
            )
            is not None
        ):
            # Torn write: the process died mid-append, leaving half a
            # line.  Readers must skip it without losing earlier
            # events.
            line = line[: max(1, len(line) // 2)]
        with self._lock:
            with open(
                self._events_path(job_id), "a", encoding="utf-8"
            ) as handle:
                handle.write(line)
                handle.flush()
        return event

    def read_events(self, job_id: str) -> list[dict]:
        """All decodable events (a torn last line is skipped)."""
        path = self._events_path(job_id)
        if not path.exists():
            return []
        events = []
        for line in path.read_text().splitlines():
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        return events

    def write_checkpoint(
        self, job_id: str, checkpoint: VM1Checkpoint
    ) -> Path:
        path = self.checkpoint_path(job_id)
        text = checkpoint.dumps()
        if (
            self.chaos is not None
            and self.chaos.check("jobstore.checkpoint", job_id)
            is not None
        ):
            # Torn checkpoint: bypass the atomic path and leave a
            # truncated document, as if the kernel never flushed the
            # tail.  ``load_checkpoint`` must treat it as absent.
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text[: len(text) // 2])
            return path
        atomic_write_text(path, text, chaos=self.chaos)
        return path

    def load_checkpoint(self, job_id: str) -> VM1Checkpoint | None:
        """The journaled checkpoint, or None when absent *or torn*.

        A checkpoint is an optimization, never ground truth: an
        undecodable document (torn write, stray corruption) degrades
        to a from-scratch run instead of wedging recovery.
        """
        path = self.checkpoint_path(job_id)
        if not path.exists():
            return None
        try:
            return VM1Checkpoint.loads(path.read_text())
        except (OSError, ValueError, KeyError, TypeError) as exc:
            logger.warning(
                "job %s: unreadable checkpoint (%s) — starting over",
                job_id, exc,
            )
            return None

    def write_result(self, job_id: str, result: dict) -> Path:
        path = self.result_path(job_id)
        atomic_write_text(
            path, json.dumps(result, indent=1), chaos=self.chaos
        )
        return path

    def load_result(self, job_id: str) -> dict | None:
        path = self.result_path(job_id)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def write_telemetry(self, job_id: str, summary: dict) -> Path:
        path = self.telemetry_path(job_id)
        atomic_write_text(
            path, json.dumps(summary, indent=1), chaos=self.chaos
        )
        return path

    def load_telemetry(self, job_id: str) -> dict | None:
        path = self.telemetry_path(job_id)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def write_artifact(
        self, job_id: str, name: str, text: str
    ) -> Path:
        path = self.artifact_path(job_id, name)
        atomic_write_text(path, text, chaos=self.chaos)
        return path
