"""Thin stdlib client for the job service HTTP API.

>>> client = ServiceClient("http://127.0.0.1:8765")
>>> job_id = client.submit({"profile": "aes", "scale": 0.02})
>>> record = client.wait(job_id, timeout=120)
>>> row = client.result(job_id)["table2"]

Only ``urllib.request`` is used — no new dependencies.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator


class ServiceError(RuntimeError):
    """An HTTP error response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Synchronous client bound to one service base URL."""

    def __init__(
        self, base_url: str, *, timeout: float = 30.0
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------- plumbing
    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        raw: bool = False,
        timeout: float | None = None,
    ):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            headers=headers,
            method=method,
        )
        try:
            response = urllib.request.urlopen(
                request, timeout=timeout or self.timeout
            )
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise ServiceError(exc.code, detail) from None
        with response:
            payload = response.read()
        if raw:
            return payload.decode()
        return json.loads(payload) if payload else {}

    # ------------------------------------------------------------- api
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        return self._request("GET", "/metrics", raw=True)

    def submit(self, spec: dict, *, kind: str = "flow") -> str:
        """Submit a job; returns the job id."""
        record = self._request(
            "POST", "/api/jobs", {"kind": kind, "spec": spec}
        )
        return record["job_id"]

    def jobs(self) -> list[dict]:
        return self._request("GET", "/api/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/api/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/api/jobs/{job_id}/cancel")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/api/jobs/{job_id}/result")

    def telemetry(self, job_id: str) -> dict:
        return self._request("GET", f"/api/jobs/{job_id}/telemetry")

    def artifact(self, job_id: str, name: str) -> str:
        return self._request(
            "GET", f"/api/jobs/{job_id}/artifacts/{name}", raw=True
        )

    def events(
        self, job_id: str, *, follow: bool = False
    ) -> Iterator[dict]:
        """Yield progress events; with ``follow`` streams until the
        job reaches a terminal state."""
        suffix = "?follow=1" if follow else ""
        request = urllib.request.Request(
            f"{self.base_url}/api/jobs/{job_id}/events{suffix}"
        )
        # No read timeout while following: the stream is open-ended.
        timeout = None if follow else self.timeout
        with urllib.request.urlopen(
            request, timeout=timeout
        ) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def wait(
        self,
        job_id: str,
        *,
        timeout: float | None = None,
        poll: float = 0.2,
    ) -> dict:
        """Poll until the job reaches a terminal state.

        Returns the final record; raises ``TimeoutError`` if the
        deadline passes first.
        """
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            record = self.status(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after "
                    f"{timeout}s"
                )
            time.sleep(poll)
