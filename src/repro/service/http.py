"""JSON-over-HTTP API for the job service (stdlib ``http.server``).

Endpoints::

    GET  /healthz                     liveness + uptime
    GET  /metrics                     Prometheus-style text metrics
    POST /api/jobs                    submit {"kind": "flow", "spec": {...}}
    GET  /api/jobs                    list job records
    GET  /api/jobs/<id>               one job record
    POST /api/jobs/<id>/cancel        cooperative cancellation
    GET  /api/jobs/<id>/events        progress NDJSON (?follow=1 tails
                                      until the job reaches a terminal
                                      state)
    GET  /api/jobs/<id>/result        Table-2 row + summary (409 until done)
    GET  /api/jobs/<id>/telemetry     repro.runtime.telemetry/v2 document
    GET  /api/jobs/<id>/artifacts/<name>   e.g. post.def

The server is a ``ThreadingHTTPServer`` with daemon handler threads:
requests (including long ``follow`` streams) never block job
execution or shutdown.  Responses are HTTP/1.0 close-delimited, which
keeps NDJSON streaming trivial.

:func:`serve` is the blocking entry point used by ``repro serve``.  It
recovers the journal, starts the manager, installs SIGTERM/SIGINT
handlers, and returns a process exit code: ``0`` on a clean stop,
``128+signum`` after a signal-initiated graceful drain (in-flight
window solves finish, the final checkpoint is already journaled, and
every worker is joined — nothing is orphaned).
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from repro.service.jobstore import JobStore
from repro.service.manager import JobManager, flow_config_from_spec

from repro.log import subsystem_logger

logger = subsystem_logger("repro.service")

#: Safety cap on ?follow=1 event streams (seconds).
_FOLLOW_MAX_SECONDS = 3600.0
_FOLLOW_POLL_SECONDS = 0.05


class ServiceServer(ThreadingHTTPServer):
    """HTTP server bound to one (store, manager) pair."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        store: JobStore,
        manager: JobManager,
    ) -> None:
        super().__init__(address, ServiceHandler)
        self.store = store
        self.manager = manager
        self.started_at = time.time()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class ServiceHandler(BaseHTTPRequestHandler):
    server: ServiceServer

    # -------------------------------------------------------- plumbing
    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        logger.debug("http %s", fmt % args)

    def _send_json(self, status: int, doc: dict) -> None:
        body = json.dumps(doc, indent=1).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, status: int, text: str, content_type: str
    ) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        return json.loads(raw)

    # -------------------------------------------------------- routing
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        try:
            self._route_get()
        except BrokenPipeError:  # client went away mid-stream
            pass
        except Exception as exc:  # noqa: BLE001 — never kill the server
            logger.warning("GET %s failed: %r", self.path, exc)
            try:
                self._error(500, repr(exc))
            except Exception:  # noqa: BLE001
                pass

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        try:
            self._route_post()
        except Exception as exc:  # noqa: BLE001 — never kill the server
            logger.warning("POST %s failed: %r", self.path, exc)
            try:
                self._error(500, repr(exc))
            except Exception:  # noqa: BLE001
                pass

    def _route_get(self) -> None:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        store = self.server.store
        if parsed.path == "/healthz":
            self._send_json(
                200,
                {
                    "ok": True,
                    "uptime_seconds": (
                        time.time() - self.server.started_at
                    ),
                    "active_jobs": self.server.manager.active_jobs(),
                    "draining": self.server.manager.draining,
                },
            )
            return
        if parsed.path == "/metrics":
            self._send_text(
                200, render_metrics(self.server), "text/plain"
            )
            return
        if parts[:2] == ["api", "jobs"]:
            if len(parts) == 2:
                self._send_json(
                    200,
                    {
                        "jobs": [
                            r.to_dict() for r in store.list_jobs()
                        ]
                    },
                )
                return
            job_id = parts[2]
            try:
                record = store.get(job_id)
            except KeyError:
                self._error(404, f"unknown job {job_id!r}")
                return
            if len(parts) == 3:
                self._send_json(200, record.to_dict())
                return
            if parts[3] == "events":
                query = parse_qs(parsed.query)
                follow = query.get("follow", ["0"])[0] not in (
                    "0",
                    "",
                    "false",
                )
                self._stream_events(job_id, follow)
                return
            if parts[3] == "result":
                result = store.load_result(job_id)
                if result is None:
                    self._error(
                        409 if not record.state.terminal else 404,
                        f"job {job_id!r} has no result "
                        f"(state={record.state.value})",
                    )
                    return
                self._send_json(200, result)
                return
            if parts[3] == "telemetry":
                telemetry = store.load_telemetry(job_id)
                if telemetry is None:
                    self._error(404, f"job {job_id!r} has no telemetry")
                    return
                self._send_json(200, telemetry)
                return
            if parts[3] == "artifacts" and len(parts) == 5:
                try:
                    path = store.artifact_path(job_id, parts[4])
                except ValueError as exc:
                    self._error(400, str(exc))
                    return
                if not path.exists():
                    self._error(404, f"no artifact {parts[4]!r}")
                    return
                self._send_text(
                    200, path.read_text(), "text/plain"
                )
                return
        self._error(404, f"no route for GET {parsed.path}")

    def _route_post(self) -> None:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        store = self.server.store
        if parts[:2] == ["api", "jobs"] and len(parts) == 2:
            if self.server.manager.draining:
                self._error(503, "service is draining")
                return
            try:
                body = self._read_body()
            except json.JSONDecodeError as exc:
                self._error(400, f"bad JSON body: {exc}")
                return
            kind = body.get("kind", "flow")
            spec = body.get("spec", {})
            if kind != "flow":
                self._error(400, f"unknown job kind {kind!r}")
                return
            try:
                flow_config_from_spec(spec)  # validate at submit time
            except ValueError as exc:
                self._error(400, str(exc))
                return
            record = store.submit(kind, spec)
            self._send_json(201, record.to_dict())
            return
        if (
            parts[:2] == ["api", "jobs"]
            and len(parts) == 4
            and parts[3] == "cancel"
        ):
            job_id = parts[2]
            try:
                record = self.server.manager.request_cancel(job_id)
            except KeyError:
                self._error(404, f"unknown job {job_id!r}")
                return
            self._send_json(200, record.to_dict())
            return
        self._error(404, f"no route for POST {parsed.path}")

    # ------------------------------------------------------- streaming
    def _stream_events(self, job_id: str, follow: bool) -> None:
        store = self.server.store
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        deadline = time.time() + _FOLLOW_MAX_SECONDS
        sent = 0
        while True:
            events = store.read_events(job_id)
            for event in events[sent:]:
                self.wfile.write(
                    (json.dumps(event) + "\n").encode()
                )
            if len(events) > sent:
                self.wfile.flush()
                sent = len(events)
            if not follow:
                return
            record = store.get(job_id)
            if record.state.terminal or time.time() > deadline:
                # flush anything appended between read and state check
                for event in store.read_events(job_id)[sent:]:
                    self.wfile.write(
                        (json.dumps(event) + "\n").encode()
                    )
                return
            time.sleep(_FOLLOW_POLL_SECONDS)


def render_metrics(server: ServiceServer) -> str:
    """Prometheus text exposition of the service gauges/counters.

    Rendered from the manager's :class:`repro.obs.MetricsRegistry` —
    the gauges pull live values (uptime, jobs by state, ...) at scrape
    time, so there is nothing to assemble here.
    """
    return server.manager.registry.render_prometheus()


def build_server(
    root: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 1,
) -> ServiceServer:
    """Recover the journal, start the manager, bind the server.

    ``port=0`` binds an ephemeral port (see ``server.url``).  The
    caller owns the lifecycle: ``serve_forever()`` then
    ``manager.shutdown()`` + ``server_close()``.
    """
    store = JobStore(root)
    requeued = store.recover()
    if requeued:
        logger.info(
            "recovered %d interrupted job(s): %s",
            len(requeued),
            ", ".join(requeued),
        )
    manager = JobManager(store, workers=workers)
    manager.start()
    return ServiceServer((host, port), store, manager)


def serve(
    root: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 1,
    install_signals: bool = True,
) -> int:
    """Run the service until stopped; returns the process exit code."""
    server = build_server(
        root, host=host, port=port, workers=workers
    )
    caught: list[int] = []

    def _graceful(signum, frame) -> None:  # noqa: ARG001
        caught.append(signum)
        logger.info(
            "signal %d — draining (in-flight passes finish, "
            "running jobs re-queue from their checkpoints)",
            signum,
        )
        server.manager.request_shutdown()
        # serve_forever() must be unblocked from another thread.
        threading.Thread(
            target=server.shutdown, daemon=True
        ).start()

    if install_signals:
        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)

    print(
        f"repro-service listening on {server.url} "
        f"(root={Path(root).resolve()}, workers={workers})",
        flush=True,
    )
    try:
        server.serve_forever()
    finally:
        server.manager.shutdown()
        server.server_close()
    if caught:
        return 128 + caught[-1]
    return 0
