"""Job manager: claims queued jobs and runs them through the flow.

A :class:`JobManager` owns a small pool of worker *threads* (the
concurrency cap); each worker claims the oldest queued job from the
:class:`~repro.service.jobstore.JobStore` and executes it with
:func:`repro.flow.run_flow`.  Window-level parallelism stays inside
the job — each flow gets its own :mod:`repro.runtime` executor as
configured by the job spec (``executor`` / ``jobs``), so the service's
total worker budget is ``manager workers x per-job solver jobs``.

Cooperative control points
--------------------------
The flow calls back into the manager after every DistOpt pass (via
``run_flow(progress=...)``), *after* that pass's checkpoint hit the
jobstore.  At that point the manager:

* appends a progress event lifted from the pass's
  ``repro.runtime.telemetry/v2`` entry;
* raises :class:`JobCancelled` if the job's cancel flag is set
  (job -> ``cancelled``);
* raises :class:`ServiceShutdown` if the service is draining after
  SIGTERM/SIGINT (job -> back to ``queued`` with its checkpoint, so
  the next service start resumes it).

Either raise unwinds through ``run_flow``'s executor context, which
*drains* the window-solve pool — in-flight solves finish and every
worker process/thread is joined before the job thread returns, so a
graceful shutdown never orphans workers.
"""

from __future__ import annotations

import threading
import time
import traceback
from contextlib import nullcontext

from repro.flow import FlowConfig, run_flow, table2_row
from repro.lefdef import write_def
from repro.obs.export import TraceWriter
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, tracer_scope
from repro.runtime import EXECUTOR_KINDS
from repro.service.jobstore import JobRecord, JobState, JobStore
from repro.tech import CellArchitecture

from repro.log import subsystem_logger

logger = subsystem_logger("repro.service")

#: Result document schema.
RESULT_SCHEMA = "repro.service.result/v1"

#: Lifecycle events counted on ``repro_jobs_lifecycle_total{event=}``.
#: All pre-registered at zero so every series is visible from the
#: first ``/metrics`` scrape.
_LIFECYCLE_EVENTS = (
    "jobs_started",
    "jobs_done",
    "jobs_failed",
    "jobs_cancelled",
    "jobs_interrupted",
    "passes",
    "shards_completed",
    "seam_passes",
    "windows_skipped_clean",
    "checkpoint_write_failures",
)


class JobCancelled(Exception):
    """Raised inside a job thread when its cancel flag is set."""


class ServiceShutdown(Exception):
    """Raised inside a job thread when the service is draining."""


def _shards(value) -> "int | str":
    """Spec coercion for ``shards``: a positive-ish int or ``auto``
    (range-checked with the other fields below)."""
    if value == "auto":
        return "auto"
    if isinstance(value, bool):
        raise ValueError
    return int(value)


# Surfaces in the 400-level "expected <name>" validation message.
_shards.__name__ = "int or 'auto'"


#: spec key -> (coercion, default) for flow jobs.  ``None`` default =
#: use the FlowConfig default.
_FLOW_SPEC_FIELDS = {
    "profile": str,
    "arch": str,
    "scale": float,
    "utilization": float,
    "seed": int,
    "window_um": float,
    "lx": int,
    "ly": int,
    "time_limit": float,
    "executor": str,
    "jobs": int,
    "presolve": bool,
    "window_cache": bool,
    "dirty_tracking": bool,
    "timing_driven": bool,
    "shards": _shards,
    "halo_rows": int,
    # Service-level switch, not a FlowConfig field: write a span trace
    # to <job_dir>/trace.ndjson (see repro.obs).
    "trace": bool,
}

_PROFILES = ("m0", "aes", "jpeg", "vga")


def flow_config_from_spec(spec: dict) -> FlowConfig:
    """Validate a job spec and build the :class:`FlowConfig`.

    Raises ``ValueError`` with a submission-quality message on any
    unknown key, bad type, or out-of-range value — the HTTP layer maps
    it to a 400, the CLI to an argparse-style error.
    """
    if not isinstance(spec, dict):
        raise ValueError("spec must be a JSON object")
    unknown = sorted(set(spec) - set(_FLOW_SPEC_FIELDS))
    if unknown:
        raise ValueError(
            f"unknown spec field(s): {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(_FLOW_SPEC_FIELDS))}"
        )
    clean: dict = {}
    for key, value in spec.items():
        coerce = _FLOW_SPEC_FIELDS[key]
        try:
            if coerce is bool and not isinstance(value, bool):
                raise ValueError
            clean[key] = coerce(value)
        except (TypeError, ValueError):
            raise ValueError(
                f"spec field {key!r}: expected {coerce.__name__}, "
                f"got {value!r}"
            ) from None
    if clean.get("profile", "aes") not in _PROFILES:
        raise ValueError(
            f"spec field 'profile': expected one of {_PROFILES}, "
            f"got {clean['profile']!r}"
        )
    if "arch" in clean:
        try:
            clean["arch"] = CellArchitecture(clean["arch"])
        except ValueError:
            raise ValueError(
                f"spec field 'arch': expected one of "
                f"{[a.value for a in CellArchitecture]}, "
                f"got {clean['arch']!r}"
            ) from None
    if clean.get("scale", 0.05) <= 0:
        raise ValueError("spec field 'scale' must be > 0")
    if not 0 < clean.get("utilization", 0.75) <= 1:
        raise ValueError("spec field 'utilization' must be in (0, 1]")
    if clean.get("jobs", 1) < 1:
        raise ValueError("spec field 'jobs' must be >= 1")
    if clean.get("time_limit", 1.0) <= 0:
        raise ValueError("spec field 'time_limit' must be > 0")
    if clean.get("executor", "auto") not in EXECUTOR_KINDS:
        raise ValueError(
            f"spec field 'executor': expected one of "
            f"{EXECUTOR_KINDS}, got {clean['executor']!r}"
        )
    shards = clean.get("shards", 1)
    if shards != "auto" and shards < 1:
        raise ValueError(
            "spec field 'shards' must be >= 1 or 'auto'"
        )
    if clean.get("halo_rows", 2) < 0:
        raise ValueError("spec field 'halo_rows' must be >= 0")
    clean.pop("trace", None)  # consumed by the manager, not the flow
    return FlowConfig(**clean)


class JobManager:
    """Claims queued jobs and executes them on worker threads."""

    def __init__(
        self,
        store: JobStore,
        *,
        workers: int = 1,
        poll_interval: float = 0.1,
    ) -> None:
        self.store = store
        self.workers = max(1, int(workers))
        self.poll_interval = poll_interval
        self.started_at = time.time()
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._threads: list[threading.Thread] = []
        self._active_lock = threading.Lock()
        self._active: dict[str, threading.Event] = {}
        # The service metrics registry (see repro.obs.metrics): the
        # single source both /metrics exposition and metrics() report
        # from.  Service-level gauges pull their values at scrape time.
        self.registry = MetricsRegistry()
        self._lifecycle = self.registry.counter(
            "repro_jobs_lifecycle_total",
            "Manager lifecycle counters.",
            ("event",),
        )
        for event in _LIFECYCLE_EVENTS:
            self._lifecycle.inc(0, event=event)
        self.registry.gauge(
            "repro_service_uptime_seconds",
            "Seconds since start.",
            callback=lambda: time.time() - self.started_at,
        )
        self.registry.gauge(
            "repro_service_workers",
            "Configured job workers.",
            callback=lambda: self.workers,
        )
        self.registry.gauge(
            "repro_jobs_active",
            "Jobs currently executing.",
            callback=lambda: len(self.active_jobs()),
        )
        self.registry.gauge(
            "repro_service_draining",
            "1 while gracefully draining.",
            callback=lambda: int(self.draining),
        )
        self.registry.gauge(
            "repro_jobs",
            "Jobs in the journal by lifecycle state.",
            ("state",),
            callback=self._jobs_by_state_series,
        )

    def _jobs_by_state_series(self) -> dict[tuple[str, ...], int]:
        counts = self.store.counts_by_state()
        return {
            (state.value,): counts.get(state.value, 0)
            for state in JobState
        }

    @property
    def counters(self) -> dict[str, int]:
        """Snapshot of the lifecycle counters as a plain dict."""
        values = self._lifecycle.to_value()
        return {
            event: int(values.get(event, 0))
            for event in _LIFECYCLE_EVENTS
        }

    # ------------------------------------------------------ lifecycle
    def start(self) -> None:
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-job-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def request_shutdown(self) -> None:
        """Begin a graceful drain: stop claiming new jobs and make
        running jobs stop at their next pass boundary (re-queued with
        their checkpoint)."""
        self._stop.set()
        self._wake.set()

    def shutdown(self, timeout: float | None = None) -> None:
        """Drain and join every worker thread."""
        self.request_shutdown()
        for thread in self._threads:
            thread.join(timeout=timeout)

    @property
    def draining(self) -> bool:
        return self._stop.is_set()

    # --------------------------------------------------------- cancel
    def request_cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: queued jobs finalize at claim time, running
        jobs stop cooperatively at the next pass boundary."""
        record = self.store.request_cancel(job_id)
        with self._active_lock:
            flag = self._active.get(job_id)
        if flag is not None:
            flag.set()
        self._wake.set()
        return record

    def active_jobs(self) -> list[str]:
        with self._active_lock:
            return sorted(self._active)

    # -------------------------------------------------------- metrics
    def metrics(self) -> dict:
        return {
            "uptime_seconds": time.time() - self.started_at,
            "workers": self.workers,
            "active": len(self.active_jobs()),
            "draining": self.draining,
            "counters": dict(self.counters),
            "jobs_by_state": self.store.counts_by_state(),
        }

    # ------------------------------------------------------- internals
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            record = self.store.claim_next()
            if record is None:
                self._wake.wait(timeout=self.poll_interval)
                self._wake.clear()
                continue
            self._run_job(record)

    def _run_job(self, record: JobRecord) -> None:
        job_id = record.job_id
        cancel = threading.Event()
        if record.cancel_requested:
            cancel.set()
        with self._active_lock:
            self._active[job_id] = cancel
        self._lifecycle.inc(event="jobs_started")
        logger.info(
            "job %s start (attempt %d)", job_id, record.attempts
        )
        try:
            if record.kind != "flow":
                raise ValueError(f"unknown job kind {record.kind!r}")
            self._run_flow_job(record, cancel)
        except JobCancelled:
            self._lifecycle.inc(event="jobs_cancelled")
            self.store.mark_cancelled(job_id)
            logger.info("job %s cancelled", job_id)
        except ServiceShutdown:
            self._lifecycle.inc(event="jobs_interrupted")
            self.store.requeue(job_id, reason="shutdown")
            logger.info(
                "job %s interrupted by shutdown — re-queued", job_id
            )
        except Exception as exc:  # noqa: BLE001 — job isolation
            self._lifecycle.inc(event="jobs_failed")
            self.store.mark_failed(job_id, error=repr(exc))
            logger.warning(
                "job %s failed: %s\n%s",
                job_id,
                exc,
                traceback.format_exc(),
            )
        else:
            self._lifecycle.inc(event="jobs_done")
            self.store.mark_done(job_id)
            logger.info("job %s done", job_id)
        finally:
            with self._active_lock:
                self._active.pop(job_id, None)

    def _run_flow_job(
        self, record: JobRecord, cancel: threading.Event
    ) -> None:
        job_id = record.job_id
        config = flow_config_from_spec(record.spec)
        resume = self.store.load_checkpoint(job_id)
        if resume is not None:
            self.store.append_event(
                job_id,
                {
                    "type": "resume",
                    "u_index": resume.u_index,
                    "iteration": resume.iteration,
                    "phase": resume.phase,
                },
            )

        def progress(stage: str, info: dict) -> None:
            if stage == "pass":
                self._lifecycle.inc(event="passes")
            elif stage == "shard":
                self._lifecycle.inc(event="shards_completed")
            elif stage == "seam":
                self._lifecycle.inc(event="seam_passes")
            if stage in ("pass", "seam"):
                self._lifecycle.inc(
                    int(info.get("windows_skipped_clean", 0) or 0),
                    event="windows_skipped_clean",
                )
            self.store.append_event(
                job_id, {"type": stage, **info}
            )
            # Control points come *after* the event (and after the
            # pass checkpoint already hit the store), so an abort here
            # is always resumable.
            if cancel.is_set():
                raise JobCancelled(job_id)
            if self._stop.is_set():
                raise ServiceShutdown(job_id)

        # Per-job span trace (spec {"trace": true}): appended to
        # <job_dir>/trace.ndjson.  A resumed attempt re-joins the
        # interrupted attempt's trace — the checkpoint carries its
        # (trace_id, root span id), so one coherent tree spans both.
        tracer = writer = None
        if record.spec.get("trace"):
            writer = TraceWriter(
                self.store.job_dir(job_id) / "trace.ndjson"
            )
            seed = resume.trace if resume is not None else None
            tracer = Tracer(
                trace_id=seed[0] if seed else None,
                root_parent_id=seed[1] if seed else None,
                sink=writer,
            )

        # Sharded jobs keep their crash-safe state per shard inside the
        # job directory; a plan fingerprint from an interrupted attempt
        # means "resume" (finished shards fast-forward).
        shard_dir = self.store.job_dir(job_id) / "shards"
        shard_resume = (shard_dir / "plan.json").exists()

        def checkpoint_sink(cp) -> None:
            # A checkpoint is an optimization, not ground truth: a
            # failed write (full disk, fsync error) must not kill a
            # healthy job.  Count it, journal it, keep running — the
            # worst case is resuming from the previous checkpoint.
            try:
                self.store.write_checkpoint(job_id, cp)
            except OSError as exc:
                self._lifecycle.inc(event="checkpoint_write_failures")
                self.store.append_event(
                    job_id,
                    {
                        "type": "checkpoint_write_failed",
                        "error": str(exc),
                    },
                )
                logger.warning(
                    "job %s: checkpoint write failed (%s) — "
                    "continuing without it",
                    job_id, exc,
                )

        try:
            with tracer_scope(tracer) if tracer is not None else (
                nullcontext()
            ):
                result = run_flow(
                    config,
                    progress=progress,
                    checkpoint_sink=checkpoint_sink,
                    resume=resume,
                    shard_checkpoint_dir=shard_dir,
                    shard_resume=shard_resume,
                )
        finally:
            if writer is not None:
                writer.close()

        row = table2_row(result)
        result_doc = {
            "schema": RESULT_SCHEMA,
            "job_id": job_id,
            "table2": row,
            "num_instances": result.num_instances,
            "place_seconds": result.place_seconds,
            "total_seconds": result.total_seconds,
            "resumed": resume is not None or (
                shard_resume and result.shard is not None
            ),
        }
        if result.shard is not None:
            result_doc["shard"] = result.shard.summary()
        self.store.write_result(job_id, result_doc)
        if result.telemetry is not None:
            self.store.write_telemetry(
                job_id, result.telemetry.summary()
            )
        self.store.write_artifact(
            job_id, "post.def", write_def(result.design)
        )
