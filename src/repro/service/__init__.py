"""Durable batch-optimization service over the reproduction flow.

The paper's DistOpt is "distributable" by construction (§5);
:mod:`repro.runtime` parallelizes one run, and this package turns runs
into *jobs*: queued, journaled on disk, executed under a concurrency
cap, checkpointed every DistOpt pass, and resumable after a crash with
a byte-identical final placement.

* :mod:`repro.service.jobstore` — atomic on-disk job journal
  (queued/running/cancelled/failed/done) with crash-safe recovery.
* :mod:`repro.service.manager` — worker threads that claim jobs and
  drive :func:`repro.flow.run_flow` with checkpoint sinks, progress
  events lifted from ``repro.runtime.telemetry/v2``, cooperative
  cancellation, and graceful drain on shutdown.
* :mod:`repro.service.http` — stdlib ``http.server`` JSON API
  (submit / status / NDJSON progress stream / result / telemetry /
  ``/healthz`` / ``/metrics``).
* :mod:`repro.service.client` — thin ``urllib`` client.

CLI: ``repro serve`` / ``repro submit`` / ``repro jobs``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.http import (
    ServiceServer,
    build_server,
    render_metrics,
    serve,
)
from repro.service.jobstore import (
    JOB_SCHEMA,
    JobRecord,
    JobState,
    JobStore,
    atomic_write_text,
)
from repro.service.manager import (
    RESULT_SCHEMA,
    JobCancelled,
    JobManager,
    ServiceShutdown,
    flow_config_from_spec,
)

__all__ = [
    "JOB_SCHEMA",
    "RESULT_SCHEMA",
    "JobCancelled",
    "JobManager",
    "JobRecord",
    "JobState",
    "JobStore",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceShutdown",
    "atomic_write_text",
    "build_server",
    "flow_config_from_spec",
    "render_metrics",
    "serve",
]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.service")
