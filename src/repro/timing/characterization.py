"""Library recharacterization study (paper §6).

The paper asks whether using a ClosedM1 pin as a landing for a direct
vertical M1 route changes the cell's timing model (gate capacitance
etc.).  Their experiment — extend an INV pin shape by 32 nm, extract
with Calibre xRC, simulate with HSPICE — finds the delay and slew
impact negligible (<= 0.1 ps).

We reproduce the magnitude argument analytically: the added metal is a
32 nm M1 stub, whose capacitance is ``unit_c * 32``; seen through the
driving cell's output resistance (or the input network, for an input
pin), the delay shift is R * dC.  The numbers below show why the
effect is far below 0.1 ps for any reasonable R.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.library.macro import Macro
from repro.tech.technology import Technology

#: Pin-shape extension the paper evaluates, in DBU (= 32 nm).
PIN_EXTENSION_DBU = 32


@dataclass(frozen=True)
class RecharacterizationResult:
    """Outcome of the pin-extension study for one cell."""

    cell: str
    added_cap_ff: float
    delay_delta_ps: float
    slew_delta_ps: float

    @property
    def negligible(self) -> bool:
        """The paper's claim: impact <= 0.1 ps."""
        return (
            abs(self.delay_delta_ps) <= 0.1
            and abs(self.slew_delta_ps) <= 0.1
        )


def characterize_pin_extension(
    tech: Technology,
    macro: Macro,
    extension_dbu: int = PIN_EXTENSION_DBU,
) -> RecharacterizationResult:
    """Compute the delay/slew impact of extending ``macro``'s pins.

    The added capacitance loads the driving stage: delay shift is
    ``R_drive * dC`` and the slew shift is about 2.2x that (10-90%
    ramp of an RC stage).
    """
    added_cap_ff = tech.unit_c * extension_dbu
    r_kohm = macro.timing.drive_resistance_kohm
    delay_delta_ps = r_kohm * added_cap_ff
    slew_delta_ps = 2.2 * delay_delta_ps
    return RecharacterizationResult(
        cell=macro.name,
        added_cap_ff=added_cap_ff,
        delay_delta_ps=delay_delta_ps,
        slew_delta_ps=slew_delta_ps,
    )
