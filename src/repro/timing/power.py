"""Power estimation: switching + internal + leakage."""

from __future__ import annotations

from dataclasses import dataclass

from repro.library.pins import PinDirection
from repro.netlist.design import Design

#: Supply voltage (V) for the modeled sub-10nm node.
_VDD = 0.7
#: Clock frequency (GHz) assumed for dynamic power.
_FREQ_GHZ = 1.0
#: Signal toggle rate relative to the clock.
_ACTIVITY = 0.15


@dataclass
class PowerReport:
    """Power breakdown in mW."""

    switching_mw: float
    internal_mw: float
    leakage_mw: float

    @property
    def total_mw(self) -> float:
        return self.switching_mw + self.internal_mw + self.leakage_mw


def estimate_power(
    design: Design, net_lengths: dict[str, int] | None = None
) -> PowerReport:
    """Estimate total power of ``design``.

    Switching power uses per-net capacitance (wire from routed length
    or HPWL fallback, plus sink pin caps); clock nets toggle at full
    rate, signal nets at ``_ACTIVITY``.  This makes the power column
    respond to routed wirelength exactly the way the paper's does —
    shorter routes, (slightly) lower power.
    """
    lengths = net_lengths if net_lengths is not None else {}
    switching_fj_per_cycle = 0.0
    for name, net in sorted(design.nets.items()):
        if net.is_trivial():
            continue
        length = lengths.get(name)
        if length is None:
            length = design.net_hpwl(net)
        cap_ff = design.tech.unit_c * length
        for ref in net.pins:
            inst = design.instances[ref.instance]
            pin = inst.macro.pin(ref.pin)
            if pin.direction is PinDirection.INPUT:
                cap_ff += inst.macro.timing.input_cap_ff
        activity = 1.0 if name.startswith("clk") else _ACTIVITY
        switching_fj_per_cycle += activity * cap_ff * _VDD * _VDD

    internal_fj_per_cycle = sum(
        inst.macro.timing.internal_energy_fj * _ACTIVITY
        for inst in design.instances.values()
    )
    leakage_nw = sum(
        inst.macro.timing.leakage_nw for inst in design.instances.values()
    )

    # fJ/cycle * GHz = uW; report mW.
    switching_mw = switching_fj_per_cycle * _FREQ_GHZ / 1000.0
    internal_mw = internal_fj_per_cycle * _FREQ_GHZ / 1000.0
    leakage_mw = leakage_nw / 1e6
    return PowerReport(
        switching_mw=switching_mw,
        internal_mw=internal_mw,
        leakage_mw=leakage_mw,
    )
