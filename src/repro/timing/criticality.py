"""Timing-criticality net weights (paper §6 future work (ii)).

The paper lists "extension of our placement objective function to
consider other design criteria, including timing criticality" as
future work.  This module implements the natural version: per-net
HPWL weights β_n derived from STA arrival times, so the windowed MILP
resists stretching near-critical nets while still trading slack-rich
nets for alignments.

The weight of a net with criticality c = arrival / critical_path is
``1 + boost * c**2`` — quadratic so only genuinely critical nets pay
a premium.
"""

from __future__ import annotations

from repro.netlist.design import Design
from repro.timing.sta import TimingReport


def criticality_weights(
    design: Design,
    report: TimingReport,
    *,
    boost: float = 4.0,
) -> dict[str, float]:
    """Compute per-net β multipliers from an STA report.

    Args:
        design: the analyzed design (used for the net universe).
        report: STA result whose ``arrival_ps`` feeds criticality.
        boost: weight premium at criticality 1 (the critical path).

    Returns:
        net name -> multiplier (>= 1.0); nets without timing arcs
        (clocks, dangling) keep weight 1.0.
    """
    critical = max(report.critical_path_ps, 1e-9)
    weights: dict[str, float] = {}
    for name in design.nets:
        arrival = report.arrival_ps.get(name)
        if arrival is None:
            continue
        criticality = min(1.0, arrival / critical)
        weights[name] = 1.0 + boost * criticality * criticality
    return weights
