"""Topological static timing analysis.

Model: every gate output has arrival = max(input arrivals) + stage
delay, where stage delay = cell intrinsic + drive resistance x load
(pin caps + wire cap) + distributed wire delay (0.5 r c L^2).  Launch
points are flop CK->Q arcs and primary inputs (pads); capture points
are flop D pins.  The netlist generator guarantees acyclic
combinational logic, so a single topological pass suffices.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.library.pins import PinDirection
from repro.netlist.design import Design, Net

#: Flop setup time, ps.
_SETUP_PS = 15.0


@dataclass
class TimingReport:
    """STA result.

    Attributes:
        critical_path_ps: longest register-to-register (or pad-to-
            register) combinational delay including launch clk->q and
            capture setup.
        clock_period_ps: period slack is measured against.
        wns_ps: worst negative slack (>= 0 when timing is met).
        tns_ps: total negative slack over all capture points.
        arrival_ps: arrival time at each gate output net.
    """

    critical_path_ps: float
    clock_period_ps: float
    wns_ps: float
    tns_ps: float
    arrival_ps: dict[str, float] = field(default_factory=dict)

    @property
    def wns_ns(self) -> float:
        """WNS in ns, the Table 2 unit (negative = violation)."""
        return min(0.0, self.wns_ps) / 1000.0


def _net_load_ff(design: Design, net: Net, length_dbu: int) -> float:
    """Total load on a net: sink pin caps + wire capacitance."""
    load = design.tech.unit_c * length_dbu
    for ref in net.pins:
        inst = design.instances[ref.instance]
        pin = inst.macro.pin(ref.pin)
        if pin.direction is PinDirection.INPUT:
            load += inst.macro.timing.input_cap_ff
    return load


def _stage_delay_ps(
    design: Design, driver_inst: str, net: Net, length_dbu: int
) -> float:
    inst = design.instances[driver_inst]
    timing = inst.macro.timing
    load = _net_load_ff(design, net, length_dbu)
    wire_c = design.tech.unit_c * length_dbu
    wire_r = design.tech.unit_r * length_dbu
    # kohm x fF = ps; wire_r is in ohm so scale by 1e-3.
    distributed = 0.5 * wire_r * 1e-3 * wire_c
    return (
        timing.intrinsic_ps
        + timing.drive_resistance_kohm * load
        + distributed
    )


def analyze_timing(
    design: Design,
    net_lengths: dict[str, int] | None = None,
    clock_period_ps: float | None = None,
) -> TimingReport:
    """Run STA on ``design``.

    Args:
        design: placed (and ideally routed) design.
        net_lengths: routed length per net; falls back to net HPWL.
        clock_period_ps: target period.  When None, the period is set
            to the measured critical path (zero-slack reference, which
            is how the paper's testcases show WNS = 0.000).
    """
    lengths: dict[str, int] = net_lengths if net_lengths is not None else {}

    def length_of(net: Net) -> int:
        cached = lengths.get(net.name)
        return cached if cached is not None else design.net_hpwl(net)

    # Build gate-level combinational graph: edge driver -> sink gate.
    arrival: dict[str, float] = {}
    indegree: dict[str, int] = {}
    sinks_of_net: dict[str, list[str]] = {}
    driver_of_net: dict[str, str] = {}

    for name, inst in sorted(design.instances.items()):
        count = 0
        for pin in inst.macro.input_pins:
            if pin.name == inst.macro.spec.clock_pin:
                continue
            if inst.macro.spec.is_sequential:
                continue  # D input is a capture point, not a pass-through
            net_name = inst.net_of_pin.get(pin.name)
            if net_name is None:
                continue
            count += 1
            sinks_of_net.setdefault(net_name, []).append(name)
        indegree[name] = count
        for pin in inst.macro.output_pins:
            net_name = inst.net_of_pin.get(pin.name)
            if net_name is not None:
                driver_of_net[net_name] = name

    # Launch: flops and pure sources start at their stage delay.
    queue: deque[str] = deque()
    for name, inst in sorted(design.instances.items()):
        if inst.macro.spec.is_sequential or indegree[name] == 0:
            queue.append(name)
            arrival[name] = 0.0

    net_arrival: dict[str, float] = {}
    visited: set[str] = set()
    while queue:
        name = queue.popleft()
        if name in visited:
            continue
        visited.add(name)
        inst = design.instances[name]
        base = arrival.get(name, 0.0)
        for pin in inst.macro.output_pins:
            net_name = inst.net_of_pin.get(pin.name)
            if net_name is None:
                continue
            net = design.nets[net_name]
            out_arrival = base + _stage_delay_ps(
                design, name, net, length_of(net)
            )
            net_arrival[net_name] = out_arrival
            for sink in sinks_of_net.get(net_name, []):
                arrival[sink] = max(arrival.get(sink, 0.0), out_arrival)
                indegree[sink] -= 1
                if indegree[sink] == 0:
                    queue.append(sink)

    # Capture: flop D pins.
    slacks: list[float] = []
    worst = 0.0
    for name, inst in sorted(design.instances.items()):
        if not inst.macro.spec.is_sequential:
            continue
        for pin in inst.macro.input_pins:
            if pin.name == inst.macro.spec.clock_pin:
                continue
            net_name = inst.net_of_pin.get(pin.name)
            if net_name is None:
                continue
            t = net_arrival.get(net_name, 0.0) + _SETUP_PS
            worst = max(worst, t)
            slacks.append(t)

    critical = worst
    period = clock_period_ps if clock_period_ps is not None else critical
    slack_values = [period - t for t in slacks]
    wns = min(slack_values) if slack_values else 0.0
    tns = sum(min(0.0, s) for s in slack_values)
    return TimingReport(
        critical_path_ps=critical,
        clock_period_ps=period,
        wns_ps=wns,
        tns_ps=tns,
        arrival_ps=net_arrival,
    )
