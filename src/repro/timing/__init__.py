"""Timing and power estimation (the STA/power columns of Table 2).

* :func:`analyze_timing` — topological static timing analysis over the
  gate-level netlist with a linear (one-segment NLDM) cell delay model
  and lumped-RC wire delays from routed net lengths; reports WNS/TNS
  against a clock period.
* :func:`estimate_power` — switching + internal + leakage power.
* :mod:`repro.timing.characterization` — the paper §6 library
  recharacterization study: the delay/slew impact of extending a
  ClosedM1 pin for a vertical M1 landing is shown to be negligible
  (≤ 0.1 ps).
"""

from repro.timing.power import PowerReport, estimate_power
from repro.timing.sta import TimingReport, analyze_timing

__all__ = [
    "TimingReport",
    "analyze_timing",
    "PowerReport",
    "estimate_power",
]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.timing")
