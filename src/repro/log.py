"""Logger hygiene for the ``repro`` package tree.

Library code must never print to stderr just because the application
didn't configure logging: without a handler anywhere on the chain,
Python's ``lastResort`` handler dumps WARNING+ records to stderr.  The
fix is the standard library idiom — a ``NullHandler`` on the package
root logger (installed once in :mod:`repro.__init__`), which
terminates the lastResort fallback while leaving propagation to any
real application-configured handlers untouched.

Every subsystem obtains its logger through :func:`subsystem_logger`,
which enforces the ``repro.<pkg>`` naming so application configs can
target subsystems individually (``logging.getLogger("repro.shard")
.setLevel(...)``).
"""

from __future__ import annotations

import logging


def install_null_handler() -> logging.Logger:
    """Attach a ``NullHandler`` to the ``repro`` root logger (idempotent).

    Called from ``repro/__init__.py`` so a bare ``import repro`` plus
    library warnings never writes to stderr.
    """
    root = logging.getLogger("repro")
    if not any(
        type(h) is logging.NullHandler for h in root.handlers
    ):
        root.addHandler(logging.NullHandler())
    return root


def subsystem_logger(name: str) -> logging.Logger:
    """The child logger for one subsystem, e.g.
    ``subsystem_logger("repro.shard")``.

    Requires a ``repro``-rooted dotted name so every subsystem hangs
    under the null-handled package root.
    """
    if name != "repro" and not name.startswith("repro."):
        raise ValueError(
            f"subsystem logger name must start with 'repro.': {name!r}"
        )
    install_null_handler()
    return logging.getLogger(name)
