"""HiGHS backend via ``scipy.optimize.milp``."""

from __future__ import annotations

import time

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.milp.model import Model, Sense
from repro.milp.solution import Solution, SolveStatus

_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.FEASIBLE,  # iteration/time limit with incumbent
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


class HighsBackend:
    """Exact MILP solver backed by HiGHS branch-and-cut.

    Args:
        time_limit: per-solve wall-clock limit in seconds (None = no
            limit).  On timeout the incumbent, if any, is returned with
            status ``FEASIBLE`` — matching how the paper's flow would
            use CPLEX with a deterministic time limit per window.
        mip_rel_gap: relative optimality gap at which to stop.
    """

    name = "highs"

    def __init__(
        self,
        time_limit: float | None = None,
        mip_rel_gap: float = 0.0,
    ) -> None:
        self.time_limit = time_limit
        self.mip_rel_gap = mip_rel_gap

    def solve(self, model: Model) -> Solution:
        """Solve ``model`` (minimization)."""
        n = len(model.vars)
        started = time.perf_counter()
        if n == 0:
            return Solution(
                status=SolveStatus.OPTIMAL,
                objective=model.objective.const,
            )

        c = np.zeros(n)
        for idx, coef in model.objective.coefs.items():
            c[idx] = coef
        integrality = np.array(
            [1 if v.is_integer else 0 for v in model.vars]
        )
        bounds = Bounds(
            np.array([v.lb for v in model.vars]),
            np.array([v.ub for v in model.vars]),
        )

        constraints = None
        if model.constraints:
            rows: list[int] = []
            cols: list[int] = []
            data: list[float] = []
            lo = np.full(len(model.constraints), -np.inf)
            hi = np.full(len(model.constraints), np.inf)
            for r, con in enumerate(model.constraints):
                for idx, coef in con.coefs.items():
                    rows.append(r)
                    cols.append(idx)
                    data.append(coef)
                if con.sense is Sense.LE:
                    hi[r] = con.rhs
                elif con.sense is Sense.GE:
                    lo[r] = con.rhs
                else:
                    lo[r] = hi[r] = con.rhs
            matrix = sparse.csr_matrix(
                (data, (rows, cols)), shape=(len(model.constraints), n)
            )
            constraints = LinearConstraint(matrix, lo, hi)

        options: dict = {"mip_rel_gap": self.mip_rel_gap}
        if self.time_limit is not None:
            options["time_limit"] = self.time_limit

        result = milp(
            c,
            constraints=constraints,
            integrality=integrality,
            bounds=bounds,
            options=options,
        )
        elapsed = time.perf_counter() - started

        status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
        if status.has_solution and result.x is None:
            status = SolveStatus.ERROR
        if not status.has_solution or result.x is None:
            return Solution(
                status=status,
                solve_seconds=elapsed,
                message=str(result.message),
            )

        values = {
            i: (round(x) if model.vars[i].is_integer else float(x))
            for i, x in enumerate(result.x)
        }
        objective = model.objective.value(values)
        return Solution(
            status=status,
            objective=objective,
            values=values,
            solve_seconds=elapsed,
            message=str(result.message),
        )
