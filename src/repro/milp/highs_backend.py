"""HiGHS backend via ``scipy.optimize.milp``."""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.milp.extract import extract
from repro.milp.model import Model
from repro.milp.solution import Solution, SolveStatus

# ``scipy.optimize.milp`` re-validates every argument and rebuilds the
# constraint matrix per call; on the window-solve hot path that glue is
# measurable next to the solve itself.  When SciPy's internal HiGHS
# wrapper is importable we hand it our CSC arrays directly and map the
# status the same way ``milp`` does; otherwise (or on any API drift)
# the public ``milp`` entry point is used unchanged.
try:  # pragma: no cover - exercised implicitly on this SciPy
    from scipy.optimize._highspy._highs_wrapper import (
        _highs_wrapper,
    )
    from scipy.optimize._linprog_highs import (
        _highs_to_scipy_status_message,
    )
except ImportError:  # pragma: no cover - future SciPy layouts
    _highs_wrapper = None
    _highs_to_scipy_status_message = None

_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.FEASIBLE,  # iteration/time limit with incumbent
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


class HighsBackend:
    """Exact MILP solver backed by HiGHS branch-and-cut.

    Args:
        time_limit: per-solve wall-clock limit in seconds (None = no
            limit).  On timeout the incumbent, if any, is returned with
            status ``FEASIBLE`` — matching how the paper's flow would
            use CPLEX with a deterministic time limit per window.
        mip_rel_gap: relative optimality gap at which to stop.
        native_presolve: whether HiGHS runs its own presolve.  True /
            False force it; None (default) keeps it on except for
            models already reduced by :mod:`repro.milp.presolve` that
            exceed the binary-count threshold — there the reductions
            did the structural work and HiGHS' own pass is measured
            overhead.  The choice is a function of the model alone,
            so parallel and serial runs stay deterministic.
    """

    name = "highs"

    def __init__(
        self,
        time_limit: float | None = None,
        mip_rel_gap: float = 0.0,
        native_presolve: bool | None = None,
    ) -> None:
        self.time_limit = time_limit
        self.mip_rel_gap = mip_rel_gap
        self.native_presolve = native_presolve

    @staticmethod
    def _invoke(arrays, options: dict):
        """One HiGHS call; returns ``(status_code, message, x)``."""
        if _highs_wrapper is not None and arrays.a is not None:
            csc = arrays.a.tocsc()
            highs_res = _highs_wrapper(
                arrays.c,
                csc.indptr,
                csc.indices,
                csc.data,
                arrays.lo,
                arrays.hi,
                arrays.lb,
                arrays.ub,
                arrays.integrality.astype(np.uint8),
                {
                    "log_to_console": False,
                    "mip_max_nodes": None,
                    **options,
                },
            )
            status, message = _highs_to_scipy_status_message(
                highs_res.get("status"),
                highs_res.get("message"),
            )
            return status, message, highs_res.get("x")
        constraints = None
        if arrays.a is not None:
            constraints = LinearConstraint(
                arrays.a, arrays.lo, arrays.hi
            )
        result = milp(
            arrays.c,
            constraints=constraints,
            integrality=arrays.integrality,
            bounds=Bounds(arrays.lb, arrays.ub),
            options=options,
        )
        return result.status, result.message, result.x

    def solve(self, model: Model) -> Solution:
        """Solve ``model`` (minimization)."""
        started = time.perf_counter()
        if not model.vars:
            return Solution(
                status=SolveStatus.OPTIMAL,
                objective=model.objective.const,
            )

        arrays = extract(model)

        options: dict = {"mip_rel_gap": self.mip_rel_gap}
        if self.time_limit is not None:
            options["time_limit"] = self.time_limit
        native = self.native_presolve
        if native is None:
            if getattr(model, "presolved", False):
                from repro.milp.presolve import (
                    recommend_native_presolve,
                )

                native = recommend_native_presolve(model)
            else:
                native = True
        if not native:
            options["presolve"] = False

        result_status, result_message, result_x = self._invoke(
            arrays, options
        )
        if (
            _STATUS_MAP.get(result_status) is SolveStatus.ERROR
            and options.get("presolve") is not False
        ):
            # HiGHS' own presolve occasionally reports Status 4
            # ("Solve error") on small well-posed mixed models that
            # solve cleanly without it; retry once with native
            # presolve off before surfacing an error.  The retry is a
            # pure function of the first outcome, so determinism
            # across runs/executors is preserved.
            result_status, result_message, result_x = self._invoke(
                arrays, {**options, "presolve": False}
            )
        elapsed = time.perf_counter() - started

        status = _STATUS_MAP.get(result_status, SolveStatus.ERROR)
        if status.has_solution and result_x is None:
            status = SolveStatus.ERROR
        if not status.has_solution or result_x is None:
            return Solution(
                status=status,
                solve_seconds=elapsed,
                message=str(result_message),
            )

        # Integer variables snap to the nearest integer in one
        # vectorized pass; a per-variable round() was measurable on
        # the window-solve hot path.
        xs = np.asarray(result_x, dtype=np.float64)
        snapped = np.where(
            arrays.integrality == 1, np.rint(xs), xs
        )
        values = dict(enumerate(snapped.tolist()))
        objective = model.objective.value(values)
        return Solution(
            status=status,
            objective=objective,
            values=values,
            solve_seconds=elapsed,
            message=str(result_message),
        )
