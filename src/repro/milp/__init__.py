"""Solver-independent MILP modeling layer (the CPLEX substitute).

The paper solves its window MILPs with CPLEX 12.6.3.  This package
provides:

* :class:`Model` / :class:`Var` / :class:`LinExpr` — a small algebraic
  modeling API sufficient for the paper's formulations (binary and
  continuous variables, linear constraints, linear objective).
* :class:`HighsBackend` — the default exact solver, backed by
  ``scipy.optimize.milp`` (HiGHS branch-and-cut).
* :class:`BranchBoundBackend` — a pure-Python branch-and-bound solver
  over HiGHS LP relaxations, used to cross-check HiGHS on small models
  and as a fallback.
* :func:`presolve` / :func:`extract` — the window-tuned structural
  reductions and the shared ``Model`` -> sparse-array conversion both
  backends solve through.
"""

from repro.milp.model import Constraint, LinExpr, Model, Sense, Var
from repro.milp.solution import Solution, SolveStatus
from repro.milp.extract import ModelArrays, extract
from repro.milp.presolve import PresolveResult, PresolveStats, presolve
from repro.milp.highs_backend import HighsBackend
from repro.milp.branch_bound import BranchBoundBackend

__all__ = [
    "Model",
    "Var",
    "LinExpr",
    "Constraint",
    "Sense",
    "Solution",
    "SolveStatus",
    "ModelArrays",
    "extract",
    "PresolveResult",
    "PresolveStats",
    "presolve",
    "HighsBackend",
    "BranchBoundBackend",
]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.milp")
