"""MILP presolve tuned to the window-model structure (DESIGN.md §7).

The window MILP of the paper's DistOpt (§3.1/§3.2) is dominated by
three constraint families: exactly-one candidate-selection rows per
cell, site-packing rows, and big-M alignment rows whose activity range
is fully determined by each pin's attainable ``x_values``/``y_values``
(the candidate value sets).  A generic interval-arithmetic presolve
sees almost none of that structure; the reductions here do, because
they treat every exactly-one row as a GUB (generalized upper bound)
group: of a cell's λ binaries *exactly one* is 1, so the activity
contribution of the group is ``min/max over members`` — not the sum of
per-variable ranges.

Reductions (in application order):

1. **GUB detection** — equality rows with rhs 1 and all-ones
   coefficients over binaries.
2. **Forced binaries** — a GUB group of size one is a cell with only
   its identity candidate left; its λ is fixed to 1.  Singleton
   inequality rows fold into variable bounds and are dropped.
3. **Bound tightening from candidate value sets** — one GUB-aware
   propagation round turns the free HPWL min/max variables into
   variables bounded by the attainable pin coordinates.
4. **Redundant-row removal** — a row whose GUB-aware activity range
   already lies inside its rhs can never bind; big-M rows with an
   over-sized M are the main casualty.
5. **Duplicate-row removal** — identical (sense, coefs, rhs) rows
   (overlapping pin pairs generate them).
6. **Big-M coefficient tightening** — for a ≤ row ``S + a_j x_j <= b``
   with binary ``x_j`` (not in any GUB group; these are the d/v/o/a/b
   alignment binaries), if the row is redundant on one branch of
   ``x_j``, the coefficient shrinks to the smallest M that still
   enforces the other branch (Savelsbergh-style, with GUB-aware
   activity bounds so M drops to the pin pair's true attainable span).

Lifting is index-stable by construction: no variable is eliminated,
fixing happens through bounds, so a solution of the reduced model *is*
a solution of the original model.  :meth:`PresolveResult.lift` re-pins
fixed variables to their exact values and re-evaluates the original
objective, which makes the soundness contract explicit and testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.milp.model import Constraint, Model, Sense, Var
from repro.milp.solution import Solution

_EPS = 1e-9

#: Above this many binaries, HiGHS spends more time in its own presolve
#: than the reductions save on the reduced model — windows this large
#: solve ~2x faster with native presolve off (measured on the aes
#: fixture; see BENCH_window_solve.json).  Deterministic in the model,
#: so serial and parallel runs make the same choice.
NATIVE_PRESOLVE_BINARY_THRESHOLD = 192


def recommend_native_presolve(model: Model) -> bool:
    """Whether HiGHS' own presolve should stay on for ``model``."""
    return model.num_binaries < NATIVE_PRESOLVE_BINARY_THRESHOLD


@dataclass
class PresolveStats:
    """What the reductions accomplished (for telemetry/tests)."""

    rows_in: int = 0
    rows_out: int = 0
    gub_groups: int = 0
    vars_fixed: int = 0
    bounds_tightened: int = 0
    rows_singleton: int = 0
    rows_redundant: int = 0
    rows_duplicate: int = 0
    coefficients_tightened: int = 0

    @property
    def rows_dropped(self) -> int:
        return self.rows_in - self.rows_out


@dataclass
class PresolveResult:
    """Reduced model plus the lift back to the original space."""

    model: Model
    stats: PresolveStats
    fixed: dict[int, float] = field(default_factory=dict)
    _original_objective: object = None

    def lift(self, solution: Solution) -> Solution:
        """Map a reduced-model solution to the original space.

        Indices are stable (no variable is eliminated), so lifting
        re-pins the fixed variables to their exact values and
        re-evaluates the original objective.
        """
        if solution.values is None:
            return solution
        values = dict(solution.values)
        for idx, val in self.fixed.items():
            values[idx] = val
        objective = solution.objective
        if self._original_objective is not None:
            objective = self._original_objective.value(values)
        return replace(
            solution, values=values, objective=objective
        )


class _Activities:
    """GUB-aware row activity bounds over mutable variable bounds."""

    def __init__(
        self,
        lb: list[float],
        ub: list[float],
        group_of: dict[int, int],
        groups: list[list[int]],
    ) -> None:
        self.lb = lb
        self.ub = ub
        self.group_of = group_of
        self.groups = groups

    def range(
        self, coefs: dict[int, float], skip: int | None = None
    ) -> tuple[float, float]:
        """Min/max of ``sum coef*x`` over the bounds, treating each
        GUB group as "exactly one member is 1" (members absent from
        the row contribute 0)."""
        lo = hi = 0.0
        per_group: dict[int, list[float]] | None = None
        group_get = self.group_of.get
        lbs = self.lb
        ubs = self.ub
        for idx, coef in coefs.items():
            if idx == skip:
                continue
            group = group_get(idx)
            if group is None:
                a = coef * lbs[idx]
                b = coef * ubs[idx]
                if a <= b:
                    lo += a
                    hi += b
                else:
                    lo += b
                    hi += a
            else:
                if per_group is None:
                    per_group = {}
                per_group.setdefault(group, []).append(coef)
        if per_group:
            for group, gcoefs in per_group.items():
                gmin, gmax = min(gcoefs), max(gcoefs)
                # A row covering only part of the group (or a group
                # whose skipped member carries the 1) may see
                # contribution 0.
                if len(gcoefs) < len(self.groups[group]):
                    gmin = min(gmin, 0.0)
                    gmax = max(gmax, 0.0)
                lo += gmin
                hi += gmax
        return lo, hi

    def full(
        self, coefs: dict[int, float]
    ) -> tuple[float, float, dict[int, tuple[float, float]]]:
        """One-pass row activity: ``(lo, hi, contrib)``.

        ``contrib`` maps each *non-group* variable to its
        ``(min, max)`` contribution, so a caller needing the row's
        activity with one such variable skipped — the only skip the
        reductions ever make, since GUB members are never big-M
        binaries nor continuous — can subtract instead of re-scanning
        the row.  Every ``range(coefs, skip=j)`` the old sweep issued
        per variable becomes a pair of subtractions.
        """
        lo = hi = 0.0
        contrib: dict[int, tuple[float, float]] = {}
        group_get = self.group_of.get
        lbs = self.lb
        ubs = self.ub
        # Group members arrive in contiguous runs (rows list one
        # cell's λ block after another), so the "exactly one member"
        # folding tracks the current run inline instead of building
        # per-group coefficient lists.  A group split across runs
        # (never produced by the window formulation) falls back to
        # the list-based fold for correctness.
        cur_group = -1
        gmin = gmax = 0.0
        gcount = 0
        closed: set[int] | None = None
        for idx, coef in coefs.items():
            group = group_get(idx)
            if group is None:
                a = coef * lbs[idx]
                b = coef * ubs[idx]
                if a > b:
                    a, b = b, a
                lo += a
                hi += b
                contrib[idx] = (a, b)
            elif group == cur_group:
                if coef < gmin:
                    gmin = coef
                elif coef > gmax:
                    gmax = coef
                gcount += 1
            else:
                if cur_group >= 0:
                    if gcount < len(self.groups[cur_group]):
                        gmin = min(gmin, 0.0)
                        gmax = max(gmax, 0.0)
                    lo += gmin
                    hi += gmax
                    if closed is None:
                        closed = {cur_group}
                    else:
                        closed.add(cur_group)
                if closed is not None and group in closed:
                    return self._full_slow(coefs)
                cur_group = group
                gmin = gmax = coef
                gcount = 1
        if cur_group >= 0:
            if gcount < len(self.groups[cur_group]):
                gmin = min(gmin, 0.0)
                gmax = max(gmax, 0.0)
            lo += gmin
            hi += gmax
        return lo, hi, contrib

    def _full_slow(
        self, coefs: dict[int, float]
    ) -> tuple[float, float, dict[int, tuple[float, float]]]:
        """List-based fold for rows whose group members are not
        contiguous (not produced by the window formulation, but the
        presolve stays correct for arbitrary models)."""
        lo = hi = 0.0
        contrib: dict[int, tuple[float, float]] = {}
        per_group: dict[int, list[float]] = {}
        group_get = self.group_of.get
        lbs = self.lb
        ubs = self.ub
        for idx, coef in coefs.items():
            group = group_get(idx)
            if group is None:
                a = coef * lbs[idx]
                b = coef * ubs[idx]
                if a > b:
                    a, b = b, a
                lo += a
                hi += b
                contrib[idx] = (a, b)
            else:
                per_group.setdefault(group, []).append(coef)
        for group, gcoefs in per_group.items():
            gmin, gmax = min(gcoefs), max(gcoefs)
            if len(gcoefs) < len(self.groups[group]):
                gmin = min(gmin, 0.0)
                gmax = max(gmax, 0.0)
            lo += gmin
            hi += gmax
        return lo, hi, contrib


def presolve(
    model: Model, *, tighten_coefficients: bool = True
) -> PresolveResult:
    """Reduce ``model``; the result's model shares variable indices."""
    stats = PresolveStats(rows_in=len(model.constraints))
    lb = [v.lb for v in model.vars]
    ub = [v.ub for v in model.vars]
    fixed: dict[int, float] = {}

    def fix(idx: int, value: float) -> None:
        if lb[idx] != value or ub[idx] != value:
            lb[idx] = ub[idx] = value
            fixed[idx] = value
            stats.vars_fixed += 1

    def tighten_lb(idx: int, value: float) -> None:
        if model.vars[idx].is_integer:
            value = math.ceil(value - _EPS)
        if value > lb[idx] + _EPS and value <= ub[idx] + _EPS:
            lb[idx] = min(value, ub[idx])
            stats.bounds_tightened += 1

    def tighten_ub(idx: int, value: float) -> None:
        if model.vars[idx].is_integer:
            value = math.floor(value + _EPS)
        if value < ub[idx] - _EPS and value >= lb[idx] - _EPS:
            ub[idx] = max(value, lb[idx])
            stats.bounds_tightened += 1

    # ---- 1. GUB detection + 2. forced binaries / singleton rows ----
    group_of: dict[int, int] = {}
    groups: list[list[int]] = []
    body: list[Constraint] = []
    for con in model.constraints:
        if _is_gub(model, con):
            members = list(con.coefs)
            if len(members) == 1:
                fix(members[0], 1.0)
                stats.rows_singleton += 1
                continue
            gid = len(groups)
            groups.append(members)
            for idx in members:
                group_of[idx] = gid
            body.append(con)
            continue
        if len(con.coefs) == 1:
            ((idx, coef),) = con.coefs.items()
            bound = con.rhs / coef
            if con.sense is Sense.EQ:
                fix(idx, bound)
            elif (con.sense is Sense.LE) == (coef > 0):
                tighten_ub(idx, bound)
            else:
                tighten_lb(idx, bound)
            stats.rows_singleton += 1
            continue
        body.append(con)
    stats.gub_groups = len(groups)
    acts = _Activities(lb, ub, group_of, groups)

    # ---- 3. bound tightening from candidate value sets -------------
    # One propagation round: each row implies bounds on its continuous
    # variables given GUB-aware activity of the rest.  This is what
    # turns the free HPWL min/max variables into variables bounded by
    # the pins' attainable coordinates.
    is_integer = [v.is_integer for v in model.vars]
    # Rows whose activity is computed here get remembered for the row
    # sweep below: only continuous bounds change during this phase, so
    # the sweep can refresh just the continuous member's contribution
    # instead of re-scanning the row.
    row_acts: dict[int, tuple] = {}
    for con in body:
        cont = [
            idx for idx in con.coefs if not is_integer[idx]
        ]
        if not cont:
            continue
        # With one continuous variable in the row (every HPWL bound
        # row) the rest-activity is the precomputed row activity minus
        # that variable's own contribution.  Rows coupling several
        # continuous variables (OpenM1's o/a/b row) keep the exact
        # per-variable rescan: tightening one member must be visible
        # to the next.
        shared = None
        if len(cont) == 1:
            lo_all, hi_all, contrib = acts.full(con.coefs)
            cmin, cmax = contrib[cont[0]]
            if math.isfinite(cmin) and math.isfinite(cmax):
                shared = (lo_all - cmin, hi_all - cmax)
                row_acts[id(con)] = (
                    lo_all - cmin, hi_all - cmax, contrib, cont[0]
                )
        for idx in cont:
            coef = con.coefs[idx]
            if shared is not None:
                rest_lo, rest_hi = shared
            else:
                rest_lo, rest_hi = acts.range(con.coefs, skip=idx)
            if con.sense in (Sense.LE, Sense.EQ) and math.isfinite(
                rest_lo
            ):
                implied = (con.rhs - rest_lo) / coef
                if coef > 0:
                    tighten_ub(idx, implied)
                else:
                    tighten_lb(idx, implied)
            if con.sense in (Sense.GE, Sense.EQ) and math.isfinite(
                rest_hi
            ):
                implied = (con.rhs - rest_hi) / coef
                if coef > 0:
                    tighten_lb(idx, implied)
                else:
                    tighten_ub(idx, implied)

    # ---- 4-6. row sweep: redundancy, duplicates, coefficient
    #           tightening ------------------------------------------
    kept: list[Constraint] = []
    seen: set[tuple] = set()
    for con in body:
        remembered = row_acts.get(id(con))
        if remembered is not None:
            # Re-base the phase-3 activity on the variable's (possibly
            # tightened) bounds; everything else in the row is
            # unchanged since then.
            rest_lo, rest_hi, contrib, cidx = remembered
            coef = con.coefs[cidx]
            a = coef * lb[cidx]
            b = coef * ub[cidx]
            if a > b:
                a, b = b, a
            contrib[cidx] = (a, b)
            lo = rest_lo + a
            hi = rest_hi + b
        else:
            lo, hi, contrib = acts.full(con.coefs)
        if con.sense is Sense.LE and hi <= con.rhs + _EPS:
            stats.rows_redundant += 1
            continue
        if con.sense is Sense.GE and lo >= con.rhs - _EPS:
            stats.rows_redundant += 1
            continue
        if tighten_coefficients and con.sense is not Sense.EQ:
            con = _tighten_big_m(
                model, con, acts, group_of, stats, lo, hi, contrib
            )
        key = (
            con.sense,
            tuple(sorted(con.coefs.items())),
            con.rhs,
        )
        if key in seen:
            stats.rows_duplicate += 1
            continue
        seen.add(key)
        kept.append(con)
    stats.rows_out = len(kept)

    reduced = Model(f"{model.name}+presolve")
    reduced.vars = [
        v
        if v.lb == lb[i] and v.ub == ub[i]
        else Var(v.index, v.name, lb[i], ub[i], v.is_integer)
        for i, v in enumerate(model.vars)
    ]
    reduced.constraints = kept
    reduced.objective = model.objective
    #: Lets a backend's auto native-presolve policy see that the
    #: structural reductions already ran on this model.
    reduced.presolved = True
    warm = getattr(model, "warm_start", None)
    if warm is not None:
        reduced.warm_start = warm
    return PresolveResult(
        model=reduced,
        stats=stats,
        fixed=fixed,
        _original_objective=model.objective,
    )


def _is_gub(model: Model, con: Constraint) -> bool:
    """Exactly-one row: ``sum of binaries == 1``."""
    if con.sense is not Sense.EQ or con.rhs != 1.0:
        return False
    for idx, coef in con.coefs.items():
        if coef != 1.0:
            return False
        var = model.vars[idx]
        if not (var.is_integer and var.lb == 0.0 and var.ub == 1.0):
            return False
    return bool(con.coefs)


def _tighten_big_m(
    model: Model,
    con: Constraint,
    acts: _Activities,
    group_of: dict[int, int],
    stats: PresolveStats,
    lo: float,
    hi: float,
    contrib: dict[int, tuple[float, float]],
) -> Constraint:
    """Shrink over-sized binary coefficients (big-M) in one row.

    For ``S + a_j x_j <= b`` with binary ``x_j``: if the row cannot
    bind on one branch of ``x_j`` (the rest's attainable activity
    already satisfies it), replace ``a_j``/``b`` with the smallest
    values that enforce the *other* branch identically.  Mirrored for
    ``>=`` rows.  Rest activities are GUB-aware, which is what shrinks
    an alignment row's M from "window span" to "this pin pair's
    attainable span".

    ``lo``/``hi``/``contrib`` are the row's activity bounds from
    :meth:`_Activities.full`; shrinking a coefficient updates them
    incrementally so later binaries in the same row see the tightened
    row, exactly as the per-variable rescan did.
    """
    coefs = con.coefs
    rhs = con.rhs
    changed = False

    def reweigh(j: int, new_coef: float) -> None:
        nonlocal lo, hi
        old_min, old_max = contrib[j]
        new_min = min(0.0, new_coef)
        new_max = max(0.0, new_coef)
        lo += new_min - old_min
        hi += new_max - old_max
        contrib[j] = (new_min, new_max)

    for j in list(coefs):
        var = model.vars[j]
        if not (
            var.is_integer
            and acts.lb[j] == 0.0
            and acts.ub[j] == 1.0
        ):
            continue
        if j in group_of:
            continue
        a_j = coefs[j]
        cmin, cmax = contrib[j]
        rest_lo = lo - cmin
        rest_hi = hi - cmax
        if con.sense is Sense.LE and math.isfinite(rest_hi):
            if (
                a_j > 0
                and rest_hi <= rhs - _EPS
                and rest_hi + a_j > rhs + _EPS
            ):
                # x_j = 0 branch is redundant; keep x_j = 1 exact.
                if not changed:
                    coefs = dict(coefs)
                    changed = True
                coefs[j] = rest_hi + a_j - rhs
                rhs = rest_hi
                reweigh(j, coefs[j])
                stats.coefficients_tightened += 1
            elif (
                a_j < 0
                and rest_hi > rhs + _EPS
                and rest_hi < rhs - a_j - _EPS
            ):
                # x_j = 1 branch is redundant; shrink M = -a_j.
                if not changed:
                    coefs = dict(coefs)
                    changed = True
                coefs[j] = rhs - rest_hi
                reweigh(j, coefs[j])
                stats.coefficients_tightened += 1
        elif con.sense is Sense.GE and math.isfinite(rest_lo):
            if (
                a_j < 0
                and rest_lo >= rhs + _EPS
                and rest_lo + a_j < rhs - _EPS
            ):
                if not changed:
                    coefs = dict(coefs)
                    changed = True
                coefs[j] = rest_lo + a_j - rhs
                rhs = rest_lo
                reweigh(j, coefs[j])
                stats.coefficients_tightened += 1
            elif (
                a_j > 0
                and rest_lo < rhs - _EPS
                and rest_lo > rhs - a_j + _EPS
            ):
                if not changed:
                    coefs = dict(coefs)
                    changed = True
                coefs[j] = rhs - rest_lo
                reweigh(j, coefs[j])
                stats.coefficients_tightened += 1
    if not changed:
        return con
    return Constraint(
        coefs=coefs, sense=con.sense, rhs=rhs, name=con.name
    )
