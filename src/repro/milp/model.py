"""Algebraic MILP model: variables, linear expressions, constraints."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True, slots=True)
class Var:
    """A decision variable.

    Instances are created through :meth:`Model.add_var`; identity is the
    model-assigned ``index``.
    """

    index: int
    name: str
    lb: float
    ub: float
    is_integer: bool

    def __add__(self, other) -> "LinExpr":
        return LinExpr.of(self) + other

    def __radd__(self, other) -> "LinExpr":
        return LinExpr.of(self) + other

    def __sub__(self, other) -> "LinExpr":
        return LinExpr.of(self) - other

    def __rsub__(self, other) -> "LinExpr":
        return (-1.0 * self) + other

    def __mul__(self, coef: float) -> "LinExpr":
        return LinExpr({self.index: float(coef)}, 0.0)

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __le__(self, other) -> "Constraint":  # type: ignore[override]
        return LinExpr.of(self) <= other

    def __ge__(self, other) -> "Constraint":  # type: ignore[override]
        return LinExpr.of(self) >= other

    def __hash__(self) -> int:
        return self.index


@dataclass
class LinExpr:
    """A linear expression ``sum(coef * var) + const``.

    Coefficients are keyed by variable index.  Arithmetic returns new
    expressions; nothing is mutated, so building constraints from
    shared subexpressions is safe.
    """

    coefs: dict[int, float] = field(default_factory=dict)
    const: float = 0.0

    @classmethod
    def of(cls, item: "Var | LinExpr | float") -> "LinExpr":
        if isinstance(item, LinExpr):
            return item
        if isinstance(item, Var):
            return cls({item.index: 1.0}, 0.0)
        return cls({}, float(item))

    @classmethod
    def total(cls, items) -> "LinExpr":
        """Sum an iterable of vars/expressions/numbers."""
        out = cls()
        for item in items:
            out = out + item
        return out

    def __add__(self, other) -> "LinExpr":
        other = LinExpr.of(other)
        coefs = dict(self.coefs)
        for idx, coef in other.coefs.items():
            coefs[idx] = coefs.get(idx, 0.0) + coef
        return LinExpr(coefs, self.const + other.const)

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (LinExpr.of(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, factor: float) -> "LinExpr":
        factor = float(factor)
        return LinExpr(
            {idx: coef * factor for idx, coef in self.coefs.items()},
            self.const * factor,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __le__(self, other) -> "Constraint":
        return Constraint.build(self, Sense.LE, other)

    def __ge__(self, other) -> "Constraint":
        return Constraint.build(self, Sense.GE, other)

    def equals(self, other) -> "Constraint":
        """Build an equality constraint (named method — ``==`` keeps
        its identity semantics)."""
        return Constraint.build(self, Sense.EQ, other)

    def value(self, assignment: dict[int, float]) -> float:
        """Evaluate under a variable-index -> value assignment."""
        return self.const + sum(
            coef * assignment.get(idx, 0.0)
            for idx, coef in self.coefs.items()
        )


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``expr (sense) rhs`` with constants folded
    to the right-hand side."""

    coefs: dict[int, float]
    sense: Sense
    rhs: float
    name: str = ""

    @classmethod
    def build(cls, lhs, sense: Sense, rhs) -> "Constraint":
        diff = LinExpr.of(lhs) - LinExpr.of(rhs)
        coefs = {i: c for i, c in diff.coefs.items() if c != 0.0}
        return cls(coefs=coefs, sense=sense, rhs=-diff.const)

    def named(self, name: str) -> "Constraint":
        return Constraint(self.coefs, self.sense, self.rhs, name)


class Model:
    """A mixed-integer linear program under minimization."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.vars: list[Var] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        #: Optional known-feasible integer assignment (var index ->
        #: value) a backend may use as an initial incumbent.  The
        #: window formulation sets the identity placement here.
        self.warm_start: dict[int, float] | None = None

    def add_var(
        self,
        name: str,
        *,
        lb: float = 0.0,
        ub: float = float("inf"),
        integer: bool = False,
    ) -> Var:
        """Create a variable and register it with the model."""
        var = Var(len(self.vars), name, float(lb), float(ub), integer)
        self.vars.append(var)
        return var

    def add_binary(self, name: str) -> Var:
        """Create a {0, 1} variable."""
        return self.add_var(name, lb=0.0, ub=1.0, integer=True)

    def add_continuous(
        self,
        name: str,
        lb: float = -float("inf"),
        ub: float = float("inf"),
    ) -> Var:
        """Create a continuous variable (free by default)."""
        return self.add_var(name, lb=lb, ub=ub, integer=False)

    def add_constraint(
        self, constraint: Constraint, name: str = ""
    ) -> Constraint:
        """Register a constraint built with ``<=``/``>=``/``equals``."""
        if name:
            constraint = constraint.named(name)
        self.constraints.append(constraint)
        return constraint

    def minimize(self, objective: "LinExpr | Var") -> None:
        """Set the (minimization) objective."""
        self.objective = LinExpr.of(objective)

    @property
    def num_binaries(self) -> int:
        return sum(
            1 for v in self.vars if v.is_integer and v.ub - v.lb <= 1
        )

    def stats(self) -> str:
        """One-line size summary for logging."""
        n_int = sum(1 for v in self.vars if v.is_integer)
        return (
            f"{self.name}: {len(self.vars)} vars ({n_int} int), "
            f"{len(self.constraints)} constraints"
        )
