"""Pure-Python branch-and-bound MILP solver.

LP relaxations are solved with HiGHS ``linprog``; branching is
most-fractional, search is best-bound first.  The backend exists as an
independent cross-check of :class:`~repro.milp.highs_backend.HighsBackend`
on small models (the two must agree on optimal objective values) and
as a fallback when ``scipy.optimize.milp`` is unavailable.
"""

from __future__ import annotations

import heapq
import time

import numpy as np
from scipy.optimize import linprog

from repro.milp.extract import extract
from repro.milp.model import Model
from repro.milp.solution import Solution, SolveStatus

_INT_TOL = 1e-6


class BranchBoundBackend:
    """Best-bound branch-and-bound over HiGHS LP relaxations.

    Args:
        time_limit: wall-clock budget in seconds.
        node_limit: maximum number of explored B&B nodes.
    """

    name = "branch-bound"

    def __init__(
        self,
        time_limit: float | None = None,
        node_limit: int = 200_000,
    ) -> None:
        self.time_limit = time_limit
        self.node_limit = node_limit

    def solve(self, model: Model) -> Solution:
        """Solve ``model`` (minimization)."""
        started = time.perf_counter()
        n = len(model.vars)
        if n == 0:
            return Solution(
                status=SolveStatus.OPTIMAL,
                objective=model.objective.const,
            )

        arrays = extract(model)
        c = arrays.c
        a_ub, b_ub, a_eq, b_eq = arrays.inequality_form()

        int_indices = [i for i, v in enumerate(model.vars) if v.is_integer]
        base_lb = arrays.lb
        base_ub = arrays.ub

        def relax(lb: np.ndarray, ub: np.ndarray):
            res = linprog(
                c,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=np.column_stack([lb, ub]),
                method="highs",
            )
            return res

        incumbent_x: np.ndarray | None = None
        incumbent_obj = float("inf")
        explored = 0
        truncated = False

        # Warm start: complete a known-feasible integer assignment
        # into an incumbent before search begins, so best-bound
        # pruning bites from node 0.  The window formulation supplies
        # the always-feasible identity placement.
        if model.warm_start:
            warm_lb = base_lb.copy()
            warm_ub = base_ub.copy()
            for idx, val in model.warm_start.items():
                warm_lb[idx] = warm_ub[idx] = val
            warm = relax(warm_lb, warm_ub)
            if warm.status == 0 and self._most_fractional(
                warm.x, int_indices
            )[0] is None:
                incumbent_obj = warm.fun
                incumbent_x = warm.x

        root = relax(base_lb, base_ub)
        if root.status == 2:
            return Solution(status=SolveStatus.INFEASIBLE)
        if root.status == 3:
            return Solution(status=SolveStatus.UNBOUNDED)
        if root.status != 0:
            return Solution(
                status=SolveStatus.ERROR, message=str(root.message)
            )

        # Heap entries: (bound, tiebreak, lb, ub, x)
        counter = 0
        heap: list[tuple[float, int, np.ndarray, np.ndarray, np.ndarray]]
        heap = [(root.fun, counter, base_lb, base_ub, root.x)]

        while heap:
            if (
                self.time_limit is not None
                and time.perf_counter() - started > self.time_limit
            ) or explored >= self.node_limit:
                truncated = True
                break
            bound, _, lb, ub, x = heapq.heappop(heap)
            if bound >= incumbent_obj - 1e-9:
                continue
            explored += 1

            frac_idx, frac_val = self._most_fractional(x, int_indices)
            if frac_idx is None:
                if bound < incumbent_obj:
                    incumbent_obj = bound
                    incumbent_x = x
                continue

            floor_val = np.floor(frac_val)
            for lo_add, hi_add in (
                (None, floor_val),
                (floor_val + 1, None),
            ):
                child_lb = lb.copy()
                child_ub = ub.copy()
                if hi_add is not None:
                    child_ub[frac_idx] = hi_add
                if lo_add is not None:
                    child_lb[frac_idx] = lo_add
                if child_lb[frac_idx] > child_ub[frac_idx]:
                    continue
                res = relax(child_lb, child_ub)
                if res.status != 0:
                    continue
                if res.fun >= incumbent_obj - 1e-9:
                    continue
                counter += 1
                heapq.heappush(
                    heap, (res.fun, counter, child_lb, child_ub, res.x)
                )

        elapsed = time.perf_counter() - started
        if incumbent_x is None:
            status = (
                SolveStatus.FEASIBLE if truncated else SolveStatus.INFEASIBLE
            )
            return Solution(status=status, solve_seconds=elapsed)

        values = {
            i: (round(v) if model.vars[i].is_integer else float(v))
            for i, v in enumerate(incumbent_x)
        }
        objective = model.objective.value(values)
        status = SolveStatus.FEASIBLE if truncated else SolveStatus.OPTIMAL
        return Solution(
            status=status,
            objective=objective,
            values=values,
            solve_seconds=elapsed,
        )

    @staticmethod
    def _most_fractional(
        x: np.ndarray, int_indices: list[int]
    ) -> tuple[int | None, float]:
        best_idx: int | None = None
        best_dist = _INT_TOL
        best_val = 0.0
        for idx in int_indices:
            val = x[idx]
            dist = abs(val - round(val))
            if dist > best_dist:
                best_dist = dist
                best_idx = idx
                best_val = val
        return best_idx, best_val
