"""Shared sparse extraction: ``Model`` -> solver-ready arrays.

Both MILP backends need the same conversion — objective vector,
integrality mask, variable bounds and the constraint matrix — and both
used to build it independently (branch-and-bound even materialized a
dense ``np.zeros(n)`` row per constraint, an O(n·m) build that dwarfed
the solve on small windows).  :func:`extract` performs the conversion
once, from COO triplets straight into CSR, and the result can be viewed
either as a two-sided range constraint (``lo <= A x <= hi``, the form
``scipy.optimize.milp`` wants) or split into inequality/equality blocks
(``A_ub x <= b_ub``, ``A_eq x == b_eq``, the form ``linprog`` wants)
without another pass over the model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.milp.model import Model, Sense


@dataclass
class ModelArrays:
    """Array form of a :class:`~repro.milp.model.Model`.

    Attributes:
        c: objective coefficient vector (length ``n``).
        integrality: 1 where the variable is integer, else 0.
        lb/ub: variable bound vectors.
        a: constraint matrix in CSR form (``m x n``), or None when the
            model has no constraints.
        lo/hi: row activity range — ``lo[r] <= (A x)[r] <= hi[r]``.
            ``LE`` rows have ``lo = -inf``, ``GE`` rows ``hi = +inf``
            and ``EQ`` rows ``lo == hi``.
    """

    c: np.ndarray
    integrality: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    a: sparse.csr_matrix | None
    lo: np.ndarray
    hi: np.ndarray

    @property
    def n(self) -> int:
        return len(self.c)

    def inequality_form(
        self,
    ) -> tuple[
        sparse.csr_matrix | None,
        np.ndarray | None,
        sparse.csr_matrix | None,
        np.ndarray | None,
    ]:
        """Split rows into ``(A_ub, b_ub, A_eq, b_eq)`` blocks.

        ``GE`` rows are negated into ``LE`` form.  Row selection and
        negation happen in CSR — no densification.
        """
        if self.a is None:
            return None, None, None, None
        is_eq = np.isfinite(self.lo) & np.isfinite(self.hi)
        # Among non-EQ rows: GE rows (finite lo) must be negated.
        eq_idx = np.flatnonzero(is_eq)
        le_idx = np.flatnonzero(~is_eq & np.isfinite(self.hi))
        ge_idx = np.flatnonzero(~is_eq & np.isfinite(self.lo))

        a_eq = b_eq = a_ub = b_ub = None
        if eq_idx.size:
            a_eq = self.a[eq_idx]
            b_eq = self.hi[eq_idx]
        if le_idx.size or ge_idx.size:
            blocks = []
            rhs = []
            if le_idx.size:
                blocks.append(self.a[le_idx])
                rhs.append(self.hi[le_idx])
            if ge_idx.size:
                blocks.append(-self.a[ge_idx])
                rhs.append(-self.lo[ge_idx])
            a_ub = sparse.vstack(blocks, format="csr")
            b_ub = np.concatenate(rhs)
        return a_ub, b_ub, a_eq, b_eq


def extract(model: Model) -> ModelArrays:
    """Convert ``model`` into :class:`ModelArrays` (one pass, sparse)."""
    n = len(model.vars)
    c = np.zeros(n)
    for idx, coef in model.objective.coefs.items():
        c[idx] = coef
    integrality = np.fromiter(
        (1 if v.is_integer else 0 for v in model.vars),
        dtype=np.int64,
        count=n,
    )
    lb = np.fromiter(
        (v.lb for v in model.vars), dtype=np.float64, count=n
    )
    ub = np.fromiter(
        (v.ub for v in model.vars), dtype=np.float64, count=n
    )

    m = len(model.constraints)
    if m == 0:
        return ModelArrays(
            c=c,
            integrality=integrality,
            lb=lb,
            ub=ub,
            a=None,
            lo=np.empty(0),
            hi=np.empty(0),
        )

    # Constraints are visited in row order, so the CSR index pointer
    # can be built directly — no COO intermediate, no sort.
    cols: list[int] = []
    data: list[float] = []
    indptr = np.empty(m + 1, dtype=np.int64)
    indptr[0] = 0
    lo = np.full(m, -np.inf)
    hi = np.full(m, np.inf)
    for r, con in enumerate(model.constraints):
        coefs = con.coefs
        cols.extend(coefs.keys())
        data.extend(coefs.values())
        indptr[r + 1] = indptr[r] + len(coefs)
        if con.sense is Sense.LE:
            hi[r] = con.rhs
        elif con.sense is Sense.GE:
            lo[r] = con.rhs
        else:
            lo[r] = hi[r] = con.rhs
    a = sparse.csr_matrix(
        (
            np.asarray(data, dtype=np.float64),
            np.asarray(cols, dtype=np.int64),
            indptr,
        ),
        shape=(m, n),
    )
    return ModelArrays(
        c=c, integrality=integrality, lb=lb, ub=ub, a=a, lo=lo, hi=hi
    )
