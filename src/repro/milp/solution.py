"""MILP solve results."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.milp.model import LinExpr, Var


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # incumbent found, optimality not proven
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class Solution:
    """Variable assignment returned by a backend."""

    status: SolveStatus
    objective: float = float("nan")
    values: dict[int, float] = field(default_factory=dict)
    solve_seconds: float = 0.0
    message: str = ""

    def value(self, var: Var) -> float:
        """Value of ``var`` (0.0 when the variable is absent)."""
        return self.values.get(var.index, 0.0)

    def value_of(self, expr: "LinExpr | Var") -> float:
        """Evaluate an expression under this solution."""
        return LinExpr.of(expr).value(self.values)

    def is_one(self, var: Var) -> bool:
        """Robust binary test (handles LP round-off)."""
        return self.value(var) > 0.5
