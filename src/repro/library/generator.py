"""Concrete pin geometry generation per cell architecture (Figure 1).

Each generator turns a :class:`~repro.library.specs.CellSpec` into a
:class:`~repro.library.macro.Macro` whose pins follow the architecture's
contract:

* **ClosedM1** — every pin (signal and power) is a thin 1-D vertical M1
  stripe centered on a site-pitch M1 track.  VDD/VSS stripes sit at the
  cell's left/right boundary columns; signal pins occupy distinct
  interior columns.  All stripe columns block the M1 track inside the
  cell row.
* **OpenM1** — signal pins are horizontal M0 bars on the M0 track grid;
  the M1 layer above the cell is completely open (pins and internal
  routing live below M1).
* **Conventional 12-track** — signal pins are horizontal M1 bars and
  the M1 VDD/VSS rails span the full cell width, blocking every M1
  track: no direct vertical M1 routing is possible, which is exactly
  why the paper's optimization does not apply to this template.
"""

from __future__ import annotations

from repro.geometry import Rect
from repro.library.macro import Macro, TimingModel
from repro.library.pins import Pin, PinDirection, PinShape
from repro.library.specs import CellSpec, VtClass
from repro.tech.arch import CellArchitecture
from repro.tech.technology import Technology

#: Half-width of a drawn pin stripe/bar, in DBU.
_PIN_HALF_WIDTH = 9


def make_macro(
    tech: Technology, spec: CellSpec, vt: VtClass
) -> Macro:
    """Generate the macro for ``spec`` at ``vt`` in ``tech``'s
    architecture."""
    builders = {
        CellArchitecture.CLOSED_M1: _closedm1_pins,
        CellArchitecture.OPEN_M1: _openm1_pins,
        CellArchitecture.CONV_12T: _conv12t_pins,
    }
    pins, blocked = builders[tech.arch](tech, spec)
    return Macro(
        name=f"{spec.name}_{vt.value}",
        spec=spec,
        vt=vt,
        arch=tech.arch,
        width=spec.width_sites * tech.site_width,
        height=tech.row_height,
        pins=pins,
        m1_blocked_columns=frozenset(blocked),
        timing=_timing_model(spec, vt),
    )


def signal_pin_columns(spec: CellSpec) -> dict[str, int]:
    """Deterministic interior-column assignment for ClosedM1 pins.

    Interior columns are ``1 .. width_sites - 2``; inputs fill from the
    left, outputs from the right, leaving slack columns (free M1
    feedthrough tracks) in between when the cell is wide enough.
    """
    interior = list(range(1, spec.width_sites - 1))
    if len(spec.signal_pins) > len(interior):
        raise ValueError(
            f"{spec.name}: width {spec.width_sites} sites cannot host "
            f"{len(spec.signal_pins)} signal pins"
        )
    columns: dict[str, int] = {}
    # Spread inputs over the left part of the interior range.
    n_in = len(spec.inputs)
    span = len(interior) - len(spec.outputs)
    for i, name in enumerate(spec.inputs):
        idx = i * span // n_in if n_in > 1 else 0
        # Guarantee strictly increasing columns.
        idx = max(idx, i)
        columns[name] = interior[idx]
    for j, name in enumerate(spec.outputs):
        columns[name] = interior[len(interior) - len(spec.outputs) + j]
    return columns


def _closedm1_pins(
    tech: Technology, spec: CellSpec
) -> tuple[dict[str, Pin], set[int]]:
    height = tech.row_height
    pins: dict[str, Pin] = {}
    blocked: set[int] = set()

    def stripe(column: int, ylo: int, yhi: int) -> PinShape:
        x = tech.m1_track_x(column)
        return PinShape(
            layer_index=1,
            rect=Rect(x - _PIN_HALF_WIDTH, ylo, x + _PIN_HALF_WIDTH, yhi),
        )

    # Boundary power stripes (Figure 1(b)): V12-stapled to the M2 rails.
    last = spec.width_sites - 1
    pins["VDD"] = Pin(
        "VDD", PinDirection.POWER, (stripe(0, height // 2, height),)
    )
    pins["VSS"] = Pin(
        "VSS", PinDirection.GROUND, (stripe(last, 0, height // 2),)
    )
    blocked.update((0, last))

    margin = tech.layers[2].pitch  # keep clear of the M2 rails
    for name, column in signal_pin_columns(spec).items():
        direction = (
            PinDirection.OUTPUT
            if name in spec.outputs
            else PinDirection.INPUT
        )
        pins[name] = Pin(
            name, direction, (stripe(column, margin, height - margin),)
        )
        blocked.add(column)
    return pins, blocked


def _openm1_bar(
    tech: Technology, track: int, site_lo: int, site_hi: int, layer: int
) -> PinShape:
    """Horizontal bar on ``track`` spanning sites [site_lo, site_hi]."""
    y = tech.layers[layer].track_coord(track)
    return PinShape(
        layer_index=layer,
        rect=Rect(
            tech.site_x(site_lo),
            y - _PIN_HALF_WIDTH,
            tech.site_x(site_hi + 1),
            y + _PIN_HALF_WIDTH,
        ),
    )


def _openm1_pins(
    tech: Technology, spec: CellSpec
) -> tuple[dict[str, Pin], set[int]]:
    w = spec.width_sites
    pins: dict[str, Pin] = {
        "VDD": Pin(
            "VDD",
            PinDirection.POWER,
            (_openm1_bar(tech, 6, 0, w - 1, layer=0),),
        ),
        "VSS": Pin(
            "VSS",
            PinDirection.GROUND,
            (_openm1_bar(tech, 0, 0, w - 1, layer=0),),
        ),
    }
    # Signal pins on M0 tracks 1..5.  Inputs get medium bars staggered
    # across the cell; outputs get wide bars (they must be reachable
    # from more x positions, mirroring Figure 1(c)'s wide ZN pin).
    n_pins = len(spec.signal_pins)
    for i, name in enumerate(spec.signal_pins):
        track = 1 + i % 5
        if name in spec.outputs:
            site_lo, site_hi = 1, max(1, w - 2)
        else:
            bar_len = max(1, (w - 2) // 2)
            max_lo = max(1, w - 1 - bar_len)
            site_lo = 1 + (i * max(0, max_lo - 1)) // max(1, n_pins - 1)
            site_hi = min(w - 2, site_lo + bar_len - 1)
            site_hi = max(site_hi, site_lo)
        direction = (
            PinDirection.OUTPUT
            if name in spec.outputs
            else PinDirection.INPUT
        )
        pins[name] = Pin(
            name,
            direction,
            (_openm1_bar(tech, track, site_lo, site_hi, layer=0),),
        )
    return pins, set()  # M1 is fully open above OpenM1 cells


def _conv12t_pins(
    tech: Technology, spec: CellSpec
) -> tuple[dict[str, Pin], set[int]]:
    w = spec.width_sites
    n_tracks = tech.row_height // tech.layers[1].pitch
    pins: dict[str, Pin] = {
        "VDD": Pin(
            "VDD",
            PinDirection.POWER,
            (_openm1_bar(tech, n_tracks - 1, 0, w - 1, layer=1),),
        ),
        "VSS": Pin(
            "VSS",
            PinDirection.GROUND,
            (_openm1_bar(tech, 0, 0, w - 1, layer=1),),
        ),
    }
    for i, name in enumerate(spec.signal_pins):
        track = 2 + i % (n_tracks - 4)
        direction = (
            PinDirection.OUTPUT
            if name in spec.outputs
            else PinDirection.INPUT
        )
        site_lo = 1 + i % max(1, w - 3)
        site_hi = min(w - 2, site_lo + max(1, w // 3))
        pins[name] = Pin(
            name,
            direction,
            (_openm1_bar(tech, track, site_lo, site_hi, layer=1),),
        )
    # M1 power rails block every column for inter-row routing.
    return pins, set(range(w))


def _timing_model(spec: CellSpec, vt: VtClass) -> TimingModel:
    drive = float(spec.drive)
    return TimingModel(
        intrinsic_ps=spec.base_delay_ps * vt.delay_scale,
        drive_resistance_kohm=1.4 * vt.delay_scale / drive,
        input_cap_ff=spec.base_input_cap_ff,
        leakage_nw=spec.base_leakage_nw * vt.leakage_scale * drive,
        internal_energy_fj=0.6 * drive,
    )
