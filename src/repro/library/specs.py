"""Logical cell specifications shared by all three architecture
generators.

A :class:`CellSpec` describes a cell *function* (ports, width, timing
class); the per-architecture generators in
:mod:`repro.library.generator` turn a spec into concrete pin geometry.
The set below is a representative combinational + sequential subset of
a production library, with drive-strength variants for the cells that
matter most to synthesis mix (inverters/buffers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class VtClass(enum.Enum):
    """Threshold-voltage flavor of a triple-Vt library."""

    LVT = "LVT"
    RVT = "RVT"
    HVT = "HVT"

    @property
    def delay_scale(self) -> float:
        """Delay multiplier relative to RVT."""
        return {"LVT": 0.85, "RVT": 1.0, "HVT": 1.25}[self.value]

    @property
    def leakage_scale(self) -> float:
        """Leakage multiplier relative to RVT."""
        return {"LVT": 4.0, "RVT": 1.0, "HVT": 0.3}[self.value]


@dataclass(frozen=True, slots=True)
class CellSpec:
    """Architecture-independent description of a library cell.

    Attributes:
        function: base function name (``INV``, ``NAND2``...).
        drive: drive strength multiplier (1, 2, 4...).
        inputs: ordered input pin names.
        outputs: ordered output pin names.
        width_sites: cell width in placement sites.
        is_sequential: True for flops/latches.
        clock_pin: clock input name for sequential cells.
        base_delay_ps: intrinsic delay at drive 1, RVT.
        base_input_cap_ff: input pin capacitance at drive 1.
        base_leakage_nw: leakage power at RVT.
    """

    function: str
    drive: int
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    width_sites: int
    is_sequential: bool = False
    clock_pin: str | None = None
    base_delay_ps: float = 10.0
    base_input_cap_ff: float = 0.8
    base_leakage_nw: float = 1.0

    @property
    def name(self) -> str:
        """Base macro name without Vt suffix, e.g. ``NAND2_X2``."""
        return f"{self.function}_X{self.drive}"

    @property
    def signal_pins(self) -> tuple[str, ...]:
        """All signal pin names, inputs first."""
        return self.inputs + self.outputs


def _spec(
    function: str,
    drive: int,
    inputs: tuple[str, ...],
    width_sites: int,
    *,
    outputs: tuple[str, ...] = ("ZN",),
    delay: float = 10.0,
    cap: float = 0.8,
    leak: float = 1.0,
    sequential: bool = False,
    clock: str | None = None,
) -> CellSpec:
    return CellSpec(
        function=function,
        drive=drive,
        inputs=inputs,
        outputs=outputs,
        width_sites=width_sites,
        is_sequential=sequential,
        clock_pin=clock,
        base_delay_ps=delay,
        base_input_cap_ff=cap,
        base_leakage_nw=leak,
    )


#: The default cell set.  Widths are in sites; each signal pin needs an
#: interior site column (ClosedM1) or M0 bar room (OpenM1), so width
#: grows with pin count, matching the relative footprints of a real
#: 7.5-track library.
DEFAULT_CELL_SPECS: tuple[CellSpec, ...] = (
    _spec("INV", 1, ("A",), 4, delay=6.0, cap=0.7, leak=0.8),
    _spec("INV", 2, ("A",), 5, delay=5.0, cap=1.3, leak=1.5),
    _spec("INV", 4, ("A",), 7, delay=4.2, cap=2.5, leak=2.8),
    _spec("BUF", 1, ("A",), 5, outputs=("Z",), delay=9.0, cap=0.7),
    _spec("BUF", 2, ("A",), 6, outputs=("Z",), delay=7.5, cap=1.3,
          leak=1.8),
    _spec("NAND2", 1, ("A1", "A2"), 5, delay=8.0, cap=0.9, leak=1.2),
    _spec("NAND2", 2, ("A1", "A2"), 7, delay=6.8, cap=1.7, leak=2.2),
    _spec("NAND3", 1, ("A1", "A2", "A3"), 7, delay=9.5, cap=1.0,
          leak=1.6),
    _spec("NOR2", 1, ("A1", "A2"), 5, delay=8.6, cap=0.9, leak=1.2),
    _spec("NOR3", 1, ("A1", "A2", "A3"), 7, delay=10.2, cap=1.0,
          leak=1.6),
    _spec("AND2", 1, ("A1", "A2"), 6, outputs=("Z",), delay=11.0,
          cap=0.8, leak=1.4),
    _spec("OR2", 1, ("A1", "A2"), 6, outputs=("Z",), delay=11.5,
          cap=0.8, leak=1.4),
    _spec("AOI21", 1, ("A", "B1", "B2"), 7, delay=10.5, cap=1.0,
          leak=1.7),
    _spec("OAI21", 1, ("A", "B1", "B2"), 7, delay=10.8, cap=1.0,
          leak=1.7),
    _spec("XOR2", 1, ("A1", "A2"), 9, outputs=("Z",), delay=13.0,
          cap=1.4, leak=2.4),
    _spec("XNOR2", 1, ("A1", "A2"), 9, delay=13.2, cap=1.4, leak=2.4),
    _spec("MUX2", 1, ("I0", "I1", "S"), 9, outputs=("Z",), delay=12.5,
          cap=1.1, leak=2.2),
    _spec("DFF", 1, ("D", "CK"), 13, outputs=("Q",), delay=28.0,
          cap=1.2, leak=4.5, sequential=True, clock="CK"),
    _spec("DFF", 2, ("D", "CK"), 15, outputs=("Q",), delay=24.0,
          cap=1.9, leak=6.5, sequential=True, clock="CK"),
)


def spec_by_name(name: str) -> CellSpec:
    """Look up a spec by base macro name (e.g. ``"NAND2_X1"``)."""
    for spec in DEFAULT_CELL_SPECS:
        if spec.name == name:
            return spec
    raise KeyError(f"no cell spec named {name}")
