"""Library container and the default library factory."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.library.generator import make_macro
from repro.library.macro import Macro
from repro.library.specs import CellSpec, DEFAULT_CELL_SPECS, VtClass
from repro.tech.technology import Technology


@dataclass
class Library:
    """A set of macros generated for one technology/architecture.

    Macros are keyed by full name (``NAND2_X1_RVT``).  The library also
    exposes convenience views the netlist generator uses to draw a
    realistic cell mix.
    """

    tech: Technology
    macros: dict[str, Macro] = field(default_factory=dict)

    def add(self, macro: Macro) -> None:
        if macro.name in self.macros:
            raise ValueError(f"duplicate macro {macro.name}")
        self.macros[macro.name] = macro

    def macro(self, name: str) -> Macro:
        """Look a macro up by full name (raises KeyError if unknown)."""
        return self.macros[name]

    def __contains__(self, name: str) -> bool:
        return name in self.macros

    def __len__(self) -> int:
        return len(self.macros)

    @property
    def names(self) -> list[str]:
        """Macro names in deterministic (sorted) order."""
        return sorted(self.macros)

    def combinational(self) -> list[Macro]:
        """All non-sequential macros, sorted by name."""
        return [
            self.macros[n]
            for n in self.names
            if not self.macros[n].spec.is_sequential
        ]

    def sequential(self) -> list[Macro]:
        """All sequential macros, sorted by name."""
        return [
            self.macros[n]
            for n in self.names
            if self.macros[n].spec.is_sequential
        ]


def build_library(
    tech: Technology,
    specs: tuple[CellSpec, ...] = DEFAULT_CELL_SPECS,
    vts: tuple[VtClass, ...] = (VtClass.LVT, VtClass.RVT, VtClass.HVT),
) -> Library:
    """Generate the triple-Vt library for ``tech``.

    This substitutes for the consortium 7nm libraries of the paper: the
    full spec set at every Vt flavor, with geometry following
    ``tech.arch``.
    """
    library = Library(tech=tech)
    for spec in specs:
        for vt in vts:
            library.add(make_macro(tech, spec, vt))
    return library
