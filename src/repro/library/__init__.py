"""Standard-cell library generation for the three cell architectures.

The paper uses 7nm ClosedM1 and OpenM1 triple-Vt libraries from an
industrial consortium.  This package synthesizes equivalent libraries:
the same *geometric contract* the MILP formulation and the router
depend on (pin layers, 1-D M1 pins on the site grid for ClosedM1,
horizontal M0 pin bars for OpenM1, M1 power rails for conventional
12-track cells), plus simple timing/power models for the evaluation
metrics.
"""

from repro.library.library import Library, build_library
from repro.library.macro import Macro, TimingModel
from repro.library.pins import Pin, PinDirection, PinShape
from repro.library.specs import CellSpec, DEFAULT_CELL_SPECS, VtClass

__all__ = [
    "Library",
    "build_library",
    "Macro",
    "TimingModel",
    "Pin",
    "PinDirection",
    "PinShape",
    "CellSpec",
    "DEFAULT_CELL_SPECS",
    "VtClass",
]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.library")
