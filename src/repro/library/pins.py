"""Pin and pin-shape primitives for library macros."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geometry import Interval, Rect


class PinDirection(enum.Enum):
    """Logical direction of a macro pin."""

    INPUT = "INPUT"
    OUTPUT = "OUTPUT"
    INOUT = "INOUT"
    POWER = "POWER"
    GROUND = "GROUND"

    @property
    def is_signal(self) -> bool:
        """True for pins that participate in signal nets."""
        return self in (
            PinDirection.INPUT,
            PinDirection.OUTPUT,
            PinDirection.INOUT,
        )


@dataclass(frozen=True, slots=True)
class PinShape:
    """One rectangle of pin metal, in cell-relative DBU coordinates.

    For ClosedM1 pins this is a thin vertical M1 stripe centered on an
    M1 track; for OpenM1 pins a horizontal M0 bar; for conventional
    cells a horizontal M1 bar.
    """

    layer_index: int
    rect: Rect

    @property
    def x_interval(self) -> Interval:
        """x-projection of the shape — the quantity OpenM1 overlap uses."""
        return self.rect.x_interval

    @property
    def x_center(self) -> int:
        """x of the shape center — the ClosedM1 alignment coordinate."""
        return (self.rect.xlo + self.rect.xhi) // 2

    @property
    def y_center(self) -> int:
        return (self.rect.ylo + self.rect.yhi) // 2


@dataclass(frozen=True, slots=True)
class Pin:
    """A macro pin: name, direction and one or more metal shapes.

    The optimizer uses the *access shape* (``shapes[0]``): the single
    shape a direct vertical M1 route would land on.  Multi-shape pins
    (e.g. the OpenM1 ZN pin of Figure 1(c), which has two M0 bars tied
    by an internal M1 link) list the preferred access shape first.
    """

    name: str
    direction: PinDirection
    shapes: tuple[PinShape, ...]

    def __post_init__(self) -> None:
        if not self.shapes:
            raise ValueError(f"pin {self.name} has no shapes")

    @property
    def access_shape(self) -> PinShape:
        """The shape used for alignment/overlap reasoning."""
        return self.shapes[0]

    @property
    def x_rel(self) -> int:
        """Cell-relative x of the pin access point (xp in the MILP)."""
        return self.access_shape.x_center

    @property
    def y_rel(self) -> int:
        """Cell-relative y of the pin access point (yp in the MILP)."""
        return self.access_shape.y_center

    @property
    def x_interval_rel(self) -> Interval:
        """Cell-relative x-extent ([xmin_p, xmax_p] in the MILP)."""
        return self.access_shape.x_interval
