"""Library macro: geometry + pins + timing/power model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Rect
from repro.library.pins import Pin, PinDirection
from repro.library.specs import CellSpec, VtClass
from repro.tech.arch import CellArchitecture


@dataclass(frozen=True, slots=True)
class TimingModel:
    """Linear delay/power model of a cell.

    Stage delay through the cell is modeled as
    ``intrinsic_ps + drive_resistance_kohm * load_ff`` (a one-segment
    NLDM approximation); it is what the paper's flow would read from
    Liberty tables.

    Attributes:
        intrinsic_ps: load-independent delay component.
        drive_resistance_kohm: output drive resistance (kohm, so that
            kohm x fF = ps).
        input_cap_ff: capacitance of each input pin.
        leakage_nw: static power.
        internal_energy_fj: internal switching energy per output toggle.
    """

    intrinsic_ps: float
    drive_resistance_kohm: float
    input_cap_ff: float
    leakage_nw: float
    internal_energy_fj: float


@dataclass(frozen=True)
class Macro:
    """A placed-and-routable standard cell master.

    Attributes:
        name: full macro name, e.g. ``NAND2_X1_RVT``.
        spec: the architecture-independent cell function.
        vt: threshold flavor.
        arch: cell architecture the geometry follows.
        width: cell width in DBU.
        height: cell height in DBU (one row).
        pins: all pins (signal + power), keyed by name.
        m1_blocked_columns: cell-relative site columns whose M1 track is
            blocked inside the cell (ClosedM1 pin stripes and power
            stripes; empty for OpenM1 whose M1 is open).
        timing: delay/power model.
    """

    name: str
    spec: CellSpec
    vt: VtClass
    arch: CellArchitecture
    width: int
    height: int
    pins: dict[str, Pin]
    m1_blocked_columns: frozenset[int]
    timing: TimingModel
    _signal_pins: tuple[Pin, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_signal_pins",
            tuple(
                pin
                for pin in self.pins.values()
                if pin.direction.is_signal
            ),
        )

    @property
    def width_sites(self) -> int:
        """Cell width in placement sites."""
        return self.spec.width_sites

    @property
    def bbox(self) -> Rect:
        """Cell outline with origin at (0, 0)."""
        return Rect(0, 0, self.width, self.height)

    @property
    def signal_pins(self) -> tuple[Pin, ...]:
        """Pins that participate in signal nets, in declaration order."""
        return self._signal_pins

    def pin(self, name: str) -> Pin:
        """Look up a pin by name (raises KeyError if absent)."""
        return self.pins[name]

    @property
    def output_pins(self) -> tuple[Pin, ...]:
        return tuple(
            p
            for p in self._signal_pins
            if p.direction is PinDirection.OUTPUT
        )

    @property
    def input_pins(self) -> tuple[Pin, ...]:
        return tuple(
            p
            for p in self._signal_pins
            if p.direction is PinDirection.INPUT
        )
