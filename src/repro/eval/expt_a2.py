"""ExptA-2 / Figure 6: sensitivity of RWL and #dM1 to α.

The paper sweeps α from 0 to 6000 and observes: #dM1 grows
monotonically with α, while routed wirelength is non-monotonic — some
alignment is free wirelength reduction, too much alignment sacrifices
HPWL for alignments the router cannot monetize.  α = 1200 (ClosedM1) /
1000 (OpenM1) are chosen at the knee.
"""

from __future__ import annotations

from repro.core.params import OptParams, ParamSet
from repro.core.vm1opt import vm1_opt
from repro.eval.common import EvalScale
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.routing import DetailedRouter
from repro.tech import CellArchitecture, make_tech

#: The paper's sweep range.
PAPER_ALPHAS = (0.0, 300.0, 1200.0, 3000.0, 6000.0)


def expt_a2_alpha_sweep(
    scale: EvalScale | None = None,
    *,
    profile: str = "aes",
    arch: CellArchitecture = CellArchitecture.CLOSED_M1,
    alphas: tuple[float, ...] = PAPER_ALPHAS,
    window_paper_um: float = 20.0,
) -> list[dict]:
    """Run the Figure 6 sweep; returns one row per α."""
    scale = scale or EvalScale()
    tech = make_tech(arch)
    library = build_library(tech)
    base = generate_design(
        profile,
        tech,
        library,
        scale=scale.scale_of(profile),
        seed=scale.seed,
    )
    place_design(base, seed=scale.seed)
    initial = base.placement_snapshot()
    init_metrics = DetailedRouter(base).route()

    window_um = scale.window_um(window_paper_um)
    rows: list[dict] = [
        {
            "alpha": "init",
            "RWL (um)": init_metrics.routed_wirelength / 1000,
            "#dM1": init_metrics.num_dm1,
            "HPWL (um)": init_metrics.hpwl / 1000,
            "runtime (s)": 0.0,
        }
    ]
    for alpha in alphas:
        base.restore_placement(initial)
        params = OptParams.for_arch(
            arch,
            alpha=alpha,
            sequence=(ParamSet.square(window_um, 4, 1),),
            time_limit=scale.time_limit,
            theta=scale.theta,
        )
        result = vm1_opt(base, params)
        metrics = DetailedRouter(base).route()
        rows.append(
            {
                "alpha": alpha,
                "RWL (um)": metrics.routed_wirelength / 1000,
                "#dM1": metrics.num_dm1,
                "HPWL (um)": metrics.hpwl / 1000,
                "runtime (s)": result.wall_seconds,
            }
        )
    base.restore_placement(initial)
    return rows
