"""The paper's published numbers (Table 2), machine-readable.

Used by the EXPERIMENTS.md generator to print paper-vs-measured rows
side by side.  Lengths in um, power in mW, runtime in seconds; the
delta columns are the paper's (final - init) / init in percent.
"""

from __future__ import annotations

#: Table 2 rows: (arch, design) -> metrics.
PAPER_TABLE2: dict[tuple[str, str], dict[str, float]] = {
    ("closedm1", "m0"): {
        "#inst": 9922, "#dM1 init": 545, "#dM1 final": 2955,
        "#dM1 %": 442.2, "M1WL %": -7.0, "#via12 %": -10.7,
        "HPWL %": 4.0, "RWL %": -2.9, "WNS final (ns)": 0.0,
        "power %": -0.5, "runtime (s)": 344,
    },
    ("closedm1", "aes"): {
        "#inst": 12345, "#dM1 init": 631, "#dM1 final": 3177,
        "#dM1 %": 403.5, "M1WL %": -26.8, "#via12 %": -14.4,
        "HPWL %": -5.0, "RWL %": -6.4, "WNS final (ns)": 0.0,
        "power %": -0.9, "runtime (s)": 711,
    },
    ("closedm1", "jpeg"): {
        "#inst": 54570, "#dM1 init": 3694, "#dM1 final": 20688,
        "#dM1 %": 460.0, "M1WL %": -7.7, "#via12 %": -5.7,
        "HPWL %": -2.3, "RWL %": -6.2, "WNS final (ns)": 0.0,
        "power %": -0.7, "runtime (s)": 1216,
    },
    ("closedm1", "vga"): {
        "#inst": 68606, "#dM1 init": 2460, "#dM1 final": 12473,
        "#dM1 %": 407.0, "M1WL %": -9.1, "#via12 %": -10.7,
        "HPWL %": 0.4, "RWL %": -1.1, "WNS final (ns)": -0.002,
        "power %": -0.1, "runtime (s)": 561,
    },
    ("openm1", "m0"): {
        "#inst": 9891, "#dM1 init": 1183, "#dM1 final": 1931,
        "#dM1 %": 63.2, "M1WL %": 3.0, "#via12 %": -1.7,
        "HPWL %": -0.9, "RWL %": -1.0, "WNS final (ns)": 0.0,
        "power %": -0.3, "runtime (s)": 298,
    },
    ("openm1", "aes"): {
        "#inst": 12348, "#dM1 init": 1341, "#dM1 final": 1975,
        "#dM1 %": 47.3, "M1WL %": -0.5, "#via12 %": -4.1,
        "HPWL %": -2.2, "RWL %": -2.2, "WNS final (ns)": 0.0,
        "power %": -0.3, "runtime (s)": 325,
    },
    ("openm1", "jpeg"): {
        "#inst": 54689, "#dM1 init": 8391, "#dM1 final": 13763,
        "#dM1 %": 64.0, "M1WL %": 2.8, "#via12 %": -3.8,
        "HPWL %": -1.1, "RWL %": -1.7, "WNS final (ns)": -0.001,
        "power %": -0.2, "runtime (s)": 1026,
    },
    ("openm1", "vga"): {
        "#inst": 68729, "#dM1 init": 7714, "#dM1 final": 13132,
        "#dM1 %": 70.2, "M1WL %": -0.3, "#via12 %": -2.2,
        "HPWL %": -0.8, "RWL %": -0.8, "WNS final (ns)": -0.002,
        "power %": -0.1, "runtime (s)": 515,
    },
}


def paper_row(arch: str, design: str) -> dict[str, float]:
    """Look up the paper's Table 2 row (KeyError if absent)."""
    return PAPER_TABLE2[(arch, design)]
