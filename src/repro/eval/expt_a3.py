"""ExptA-3 / Figure 7: comparison of optimization sequences U.

The paper compares five window/perturbation sequences and finds the
single-set sequence (20, 4, 1) the best runtime/quality point: the
lx = 4 sequences win on RWL, and multi-set sequences pay roughly 2x
runtime for no quality gain.
"""

from __future__ import annotations

from repro.core.params import EXPTA3_SEQUENCES, OptParams, ParamSet
from repro.core.vm1opt import vm1_opt
from repro.eval.common import EvalScale
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.routing import DetailedRouter
from repro.tech import CellArchitecture, make_tech


def _scaled_sequence(
    sequence: tuple[ParamSet, ...], scale: EvalScale
) -> tuple[ParamSet, ...]:
    return tuple(
        ParamSet(
            bw_um=scale.window_um(u.bw_um),
            bh_um=scale.window_um(u.bh_um),
            lx=u.lx,
            ly=u.ly,
        )
        for u in sequence
    )


def expt_a3_sequences(
    scale: EvalScale | None = None,
    *,
    profile: str = "aes",
    sequence_ids: tuple[int, ...] = (1, 2, 3, 4, 5),
) -> list[dict]:
    """Run the Figure 7 comparison; one row per sequence."""
    scale = scale or EvalScale()
    tech = make_tech(CellArchitecture.CLOSED_M1)
    library = build_library(tech)
    base = generate_design(
        profile,
        tech,
        library,
        scale=scale.scale_of(profile),
        seed=scale.seed,
    )
    place_design(base, seed=scale.seed)
    initial = base.placement_snapshot()

    rows: list[dict] = []
    for seq_id in sequence_ids:
        base.restore_placement(initial)
        params = OptParams.for_arch(
            tech.arch,
            sequence=_scaled_sequence(EXPTA3_SEQUENCES[seq_id], scale),
            time_limit=scale.time_limit,
            theta=scale.theta,
        )
        result = vm1_opt(base, params)
        metrics = DetailedRouter(base).route()
        rows.append(
            {
                "sequence": seq_id,
                "paper sequence": " -> ".join(
                    f"({u.bw_um:g},{u.lx},{u.ly})"
                    for u in EXPTA3_SEQUENCES[seq_id]
                ),
                "RWL (um)": metrics.routed_wirelength / 1000,
                "#dM1": metrics.num_dm1,
                "runtime (s)": result.wall_seconds,
                "parallel runtime (s)": result.modeled_parallel_seconds,
            }
        )
    base.restore_placement(initial)
    return rows
