"""Markdown rendering for experiment rows."""

from __future__ import annotations


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 10**9:
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


def render_markdown_table(rows: list[dict]) -> str:
    """Render experiment rows as a GitHub-flavored markdown table."""
    if not rows:
        return "(no rows)\n"
    columns = list(rows[0].keys())
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_fmt(row.get(c, "")) for c in columns)
            + " |"
        )
    return "\n".join(lines) + "\n"
