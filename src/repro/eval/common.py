"""Shared experiment scaling knobs."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EvalScale:
    """Scale preset for the experiment suite.

    The paper runs full-size designs (9.9k-68.6k instances) with
    5-80 um windows through C++/CPLEX on an 8-thread server.  The
    default preset here shrinks both designs and windows by the
    documented factors so pure Python + HiGHS completes each
    experiment in minutes while preserving every trend; ``paper()``
    restores the full sizes (expect hours).

    Attributes:
        design_scale: per-profile instance-count multipliers.
        window_scale: multiplier applied to the paper's window sizes
            in microns (e.g. the preferred 20 um window becomes
            ``20 * window_scale``).
        time_limit: per-window MILP time limit (seconds).
        theta: VM1Opt convergence threshold.
        seed: RNG seed for generation/placement.
    """

    design_scale: dict[str, float] = field(
        default_factory=lambda: {
            "m0": 0.05,
            "aes": 0.04,
            "jpeg": 0.014,
            "vga": 0.011,
        }
    )
    window_scale: float = 0.065
    time_limit: float = 4.0
    theta: float = 0.02
    seed: int = 1

    @classmethod
    def quick(cls) -> "EvalScale":
        """Extra-small preset for CI smoke runs (tens of seconds)."""
        return cls(
            design_scale={
                "m0": 0.02,
                "aes": 0.015,
                "jpeg": 0.004,
                "vga": 0.003,
            },
            window_scale=0.05,
            time_limit=3.0,
            theta=0.05,
        )

    @classmethod
    def paper(cls) -> "EvalScale":
        """Full paper sizes.  Hours of runtime; opt-in only."""
        return cls(
            design_scale={p: 1.0 for p in ("m0", "aes", "jpeg", "vga")},
            window_scale=1.0,
            time_limit=60.0,
            theta=0.01,
        )

    def scale_of(self, profile: str) -> float:
        return self.design_scale[profile]

    def window_um(self, paper_um: float) -> float:
        """Map a paper window size to this preset's size."""
        return max(0.5, paper_um * self.window_scale)
