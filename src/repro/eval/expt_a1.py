"""ExptA-1 / Figure 5: scalability vs window size and perturbation
range.

The paper sweeps square windows from 5 to 80 um and perturbation
ranges lx in {2..5}, ly in {0, 1}, running a single DistOpt pair per
configuration, and reports normalized routed wirelength and runtime.
The expected shape: larger windows reduce RWL monotonically-ish while
runtime grows superlinearly; the knee (<= 1% RWL of best at minimum
runtime) picks the production window size.
"""

from __future__ import annotations

from repro.core.distopt import dist_opt
from repro.core.params import OptParams
from repro.eval.common import EvalScale
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.routing import DetailedRouter
from repro.tech import CellArchitecture, make_tech

#: Paper sweep values (um) — mapped through EvalScale.window_um.
PAPER_WINDOW_SIZES_UM = (5.0, 10.0, 20.0, 40.0, 80.0)
#: Perturbation combinations from the paper (subset by default).
DEFAULT_PERTURBATIONS = ((3, 1), (4, 1))
FULL_PERTURBATIONS = tuple(
    (lx, ly) for lx in (2, 3, 4, 5) for ly in (0, 1)
)


def expt_a1_window_sweep(
    scale: EvalScale | None = None,
    *,
    profile: str = "aes",
    window_sizes_um: tuple[float, ...] = PAPER_WINDOW_SIZES_UM,
    perturbations: tuple[tuple[int, int], ...] = DEFAULT_PERTURBATIONS,
) -> list[dict]:
    """Run the Figure 5 sweep; returns one row per configuration.

    Rows carry the paper-labelled window size, the actually-used
    (scaled) size, RWL (absolute and normalized to the best), the
    wall runtime of the optimization and the modeled parallel time.
    """
    scale = scale or EvalScale()
    tech = make_tech(CellArchitecture.CLOSED_M1)
    library = build_library(tech)
    base = generate_design(
        profile,
        tech,
        library,
        scale=scale.scale_of(profile),
        seed=scale.seed,
    )
    place_design(base, seed=scale.seed)
    initial = base.placement_snapshot()
    params = OptParams.for_arch(
        tech.arch, time_limit=scale.time_limit, theta=scale.theta
    )

    rows: list[dict] = []
    for paper_um in window_sizes_um:
        bw = tech.dbu(scale.window_um(paper_um))
        for lx, ly in perturbations:
            base.restore_placement(initial)
            # One DistOpt pair (move + flip), per the paper's setup.
            move = dist_opt(
                base, params, tx=0, ty=0, bw=bw, bh=bw,
                lx=lx, ly=ly, allow_flip=False,
            )
            flip = dist_opt(
                base, params, tx=0, ty=0, bw=bw, bh=bw,
                lx=0, ly=0, allow_flip=True,
            )
            metrics = DetailedRouter(base).route()
            rows.append(
                {
                    "window (paper um)": paper_um,
                    "window (um)": round(tech.microns(bw), 3),
                    "lx": lx,
                    "ly": ly,
                    "RWL (um)": metrics.routed_wirelength / 1000,
                    "#dM1": metrics.num_dm1,
                    "runtime (s)": move.wall_seconds + flip.wall_seconds,
                    "parallel runtime (s)": (
                        move.modeled_parallel_seconds
                        + flip.modeled_parallel_seconds
                    ),
                }
            )
    base.restore_placement(initial)

    best_rwl = min(row["RWL (um)"] for row in rows)
    for row in rows:
        row["RWL (norm)"] = row["RWL (um)"] / best_rwl
    return rows


def knee_configuration(rows: list[dict]) -> dict:
    """The paper's selection rule: minimum runtime among configs
    within 1% of the best routed wirelength."""
    eligible = [row for row in rows if row["RWL (norm)"] <= 1.01]
    return min(eligible, key=lambda r: r["runtime (s)"])
