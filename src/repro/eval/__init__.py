"""Experiment harness: one module per paper table/figure.

Every experiment function returns a list of row dictionaries so the
benchmark suite, the examples and the EXPERIMENTS.md generator share
one implementation:

* :mod:`repro.eval.expt_a1` — Figure 5 (window size / perturbation
  range scalability sweep).
* :mod:`repro.eval.expt_a2` — Figure 6 (α sensitivity: RWL and #dM1).
* :mod:`repro.eval.expt_a3` — Figure 7 (optimization sequences).
* :mod:`repro.eval.expt_b` — Table 2 (full-flow results for the four
  designs, both architectures) and Figure 8 (DRV vs utilization).
* :mod:`repro.eval.report` — markdown rendering / EXPERIMENTS.md.

Experiments default to the *reduced* scale documented in DESIGN.md §2
(smaller designs and windows so pure Python + HiGHS finishes in
minutes); pass a :class:`EvalScale` with ``paper()`` values to run the
full-size versions.
"""

from repro.eval.common import EvalScale
from repro.eval.expt_a1 import expt_a1_window_sweep
from repro.eval.expt_a2 import expt_a2_alpha_sweep
from repro.eval.expt_a3 import expt_a3_sequences
from repro.eval.expt_b import expt_b_table2, expt_b_fig8_drv_sweep
from repro.eval.report import render_markdown_table

__all__ = [
    "EvalScale",
    "expt_a1_window_sweep",
    "expt_a2_alpha_sweep",
    "expt_a3_sequences",
    "expt_b_table2",
    "expt_b_fig8_drv_sweep",
    "render_markdown_table",
]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.eval")
