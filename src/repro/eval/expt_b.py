"""ExptB: Table 2 (full-flow results) and Figure 8 (DRV vs util).

Table 2 runs the complete flow on the four designs under both the
ClosedM1 (α = 1200) and OpenM1 (α = 1000) architectures and reports
#dM1, M1 WL, #via12, HPWL, RWL, WNS, power and runtime before/after
optimization.  Figure 8 raises the aes initial utilization to induce
congestion hotspots and shows the optimizer removing a substantial
fraction of the resulting DRVs.
"""

from __future__ import annotations

from repro.eval.common import EvalScale
from repro.flow import FlowConfig, run_flow, table2_row
from repro.tech import CellArchitecture

#: Table 2 design order.
TABLE2_DESIGNS = ("m0", "aes", "jpeg", "vga")


def expt_b_table2(
    scale: EvalScale | None = None,
    *,
    archs: tuple[CellArchitecture, ...] = (
        CellArchitecture.CLOSED_M1,
        CellArchitecture.OPEN_M1,
    ),
    designs: tuple[str, ...] = TABLE2_DESIGNS,
    window_paper_um: float = 20.0,
) -> list[dict]:
    """Regenerate Table 2; one row per (architecture, design)."""
    scale = scale or EvalScale()
    rows: list[dict] = []
    for arch in archs:
        for profile in designs:
            config = FlowConfig(
                profile=profile,
                arch=arch,
                scale=scale.scale_of(profile),
                utilization=0.75,
                seed=scale.seed,
                window_um=scale.window_um(window_paper_um),
                lx=4,
                ly=1,
                time_limit=scale.time_limit,
            )
            result = run_flow(config)
            rows.append(table2_row(result))
    return rows


def expt_b_fig8_drv_sweep(
    scale: EvalScale | None = None,
    *,
    profile: str = "aes",
    utilizations: tuple[float, ...] = (0.80, 0.82, 0.84, 0.86),
    window_paper_um: float = 20.0,
    stress_derate: float = 0.50,
    stress_scale: float = 2.0,
) -> list[dict]:
    """Regenerate Figure 8: #DRVs orig vs opt (plus #dM1) per
    utilization, ClosedM1 aes.

    The paper induces congestion hotspots by raising the initial
    utilization of full-size aes.  At this reproduction's reduced
    design scale the die is too small to develop hotspots, so the
    experiment applies the equivalent stress twice over: the design
    runs at ``stress_scale`` x the preset's scale and the routing
    grid is derated to ``stress_derate`` (DESIGN.md §2 documents the
    substitution).
    """
    scale = scale or EvalScale()
    from repro.routing import RouterConfig
    from repro.routing.gcell import GridConfig

    router = RouterConfig(grid=GridConfig(derate=stress_derate))
    rows: list[dict] = []
    for util in utilizations:
        config = FlowConfig(
            profile=profile,
            arch=CellArchitecture.CLOSED_M1,
            scale=min(1.0, scale.scale_of(profile) * stress_scale),
            utilization=util,
            seed=scale.seed,
            window_um=scale.window_um(window_paper_um),
            lx=4,
            ly=1,
            time_limit=scale.time_limit,
            router=router,
        )
        result = run_flow(config)
        rows.append(
            {
                "utilization": util,
                "#DRVs orig": result.init_route.num_drvs,
                "#DRVs opt": result.final_route.num_drvs,
                "#dM1 orig": result.init_route.num_dm1,
                "#dM1 opt": result.final_route.num_dm1,
                "RWL % change": 100.0
                * (
                    result.final_route.routed_wirelength
                    - result.init_route.routed_wirelength
                )
                / result.init_route.routed_wirelength,
            }
        )
    return rows
