"""Placement substrate: global placement and legalization.

This package stands in for the commercial place step of the paper's
flow (Innovus).  It produces the *input* the paper's optimizer
perturbs: a legal row/site placement at a target utilization whose
wirelength reflects netlist locality.

* :func:`global_place` — analytic-style global placement: iterative
  net-centroid relaxation (a Jacobi solve of the star-model quadratic
  program) interleaved with quantile-based density spreading.
* :func:`legalize` — Tetris-style legalization onto rows/sites with
  displacement-aware row selection, followed by an in-row compaction
  pass toward the global-placement targets.
* :func:`place_design` — the two chained, the standard entry point.
"""

from repro.placement.global_place import global_place
from repro.placement.legalize import legalize
from repro.placement.api import place_design

__all__ = ["global_place", "legalize", "place_design"]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.placement")
