"""Global placement: centroid relaxation + quantile spreading.

The algorithm alternates two phases:

1. **Centroid relaxation** — every movable instance moves toward the
   weighted centroid of the centroids of its nets (pads act as fixed
   anchors).  This is a Jacobi iteration of the star-model quadratic
   wirelength program, so connected cells contract together.
2. **Quantile spreading** — coordinates are redistributed so that each
   die slice holds an equal share of cell area, removing the density
   collapse the quadratic objective causes.  Spreading preserves
   relative order, so the locality found by phase 1 survives.

The result is a globally-spread placement with locality comparable to
a commercial global placer's output — exactly the starting point the
paper's detailed-placement optimizer expects.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.design import Design


def global_place(
    design: Design,
    *,
    rounds: int = 6,
    relax_iters: int = 12,
    seed: int = 0,
) -> None:
    """Assign (continuous) global locations to all movable instances.

    Coordinates are written into ``instance.x/.y`` as cell-center-ish
    positions; they are *not* legal until :func:`repro.placement.legalize`
    runs.
    """
    names = sorted(
        n for n, inst in design.instances.items() if not inst.fixed
    )
    if not names:
        return
    index = {n: i for i, n in enumerate(names)}
    n = len(names)
    rng = np.random.RandomState(seed)
    die = design.die

    x = die.xlo + rng.random_sample(n) * die.width
    y = die.ylo + rng.random_sample(n) * die.height

    # Net incidence: for each net, movable member indices + fixed
    # anchor coordinates (pads and fixed instances).
    net_members: list[np.ndarray] = []
    net_anchor: list[tuple[float, float, int] | None] = []
    for _, net in sorted(design.nets.items()):
        if net.is_trivial():
            continue
        members = [
            index[ref.instance]
            for ref in net.pins
            if ref.instance in index
        ]
        anchors_x = [p.x for p in net.pads]
        anchors_y = [p.y for p in net.pads]
        for ref in net.pins:
            if ref.instance not in index:
                inst = design.instances[ref.instance]
                pos = inst.pin_position(ref.pin)
                anchors_x.append(pos.x)
                anchors_y.append(pos.y)
        if not members:
            continue
        net_members.append(np.asarray(members, dtype=np.intp))
        if anchors_x:
            net_anchor.append(
                (
                    float(np.mean(anchors_x)),
                    float(np.mean(anchors_y)),
                    len(anchors_x),
                )
            )
        else:
            net_anchor.append(None)

    areas = np.asarray(
        [
            design.instances[name].width * design.instances[name].height
            for name in names
        ],
        dtype=float,
    )

    for _ in range(rounds):
        x, y = _relax(x, y, net_members, net_anchor, relax_iters)
        x = _quantile_spread(x, areas, die.xlo, die.xhi)
        y = _quantile_spread(y, areas, die.ylo, die.yhi)

    for name in names:
        i = index[name]
        inst = design.instances[name]
        inst.x = int(round(x[i]))
        inst.y = int(round(y[i]))


def _relax(
    x: np.ndarray,
    y: np.ndarray,
    net_members: list[np.ndarray],
    net_anchor: list[tuple[float, float, int] | None],
    iters: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Jacobi iterations of the star-model quadratic program."""
    n = len(x)
    for _ in range(iters):
        acc_x = np.zeros(n)
        acc_y = np.zeros(n)
        weight = np.zeros(n)
        for members, anchor in zip(net_members, net_anchor):
            k = len(members)
            total = k + (anchor[2] if anchor else 0)
            if total < 2:
                continue
            cx = x[members].sum()
            cy = y[members].sum()
            if anchor:
                # Anchors pull with their full multiplicity.
                cx += anchor[0] * anchor[2]
                cy += anchor[1] * anchor[2]
            w = 1.0 / (total - 1)
            np.add.at(acc_x, members, w * (cx - x[members]) / (total - 1))
            np.add.at(acc_y, members, w * (cy - y[members]) / (total - 1))
            np.add.at(weight, members, w)
        moved = weight > 0
        x = np.where(moved, acc_x / np.maximum(weight, 1e-12), x)
        y = np.where(moved, acc_y / np.maximum(weight, 1e-12), y)
    return x, y


def _quantile_spread(
    coords: np.ndarray, areas: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Redistribute ``coords`` so cumulative cell area is uniform.

    Cells are sorted by coordinate; each is assigned the position where
    the midpoint of its area share falls inside ``[lo, hi]``.  Ties are
    broken by original coordinate, keeping the map monotonic.
    """
    order = np.argsort(coords, kind="stable")
    cum = np.cumsum(areas[order])
    total = cum[-1]
    mid = cum - areas[order] / 2.0
    spread = lo + (hi - lo) * mid / total
    out = np.empty_like(coords)
    out[order] = spread
    return out
