"""End-to-end placement entry point."""

from __future__ import annotations

from repro.netlist.design import Design
from repro.placement.global_place import global_place
from repro.placement.legalize import legalize


def place_design(
    design: Design,
    *,
    rounds: int = 6,
    relax_iters: int = 12,
    seed: int = 0,
) -> int:
    """Globally place and legalize ``design``; return the final HPWL.

    This mirrors the commercial place step of the paper's flow and
    produces the legal placement the MILP optimizer perturbs.
    """
    global_place(design, rounds=rounds, relax_iters=relax_iters, seed=seed)
    legalize(design)
    return design.total_hpwl()
