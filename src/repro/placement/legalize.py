"""Displacement-driven legalization with free-interval bookkeeping.

Instances are processed in increasing global-x order (Tetris-style
sweep), but each row keeps a list of *free site intervals* rather than
a single frontier, so space skipped by one cell remains usable by
later ones.  Each instance is placed at the legal position minimizing
``|dx| + 2|dy|`` displacement, searching rows outward from its target
row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.design import Design, Instance


class LegalizationError(RuntimeError):
    """Raised when no legal position can be found for an instance."""


@dataclass
class _Row:
    """Free-space bookkeeping for one placement row."""

    index: int
    #: Disjoint maximal free intervals [lo, hi) in sites, sorted.
    free: list[tuple[int, int]] = field(default_factory=list)

    def best_position(self, target: int, width: int) -> int | None:
        """Leftmost-displacement legal column for ``width`` sites, or
        None when no free interval is wide enough."""
        best: tuple[int, int] | None = None  # (|dx|, col)
        for lo, hi in self.free:
            if hi - lo < width:
                continue
            col = min(max(target, lo), hi - width)
            dx = abs(col - target)
            if best is None or dx < best[0]:
                best = (dx, col)
            if lo > target and best[0] == 0:
                break
        return best[1] if best else None

    def occupy(self, col: int, width: int) -> None:
        """Mark ``[col, col+width)`` occupied."""
        for i, (lo, hi) in enumerate(self.free):
            if lo <= col and col + width <= hi:
                replacement = []
                if col > lo:
                    replacement.append((lo, col))
                if col + width < hi:
                    replacement.append((col + width, hi))
                self.free[i : i + 1] = replacement
                return
        raise LegalizationError(
            f"occupy({col}, {width}) not inside a free interval"
        )

    def free_sites(self) -> int:
        return sum(hi - lo for lo, hi in self.free)


def legalize(design: Design) -> None:
    """Legalize the (possibly overlapping) placement of ``design``.

    Raises:
        LegalizationError: if the die cannot hold all instances.
    """
    tech = design.tech
    num_rows = design.num_rows
    num_cols = design.num_columns
    rows = [_Row(r, [(0, num_cols)]) for r in range(num_rows)]

    # Fixed instances carve their footprint out of the free space.
    movable: list[Instance] = []
    for inst in sorted(design.instances.values(), key=lambda i: i.name):
        if inst.fixed:
            row = design.row_of(inst)
            col = design.column_of(inst)
            rows[row].occupy(col, inst.macro.width_sites)
        else:
            movable.append(inst)

    total_sites = sum(i.macro.width_sites for i in movable)
    capacity = sum(r.free_sites() for r in rows)
    if total_sites > capacity:
        raise LegalizationError(
            f"{total_sites} site-widths into {capacity} free sites"
        )

    movable.sort(key=lambda inst: (inst.x, inst.y, inst.name))
    for inst in movable:
        _place_one(design, rows, inst)

    errors = design.check_legal()
    if errors:
        raise LegalizationError("; ".join(errors[:5]))


def _place_one(design: Design, rows: list[_Row], inst: Instance) -> None:
    tech = design.tech
    w = inst.macro.width_sites
    target_row = max(
        0,
        min(
            len(rows) - 1,
            round((inst.y - design.die.ylo) / tech.row_height),
        ),
    )
    target_col = max(
        0,
        min(
            design.num_columns - w,
            round((inst.x - design.die.xlo) / tech.site_width),
        ),
    )

    best: tuple[float, int, int] | None = None  # (cost, row, col)
    # Search rows outward from the target; once the row-distance cost
    # alone exceeds the best known cost, no farther row can win.
    for distance in range(len(rows)):
        dy_cost = 2.0 * distance * tech.row_height
        if best is not None and dy_cost >= best[0]:
            break
        candidates = {target_row - distance, target_row + distance}
        for r in candidates:
            if not 0 <= r < len(rows):
                continue
            col = rows[r].best_position(target_col, w)
            if col is None:
                continue
            cost = abs(col - target_col) * tech.site_width + dy_cost
            if best is None or cost < best[0]:
                best = (cost, r, col)
    if best is None:
        raise LegalizationError(f"no row fits instance {inst.name}")

    _, row_idx, col = best
    design.place(inst.name, col, row_idx, flipped=False)
    rows[row_idx].occupy(col, w)
