"""The differential runner: MILP vs oracle vs brute force, plus the
presolve / executor / resume equivalence axes.

``run_case`` is the core: solve one window MILP to proven optimality,
then interrogate the applied placement with the independent oracles —
legality, fixed-cell respect, displacement bounds, d-variable honesty
(every claimed alignment must hold in real geometry), claimed-vs-
recomputed objective, and finally certification against the exhaustive
brute-force optimum.  A window passes only when the MILP's placement
achieves *exactly* the enumerated optimum: worse means the solver or
formulation lost an optimum, better means the model and the oracle
disagree about the objective — both are bugs.

``fuzz`` sweeps seeded generated cases through ``run_case`` (and the
presolve axis), shrinks any failure to a minimal design, and writes a
reproducer JSON into the regression corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.check.brute import brute_force_window
from repro.check.generators import CheckCase, generate_case
from repro.check.oracle import (
    check_displacement,
    check_fixed_unmoved,
    check_legal,
    oracle_objective,
    oracle_pin_interval,
    oracle_pin_point,
)
from repro.check.serialize import (
    case_from_doc,
    case_to_doc,
    clone_design,
    load_reproducer,
    save_reproducer,
)
from repro.core.checkpoint import VM1Checkpoint
from repro.core.distopt import dist_opt
from repro.core.formulation import apply_solution, build_window_model
from repro.core.params import OptParams
from repro.core.vm1opt import vm1_opt
from repro.library import build_library
from repro.milp import HighsBackend
from repro.milp.presolve import presolve
from repro.milp.solution import SolveStatus
from repro.netlist import generate_design
from repro.placement import place_design
from repro.runtime import make_executor
from repro.tech import AlignmentMode, CellArchitecture, make_tech

#: Primary objectives are multiples of 0.5 (ε) and the λ tie-break
#: budget is 0.45 < 0.5, so exact-optimum certification can use a
#: purely numerical tolerance.
_TOL = 1e-6


def _certify_solver() -> HighsBackend:
    """Exact solver for certification: zero gap, generous clock."""
    return HighsBackend(time_limit=60.0, mip_rel_gap=0.0)


@dataclass
class CaseReport:
    """Everything ``run_case`` learned about one case."""

    case: CheckCase
    status: str  # "certified" | "skipped" | "failed"
    errors: list[str] = field(default_factory=list)
    reason: str = ""
    milp_objective: float | None = None
    brute_objective: float | None = None
    num_assignments: int = 0

    @property
    def ok(self) -> bool:
        return self.status != "failed"

    def describe(self) -> str:
        head = f"{self.case.describe()}: {self.status}"
        if self.reason:
            head += f" ({self.reason})"
        for err in self.errors:
            head += f"\n  - {err}"
        return head


@dataclass
class FuzzSummary:
    """Aggregate result of one ``fuzz`` sweep."""

    total: int = 0
    certified: int = 0
    skipped: int = 0
    failed: int = 0
    assignments_enumerated: int = 0
    failures: list[CaseReport] = field(default_factory=list)
    reproducers: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def to_dict(self) -> dict:
        return {
            "schema": "repro.check.fuzz/v1",
            "total": self.total,
            "certified": self.certified,
            "skipped": self.skipped,
            "failed": self.failed,
            "assignments_enumerated": self.assignments_enumerated,
            "failures": [r.describe() for r in self.failures],
            "reproducers": [str(p) for p in self.reproducers],
        }


def run_case(
    case: CheckCase,
    *,
    solver=None,
    max_assignments: int = 50_000,
    problem_transform=None,
) -> CaseReport:
    """Solve one case's window MILP and verify it every way we can.

    ``problem_transform`` is a hook for mutation testing: it receives
    the built :class:`WindowProblem` and may corrupt it in place; the
    oracles must then catch the corruption.
    """
    solver = solver if solver is not None else _certify_solver()
    design = clone_design(case.design)

    pre = check_legal(design)
    if pre:
        return CaseReport(
            case, "failed",
            errors=[f"generated case illegal: {e}" for e in pre],
        )
    before = design.placement_snapshot()

    problem = build_window_model(
        design, case.window, case.params,
        lx=case.lx, ly=case.ly, allow_flip=case.allow_flip,
    )
    if problem is None:
        return CaseReport(case, "skipped", reason="no window model")
    if problem_transform is not None:
        problem_transform(problem)

    solution = solver.solve(problem.model)
    if solution.status is not SolveStatus.OPTIMAL:
        return CaseReport(
            case, "skipped",
            reason=f"solver returned {solution.status.value}",
        )
    apply_solution(design, problem, solution)

    errors = list(check_legal(design))
    errors += check_fixed_unmoved(design, before)
    errors += check_displacement(
        design, before, problem.movable, case.window.rect,
        lx=case.lx, ly=case.ly, allow_flip=case.allow_flip,
    )
    errors += _check_d_honesty(design, case.params, problem, solution)

    nets = [design.nets[n] for n in problem.nets]
    achieved = oracle_objective(design, case.params, nets)

    # Claimed model objective must equal the recomputed objective up
    # to the λ tie-break perturbation (always additive, < 0.45).
    drift = solution.objective - achieved
    if not -_TOL <= drift <= 0.45 + _TOL:
        errors.append(
            f"claimed objective {solution.objective:.4f} vs oracle "
            f"recomputation {achieved:.4f} (drift {drift:+.4f} "
            f"outside the tie-break envelope)"
        )

    brute = brute_force_window(
        clone_design(case.design), case.window, case.params,
        lx=case.lx, ly=case.ly, allow_flip=case.allow_flip,
        max_assignments=max_assignments,
    )
    if brute is not None:
        if achieved > brute.objective + _TOL:
            errors.append(
                f"MILP placement objective {achieved:.4f} is WORSE "
                f"than the brute-force optimum {brute.objective:.4f} "
                f"over {brute.num_assignments} assignments"
            )
        elif achieved < brute.objective - _TOL:
            errors.append(
                f"MILP placement objective {achieved:.4f} BEATS the "
                f"brute-force optimum {brute.objective:.4f} — model "
                f"and oracle disagree about the objective"
            )

    if errors:
        return CaseReport(
            case, "failed", errors=errors,
            milp_objective=achieved,
            brute_objective=None if brute is None else brute.objective,
            num_assignments=0 if brute is None else brute.num_assignments,
        )
    if brute is None:
        return CaseReport(
            case, "skipped",
            reason=f"search space over {max_assignments} assignments",
            milp_objective=achieved,
        )
    return CaseReport(
        case, "certified",
        milp_objective=achieved,
        brute_objective=brute.objective,
        num_assignments=brute.num_assignments,
    )


def _check_d_honesty(design, params, problem, solution) -> list[str]:
    """Every d_pq the solver set must be a real alignment."""
    errors: list[str] = []
    mode = design.tech.arch.alignment_mode
    span = params.gamma * design.tech.row_height
    for d in problem.d_vars:
        if not solution.is_one(d):
            continue
        body = d.name[2:-1]  # d[a.p|b.q]
        left, right = body.split("|")
        inst_p, pin_p = left.rsplit(".", 1)
        inst_q, pin_q = right.rsplit(".", 1)
        p = design.instances[inst_p]
        q = design.instances[inst_q]
        px, py = oracle_pin_point(p, pin_p)
        qx, qy = oracle_pin_point(q, pin_q)
        if abs(py - qy) > span:
            errors.append(
                f"{d.name}=1 but pins are {abs(py - qy)} apart "
                f"vertically (span {span})"
            )
            continue
        if mode is AlignmentMode.ALIGN:
            if px != qx:
                errors.append(
                    f"{d.name}=1 but pin x {px} != {qx}"
                )
        elif mode is AlignmentMode.OVERLAP:
            plo, phi = oracle_pin_interval(p, pin_p)
            qlo, qhi = oracle_pin_interval(q, pin_q)
            overlap = min(phi, qhi) - max(plo, qlo)
            if overlap < params.delta:
                errors.append(
                    f"{d.name}=1 but interval overlap {overlap} < "
                    f"delta {params.delta}"
                )
    return errors


# -------------------------------------------------------------- fuzzing
def fuzz(
    count: int,
    *,
    start_seed: int = 0,
    arch: CellArchitecture | None = None,
    kind: str | None = None,
    corpus_dir: str | Path | None = None,
    solver=None,
    max_assignments: int = 50_000,
    presolve_axis: bool = True,
    progress=None,
) -> FuzzSummary:
    """Run ``count`` seeded cases through the differential checks.

    Failures are shrunk to minimal designs and written into
    ``corpus_dir`` (when given) as replayable reproducer JSON.
    """
    summary = FuzzSummary()
    for seed in range(start_seed, start_seed + count):
        case = generate_case(seed, arch=arch, kind=kind)
        report = run_case(
            case, solver=solver, max_assignments=max_assignments
        )
        if report.ok and presolve_axis:
            axis_errors = check_presolve_axis(case, solver=solver)
            if axis_errors:
                report = CaseReport(case, "failed", errors=axis_errors)
        summary.total += 1
        summary.assignments_enumerated += report.num_assignments
        if report.status == "certified":
            summary.certified += 1
        elif report.status == "skipped":
            summary.skipped += 1
        else:
            summary.failed += 1
            shrunk = shrink_case(
                case,
                lambda c: _case_errors(
                    c, solver=solver, max_assignments=max_assignments
                ),
            )
            final = run_case(
                shrunk, solver=solver, max_assignments=max_assignments
            )
            report = final if not final.ok else report
            summary.failures.append(report)
            if corpus_dir is not None:
                summary.reproducers.append(
                    save_reproducer(
                        report.case, corpus_dir,
                        failure="; ".join(report.errors)[:500],
                    )
                )
        if progress is not None:
            progress(seed, report)
    return summary


def _case_errors(case, *, solver, max_assignments) -> list[str]:
    report = run_case(
        case, solver=solver, max_assignments=max_assignments
    )
    return report.errors if report.status == "failed" else []


def shrink_case(case: CheckCase, failing) -> CheckCase:
    """Greedy structural shrink: drop nets/instances while the failure
    reproduces.  ``failing(case) -> list[str]`` returns the failure
    evidence (empty = the candidate no longer fails)."""
    import copy

    doc = case_to_doc(case)

    def still_fails(candidate_doc) -> bool:
        try:
            return bool(failing(case_from_doc(candidate_doc)))
        except Exception:
            return False

    shrunk = True
    while shrunk:
        shrunk = False
        for i in range(len(doc["nets"])):
            trial = copy.deepcopy(doc)
            del trial["nets"][i]
            if still_fails(trial):
                doc = trial
                shrunk = True
                break
        if shrunk:
            continue
        for i in range(len(doc["instances"])):
            name = doc["instances"][i]["name"]
            trial = copy.deepcopy(doc)
            del trial["instances"][i]
            for net in trial["nets"]:
                net["pins"] = [
                    p for p in net["pins"] if p[0] != name
                ]
            if still_fails(trial):
                doc = trial
                shrunk = True
                break
    return case_from_doc(doc)


def replay_reproducer(
    path: str | Path, *, solver=None, max_assignments: int = 50_000
) -> CaseReport:
    """Re-run one committed reproducer through the full checks."""
    case = load_reproducer(path)
    report = run_case(
        case, solver=solver, max_assignments=max_assignments
    )
    if report.ok:
        axis_errors = check_presolve_axis(case, solver=solver)
        if axis_errors:
            report = CaseReport(case, "failed", errors=axis_errors)
    return report


# ----------------------------------------------------------- axes
def check_presolve_axis(case: CheckCase, *, solver=None) -> list[str]:
    """Presolve-on vs presolve-off must apply identical placements."""
    solver = solver if solver is not None else _certify_solver()
    design = clone_design(case.design)
    before = design.placement_snapshot()
    problem = build_window_model(
        design, case.window, case.params,
        lx=case.lx, ly=case.ly, allow_flip=case.allow_flip,
    )
    if problem is None:
        return []
    raw = solver.solve(problem.model)
    reduced = presolve(problem.model)
    lifted = reduced.lift(solver.solve(reduced.model))
    if (
        raw.status is not SolveStatus.OPTIMAL
        or lifted.status is not SolveStatus.OPTIMAL
    ):
        return []  # nothing to compare without proven optima
    apply_solution(design, problem, raw)
    raw_snapshot = design.placement_snapshot()
    design.restore_placement(before)
    apply_solution(design, problem, lifted)
    lifted_snapshot = design.placement_snapshot()
    errors: list[str] = []
    if raw_snapshot != lifted_snapshot:
        diff = [
            name
            for name in raw_snapshot
            if raw_snapshot[name] != lifted_snapshot[name]
        ]
        errors.append(
            f"presolve changed the applied placement of {diff}"
        )
    if abs(raw.objective - lifted.objective) > _TOL:
        errors.append(
            f"presolve changed the objective: raw "
            f"{raw.objective:.6f} vs lifted {lifted.objective:.6f}"
        )
    return errors


def _axis_design(arch: CellArchitecture, *, scale: float, seed: int):
    tech = make_tech(arch)
    library = build_library(tech)
    design = generate_design("aes", tech, library, scale=scale, seed=seed)
    place_design(design, seed=seed + 1)
    return design


def check_executor_axis(
    seed: int = 2,
    *,
    arch: CellArchitecture = CellArchitecture.CLOSED_M1,
    kinds: tuple[str, ...] = ("serial", "process"),
    jobs: int = 2,
    scale: float = 0.008,
) -> list[str]:
    """Same DistOpt pass across executors must match bit for bit."""
    snapshots = {}
    objectives = {}
    for kind in kinds:
        design = _axis_design(arch, scale=scale, seed=seed)
        params = OptParams.for_arch(arch, time_limit=30.0)
        with make_executor(kind, jobs) as executor:
            result = dist_opt(
                design, params, tx=0, ty=0, bw=1250, bh=1080,
                lx=3, ly=1, allow_flip=False, executor=executor,
            )
        snapshots[kind] = design.placement_snapshot()
        objectives[kind] = result.objective
    errors: list[str] = []
    reference = kinds[0]
    for kind in kinds[1:]:
        if snapshots[kind] != snapshots[reference]:
            diff = [
                name
                for name in snapshots[reference]
                if snapshots[kind][name] != snapshots[reference][name]
            ]
            errors.append(
                f"executor {kind} placement differs from "
                f"{reference} on {len(diff)} cells: {diff[:5]}"
            )
        if objectives[kind] != objectives[reference]:
            errors.append(
                f"executor {kind} objective {objectives[kind]} != "
                f"{reference} objective {objectives[reference]}"
            )
    return errors


def check_dirty_onoff_axis(
    seed: int = 2,
    *,
    arch: CellArchitecture = CellArchitecture.CLOSED_M1,
    scale: float = 0.01,
) -> list[str]:
    """Dirty tracking on vs off must be byte-identical.

    Runs the full VM1Opt loop twice on identical fresh designs: once
    with dirty-window skipping + delta objective accounting (and the
    paranoid drift audit armed, so any incremental-accounting drift
    raises inside the run), once fully recomputed.  Placements must
    match bit for bit and the claimed objectives must agree to the
    float tolerance — dirty tracking is a pure go-faster switch.
    """
    params = OptParams.for_arch(arch, time_limit=5.0)
    on_design = _axis_design(arch, scale=scale, seed=seed)
    on = vm1_opt(
        on_design, params, dirty_tracking=True, objective_audit=True
    )
    off_design = _axis_design(arch, scale=scale, seed=seed)
    off = vm1_opt(off_design, params, dirty_tracking=False)
    errors: list[str] = []
    on_snapshot = on_design.placement_snapshot()
    off_snapshot = off_design.placement_snapshot()
    if on_snapshot != off_snapshot:
        diff = [
            name
            for name in off_snapshot
            if on_snapshot[name] != off_snapshot[name]
        ]
        errors.append(
            f"dirty tracking changed the placement of {len(diff)} "
            f"cells: {diff[:5]}"
        )
    if abs(on.final_objective - off.final_objective) > _TOL:
        errors.append(
            f"dirty-on objective {on.final_objective} != dirty-off "
            f"objective {off.final_objective}"
        )
    if on.iterations != off.iterations:
        errors.append(
            f"dirty-on iteration count {on.iterations} != dirty-off "
            f"{off.iterations}"
        )
    return errors


def check_chaos_axis(seed: int = 2) -> list[str]:
    """Representative fault plans must converge byte-identically.

    One plan per recovery mechanism — worker retry, solver-fault
    retry, and checkpoint resume after a barrier crash — each run
    through the full :func:`repro.chaos.runner.run_chaos_case`
    invariant ladder (convergence, legality, telemetry visibility).
    The committed corpus in ``tests/chaos/corpus/`` covers the rest;
    this axis is the CLI-reachable smoke slice.
    """
    from repro.chaos.plan import FaultPlan, FaultRule
    from repro.chaos.runner import run_chaos_case

    cases = (
        (
            "worker-raise",
            FaultRule(site="runtime.worker", action="raise", nth=2),
        ),
        (
            "milp-error",
            FaultRule(site="milp.solve", action="error", nth=1),
        ),
        (
            "barrier-resume",
            FaultRule(
                site="barrier",
                action="raise",
                nth=1,
                match="checkpoint:",
            ),
        ),
    )
    errors: list[str] = []
    for name, rule in cases:
        plan = FaultPlan(seed=seed, faults=(rule,))
        outcome = run_chaos_case(plan, seed=seed)
        errors.extend(
            f"chaos[{name}]: {error}" for error in outcome.errors
        )
    return errors


def check_resume_axis(
    seed: int = 2,
    *,
    arch: CellArchitecture = CellArchitecture.CLOSED_M1,
    scale: float = 0.01,
) -> list[str]:
    """Checkpoint-resume must reproduce the straight run exactly."""
    params = OptParams.for_arch(arch, time_limit=5.0)
    checkpoints: list[VM1Checkpoint] = []
    design = _axis_design(arch, scale=scale, seed=seed)
    straight = vm1_opt(
        design, params, checkpoint_sink=checkpoints.append
    )
    final = design.placement_snapshot()
    if not checkpoints:
        return ["straight run produced no checkpoints"]
    # Resume across a serialization boundary, like a real crash.
    cp = VM1Checkpoint.loads(checkpoints[len(checkpoints) // 2].dumps())
    resumed_design = _axis_design(arch, scale=scale, seed=seed)
    resumed = vm1_opt(resumed_design, params, resume=cp)
    errors: list[str] = []
    if resumed_design.placement_snapshot() != final:
        errors.append(
            "resumed placement differs from the straight run"
        )
    if resumed.iterations != straight.iterations:
        errors.append(
            f"resumed iteration count {resumed.iterations} != "
            f"straight {straight.iterations}"
        )
    if abs(resumed.final_objective - straight.final_objective) > _TOL:
        errors.append(
            f"resumed objective {resumed.final_objective} != "
            f"straight {straight.final_objective}"
        )
    return errors
