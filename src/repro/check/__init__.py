"""repro.check — independent verification oracle and differential
test harness.

Every other subsystem asserts correctness against the flow's *own*
code paths (``repro.core.objective``, ``Design.check_legal``).  This
package provides the independent side of those assertions:

* :mod:`repro.check.oracle` — a from-scratch placement legality
  checker and a dM1 alignment/overlap counter recomputed straight
  from raw pin shapes (no reuse of the objective code paths).
* :mod:`repro.check.brute` — an exhaustive window solver that
  enumerates every feasible candidate assignment of a small window,
  certifying MILP window solutions optimal.
* :mod:`repro.check.generators` — seeded random design/window
  generators producing adversarial cases, plus metamorphic transforms
  with known objective invariants.
* :mod:`repro.check.differential` — the harness: per-case
  MILP-vs-brute-force certification, the presolve/executor/resume
  differential axes, fuzzing with failure shrinking, and reproducer
  corpus I/O (:mod:`repro.check.serialize`).

The ``repro check`` CLI subcommand and ``tests/check/`` drive these.
"""

from repro.check.brute import BruteResult, brute_force_window
from repro.check.differential import (
    CaseReport,
    FuzzSummary,
    check_chaos_axis,
    check_dirty_onoff_axis,
    check_executor_axis,
    check_presolve_axis,
    check_resume_axis,
    fuzz,
    replay_reproducer,
    run_case,
    shrink_case,
)
from repro.check.generators import (
    CASE_KINDS,
    CheckCase,
    generate_case,
    mirror_x,
    relabel_nets,
    translate_x,
)
from repro.check.oracle import (
    check_displacement,
    check_fixed_unmoved,
    check_legal,
    oracle_alignment_stats,
    oracle_objective,
    oracle_pin_interval,
    oracle_pin_point,
)
from repro.check.serialize import (
    case_from_doc,
    case_to_doc,
    clone_design,
    load_reproducer,
    save_reproducer,
)

__all__ = [
    "BruteResult",
    "brute_force_window",
    "CaseReport",
    "FuzzSummary",
    "check_chaos_axis",
    "check_dirty_onoff_axis",
    "check_executor_axis",
    "check_presolve_axis",
    "check_resume_axis",
    "fuzz",
    "replay_reproducer",
    "run_case",
    "shrink_case",
    "CASE_KINDS",
    "CheckCase",
    "generate_case",
    "mirror_x",
    "relabel_nets",
    "translate_x",
    "check_displacement",
    "check_fixed_unmoved",
    "check_legal",
    "oracle_alignment_stats",
    "oracle_objective",
    "oracle_pin_interval",
    "oracle_pin_point",
    "case_from_doc",
    "case_to_doc",
    "clone_design",
    "load_reproducer",
    "save_reproducer",
]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.check")
