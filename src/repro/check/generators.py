"""Seeded adversarial case generators and metamorphic transforms.

A :class:`CheckCase` is one self-contained differential-test input: a
tiny hand-buildable design, a single window covering it, the solver
parameters, and the window freedom (``lx``/``ly``/``allow_flip``).
Cases are small by construction so the brute-force oracle
(:mod:`repro.check.brute`) can enumerate them exhaustively.

All randomness flows through an explicit ``random.Random(seed)``
instance — never the global ``random`` state — so the same seed always
yields the same case, byte for byte.

The adversarial ``kind`` axis targets known failure surfaces:

* ``single_site`` — a window with zero slack: the identity assignment
  is the only feasible one.
* ``all_fixed_row`` — a fully fixed row next to the movable row, so
  every cross-row candidate is blocked.
* ``dup_pin_x`` — cells stacked in one column across rows, producing
  duplicate pin x-coordinates and massive alignment-tie degeneracy.
* ``zero_overlap`` — connected cells in adjacent columns whose OpenM1
  pin intervals abut at zero-width overlap (the δ boundary).
* ``max_density`` — rows packed with no free site, leaving only
  permutation/flip moves.

The metamorphic transforms (:func:`translate_x`, :func:`mirror_x`,
:func:`relabel_nets`) each return a *new* case whose oracle objective
provably equals the original's — the property tests assert exactly
that invariance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.params import OptParams
from repro.core.window import Window
from repro.geometry import Orientation, Point, Rect
from repro.library import build_library
from repro.netlist.design import Design
from repro.tech import CellArchitecture, make_tech

CASE_KINDS: tuple[str, ...] = (
    "random",
    "single_site",
    "all_fixed_row",
    "dup_pin_x",
    "zero_overlap",
    "max_density",
)


@dataclass
class CheckCase:
    """One differential-test input (design + window + parameters)."""

    design: Design
    window: Window
    params: OptParams
    lx: int
    ly: int
    allow_flip: bool
    seed: int
    kind: str
    arch: CellArchitecture

    def describe(self) -> str:
        return (
            f"case(seed={self.seed}, arch={self.arch.value}, "
            f"kind={self.kind}, cells={len(self.design.instances)}, "
            f"nets={len(self.design.nets)}, lx={self.lx}, "
            f"ly={self.ly}, flip={self.allow_flip})"
        )


def generate_case(
    seed: int,
    arch: CellArchitecture | None = None,
    kind: str | None = None,
) -> CheckCase:
    """Deterministically generate the check case for ``seed``.

    ``arch``/``kind`` pin those axes; left None they are drawn from
    the seeded stream (so a bare seed still covers the full matrix).
    """
    rng = random.Random(seed)
    if arch is None:
        arch = rng.choice(sorted(CellArchitecture, key=lambda a: a.value))
    if kind is None:
        kind = rng.choice(CASE_KINDS)
    elif kind not in CASE_KINDS:
        raise ValueError(f"unknown case kind {kind!r}")

    tech = make_tech(arch)
    library = build_library(tech)
    # Small combinational macros keep candidate counts enumerable.
    macros = sorted(
        (m for m in library.combinational() if m.width_sites <= 5),
        key=lambda m: m.name,
    )

    builder = _CaseBuilder(rng, tech, library, macros)
    if kind == "random":
        builder.build_random()
    elif kind == "single_site":
        builder.build_single_site()
    elif kind == "all_fixed_row":
        builder.build_all_fixed_row()
    elif kind == "dup_pin_x":
        builder.build_dup_pin_x()
    elif kind == "zero_overlap":
        builder.build_zero_overlap()
    else:
        builder.build_max_density()
    design, lx, ly, allow_flip = builder.finish(seed, kind)

    params = OptParams.for_arch(arch)
    window = Window(0, 0, design.die)
    return CheckCase(
        design=design,
        window=window,
        params=params,
        lx=lx,
        ly=ly,
        allow_flip=allow_flip,
        seed=seed,
        kind=kind,
        arch=arch,
    )


class _CaseBuilder:
    """Places cells row by row and wires small nets over them."""

    def __init__(self, rng, tech, library, macros) -> None:
        self.rng = rng
        self.tech = tech
        self.library = library
        self.macros = macros
        self.design: Design | None = None
        self.lx = 1
        self.ly = 0
        self.allow_flip = True
        self._counter = 0

    # ------------------------------------------------------- scaffolding
    def _new_design(self, ncols: int, nrows: int) -> Design:
        die = Rect(
            0,
            0,
            ncols * self.tech.site_width,
            nrows * self.tech.row_height,
        )
        self.design = Design("check", self.tech, die)
        self.ncols = ncols
        self.nrows = nrows
        return self.design

    def _add_cell(
        self,
        macro,
        column: int,
        row: int,
        *,
        fixed: bool = False,
        flipped: bool | None = None,
    ) -> str:
        name = f"u{self._counter}"
        self._counter += 1
        inst = self.design.add_instance(name, macro)
        inst.fixed = fixed
        if flipped is None:
            flipped = self.rng.random() < 0.5
        self.design.place(name, column, row, flipped)
        return name

    def _pick_macro(self, max_sites: int):
        fits = [m for m in self.macros if m.width_sites <= max_sites]
        return self.rng.choice(fits) if fits else None

    def _fill_row(
        self,
        row: int,
        *,
        count: int,
        gap: tuple[int, int],
        fixed: bool = False,
        start: int = 0,
    ) -> list[str]:
        """Place up to ``count`` cells left to right with random gaps."""
        names: list[str] = []
        col = start
        for _ in range(count):
            col += self.rng.randint(*gap)
            macro = self._pick_macro(self.ncols - col)
            if macro is None:
                break
            names.append(
                self._add_cell(macro, col, row, fixed=fixed)
            )
            col += macro.width_sites
        return names

    def _pack_row(self, row: int, *, fixed: bool = False) -> list[str]:
        """Fill ``row`` completely — no free site remains."""
        names: list[str] = []
        col = 0
        while col < self.ncols:
            macro = self._pick_macro(self.ncols - col)
            if macro is None:
                # No macro narrow enough for the tail gap: plug it
                # with the narrowest macro that exists, if any fits.
                break
            names.append(self._add_cell(macro, col, row, fixed=fixed))
            col += macro.width_sites
        return names

    # ------------------------------------------------------- wiring
    def _wire(self, groups: list[list[str]], pad_prob: float = 0.3) -> None:
        """Create one net per instance group, plus optional pads."""
        design = self.design
        free: dict[str, list[str]] = {}
        for name, inst in design.instances.items():
            free[name] = [
                p.name
                for p in (
                    inst.macro.output_pins + inst.macro.input_pins
                )
            ]
        net_idx = 0
        for group in groups:
            members = [n for n in group if free.get(n)]
            if len(members) < 2 and not members:
                continue
            net_name = f"n{net_idx}"
            net_idx += 1
            net = design.add_net(net_name)
            for name in members:
                pin = free[name].pop(0)
                design.connect(net_name, name, pin)
            if self.rng.random() < pad_prob or len(members) < 2:
                die = design.die
                net.pads.append(
                    Point(
                        self.rng.randrange(die.xlo, die.xhi),
                        self.rng.choice((die.ylo, die.yhi)),
                    )
                )

    def _random_groups(
        self, names: list[str], num_nets: int
    ) -> list[list[str]]:
        groups = []
        for _ in range(num_nets):
            if len(names) < 2:
                groups.append(list(names))  # pad-anchored single pin
                continue
            size = self.rng.randint(2, min(3, len(names)))
            groups.append(self.rng.sample(names, size))
        return groups

    # ------------------------------------------------------- kinds
    def build_random(self) -> None:
        nrows = self.rng.randint(1, 2)
        self._new_design(self.rng.randint(10, 14), nrows)
        names: list[str] = []
        for row in range(nrows):
            names += self._fill_row(
                row, count=self.rng.randint(1, 2), gap=(0, 2)
            )
        if len(names) > 1 and self.rng.random() < 0.4:
            self.design.instances[self.rng.choice(names)].fixed = True
        self._wire(self._random_groups(names, self.rng.randint(1, 3)))
        self.lx = self.rng.randint(1, 2)
        self.ly = 1 if nrows > 1 else 0
        self.allow_flip = self.rng.random() < 0.7

    def build_single_site(self) -> None:
        # Die exactly one cell wide: the identity is the only candidate.
        macro = self.rng.choice(self.macros)
        self._new_design(macro.width_sites, 1)
        name = self._add_cell(macro, 0, 0)
        self._wire([[name]])  # pad-anchored net
        self.lx = self.rng.randint(1, 3)
        self.ly = 0
        self.allow_flip = self.rng.random() < 0.5

    def build_all_fixed_row(self) -> None:
        self._new_design(self.rng.randint(10, 12), 2)
        self._pack_row(0, fixed=True)
        movers = self._fill_row(1, count=2, gap=(0, 2))
        fixed_names = [
            n for n, i in self.design.instances.items() if i.fixed
        ]
        groups = [
            [m, self.rng.choice(fixed_names)] for m in movers
        ]
        if len(movers) >= 2:
            groups.append(movers[:2])
        self._wire(groups)
        self.lx = 2
        self.ly = 1  # cross-row candidates exist but are all blocked
        self.allow_flip = True

    def build_dup_pin_x(self) -> None:
        # Same macro stacked in one column across rows: duplicate pin
        # x-coordinates and heavy alignment-tie degeneracy.
        macro = self.rng.choice(self.macros)
        self._new_design(macro.width_sites + self.rng.randint(2, 4), 2)
        col = self.rng.randint(0, self.ncols - macro.width_sites)
        a = self._add_cell(macro, col, 0, flipped=False)
        b = self._add_cell(macro, col, 1, flipped=False)
        self._wire([[a, b], [a, b]])
        self.lx = self.rng.randint(1, 2)
        self.ly = self.rng.randint(0, 1)
        self.allow_flip = True

    def build_zero_overlap(self) -> None:
        # Adjacent columns: pin stripes/bars one track apart, so the
        # x-interval overlap of connected pins sits at the 0/δ edge.
        macro = self.rng.choice(self.macros)
        ncols = 2 * macro.width_sites + 2
        self._new_design(ncols, 1)
        a = self._add_cell(macro, 0, 0, flipped=False)
        b = self._add_cell(macro, macro.width_sites, 0, flipped=False)
        self._wire([[a, b]])
        self.lx = 1
        self.ly = 0
        self.allow_flip = self.rng.random() < 0.5

    def build_max_density(self) -> None:
        self._new_design(self.rng.randint(8, 10), self.rng.randint(1, 2))
        names: list[str] = []
        for row in range(self.nrows):
            names += self._pack_row(row)
        # Keep the enumeration small: at most 3 movable cells.
        for extra in names[3:]:
            self.design.instances[extra].fixed = True
        self._wire(self._random_groups(names, 2))
        self.lx = 3  # real freedom is bounded by density anyway
        self.ly = self.nrows - 1
        self.allow_flip = True

    def finish(self, seed: int, kind: str):
        design = self.design
        errors = design.check_legal()
        if errors:  # builder bug, not a test failure
            raise AssertionError(
                f"generator produced illegal case (seed={seed}, "
                f"kind={kind}): {errors[:3]}"
            )
        return design, self.lx, self.ly, self.allow_flip


# ------------------------------------------------- metamorphic transforms
def _copy_case(case: CheckCase) -> CheckCase:
    """Deep-copy a case (fresh Design; macros/tech shared, immutable)."""
    old = case.design
    new = Design(old.name, old.tech, old.die)
    for name, inst in old.instances.items():
        clone = new.add_instance(name, inst.macro)
        clone.x, clone.y = inst.x, inst.y
        clone.orientation = inst.orientation
        clone.fixed = inst.fixed
    for net_name, net in old.nets.items():
        new.add_net(net_name)
        for ref in net.pins:
            new.connect(net_name, ref.instance, ref.pin)
        new.nets[net_name].pads.extend(net.pads)
    return CheckCase(
        design=new,
        window=case.window,
        params=case.params,
        lx=case.lx,
        ly=case.ly,
        allow_flip=case.allow_flip,
        seed=case.seed,
        kind=case.kind,
        arch=case.arch,
    )


def translate_x(case: CheckCase, sites: int) -> CheckCase:
    """Shift the whole case right by ``sites`` whole sites.

    Objective invariant: HPWL, alignment, and overlap are all
    translation-invariant, so the oracle objective must not change.
    """
    dx = sites * case.design.tech.site_width
    moved = _copy_case(case)
    d = moved.design
    d.die = Rect(d.die.xlo + dx, d.die.ylo, d.die.xhi + dx, d.die.yhi)
    for inst in d.instances.values():
        inst.x += dx
    for net in d.nets.values():
        net.pads = [Point(p.x + dx, p.y) for p in net.pads]
    rect = case.window.rect
    moved.window = Window(
        case.window.ix,
        case.window.iy,
        Rect(rect.xlo + dx, rect.ylo, rect.xhi + dx, rect.yhi),
    )
    return moved


def mirror_x(case: CheckCase) -> CheckCase:
    """Mirror the whole case about the die's vertical center line.

    Every cell origin maps to ``xlo + xhi − (x + width)`` with its
    orientation x-flipped; pads mirror likewise.  Objective invariant:
    mirroring preserves pairwise x-distances, x-equality, and interval
    overlap lengths, so the oracle objective must not change.
    """
    mirrored = _copy_case(case)
    d = mirrored.design
    pivot = d.die.xlo + d.die.xhi
    for inst in d.instances.values():
        inst.x = pivot - (inst.x + inst.width)
        inst.orientation = inst.orientation.flipped()
    for net in d.nets.values():
        net.pads = [Point(pivot - p.x, p.y) for p in net.pads]
    rect = case.window.rect
    mirrored.window = Window(
        case.window.ix,
        case.window.iy,
        Rect(pivot - rect.xhi, rect.ylo, pivot - rect.xlo, rect.yhi),
    )
    return mirrored


def relabel_nets(case: CheckCase, seed: int = 0) -> CheckCase:
    """Permute net names with a seeded shuffle.

    Objective invariant: with uniform β (``params.net_beta is None``)
    the objective is blind to net identity, so a pure renaming must
    not change it.
    """
    old = case.design
    names = sorted(old.nets)
    shuffled = list(names)
    random.Random(seed).shuffle(shuffled)
    mapping = dict(zip(names, shuffled))

    new = Design(old.name, old.tech, old.die)
    for name, inst in old.instances.items():
        clone = new.add_instance(name, inst.macro)
        clone.x, clone.y = inst.x, inst.y
        clone.orientation = inst.orientation
        clone.fixed = inst.fixed
    for net_name in names:
        new.add_net(mapping[net_name])
    for net_name in names:
        net = old.nets[net_name]
        for ref in net.pins:
            new.connect(mapping[net_name], ref.instance, ref.pin)
        new.nets[mapping[net_name]].pads.extend(net.pads)
    return CheckCase(
        design=new,
        window=case.window,
        params=case.params,
        lx=case.lx,
        ly=case.ly,
        allow_flip=case.allow_flip,
        seed=case.seed,
        kind=case.kind,
        arch=case.arch,
    )
