"""Exhaustive window solver: the optimality oracle for window MILPs.

Enumerates *every* feasible assignment of SCP candidates to the
window's movable cells (single- or multi-row, respecting site
occupancy against blocked sites and each other) and evaluates the true
local objective per assignment.  The candidate sets come from
:func:`repro.core.scp.enumerate_candidates` — they *define* the
problem the MILP solves — but feasibility, geometry, and the objective
are all recomputed here from first principles (via
:mod:`repro.check.oracle` pin geometry), so a formulation bug (wrong
big-M, missing constraint, mis-signed reward) makes the MILP and the
enumeration disagree.

Only small windows are tractable; :func:`brute_force_window` refuses
(returns None) rather than silently truncating when the assignment
count would exceed ``max_assignments``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.check.oracle import oracle_pin_interval, oracle_pin_point
from repro.core.params import OptParams
from repro.core.scp import Candidate, enumerate_candidates
from repro.core.window import Window
from repro.netlist.design import Design, Net
from repro.tech.arch import AlignmentMode


@dataclass
class BruteResult:
    """Outcome of one exhaustive window enumeration."""

    objective: float
    assignment: dict[str, Candidate]
    num_assignments: int
    num_movable: int
    nets: list[str]


def brute_force_window(
    design: Design,
    window: Window,
    params: OptParams,
    *,
    lx: int,
    ly: int,
    allow_flip: bool,
    max_assignments: int = 50_000,
) -> BruteResult | None:
    """Certify-grade exhaustive solve of one window.

    Returns the best achievable local objective (same local-net scope
    the MILP optimizes) over all feasible assignments, or None when the
    window has no movable cell or the search space exceeds
    ``max_assignments`` complete assignments.

    The design is left exactly as it was found.
    """
    movable = [
        inst
        for inst in design.instances_in(window.rect)
        if not inst.fixed
    ]
    if not movable:
        return None
    movable_names = [inst.name for inst in movable]
    movable_set = set(movable_names)

    # Blocked sites: every (row, column) footprinted by a cell the
    # window may not move, over the whole die (a superset of what any
    # candidate can collide with — membership tests are cheap).
    blocked: set[tuple[int, int]] = set()
    for name, inst in design.instances.items():
        if name in movable_set:
            continue
        row = design.row_of(inst)
        col = design.column_of(inst)
        for c in range(col, col + inst.macro.width_sites):
            blocked.add((row, c))

    cand_lists: list[list[Candidate]] = []
    for inst in movable:
        cands = [
            cand
            for cand in enumerate_candidates(
                design, inst, window.rect, lx=lx, ly=ly,
                allow_flip=allow_flip,
            )
            if blocked.isdisjoint(cand.sites)
        ]
        if not cands:
            return None  # mirrors build_window_model's give-up path
        cand_lists.append(cands)

    upper_bound = 1
    for cands in cand_lists:
        upper_bound *= len(cands)
        if upper_bound > max_assignments:
            return None

    nets = [
        net
        for net in design.nets_of_instances(movable_set)
        if net.degree >= 2
    ]
    evaluator = _WindowEvaluator(
        design, params, nets, movable_names, cand_lists
    )

    best_obj = float("inf")
    best: list[int] = []
    current: list[int] = [0] * len(movable)
    occupied: set[tuple[int, int]] = set()
    count = 0

    def descend(depth: int) -> None:
        nonlocal best_obj, best, count
        if depth == len(cand_lists):
            count += 1
            obj = evaluator.evaluate(current)
            if obj < best_obj - 1e-12:
                best_obj = obj
                best = list(current)
            return
        for k, cand in enumerate(cand_lists[depth]):
            if not occupied.isdisjoint(cand.sites):
                continue
            occupied.update(cand.sites)
            current[depth] = k
            descend(depth + 1)
            occupied.difference_update(cand.sites)

    descend(0)
    if not best:
        return None  # every assignment had a site conflict
    assignment = {
        name: cand_lists[i][best[i]]
        for i, name in enumerate(movable_names)
    }
    return BruteResult(
        objective=best_obj,
        assignment=assignment,
        num_assignments=count,
        num_movable=len(movable),
        nets=[net.name for net in nets],
    )


class _WindowEvaluator:
    """Fast exact local-objective evaluation over candidate indices.

    Pin geometry per (cell, candidate) is precomputed once through the
    oracle's shape-derived transforms; evaluating an assignment is then
    pure arithmetic.  ``evaluate`` must equal
    :func:`repro.check.oracle.oracle_objective` on the applied
    placement restricted to the same nets — the differential harness
    asserts exactly that cross-check on every certified case.
    """

    def __init__(
        self,
        design: Design,
        params: OptParams,
        nets: list[Net],
        movable_names: list[str],
        cand_lists: list[list[Candidate]],
    ) -> None:
        self.params = params
        self.mode = design.tech.arch.alignment_mode
        self.span = params.gamma * design.tech.row_height
        index_of = {name: i for i, name in enumerate(movable_names)}

        # _tables[(cell_idx, pin)][cand_idx] -> (x, y, lo, hi)
        self._tables: dict[
            tuple[int, str], list[tuple[int, int, int, int]]
        ] = {}

        def movable_geometry(cell_idx: int, pin_name: str):
            key = (cell_idx, pin_name)
            if key in self._tables:
                return self._tables[key]
            inst = design.instances[movable_names[cell_idx]]
            saved = (inst.x, inst.y, inst.orientation)
            rows = []
            for cand in cand_lists[cell_idx]:
                inst.x, inst.y = cand.x, cand.y
                inst.orientation = cand.orientation
                x, y = oracle_pin_point(inst, pin_name)
                lo, hi = oracle_pin_interval(inst, pin_name)
                rows.append((x, y, lo, hi))
            inst.x, inst.y, inst.orientation = saved
            self._tables[key] = rows
            return rows

        # Per net: β weight, fixed-terminal extremes, movable refs.
        self.net_terms: list[
            tuple[float, tuple | None, list[tuple[int, str]]]
        ] = []
        # Alignment pairs: each endpoint is either a constant geometry
        # tuple (fixed terminal) or a movable (cell_idx, pin) key.
        self.pairs: list[tuple[object, object]] = []
        self.fixed_objective = 0.0

        count_align = (
            self.mode is not AlignmentMode.NONE and params.alpha > 0
        )
        for net in nets:
            beta = params.beta_of(net.name)
            fixed_xs = [p.x for p in net.pads]
            fixed_ys = [p.y for p in net.pads]
            # Endpoint: (inst_name, geometry tuple | (cell_idx, pin))
            terminals: list[tuple[str, object, bool]] = []
            movable_refs: list[tuple[int, str]] = []
            for ref in net.pins:
                cell_idx = index_of.get(ref.instance)
                if cell_idx is None:
                    inst = design.instances[ref.instance]
                    x, y = oracle_pin_point(inst, ref.pin)
                    lo, hi = oracle_pin_interval(inst, ref.pin)
                    fixed_xs.append(x)
                    fixed_ys.append(y)
                    terminals.append(
                        (ref.instance, (x, y, lo, hi), True)
                    )
                else:
                    movable_geometry(cell_idx, ref.pin)
                    movable_refs.append((cell_idx, ref.pin))
                    terminals.append(
                        (ref.instance, (cell_idx, ref.pin), False)
                    )
            fixed_ext = (
                (
                    min(fixed_xs),
                    max(fixed_xs),
                    min(fixed_ys),
                    max(fixed_ys),
                )
                if fixed_xs
                else None
            )
            self.net_terms.append((beta, fixed_ext, movable_refs))
            if not count_align:
                continue
            if not 2 <= net.degree <= params.max_net_degree:
                continue
            for i in range(len(terminals)):
                inst_i, geo_i, const_i = terminals[i]
                for j in range(i + 1, len(terminals)):
                    inst_j, geo_j, const_j = terminals[j]
                    if inst_i == inst_j:
                        continue
                    if const_i and const_j:
                        # Fixed-fixed: assignment-independent.
                        self.fixed_objective -= self._pair_reward(
                            geo_i, geo_j
                        )
                    else:
                        self.pairs.append(
                            (
                                geo_i if const_i else ("var", geo_i),
                                geo_j if const_j else ("var", geo_j),
                            )
                        )

    def _pair_reward(self, p, q) -> float:
        """α/ε reward one concrete pin-geometry pair earns."""
        px, py, plo, phi = p
        qx, qy, qlo, qhi = q
        if abs(py - qy) > self.span:
            return 0.0
        if self.mode is AlignmentMode.ALIGN:
            return self.params.alpha if px == qx else 0.0
        overlap = min(phi, qhi) - max(plo, qlo)
        if overlap < self.params.delta:
            return 0.0
        return self.params.alpha + self.params.epsilon * (
            overlap - self.params.delta
        )

    def evaluate(self, choice: list[int]) -> float:
        """Exact local objective for candidate indices ``choice``."""
        total = self.fixed_objective
        for beta, fixed_ext, movable_refs in self.net_terms:
            if fixed_ext is not None:
                min_x, max_x, min_y, max_y = fixed_ext
            else:
                cell_idx, pin = movable_refs[0]
                x, y, _, _ = self._geo(cell_idx, pin, choice)
                min_x = max_x = x
                min_y = max_y = y
            for cell_idx, pin in movable_refs:
                x, y, _, _ = self._geo(cell_idx, pin, choice)
                if x < min_x:
                    min_x = x
                elif x > max_x:
                    max_x = x
                if y < min_y:
                    min_y = y
                elif y > max_y:
                    max_y = y
            total += beta * ((max_x - min_x) + (max_y - min_y))
        for geo_p, geo_q in self.pairs:
            if geo_p[0] == "var":
                cell_idx, pin = geo_p[1]
                geo_p = self._tables[(cell_idx, pin)][choice[cell_idx]]
            if geo_q[0] == "var":
                cell_idx, pin = geo_q[1]
                geo_q = self._tables[(cell_idx, pin)][choice[cell_idx]]
            total -= self._pair_reward(geo_p, geo_q)
        return total

    def _geo(self, cell_idx: int, pin: str, choice: list[int]):
        return self._tables[(cell_idx, pin)][choice[cell_idx]]
