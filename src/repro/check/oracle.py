"""Independent verification oracles.

Everything here is deliberately re-derived from first principles —
raw macro pin shapes, DEF orientation semantics, and the paper's
definitions — without touching the production code paths it checks
(``repro.core.objective``, ``Design.check_legal``, the MILP pin
expressions).  If a bug creeps into the optimizer's geometry or
objective bookkeeping, the oracle disagrees and the differential
harness flags it; a bug would have to be introduced *twice*, in two
structurally different implementations, to slip through.

Conventions mirrored from the production contract (documented in
``repro.geometry.orientation``): only the x mirror of an orientation
moves pin geometry — N/FS row alternation leaves the cell-relative
pin access point unchanged because ClosedM1 pins span the cell
vertically and OpenM1 overlap is an x-projection predicate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import OptParams
from repro.netlist.design import Design, Instance, Net
from repro.tech.arch import AlignmentMode


@dataclass(frozen=True)
class OracleStats:
    """Independently recomputed alignment statistics."""

    num_aligned: int
    total_overlap: int


# ------------------------------------------------------- pin geometry
def oracle_pin_point(inst: Instance, pin_name: str) -> tuple[int, int]:
    """Absolute pin access point, recomputed from the raw access shape.

    The access point is the center of the pin's first (access) shape,
    x-mirrored when the orientation flips the cell — computed here
    directly from the shape rectangle instead of through the cached
    ``x_rel``/``pin_position`` helpers the optimizer uses.
    """
    shape = inst.macro.pins[pin_name].shapes[0]
    rect = shape.rect
    cx = (rect.xlo + rect.xhi) // 2
    cy = (rect.ylo + rect.yhi) // 2
    if inst.orientation.value in ("FN", "S"):  # x-mirrored orients
        cx = inst.macro.width - cx
    return inst.x + cx, inst.y + cy


def oracle_pin_interval(
    inst: Instance, pin_name: str
) -> tuple[int, int]:
    """Absolute x-extent ``[lo, hi]`` of the pin access shape."""
    rect = inst.macro.pins[pin_name].shapes[0].rect
    lo, hi = rect.xlo, rect.xhi
    if inst.orientation.value in ("FN", "S"):
        lo, hi = inst.macro.width - hi, inst.macro.width - lo
    return inst.x + lo, inst.x + hi


# ----------------------------------------------------------- legality
def check_legal(design: Design) -> list[str]:
    """Independent placement legality check; returns violations.

    Re-derives every rule from the technology definition: origins on
    the site/row grid, footprints inside the die, row-parity-legal
    orientations (even rows N/FN, odd rows FS/S), and no two cells
    sharing any (row, site) — the overlap test works on exact site
    occupancy rather than the production checker's per-row x sweep.
    """
    errors: list[str] = []
    tech = design.tech
    die = design.die
    occupancy: dict[tuple[int, int], str] = {}
    for name in sorted(design.instances):
        inst = design.instances[name]
        dx = inst.x - die.xlo
        dy = inst.y - die.ylo
        if dx % tech.site_width:
            errors.append(f"{name}: x={inst.x} not on site grid")
        if dy % tech.row_height:
            errors.append(f"{name}: y={inst.y} not on row grid")
        if inst.height != tech.row_height:
            errors.append(f"{name}: height {inst.height} != row height")
        if (
            inst.x < die.xlo
            or inst.y < die.ylo
            or inst.x + inst.width > die.xhi
            or inst.y + inst.height > die.yhi
        ):
            errors.append(f"{name}: footprint outside die")
            continue
        if dx % tech.site_width or dy % tech.row_height:
            continue  # occupancy below assumes on-grid coordinates
        row = dy // tech.row_height
        odd_row = bool(row % 2)
        y_mirrored = inst.orientation.value in ("FS", "S")
        if y_mirrored != odd_row:
            errors.append(
                f"{name}: orientation {inst.orientation.value} "
                f"illegal in row {row}"
            )
        col0 = dx // tech.site_width
        for col in range(col0, col0 + inst.width // tech.site_width):
            other = occupancy.get((row, col))
            if other is not None:
                errors.append(
                    f"site ({row},{col}) occupied by both "
                    f"{other} and {name}"
                )
            else:
                occupancy[(row, col)] = name
    return errors


def check_fixed_unmoved(
    design: Design,
    before: dict[str, tuple[int, int, object]],
) -> list[str]:
    """Verify no fixed instance moved relative to ``before``.

    ``before`` is a :meth:`Design.placement_snapshot` taken before the
    optimization step under test.
    """
    errors: list[str] = []
    for name in sorted(design.instances):
        inst = design.instances[name]
        if not inst.fixed:
            continue
        x0, y0, orient0 = before[name]
        if (inst.x, inst.y, inst.orientation) != (x0, y0, orient0):
            errors.append(
                f"fixed cell {name} moved from ({x0},{y0},"
                f"{getattr(orient0, 'value', orient0)}) to "
                f"({inst.x},{inst.y},{inst.orientation.value})"
            )
    return errors


def check_displacement(
    design: Design,
    before: dict[str, tuple[int, int, object]],
    movable: list[str],
    window_rect,
    *,
    lx: int,
    ly: int,
    allow_flip: bool,
) -> list[str]:
    """Verify the window contract on every movable cell.

    Each movable cell must stay within ``lx`` sites / ``ly`` rows of
    its pre-solve position, keep its footprint inside the window, and
    only change flip state when ``allow_flip`` is set.  Cells *not*
    listed in ``movable`` must be exactly where they were.
    """
    errors: list[str] = []
    tech = design.tech
    movable_set = set(movable)
    for name in sorted(design.instances):
        inst = design.instances[name]
        x0, y0, orient0 = before[name]
        if name not in movable_set:
            if (inst.x, inst.y, inst.orientation) != (x0, y0, orient0):
                errors.append(f"non-window cell {name} moved")
            continue
        dcol = abs(inst.x - x0) // tech.site_width
        drow = abs(inst.y - y0) // tech.row_height
        if dcol > lx:
            errors.append(
                f"{name}: moved {dcol} sites in x (limit {lx})"
            )
        if drow > ly:
            errors.append(
                f"{name}: moved {drow} rows in y (limit {ly})"
            )
        flip0 = getattr(orient0, "value", str(orient0)) in ("FN", "S")
        flip1 = inst.orientation.value in ("FN", "S")
        if flip0 != flip1 and not allow_flip:
            errors.append(f"{name}: flipped with allow_flip=False")
        if not (
            window_rect.xlo <= inst.x
            and window_rect.ylo <= inst.y
            and inst.x + inst.width <= window_rect.xhi
            and inst.y + inst.height <= window_rect.yhi
        ):
            errors.append(f"{name}: escaped the window rect")
    return errors


# ------------------------------------------------ alignment / objective
def _countable_pairs(net: Net):
    """Same-net pin pairs on distinct instances, in index order."""
    pins = net.pins
    for i in range(len(pins)):
        for j in range(i + 1, len(pins)):
            if pins[i].instance != pins[j].instance:
                yield pins[i], pins[j]


def oracle_alignment_stats(
    design: Design,
    params: OptParams,
    nets: list[Net] | None = None,
) -> OracleStats:
    """Count dM1 alignments/overlaps straight from pin shapes.

    Semantics follow the paper: ClosedM1 counts same-net pin pairs on
    distinct cells with identical access-point x within the γ-row
    vertical span; OpenM1 counts pairs whose access-shape x-extents
    overlap by at least δ within the span, accumulating the overlap
    beyond δ.  Nets outside ``[2, max_net_degree]`` terminals are
    ignored, matching the formulation's pruning.
    """
    mode = design.tech.arch.alignment_mode
    if mode is AlignmentMode.NONE:
        return OracleStats(0, 0)
    if nets is None:
        nets = [design.nets[n] for n in sorted(design.nets)]
    span = params.gamma * design.tech.row_height
    aligned = 0
    overlap_total = 0
    for net in nets:
        if not 2 <= net.degree <= params.max_net_degree:
            continue
        for ref_p, ref_q in _countable_pairs(net):
            inst_p = design.instances[ref_p.instance]
            inst_q = design.instances[ref_q.instance]
            px, py = oracle_pin_point(inst_p, ref_p.pin)
            qx, qy = oracle_pin_point(inst_q, ref_q.pin)
            if abs(py - qy) > span:
                continue
            if mode is AlignmentMode.ALIGN:
                if px == qx:
                    aligned += 1
            else:
                p_lo, p_hi = oracle_pin_interval(inst_p, ref_p.pin)
                q_lo, q_hi = oracle_pin_interval(inst_q, ref_q.pin)
                overlap = min(p_hi, q_hi) - max(p_lo, q_lo)
                if overlap >= params.delta:
                    aligned += 1
                    overlap_total += overlap - params.delta
    return OracleStats(aligned, overlap_total)


def oracle_net_hpwl(design: Design, net: Net) -> int:
    """Net HPWL recomputed from oracle pin points and pad locations."""
    xs: list[int] = [p.x for p in net.pads]
    ys: list[int] = [p.y for p in net.pads]
    for ref in net.pins:
        x, y = oracle_pin_point(
            design.instances[ref.instance], ref.pin
        )
        xs.append(x)
        ys.append(y)
    if len(xs) < 2:
        return 0
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def oracle_objective(
    design: Design,
    params: OptParams,
    nets: list[Net] | None = None,
) -> float:
    """The paper's objective β·HPWL − α·#align − ε·overlap, recomputed
    independently (see :func:`oracle_alignment_stats`)."""
    if nets is None:
        nets = [design.nets[n] for n in sorted(design.nets)]
    stats = oracle_alignment_stats(design, params, nets)
    hpwl = sum(
        params.beta_of(net.name) * oracle_net_hpwl(design, net)
        for net in nets
        if net.degree >= 2
    )
    objective = hpwl - params.alpha * stats.num_aligned
    if design.tech.arch.alignment_mode is AlignmentMode.OVERLAP:
        objective -= params.epsilon * stats.total_overlap
    return objective
