"""Reproducer JSON serialization for check cases.

A reproducer captures everything needed to re-run one failing (or
interesting) :class:`~repro.check.generators.CheckCase` without the
generator: the full placement, netlist, window, and the solver knobs.
Macros are referenced by name and rebuilt from the deterministic
library generator, which keeps the documents small and the schema
stable across library-internal changes.

Schema: ``repro.check.case/v1``.  Documents live in the committed
corpus at ``tests/check/corpus/`` and are replayed by
``tests/check/test_corpus.py`` and ``repro check --replay``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.check.generators import CheckCase
from repro.core.params import OptParams
from repro.core.window import Window
from repro.geometry import Orientation, Point, Rect
from repro.library import build_library
from repro.netlist.design import Design
from repro.tech import CellArchitecture, make_tech

SCHEMA = "repro.check.case/v1"


def case_to_doc(case: CheckCase, failure: str | None = None) -> dict:
    """Serialize ``case`` to a plain-JSON document."""
    design = case.design
    doc = {
        "schema": SCHEMA,
        "seed": case.seed,
        "kind": case.kind,
        "arch": case.arch.value,
        "die": _rect_to_list(design.die),
        "window": {
            "ix": case.window.ix,
            "iy": case.window.iy,
            "rect": _rect_to_list(case.window.rect),
        },
        "lx": case.lx,
        "ly": case.ly,
        "allow_flip": case.allow_flip,
        "params": {
            "alpha": case.params.alpha,
            "beta": case.params.beta,
            "gamma": case.params.gamma,
            "delta": case.params.delta,
            "epsilon": case.params.epsilon,
            "max_net_degree": case.params.max_net_degree,
        },
        "instances": [
            {
                "name": name,
                "macro": inst.macro.name,
                "x": inst.x,
                "y": inst.y,
                "orientation": inst.orientation.value,
                "fixed": inst.fixed,
            }
            for name, inst in sorted(design.instances.items())
        ],
        "nets": [
            {
                "name": name,
                "pins": [
                    [ref.instance, ref.pin] for ref in net.pins
                ],
                "pads": [[p.x, p.y] for p in net.pads],
            }
            for name, net in sorted(design.nets.items())
        ],
    }
    if failure is not None:
        doc["failure"] = failure
    return doc


def case_from_doc(doc: dict) -> CheckCase:
    """Rebuild a :class:`CheckCase` from a ``case_to_doc`` document."""
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"not a {SCHEMA} document (schema={doc.get('schema')!r})"
        )
    arch = CellArchitecture(doc["arch"])
    tech = make_tech(arch)
    library = build_library(tech)
    design = Design("check", tech, _rect_from_list(doc["die"]))
    for spec in doc["instances"]:
        inst = design.add_instance(
            spec["name"], library.macro(spec["macro"])
        )
        inst.x = spec["x"]
        inst.y = spec["y"]
        inst.orientation = Orientation(spec["orientation"])
        inst.fixed = spec["fixed"]
    for net_spec in doc["nets"]:
        net = design.add_net(net_spec["name"])
        for instance, pin in net_spec["pins"]:
            design.connect(net_spec["name"], instance, pin)
        net.pads.extend(Point(x, y) for x, y in net_spec["pads"])
    p = doc["params"]
    params = OptParams.for_arch(
        arch,
        alpha=p["alpha"],
        beta=p["beta"],
        gamma=p["gamma"],
        delta=p["delta"],
        epsilon=p["epsilon"],
        max_net_degree=p["max_net_degree"],
    )
    win = doc["window"]
    return CheckCase(
        design=design,
        window=Window(
            win["ix"], win["iy"], _rect_from_list(win["rect"])
        ),
        params=params,
        lx=doc["lx"],
        ly=doc["ly"],
        allow_flip=doc["allow_flip"],
        seed=doc["seed"],
        kind=doc["kind"],
        arch=arch,
    )


def clone_design(design: Design) -> Design:
    """Independent deep copy of a design (macros/tech shared)."""
    new = Design(design.name, design.tech, design.die)
    for name, inst in design.instances.items():
        clone = new.add_instance(name, inst.macro)
        clone.x, clone.y = inst.x, inst.y
        clone.orientation = inst.orientation
        clone.fixed = inst.fixed
    for net_name, net in design.nets.items():
        new.add_net(net_name)
        for ref in net.pins:
            new.connect(net_name, ref.instance, ref.pin)
        new.nets[net_name].pads.extend(net.pads)
    return new


def save_reproducer(
    case: CheckCase, directory: str | Path, failure: str
) -> Path:
    """Write a reproducer document into the corpus ``directory``.

    The filename encodes seed/arch/kind, so re-running the same
    failure overwrites rather than accumulating duplicates.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (
        f"case-{case.seed}-{case.arch.value}-{case.kind}.json"
    )
    doc = case_to_doc(case, failure=failure)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_reproducer(path: str | Path) -> CheckCase:
    """Load one reproducer JSON back into a replayable case."""
    doc = json.loads(Path(path).read_text())
    return case_from_doc(doc)


def _rect_to_list(rect: Rect) -> list[int]:
    return [rect.xlo, rect.ylo, rect.xhi, rect.yhi]


def _rect_from_list(vals) -> Rect:
    return Rect(*vals)
