"""Single-cell-placement (SCP) candidate enumeration.

Each candidate λ of a cell bundles a concrete (column, row, flip)
choice — exactly the SCP variable of [Li & Koh] the paper adopts:
coordinates x_c^k / y_c^k, orientation f_c^k, and the occupied sites
s_crq^k all become constants once the candidate is fixed, leaving a
pure binary selection problem.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Orientation, Rect
from repro.netlist.design import Design, Instance


@dataclass(frozen=True)
class Candidate:
    """One legal (column, row, flip) choice for a cell.

    Attributes:
        column: absolute site column of the cell's left edge.
        row: absolute row index.
        flipped: the paper's f_c (x mirror relative to row default).
        x: absolute origin x in DBU.
        y: absolute origin y in DBU.
        orientation: resulting DEF orientation.
    """

    column: int
    row: int
    flipped: bool
    x: int
    y: int
    orientation: Orientation

    def covered_sites(self, width_sites: int):
        """Yield (row, column) site keys the cell would occupy."""
        for c in range(self.column, self.column + width_sites):
            yield (self.row, c)


def enumerate_candidates(
    design: Design,
    inst: Instance,
    region: Rect,
    *,
    lx: int,
    ly: int,
    allow_flip: bool,
) -> list[Candidate]:
    """Enumerate SCP candidates for ``inst``.

    Candidates move the cell by at most ``lx`` sites / ``ly`` rows
    from its current position, optionally toggling the flip state, and
    must keep the cell footprint inside both ``region`` and the die.
    The current position (with current flip) is always candidate 0 so
    the MILP always has a feasible identity solution.
    """
    tech = design.tech
    col0 = design.column_of(inst)
    row0 = design.row_of(inst)
    flip0 = inst.flipped
    width_sites = inst.macro.width_sites

    flips = (flip0,) if not allow_flip else (flip0, not flip0)
    candidates: list[Candidate] = []
    seen: set[tuple[int, int, bool]] = set()
    for flip in flips:
        for d_row in range(-ly, ly + 1):
            row = row0 + d_row
            if not 0 <= row < design.num_rows:
                continue
            for d_col in range(-lx, lx + 1):
                col = col0 + d_col
                if col < 0 or col + width_sites > design.num_columns:
                    continue
                key = (col, row, flip)
                if key in seen:
                    continue
                seen.add(key)
                x = design.die.xlo + col * tech.site_width
                y = design.die.ylo + row * tech.row_height
                footprint = Rect(
                    x, y, x + inst.width, y + inst.height
                )
                if not region.contains_rect(footprint):
                    continue
                candidates.append(
                    Candidate(
                        column=col,
                        row=row,
                        flipped=flip,
                        x=x,
                        y=y,
                        orientation=Orientation.for_row(row, flip),
                    )
                )
    # Keep the identity candidate first for deterministic warm starts.
    candidates.sort(
        key=lambda c: (
            (c.column, c.row, c.flipped) != (col0, row0, flip0),
            c.row,
            c.column,
            c.flipped,
        )
    )
    return candidates
