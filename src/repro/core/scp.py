"""Single-cell-placement (SCP) candidate enumeration.

Each candidate λ of a cell bundles a concrete (column, row, flip)
choice — exactly the SCP variable of [Li & Koh] the paper adopts:
coordinates x_c^k / y_c^k, orientation f_c^k, and the occupied sites
s_crq^k all become constants once the candidate is fixed, leaving a
pure binary selection problem.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.geometry import Orientation, Rect
from repro.netlist.design import Design, Instance


class Candidate(NamedTuple):
    """One legal (column, row, flip) choice for a cell.

    A NamedTuple rather than a (frozen) dataclass: candidate
    construction sits on the window-build hot path, and the C-level
    tuple constructor is several times cheaper than per-field
    ``object.__setattr__``.

    Attributes:
        column: absolute site column of the cell's left edge.
        row: absolute row index.
        flipped: the paper's f_c (x mirror relative to row default).
        x: absolute origin x in DBU.
        y: absolute origin y in DBU.
        orientation: resulting DEF orientation.
        sites: (row, column) site keys the cell would occupy,
            precomputed at construction — the site-cover map and every
            candidate apply used to re-iterate a generator instead.
    """

    column: int
    row: int
    flipped: bool
    x: int
    y: int
    orientation: Orientation
    sites: tuple[tuple[int, int], ...] = ()

    def covered_sites(
        self, width_sites: int
    ) -> tuple[tuple[int, int], ...]:
        """The (row, column) site keys the cell would occupy."""
        if self.sites:
            return self.sites
        return tuple(
            (self.row, c)
            for c in range(self.column, self.column + width_sites)
        )


def enumerate_candidates(
    design: Design,
    inst: Instance,
    region: Rect,
    *,
    lx: int,
    ly: int,
    allow_flip: bool,
) -> list[Candidate]:
    """Enumerate SCP candidates for ``inst``.

    Candidates move the cell by at most ``lx`` sites / ``ly`` rows
    from its current position, optionally toggling the flip state, and
    must keep the cell footprint inside both ``region`` and the die.
    The current position (with current flip) is always candidate 0 so
    the MILP always has a feasible identity solution.
    """
    tech = design.tech
    die = design.die
    col0 = design.column_of(inst)
    row0 = design.row_of(inst)
    flip0 = inst.flipped
    width_sites = inst.macro.width_sites
    sw = tech.site_width
    rh = tech.row_height

    # The die and region containment checks are separable per axis, so
    # clip once into [col_lo, col_hi] x [row_lo, row_hi] instead of
    # building and testing a footprint Rect per candidate.
    col_lo = max(0, col0 - lx, -((die.xlo - region.xlo) // sw))
    col_hi = min(
        design.num_columns - width_sites,
        col0 + lx,
        (region.xhi - die.xlo - inst.width) // sw,
    )
    row_lo = max(0, row0 - ly, -((die.ylo - region.ylo) // rh))
    row_hi = min(
        design.num_rows - 1,
        row0 + ly,
        (region.yhi - die.ylo - inst.height) // rh,
    )
    if col_lo > col_hi or row_lo > row_hi:
        return []

    flips = (False, True) if allow_flip else (flip0,)
    has_identity = (
        col_lo <= col0 <= col_hi and row_lo <= row0 <= row_hi
    )
    candidates: list[Candidate] = []
    if has_identity:
        candidates.append(
            Candidate(
                col0,
                row0,
                flip0,
                die.xlo + col0 * sw,
                die.ylo + row0 * rh,
                Orientation.for_row(row0, flip0),
                tuple(
                    (row0, c)
                    for c in range(col0, col0 + width_sites)
                ),
            )
        )
    # Remaining candidates in (row, column, flip) order — with the
    # identity pinned first there is nothing left to sort.
    for row in range(row_lo, row_hi + 1):
        y = die.ylo + row * rh
        orients = tuple(
            Orientation.for_row(row, flip) for flip in flips
        )
        row_sites = [
            (row, c)
            for c in range(col_lo, col_hi + width_sites)
        ]
        for col in range(col_lo, col_hi + 1):
            x = die.xlo + col * sw
            start = col - col_lo
            sites = tuple(row_sites[start : start + width_sites])
            for flip, orientation in zip(flips, orients):
                if (
                    has_identity
                    and col == col0
                    and row == row0
                    and flip == flip0
                ):
                    continue
                candidates.append(
                    Candidate(
                        col, row, flip, x, y, orientation, sites
                    )
                )
    return candidates
