"""Cross-pass dirty tracking: skip windows *before* building.

The :class:`~repro.core.windowcache.WindowSolveCache` already makes
re-solving a settled window free-ish — but proving "settled" still
costs a content hash over the window's probe neighborhood, which is a
sort + scan of **every** instance in the design, per window, per pass.
Late VM1Opt passes, where almost nothing moves, spend nearly all their
time hashing windows only to conclude "unchanged".

A :class:`DirtyTracker` turns that around: instead of re-deriving
"unchanged" from content, it *remembers* which windows were verified
fixpoints and what has been written since.  A window may be skipped
without hashing, building, or solving when

* its key (window rect + ``lx``/``ly``/``allow_flip`` freedom) was
  previously marked clean — i.e. a solve of exactly this subproblem
  ended ``OPTIMAL`` with no surviving move, or its content hash hit
  the window cache — **and**
* nothing the window's build *reads* has been written since the mark.

What a build reads is two things, and the tracker invalidates each
with a matched mechanism:

* **Spatially**: the placements of instances inside the probe rect
  (occupancy/blocking, and the movable set itself).  Applied moves
  report each moved cell's old∪new bounding box; a mark whose probe
  intersects one is dropped (closed test — touching counts, and
  degenerate rects still collide).  Cell boxes are small, so the
  over-approximation is tight.
* **By net identity**: the pin positions of every net touched by the
  window's movable cells.  Each mark records exactly that net-name
  set (from the solved slice, or from the cache signature's scan),
  applied moves report the names of the nets their cells touch, and
  a mark sharing any name is dropped.  This is *exact* — an earlier
  design used the nets' post-move bounding boxes as spatial dirt, and
  a handful of applies on well-connected nets wiped out nearly every
  mark on the die per pass.

Skipping is therefore exactly as sound as a window-cache hit — the
same fixpoint argument, minus the hash — and changes performance,
never placements.

Two operating modes:

* **default-dirty** (fresh tracker): nothing is marked, so the first
  pass builds everything; marks accumulate as windows settle.  This is
  the VM1Opt mode.
* **default-clean** (``seed_dirty=...``): everything is presumed clean
  except the seeded regions.  The shard layer seeds the stitch seam
  bands so a seam pass treats only boundary neighborhoods as dirty.
  Unmarked windows have no recorded net set, so in this mode applied
  moves also accumulate their nets' *bounding boxes* as spatial dirt
  (conservative, like the seams themselves) on top of the exact
  per-mark invalidation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, NamedTuple

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.core.window import Window
    from repro.netlist.design import Design

#: (window rect, lx, ly, allow_flip) — one skippable subproblem.
DirtyKey = tuple[int, int, int, int, int, int, bool]

#: Closed rectangle (xlo, ylo, xhi, yhi) in DBU.
Rect4 = tuple[int, int, int, int]

#: Default cap on clean marks; eviction is sound (an evicted mark just
#: re-verifies through the window cache), mirroring the cache's cap.
DEFAULT_MAX_MARKS = 65_536


def _rect4(rect) -> Rect4:
    """Coerce a Rect-like object or 4-sequence (tuple, or a list from
    a JSON checkpoint round-trip) to a plain tuple."""
    if isinstance(rect, (tuple, list)):
        return (
            int(rect[0]), int(rect[1]), int(rect[2]), int(rect[3])
        )
    return (
        int(rect.xlo), int(rect.ylo), int(rect.xhi), int(rect.yhi)
    )


def _intersects(a: Rect4, b: Rect4) -> bool:
    """Closed-rectangle intersection: touching edges/corners count,
    and degenerate (zero-area) rects like single-point boxes still
    intersect what they touch."""
    return not (
        a[2] < b[0] or b[2] < a[0] or a[3] < b[1] or b[3] < a[1]
    )


class DirtyWrite(NamedTuple):
    """The write set of one (or one family's) applied window solution.

    ``cell_rects`` — per moved cell, the union of its old and new
    bounding boxes (spatial invalidation).  ``nets`` — the names of
    every net touching a moved cell (exact invalidation).
    ``net_rects`` — those nets' post-move bounding boxes, used only as
    background dirt in the tracker's default-clean mode.
    """

    cell_rects: tuple[Rect4, ...]
    nets: tuple[str, ...]
    net_rects: tuple[Rect4, ...]


class DirtyTracker:
    """Remembers verified-fixpoint windows and what has been written
    since, so later passes can skip clean windows pre-build.

    Protocol (per window, before the cache probe)::

        key = DirtyTracker.window_key(window, lx, ly, allow_flip)
        probe = probe_rect(design, window)
        if tracker.is_clean(key, probe):
            ...skip the window entirely...

    After a window verifies as a fixpoint (cache hit, or solved
    ``OPTIMAL`` with no surviving move), ``mark_clean(key, probe,
    nets=...)`` with the net names its build read.  After each
    family's applies, ``note_dirty(cell_rects, nets=..., net_rects=
    ...)`` with the family's :class:`DirtyWrite` — marks whose probe
    intersects a cell rect or whose net set shares a name are dropped.
    Batching per family matches the engine's build-before-apply
    ordering, so a skip never observes a placement the no-skip run
    would not also have observed.
    """

    def __init__(
        self,
        *,
        seed_dirty: Iterable | None = None,
        max_marks: int = DEFAULT_MAX_MARKS,
    ) -> None:
        if max_marks < 1:
            raise ValueError(
                f"max_marks must be >= 1, got {max_marks}"
            )
        self.max_marks = max_marks
        #: key -> (probe rect, net read-set) (insertion-ordered).
        self._clean: dict[DirtyKey, tuple[Rect4, frozenset[str]]] = {}
        #: net name -> keys of marks that read it.
        self._net_index: dict[str, set[DirtyKey]] = {}
        #: default-clean mode: unmarked windows are clean unless their
        #: probe intersects an accumulated dirty rect.
        self._background_clean = seed_dirty is not None
        self._dirty: list[Rect4] = [
            _rect4(r) for r in (seed_dirty or ())
        ]
        self.skips = 0
        self.marks = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._clean)

    # ------------------------------------------------------------ query
    @staticmethod
    def window_key(
        window: "Window", lx: int, ly: int, allow_flip: bool
    ) -> DirtyKey:
        """The subproblem identity — same shape as the window-cache
        key, deliberately: a mark asserts what a cache hit asserts."""
        rect = window.rect
        return (
            rect.xlo, rect.ylo, rect.xhi, rect.yhi,
            lx, ly, allow_flip,
        )

    def is_clean(self, key: DirtyKey, probe) -> bool:
        """True when the window may be skipped without building."""
        if key in self._clean:
            self.skips += 1
            return True
        if not self._background_clean:
            return False
        p = _rect4(probe)
        if any(_intersects(p, rect) for rect in self._dirty):
            return False
        self.skips += 1
        return True

    # ----------------------------------------------------------- update
    def mark_clean(
        self, key: DirtyKey, probe, nets: Iterable[str] = ()
    ) -> None:
        """Record a verified fixpoint for ``key``: its probe rect and
        the net names its build read."""
        if key in self._clean:
            self._drop_mark(key)
        elif len(self._clean) >= self.max_marks:
            self._drop_mark(next(iter(self._clean)))
            self.evictions += 1
        net_set = frozenset(nets)
        self._clean[key] = (_rect4(probe), net_set)
        for name in net_set:
            self._net_index.setdefault(name, set()).add(key)
        self.marks += 1

    def note_dirty(
        self,
        rects: Iterable,
        *,
        nets: Iterable[str] = (),
        net_rects: Iterable = (),
    ) -> int:
        """Record one write set; drops every clean mark it touches.

        ``rects`` are the moved cells' old∪new boxes — they drop marks
        spatially (probe intersection).  ``nets`` are the changed net
        names — they drop marks by exact identity through the net
        index.  ``net_rects`` only matter in default-clean mode, where
        they accumulate as background dirt for *unmarked* windows
        (whose read sets are unknown).  Returns the number of marks
        dropped.
        """
        dirty = [_rect4(r) for r in rects]
        names = [n for n in nets if n in self._net_index]
        if self._background_clean:
            self._dirty.extend(dirty)
            self._dirty.extend(_rect4(r) for r in net_rects)
        if not dirty and not names:
            return 0
        dropped = {
            key
            for name in names
            for key in self._net_index[name]
        }
        if dirty:
            dropped.update(
                key
                for key, (probe, _) in self._clean.items()
                if key not in dropped
                and any(_intersects(probe, rect) for rect in dirty)
            )
        for key in dropped:
            self._drop_mark(key)
        self.invalidations += len(dropped)
        return len(dropped)

    def _drop_mark(self, key: DirtyKey) -> None:
        _, net_set = self._clean.pop(key)
        for name in net_set:
            keys = self._net_index.get(name)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._net_index[name]

    # ------------------------------------------------ checkpoint state
    def export_state(self) -> list:
        """JSON-serializable snapshot (marks + mode + dirty rects).

        Counters are per-run observability, not solver state, and are
        not exported — same policy as the window cache.
        """
        return [
            int(self._background_clean),
            [list(rect) for rect in self._dirty],
            [
                [list(key), list(probe), sorted(net_set)]
                for key, (probe, net_set) in sorted(
                    self._clean.items()
                )
            ],
        ]

    def import_state(self, state: list) -> None:
        """Replace tracker state with an :meth:`export_state` snapshot.

        An empty/missing snapshot leaves the tracker default-dirty —
        resuming without dirty state is always sound, just slower.
        """
        if not state:
            return
        background, dirty, marks = state
        self._background_clean = bool(background)
        self._dirty = [_rect4(rect) for rect in dirty]
        clean: dict[DirtyKey, tuple[Rect4, frozenset[str]]] = {}
        for raw_key, raw_probe, raw_nets in marks:
            key: DirtyKey = (
                int(raw_key[0]), int(raw_key[1]),
                int(raw_key[2]), int(raw_key[3]),
                int(raw_key[4]), int(raw_key[5]),
                bool(raw_key[6]),
            )
            clean[key] = (
                _rect4(raw_probe),
                frozenset(str(n) for n in raw_nets),
            )
        if len(clean) > self.max_marks:
            overflow = len(clean) - self.max_marks
            self.evictions += overflow
            for key in list(clean)[:overflow]:
                clean.pop(key)
        self._clean = clean
        self._net_index = {}
        for key, (_, net_set) in clean.items():
            for name in net_set:
                self._net_index.setdefault(name, set()).add(key)


def dirty_write_for_moves(
    design: "Design",
    moved: Iterable[str],
    snapshot: dict[str, tuple[int, int, object]],
) -> DirtyWrite:
    """The :class:`DirtyWrite` covering one applied window solution.

    ``moved`` names the cells whose placement actually changed;
    ``snapshot`` maps every movable cell to its pre-apply
    ``(x, y, orientation)``.  Emits, per moved cell, the union of its
    old and new bounding boxes, plus the names (and, for background
    mode, post-move bounding boxes) of every net touching a moved
    cell — see the module docstring for how each part invalidates.
    """
    moved = list(moved)
    cell_rects: list[Rect4] = []
    for name in moved:
        inst = design.instances[name]
        old_x, old_y = snapshot[name][0], snapshot[name][1]
        cell_rects.append((
            min(old_x, inst.x),
            min(old_y, inst.y),
            max(old_x, inst.x) + inst.width,
            max(old_y, inst.y) + inst.height,
        ))
    nets: list[str] = []
    net_rects: list[Rect4] = []
    for net in design.nets_of_instances(set(moved)):
        nets.append(net.name)
        bbox = design.net_bbox(net)
        if bbox is not None:
            net_rects.append(
                (bbox.xlo, bbox.ylo, bbox.xhi, bbox.yhi)
            )
    return DirtyWrite(
        tuple(cell_rects), tuple(nets), tuple(net_rects)
    )
