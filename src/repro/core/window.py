"""Layout windowing for the distributable optimization (§4.1).

Windows partition the die; in each parallel iteration only windows
with pairwise *disjoint projections* on both axes (diagonal families,
Figure 3) are optimized together, so each window's ΔHPWL is exact and
the per-window objectives add up (Figure 4 case (b)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Rect
from repro.netlist.design import Design


@dataclass(frozen=True)
class Window:
    """One optimization window: grid index plus clipped die region."""

    ix: int
    iy: int
    rect: Rect


def partition(
    design: Design, tx: int, ty: int, bw: int, bh: int
) -> list[Window]:
    """Partition the die into ``bw`` x ``bh`` DBU windows.

    ``tx``/``ty`` shift the window grid (Algorithm 1 line 9 uses
    shifts so cells stuck on window boundaries in one iteration fall
    inside a window in the next).  Windows are clipped to the die;
    degenerate slivers thinner than one site/row are dropped.
    """
    die = design.die
    tx %= bw
    ty %= bh
    windows: list[Window] = []
    x_starts: list[int] = []
    x = die.xlo + tx - (bw if tx else 0)
    while x < die.xhi:
        x_starts.append(x)
        x += bw
    y_starts: list[int] = []
    y = die.ylo + ty - (bh if ty else 0)
    while y < die.yhi:
        y_starts.append(y)
        y += bh
    for iy, wy in enumerate(y_starts):
        for ix, wx in enumerate(x_starts):
            rect = Rect(
                max(wx, die.xlo),
                max(wy, die.ylo),
                min(wx + bw, die.xhi),
                min(wy + bh, die.yhi),
            )
            if (
                rect.width < design.tech.site_width
                or rect.height < design.tech.row_height
            ):
                continue
            windows.append(Window(ix, iy, rect))
    return windows


def independent_families(
    windows: list[Window],
) -> list[list[Window]]:
    """Split ``windows`` into families safe to optimize in parallel.

    Family ``s`` holds the windows with ``(ix + iy) mod k == s`` where
    ``k = max(grid width, grid height)``: any two members differ in
    both grid coordinates, so their x and y projections are disjoint.
    The family count is ~sqrt(|W|) for square dies, matching the
    iteration count of Algorithm 2.
    """
    if not windows:
        return []
    nx = len({w.ix for w in windows})
    ny = len({w.iy for w in windows})
    k = max(nx, ny)
    families: list[list[Window]] = [[] for _ in range(k)]
    for window in windows:
        families[(window.ix + window.iy) % k].append(window)
    return [family for family in families if family]
