"""Alignment-opportunity analysis.

Answers the question the optimizer's α knob depends on: *how much
direct-vertical-M1 headroom does a placement have?*  For every
same-net pin pair within the γ row span it records the x mismatch
(ClosedM1) or overlap/gap (OpenM1), yielding:

* the realized alignment count (mismatch 0 / overlap ≥ δ),
* the reachable count under a given perturbation budget (|dx| ≤ lx
  sites closes the mismatch), and
* a mismatch histogram — the paper's Figure 6 sensitivity is exactly
  this distribution priced by α.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.params import OptParams
from repro.netlist.design import Design
from repro.tech.arch import AlignmentMode


@dataclass
class OpportunityReport:
    """Direct-vertical-M1 headroom of one placement.

    ``mismatch_histogram`` maps |dx| in sites (ClosedM1) or the
    overlap shortfall in sites (OpenM1; 0 = already overlapped) to
    pair counts.
    """

    pairs_in_span: int = 0
    realized: int = 0
    reachable: int = 0
    mismatch_histogram: Counter = field(default_factory=Counter)

    @property
    def realized_fraction(self) -> float:
        return self.realized / self.pairs_in_span if (
            self.pairs_in_span
        ) else 0.0

    @property
    def reachable_fraction(self) -> float:
        return self.reachable / self.pairs_in_span if (
            self.pairs_in_span
        ) else 0.0


def analyze_opportunities(
    design: Design,
    params: OptParams,
    *,
    budget_sites: int = 4,
) -> OpportunityReport:
    """Measure dM1 headroom under a ±``budget_sites`` x-perturbation.

    The reachability test is an optimistic per-pair bound (it ignores
    legality interactions between pairs), which is exactly what makes
    it useful: realized/reachable quantifies how much of the headroom
    the optimizer has banked.
    """
    mode = design.tech.arch.alignment_mode
    report = OpportunityReport()
    if mode is AlignmentMode.NONE:
        return report
    tech = design.tech
    span = params.gamma * tech.row_height
    budget_dbu = budget_sites * tech.site_width

    for _, net in sorted(design.nets.items()):
        if not 2 <= net.degree <= params.max_net_degree:
            continue
        pins = net.pins
        for i in range(len(pins)):
            for j in range(i + 1, len(pins)):
                if pins[i].instance == pins[j].instance:
                    continue
                inst_p = design.instances[pins[i].instance]
                inst_q = design.instances[pins[j].instance]
                p = inst_p.pin_position(pins[i].pin)
                q = inst_q.pin_position(pins[j].pin)
                if abs(p.y - q.y) > span:
                    continue
                report.pairs_in_span += 1
                if mode is AlignmentMode.ALIGN:
                    mismatch = abs(p.x - q.x)
                    shortfall_sites = mismatch // tech.site_width
                else:
                    iv_p = inst_p.pin_x_interval(pins[i].pin)
                    iv_q = inst_q.pin_x_interval(pins[j].pin)
                    shortfall = params.delta - iv_p.overlap_length(
                        iv_q
                    )
                    mismatch = max(0, shortfall)
                    shortfall_sites = -(-mismatch // tech.site_width)
                report.mismatch_histogram[shortfall_sites] += 1
                if mismatch == 0:
                    report.realized += 1
                    report.reachable += 1
                elif mismatch <= 2 * budget_dbu:
                    # Both cells may move toward each other.
                    report.reachable += 1
    return report
