"""Algorithm 1: VM1Opt — the metaheuristic outer loop.

For each parameter set u in the sequence U, alternate a perturbation
pass (DistOpt with u.lx/u.ly, flips off) and a flip pass (DistOpt with
zero displacement, flips on), shifting the window grid between
iterations so boundary cells get optimized, until the normalized
objective improvement drops below θ.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.chaos.inject import barrier as chaos_barrier
from repro.core.checkpoint import VM1Checkpoint
from repro.core.dirty import DirtyTracker
from repro.core.distopt import DistOptResult, dist_opt
from repro.core.objective import calculate_objective
from repro.core.params import OptParams
from repro.core.windowcache import WindowSolveCache
from repro.milp.highs_backend import HighsBackend
from repro.netlist.design import Design
from repro.obs.trace import current_context, span
from repro.runtime import RunTelemetry, ScheduleConfig, SerialExecutor

#: Hard cap on inner iterations per parameter set (safety net; the
#: θ = 1% test of the paper normally stops after 1-3 iterations).
_MAX_INNER_ITERATIONS = 8


@dataclass
class VM1OptResult:
    """Outcome of a full VM1Opt run."""

    initial_objective: float
    final_objective: float
    iterations: int = 0
    moved_cells: int = 0
    wall_seconds: float = 0.0
    build_seconds: float = 0.0
    presolve_seconds: float = 0.0
    solve_seconds: float = 0.0
    modeled_parallel_seconds: float = 0.0
    measured_parallel_seconds: float = 0.0
    windows_failed: int = 0
    windows_timed_out: int = 0
    windows_cached: int = 0
    windows_skipped_clean: int = 0
    passes: list[DistOptResult] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Normalized objective improvement over the run."""
        if self.initial_objective == 0:
            return 0.0
        return (
            self.initial_objective - self.final_objective
        ) / abs(self.initial_objective)


def vm1_opt(
    design: Design,
    params: OptParams,
    *,
    solver=None,
    executor=None,
    schedule: ScheduleConfig | None = None,
    telemetry: RunTelemetry | None = None,
    progress=None,
    enable_flip: bool = True,
    enable_shift: bool = True,
    presolve: bool = True,
    window_cache: bool = True,
    dirty_tracking: bool = True,
    objective_audit: bool = False,
    checkpoint_sink=None,
    resume: VM1Checkpoint | None = None,
) -> VM1OptResult:
    """Run the full vertical-M1-aware detailed placement optimization.

    Args:
        design: legal placed design; optimized in place.
        params: weights plus the parameter-set sequence U.
        solver: MILP backend shared by all windows (default HiGHS with
            ``params.time_limit`` per window).
        executor: :mod:`repro.runtime` executor shared by all DistOpt
            passes (default: a fresh :class:`SerialExecutor`).
        schedule: dispatch policy (per-task timeout, retries).
        telemetry: optional :class:`RunTelemetry` accumulating
            per-window records across the whole run.
        progress: optional callable ``(label, DistOptResult)`` invoked
            after every DistOpt pass.
        enable_flip: run the f=1 (flip) DistOpt pass after each move
            pass (ablation knob; Algorithm 1 lines 7-8).
        enable_shift: shift the window grid between iterations so
            boundary cells get optimized (ablation knob; Algorithm 1
            line 9).
        presolve: run the window-model presolve reductions before
            every solve (behaviour-preserving; see
            :mod:`repro.milp.presolve`).
        window_cache: keep a cross-pass
            :class:`~repro.core.windowcache.WindowSolveCache` so
            windows whose neighborhood has not changed since their
            last fixpoint solve are skipped (behaviour-preserving).
        dirty_tracking: run the incremental convergence engine — a
            cross-pass :class:`~repro.core.dirty.DirtyTracker` skips
            verified-clean windows before probe/build, and the global
            objective is delta-accounted from the guarded applies
            instead of re-swept after every pass (both
            behaviour-preserving; placements stay byte-identical with
            the flag on or off).
        objective_audit: paranoia knob — with ``dirty_tracking``,
            every pass also runs the full objective sweep and raises
            if the delta-accounted value drifts ≥ 1e-6 from it.
        checkpoint_sink: optional callable invoked with a
            :class:`~repro.core.checkpoint.VM1Checkpoint` after every
            completed DistOpt pass (crash-safe persistence is the
            caller's job, e.g. ``repro.service.jobstore``).
        resume: optional :class:`~repro.core.checkpoint.VM1Checkpoint`
            to continue from: the checkpointed placement and cache are
            restored and every pass up to and including the
            checkpointed one is skipped.  Passes are deterministic, so
            the resumed run finishes with a placement byte-identical
            to the uninterrupted run.

    Returns:
        A :class:`VM1OptResult` with objective history and timing.
        On ``resume``, timing aggregates and ``passes`` cover only the
        work done after the checkpoint; ``iterations`` continues the
        checkpointed count.
    """
    cache = WindowSolveCache() if window_cache else None
    dirty = DirtyTracker() if dirty_tracking else None
    if solver is None:
        solver = HighsBackend(
            time_limit=params.time_limit, mip_rel_gap=params.mip_gap
        )
    owns_executor = executor is None
    if executor is None:
        executor = SerialExecutor()
    started = time.perf_counter()
    tech = design.tech

    resume_u = resume_iter = -1
    resume_phase = ""
    if resume is not None:
        resume.restore(design, cache, dirty)
        initial = resume.initial_objective
        objective = resume.objective
        tx, ty = resume.tx, resume.ty
        resume_u = resume.u_index
        resume_iter = resume.iteration
        resume_phase = resume.phase
    else:
        initial = calculate_objective(design, params)
        objective = initial
        tx = ty = 0
    result = VM1OptResult(
        initial_objective=initial, final_objective=objective
    )
    if resume is not None:
        result.iterations = resume.iterations

    # Assigned inside the run span below; rides every checkpoint so a
    # resumed run can re-join this trace (closure sees the late value).
    trace_ctx: tuple[str, str | None] | None = None

    def _checkpoint(
        u_index: int, iteration: int, phase: str, pre: float
    ) -> None:
        if checkpoint_sink is None:
            return
        checkpoint_sink(
            VM1Checkpoint.capture(
                design,
                cache,
                dirty,
                u_index=u_index,
                iteration=iteration,
                phase=phase,
                tx=tx,
                ty=ty,
                pre_objective=pre,
                objective=objective,
                initial_objective=initial,
                iterations=result.iterations,
                trace=trace_ctx,
            )
        )

    run_span = span(
        "vm1_opt",
        sequence_len=len(params.sequence),
        executor=executor.name,
        jobs=executor.jobs,
        resumed=resume is not None,
    )
    with run_span as run_span_obj:
        trace_ctx = current_context()
        chaos_barrier("vm1:start")
        try:
            for u_index, u in enumerate(params.sequence):
                if u_index < resume_u:
                    continue
                bw = max(tech.site_width, tech.dbu(u.bw_um))
                bh = max(tech.row_height, tech.dbu(u.bh_um))
                for iteration in range(_MAX_INNER_ITERATIONS):
                    if u_index == resume_u and iteration < resume_iter:
                        continue
                    # At the exact resume point, skip the pass(es) the
                    # checkpoint already covers; the end-of-iteration
                    # control flow below re-runs on checkpointed values.
                    at_resume = (
                        u_index == resume_u and iteration == resume_iter
                    )
                    skip_move = at_resume and resume_phase in (
                        "move",
                        "flip",
                    )
                    skip_flip = at_resume and resume_phase == "flip"
                    pre = (
                        resume.pre_objective if skip_move else objective
                    )
                    label = f"u{u_index}.i{iteration}"
                    if not skip_move:
                        move_pass = dist_opt(
                            design,
                            params,
                            tx=tx,
                            ty=ty,
                            bw=bw,
                            bh=bh,
                            lx=u.lx,
                            ly=u.ly,
                            allow_flip=False,
                            solver=solver,
                            executor=executor,
                            schedule=schedule,
                            telemetry=telemetry,
                            pass_label=f"move[{label}]",
                            presolve=presolve,
                            cache=cache,
                            dirty=dirty,
                            objective=(
                                objective if dirty_tracking else None
                            ),
                            audit=objective_audit,
                        )
                        _absorb(result, move_pass)
                        objective = move_pass.objective
                        _checkpoint(u_index, iteration, "move", pre)
                        chaos_barrier(f"checkpoint:move[{label}]")
                        if progress is not None:
                            progress("move", move_pass)
                    if enable_flip and not skip_flip:
                        flip_pass = dist_opt(
                            design,
                            params,
                            tx=tx,
                            ty=ty,
                            bw=bw,
                            bh=bh,
                            lx=0,
                            ly=0,
                            allow_flip=True,
                            solver=solver,
                            executor=executor,
                            schedule=schedule,
                            telemetry=telemetry,
                            pass_label=f"flip[{label}]",
                            presolve=presolve,
                            cache=cache,
                            dirty=dirty,
                            objective=(
                                objective if dirty_tracking else None
                            ),
                            audit=objective_audit,
                        )
                        _absorb(result, flip_pass)
                        objective = flip_pass.objective
                        _checkpoint(u_index, iteration, "flip", pre)
                        chaos_barrier(f"checkpoint:flip[{label}]")
                        if progress is not None:
                            progress("flip", flip_pass)
                    result.iterations += 1
                    if enable_shift:
                        # Shift the window grid so last iteration's
                        # boundary cells fall inside a window next time
                        # (Algorithm 1 line 9).
                        tx = (tx + bw // 2) % bw
                        ty = (ty + bh // 2) % bh
                    if pre == 0:
                        break
                    delta = (pre - objective) / abs(pre)
                    if delta < params.theta:
                        break
        finally:
            if owns_executor:
                executor.close()

        result.final_objective = objective
        run_span_obj.set(
            initial_objective=initial,
            final_objective=objective,
            iterations=result.iterations,
            moved_cells=result.moved_cells,
        )
    result.wall_seconds = time.perf_counter() - started
    if telemetry is not None:
        telemetry.wall_seconds = result.wall_seconds
    return result


def _absorb(result: VM1OptResult, pass_result: DistOptResult) -> None:
    result.passes.append(pass_result)
    result.moved_cells += pass_result.moved_cells
    result.build_seconds += pass_result.build_seconds
    result.presolve_seconds += pass_result.presolve_seconds
    result.solve_seconds += pass_result.solve_seconds
    result.windows_cached += pass_result.windows_cached
    result.windows_skipped_clean += pass_result.windows_skipped_clean
    result.modeled_parallel_seconds += (
        pass_result.modeled_parallel_seconds
    )
    result.measured_parallel_seconds += (
        pass_result.measured_parallel_seconds
    )
    result.windows_failed += pass_result.windows_failed
    result.windows_timed_out += pass_result.windows_timed_out
