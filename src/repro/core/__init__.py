"""The paper's contribution: vertical M1 routing-aware detailed
placement.

* :mod:`repro.core.params` — α/β/γ/δ/ε/θ knobs and the window/
  perturbation parameter sequences U of Algorithm 1.
* :mod:`repro.core.scp` — single-cell-placement (SCP) candidate
  enumeration (the λ variables of [Li & Koh]).
* :mod:`repro.core.formulation` — the window MILP: §3.1 (ClosedM1
  alignment) and §3.2 (OpenM1 overlap) formulations.
* :mod:`repro.core.window` — layout partitioning into windows and
  selection of independently-optimizable (disjoint-projection) window
  sets (§4.1).
* :mod:`repro.core.objective` — the global objective CalculateObj.
* :mod:`repro.core.distopt` — Algorithm 2 (DistOpt).
* :mod:`repro.core.vm1opt` — Algorithm 1 (VM1Opt), the metaheuristic
  outer loop.
* :mod:`repro.core.checkpoint` — per-pass VM1Opt checkpoints for
  crash-safe resume (used by :mod:`repro.service`).
"""

from repro.core.checkpoint import CHECKPOINT_SCHEMA, VM1Checkpoint
from repro.core.params import OptParams, ParamSet, default_sequence
from repro.core.scp import Candidate, enumerate_candidates
from repro.core.window import Window, independent_families, partition
from repro.core.objective import alignment_stats, calculate_objective
from repro.core.formulation import WindowProblem, build_window_model
from repro.core.windowcache import WindowSolveCache
from repro.core.distopt import DistOptResult, dist_opt
from repro.core.vm1opt import VM1OptResult, vm1_opt

__all__ = [
    "CHECKPOINT_SCHEMA",
    "VM1Checkpoint",
    "OptParams",
    "ParamSet",
    "default_sequence",
    "Candidate",
    "enumerate_candidates",
    "Window",
    "independent_families",
    "partition",
    "alignment_stats",
    "calculate_objective",
    "WindowProblem",
    "build_window_model",
    "WindowSolveCache",
    "DistOptResult",
    "dist_opt",
    "VM1OptResult",
    "vm1_opt",
]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.core")
