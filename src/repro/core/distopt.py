"""Algorithm 2: DistOpt — distributable window optimization.

Windows are partitioned, grouped into independently-optimizable
families (disjoint x/y projections, §4.1), and each family's windows
are solved as separate MILPs through the :mod:`repro.runtime`
execution engine.  Per family the engine (1) builds every window
model from the common pre-family placement, (2) dispatches the solves
over the configured executor (serial / thread pool / process pool),
and (3) applies the solutions in canonical window order regardless of
completion order — which is why a parallel run reproduces the serial
placement bit-for-bit on the same seed.

Two parallel-time figures are reported: ``modeled_parallel_seconds``
(per family the slowest window *solve* — what an unbounded parallel
machine would see; model-build overhead is excluded since builds
pipeline with solves) and ``measured_parallel_seconds`` (the wall
clock the engine actually achieved for the dispatch+solve phases).

Every applied window solution is guarded: the local objective
(HPWL − α·alignments over the window's touched nets) is recomputed
after the move and the move is reverted if it did not improve — this
protects against time-limited solves returning a worse incumbent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.formulation import (
    WindowProblem,
    apply_solution,
    build_window_model,
)
from repro.core.objective import calculate_objective
from repro.core.params import OptParams
from repro.core.window import independent_families, partition
from repro.milp.highs_backend import HighsBackend
from repro.milp.solution import Solution, SolveStatus
from repro.netlist.design import Design
from repro.runtime import (
    FamilyScheduler,
    RunTelemetry,
    ScheduleConfig,
    SerialExecutor,
    SolverSpec,
    WindowRecord,
    WindowTask,
    WindowTaskResult,
)


@dataclass
class DistOptResult:
    """Outcome of one DistOpt invocation."""

    objective: float
    moved_cells: int = 0
    windows_built: int = 0
    windows_applied: int = 0
    windows_reverted: int = 0
    windows_failed: int = 0
    windows_timed_out: int = 0
    windows_cached: int = 0
    pairs_considered: int = 0
    wall_seconds: float = 0.0
    build_seconds: float = 0.0
    presolve_seconds: float = 0.0
    solve_seconds: float = 0.0
    modeled_parallel_seconds: float = 0.0
    measured_parallel_seconds: float = 0.0
    family_count: int = 0
    executor: str = "serial"
    jobs: int = 1


def dist_opt(
    design: Design,
    params: OptParams,
    *,
    tx: int,
    ty: int,
    bw: int,
    bh: int,
    lx: int,
    ly: int,
    allow_flip: bool,
    solver=None,
    executor=None,
    schedule: ScheduleConfig | None = None,
    telemetry: RunTelemetry | None = None,
    pass_label: str = "distopt",
    presolve: bool = True,
    cache=None,
    window_filter=None,
) -> DistOptResult:
    """Run one DistOpt pass over the whole design.

    Args:
        design: placed design, modified in place.
        params: objective weights.
        tx/ty: window grid offset in DBU (Algorithm 1 line 9 shifts).
        bw/bh: window width/height in DBU.
        lx/ly: per-cell perturbation range (sites/rows).
        allow_flip: enable the flip degree of freedom (the f input).
        solver: MILP backend; defaults to HiGHS with the params' time
            limit.
        executor: a :mod:`repro.runtime` executor; defaults to a
            fresh :class:`SerialExecutor` (the pre-engine behavior).
        schedule: dispatch policy (timeout/retry); defaults to
            :meth:`ScheduleConfig.for_time_limit` of the solver limit.
        telemetry: optional :class:`RunTelemetry` accumulating
            per-window records across passes.
        pass_label: label stamped on this pass's telemetry records.
        presolve: run the :mod:`repro.milp.presolve` reductions on
            every window model inside the worker (solutions are lifted
            back before they cross the process boundary).
        cache: optional
            :class:`~repro.core.windowcache.WindowSolveCache`; windows
            whose content hash matches a previously-cached fixpoint
            are skipped without building or solving.
        window_filter: optional predicate ``Window -> bool``; when
            given, only accepted windows are optimized (the shard
            layer's seam pass restricts a DistOpt to the windows
            straddling shard boundaries).

    Returns:
        A :class:`DistOptResult`; ``objective`` is the global
        post-pass objective (CalculateObj of Algorithm 2).
    """
    if solver is None:
        solver = HighsBackend(
            time_limit=params.time_limit, mip_rel_gap=params.mip_gap
        )
    owns_executor = executor is None
    if executor is None:
        executor = SerialExecutor()
    if schedule is None:
        schedule = ScheduleConfig.for_time_limit(
            getattr(solver, "time_limit", None)
        )
    scheduler = FamilyScheduler(executor, schedule)
    spec = SolverSpec.from_backend(solver)

    started = time.perf_counter()
    result = DistOptResult(
        objective=0.0, executor=executor.name, jobs=executor.jobs
    )

    windows = partition(design, tx, ty, bw, bh)
    if window_filter is not None:
        windows = [w for w in windows if window_filter(w)]
    families = independent_families(windows)
    result.family_count = len(families)

    try:
        next_task_id = 0
        for family_index, family in enumerate(families):
            next_task_id = _run_family(
                design, params, family, family_index,
                spec=spec, scheduler=scheduler, result=result,
                telemetry=telemetry, pass_label=pass_label,
                lx=lx, ly=ly, allow_flip=allow_flip,
                next_task_id=next_task_id,
                presolve=presolve, cache=cache,
            )
    finally:
        if owns_executor:
            executor.close()

    result.objective = calculate_objective(design, params)
    result.wall_seconds = time.perf_counter() - started
    if telemetry is not None:
        telemetry.record_pass(
            pass_label,
            wall_seconds=result.wall_seconds,
            build_seconds=result.build_seconds,
            presolve_seconds=result.presolve_seconds,
            solve_seconds=result.solve_seconds,
            measured_parallel_seconds=result.measured_parallel_seconds,
            modeled_parallel_seconds=result.modeled_parallel_seconds,
            windows=result.windows_built,
            applied=result.windows_applied,
            failed=result.windows_failed,
            timed_out=result.windows_timed_out,
            cache_hits=result.windows_cached,
            cache_misses=(
                result.windows_built if cache is not None else 0
            ),
        )
    return result


def _run_family(
    design: Design,
    params: OptParams,
    family,
    family_index: int,
    *,
    spec: SolverSpec,
    scheduler: FamilyScheduler,
    result: DistOptResult,
    telemetry: RunTelemetry | None,
    pass_label: str,
    lx: int,
    ly: int,
    allow_flip: bool,
    next_task_id: int,
    presolve: bool,
    cache,
) -> int:
    """Build, solve, and apply one independent family; returns the
    next free task id."""
    tasks: list[WindowTask] = []
    problems: dict[int, WindowProblem] = {}
    build_seconds: dict[int, float] = {}
    tokens: dict[int, object] = {}
    for window in family:
        token = None
        if cache is not None:
            hit, token = cache.probe(
                design, window, lx=lx, ly=ly, allow_flip=allow_flip
            )
            if hit:
                # A fixpoint with identical content: re-solving would
                # deterministically reproduce the same non-move.
                result.windows_cached += 1
                if telemetry is not None:
                    telemetry.record_window(
                        WindowRecord(
                            pass_label=pass_label,
                            family=family_index,
                            ix=window.ix,
                            iy=window.iy,
                            status="cached",
                        )
                    )
                continue
        t0 = time.perf_counter()
        problem = build_window_model(
            design, window, params, lx=lx, ly=ly, allow_flip=allow_flip
        )
        built = time.perf_counter() - t0
        result.build_seconds += built
        if problem is None:
            continue
        if cache is not None:
            cache.note_miss()
        task = WindowTask.from_problem(
            problem,
            task_id=next_task_id,
            family=family_index,
            solver=spec,
            presolve=presolve,
        )
        next_task_id += 1
        tasks.append(task)
        problems[task.task_id] = problem
        build_seconds[task.task_id] = built
        tokens[task.task_id] = token
        result.windows_built += 1
        result.pairs_considered += problem.num_pairs
    if not tasks:
        return next_task_id

    solve_started = time.perf_counter()
    outcomes = scheduler.run_family(tasks)
    result.measured_parallel_seconds += (
        time.perf_counter() - solve_started
    )

    slowest_solve = 0.0
    for task in tasks:  # canonical order — determinism contract
        outcome = outcomes[task.task_id]
        slowest_solve = max(slowest_solve, outcome.solve_seconds)
        result.solve_seconds += outcome.solve_seconds
        result.presolve_seconds += outcome.presolve_seconds
        status, moved = _apply_outcome(
            design, params, problems[task.task_id], outcome, result
        )
        result.moved_cells += moved
        if (
            cache is not None
            and tokens[task.task_id] is not None
            and status in ("no_move", "reverted")
            and outcome.solution is not None
            and outcome.solution.status is SolveStatus.OPTIMAL
        ):
            # Fixpoint: the optimal solve produced no (surviving)
            # move.  Identical content next pass can skip the window.
            # Applied windows are NOT cached — the next pass
            # enumerates candidates around the new positions.
            cache.store(tokens[task.task_id])
        if telemetry is not None:
            telemetry.record_window(
                WindowRecord(
                    pass_label=pass_label,
                    family=family_index,
                    ix=task.ix,
                    iy=task.iy,
                    build_seconds=build_seconds[task.task_id],
                    queue_seconds=outcome.queue_seconds,
                    presolve_seconds=outcome.presolve_seconds,
                    solve_seconds=outcome.solve_seconds,
                    status=status,
                    attempts=outcome.attempts,
                    moved_cells=moved,
                    num_pairs=task.num_pairs,
                    error=outcome.error,
                )
            )
    result.modeled_parallel_seconds += slowest_solve
    return next_task_id


def _apply_outcome(
    design: Design,
    params: OptParams,
    problem: WindowProblem,
    outcome: WindowTaskResult,
    result: DistOptResult,
) -> tuple[str, int]:
    """Fold one solve outcome into the design; returns (status, moved)."""
    if outcome.timed_out:
        result.windows_timed_out += 1
        return "timed_out", 0
    if outcome.error:
        result.windows_failed += 1
        return "failed", 0
    solution = outcome.solution
    if solution is None or not solution.status.has_solution:
        result.windows_failed += 1
        return "no_solution", 0
    moved, status = _apply_guarded(
        design, params, problem, solution, result
    )
    return status, moved


def _apply_guarded(
    design: Design,
    params: OptParams,
    problem: WindowProblem,
    solution: Solution,
    result: DistOptResult,
) -> tuple[int, str]:
    """Apply one window solution behind the local-objective guard;
    returns (cells moved, record status)."""
    nets = [design.nets[name] for name in problem.nets]
    before_local = calculate_objective(design, params, nets)
    snapshot = {
        name: _placement_of(design, name) for name in problem.movable
    }
    try:
        moved = apply_solution(design, problem, solution)
    except ValueError:
        result.windows_failed += 1
        return 0, "failed"
    if moved == 0:
        return 0, "no_move"
    after_local = calculate_objective(design, params, nets)
    if after_local > before_local - 1e-9:
        for name, state in snapshot.items():
            inst = design.instances[name]
            inst.x, inst.y, inst.orientation = state
        result.windows_reverted += 1
        return 0, "reverted"
    result.windows_applied += 1
    return moved, "applied"


def _placement_of(design: Design, name: str):
    inst = design.instances[name]
    return (inst.x, inst.y, inst.orientation)
