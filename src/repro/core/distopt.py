"""Algorithm 2: DistOpt — distributable window optimization.

Windows are partitioned, grouped into independently-optimizable
families (disjoint x/y projections, §4.1), and each family's windows
are solved as separate MILPs.  Execution here is sequential — the
container has one core — but because family members are provably
independent, the *modeled parallel wall-clock* (sum over families of
the slowest window) is also reported; it is what an 8-thread run of
the paper's flow would see.

Every applied window solution is guarded: the local objective
(HPWL − α·alignments over the window's touched nets) is recomputed
after the move and the move is reverted if it did not improve — this
protects against time-limited solves returning a worse incumbent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.formulation import (
    WindowProblem,
    apply_solution,
    build_window_model,
)
from repro.core.objective import calculate_objective
from repro.core.params import OptParams
from repro.core.window import independent_families, partition
from repro.milp.highs_backend import HighsBackend
from repro.netlist.design import Design


@dataclass
class DistOptResult:
    """Outcome of one DistOpt invocation."""

    objective: float
    moved_cells: int = 0
    windows_built: int = 0
    windows_applied: int = 0
    windows_reverted: int = 0
    pairs_considered: int = 0
    wall_seconds: float = 0.0
    modeled_parallel_seconds: float = 0.0
    family_count: int = 0


def dist_opt(
    design: Design,
    params: OptParams,
    *,
    tx: int,
    ty: int,
    bw: int,
    bh: int,
    lx: int,
    ly: int,
    allow_flip: bool,
    solver=None,
) -> DistOptResult:
    """Run one DistOpt pass over the whole design.

    Args:
        design: placed design, modified in place.
        params: objective weights.
        tx/ty: window grid offset in DBU (Algorithm 1 line 9 shifts).
        bw/bh: window width/height in DBU.
        lx/ly: per-cell perturbation range (sites/rows).
        allow_flip: enable the flip degree of freedom (the f input).
        solver: MILP backend; defaults to HiGHS with the params' time
            limit.

    Returns:
        A :class:`DistOptResult`; ``objective`` is the global
        post-pass objective (CalculateObj of Algorithm 2).
    """
    if solver is None:
        solver = HighsBackend(
            time_limit=params.time_limit, mip_rel_gap=params.mip_gap
        )
    started = time.perf_counter()
    result = DistOptResult(objective=0.0)

    windows = partition(design, tx, ty, bw, bh)
    families = independent_families(windows)
    result.family_count = len(families)

    for family in families:
        slowest = 0.0
        for window in family:
            t0 = time.perf_counter()
            problem = build_window_model(
                design,
                window,
                params,
                lx=lx,
                ly=ly,
                allow_flip=allow_flip,
            )
            if problem is None:
                continue
            result.windows_built += 1
            result.pairs_considered += problem.num_pairs
            moved = _solve_and_apply(design, params, problem, solver,
                                     result)
            result.moved_cells += moved
            slowest = max(slowest, time.perf_counter() - t0)
        result.modeled_parallel_seconds += slowest

    result.objective = calculate_objective(design, params)
    result.wall_seconds = time.perf_counter() - started
    return result


def _solve_and_apply(
    design: Design,
    params: OptParams,
    problem: WindowProblem,
    solver,
    result: DistOptResult,
) -> int:
    """Solve one window and apply its solution behind the local-
    objective guard; returns the number of cells moved."""
    solution = solver.solve(problem.model)
    if not solution.status.has_solution:
        return 0

    nets = [design.nets[name] for name in problem.nets]
    before_local = calculate_objective(design, params, nets)
    snapshot = {
        name: _placement_of(design, name) for name in problem.movable
    }
    try:
        moved = apply_solution(design, problem, solution)
    except ValueError:
        return 0
    if moved == 0:
        return 0
    after_local = calculate_objective(design, params, nets)
    if after_local > before_local - 1e-9:
        for name, state in snapshot.items():
            inst = design.instances[name]
            inst.x, inst.y, inst.orientation = state
        result.windows_reverted += 1
        return 0
    result.windows_applied += 1
    return moved


def _placement_of(design: Design, name: str):
    inst = design.instances[name]
    return (inst.x, inst.y, inst.orientation)
