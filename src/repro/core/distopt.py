"""Algorithm 2: DistOpt — distributable window optimization.

Windows are partitioned, grouped into independently-optimizable
families (disjoint x/y projections, §4.1), and each family's windows
are solved as separate MILPs through the :mod:`repro.runtime`
execution engine.  Per family the engine (1) slices every window's
cells/nets out of the common pre-family placement, (2) dispatches the
slices over the configured executor (serial / thread pool / process
pool) — the window model is **built inside the worker** so build cost
parallelizes too — and (3) applies the returned moves in canonical
window order regardless of completion order, which is why a parallel
run reproduces the serial placement bit-for-bit on the same seed.

The incremental engine rides on three cooperating pieces:

* an optional :class:`~repro.core.dirty.DirtyTracker` skips windows
  that were verified fixpoints and whose probe neighborhood nothing
  has touched since — *before* any hashing or building (the
  :class:`~repro.core.windowcache.WindowSolveCache` remains the
  content-addressed backstop for windows that do get probed);
* the pass objective is maintained as a running delta (the guarded
  apply already computes exact before/after local objectives over the
  window's touched nets, and those nets fully cover the global
  change), so passing ``objective=`` replaces the O(all-nets)
  ``calculate_objective`` sweep at pass end; ``audit=True`` recomputes
  the full sweep anyway and raises if the delta drifted;
* per-window ``build_seconds`` now comes from the worker-side build.

Two parallel-time figures are reported: ``modeled_parallel_seconds``
(per family the slowest window build+presolve+solve path — what an
unbounded parallel machine would see now that the whole path runs in
a worker) and ``measured_parallel_seconds`` (the wall clock the engine
actually achieved for the dispatch phases).

Every applied window solution is guarded: the local objective
(HPWL − α·alignments over the window's touched nets) is recomputed
after the move and the move is reverted if it did not improve — this
protects against time-limited solves returning a worse incumbent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.chaos.inject import active_chaos
from repro.core.dirty import DirtyTracker, dirty_write_for_moves
from repro.core.formulation import probe_rect, window_slice
from repro.core.objective import calculate_objective
from repro.core.params import OptParams
from repro.core.window import independent_families, partition
from repro.milp.highs_backend import HighsBackend
from repro.milp.solution import SolveStatus
from repro.netlist.design import Design
from repro.obs.trace import active as active_tracer
from repro.obs.trace import current_context, span
from repro.runtime import (
    FamilyScheduler,
    RunTelemetry,
    ScheduleConfig,
    SerialExecutor,
    SolverSpec,
    WindowRecord,
    WindowTask,
    WindowTaskResult,
)

#: Objective-delta accounting must agree with a full recompute to
#: within this bound (the audit raises past it).
DRIFT_TOLERANCE = 1e-6


@dataclass
class DistOptResult:
    """Outcome of one DistOpt invocation."""

    objective: float
    moved_cells: int = 0
    windows_built: int = 0
    windows_applied: int = 0
    windows_reverted: int = 0
    windows_failed: int = 0
    windows_timed_out: int = 0
    windows_cached: int = 0
    #: windows skipped by the dirty tracker before probe/build.
    windows_skipped_clean: int = 0
    #: cache probes that actually missed (≠ windows built: a probed
    #: window may turn out to have nothing to build).
    cache_misses: int = 0
    #: sum of guarded-apply objective deltas over applied windows.
    objective_delta: float = 0.0
    #: |delta-accounted − fully-recomputed| objective; None unless the
    #: pass ran with ``audit=True``.
    objective_drift: float | None = None
    pairs_considered: int = 0
    wall_seconds: float = 0.0
    build_seconds: float = 0.0
    presolve_seconds: float = 0.0
    solve_seconds: float = 0.0
    modeled_parallel_seconds: float = 0.0
    measured_parallel_seconds: float = 0.0
    family_count: int = 0
    executor: str = "serial"
    jobs: int = 1


def dist_opt(
    design: Design,
    params: OptParams,
    *,
    tx: int,
    ty: int,
    bw: int,
    bh: int,
    lx: int,
    ly: int,
    allow_flip: bool,
    solver=None,
    executor=None,
    schedule: ScheduleConfig | None = None,
    telemetry: RunTelemetry | None = None,
    pass_label: str = "distopt",
    presolve: bool = True,
    cache=None,
    window_filter=None,
    dirty: DirtyTracker | None = None,
    objective: float | None = None,
    audit: bool = False,
    chaos=None,
) -> DistOptResult:
    """Run one DistOpt pass over the whole design.

    Args:
        design: placed design, modified in place.
        params: objective weights.
        tx/ty: window grid offset in DBU (Algorithm 1 line 9 shifts).
        bw/bh: window width/height in DBU.
        lx/ly: per-cell perturbation range (sites/rows).
        allow_flip: enable the flip degree of freedom (the f input).
        solver: MILP backend; defaults to HiGHS with the params' time
            limit.
        executor: a :mod:`repro.runtime` executor; defaults to a
            fresh :class:`SerialExecutor` (the pre-engine behavior).
        schedule: dispatch policy (timeout/retry); defaults to
            :meth:`ScheduleConfig.for_time_limit` of the solver limit.
        telemetry: optional :class:`RunTelemetry` accumulating
            per-window records across passes.
        pass_label: label stamped on this pass's telemetry records.
        presolve: run the :mod:`repro.milp.presolve` reductions on
            every window model inside the worker (solutions are lifted
            back before they cross the process boundary).
        cache: optional
            :class:`~repro.core.windowcache.WindowSolveCache`; windows
            whose content hash matches a previously-cached fixpoint
            are skipped without building or solving.
        window_filter: optional predicate ``Window -> bool``; when
            given, only accepted windows are optimized (the shard
            layer's seam pass restricts a DistOpt to the windows
            straddling shard boundaries).
        dirty: optional cross-pass :class:`~repro.core.dirty.
            DirtyTracker`; verified-clean windows are skipped before
            the cache probe (no hash, no build), applied moves are
            recorded as dirty regions, and fixpoints are marked clean.
        objective: the design's exact global objective *before* this
            pass.  When given, the post-pass objective is accounted
            incrementally (``objective`` + the guarded applies' local
            deltas) instead of via the full ``calculate_objective``
            sweep.  ``None`` keeps the legacy full recompute.
        audit: with ``objective``, also run the full sweep and raise
            ``AssertionError`` if the delta-accounted value drifted
            more than :data:`DRIFT_TOLERANCE` from it (paranoia knob
            for tests and debugging).
        chaos: optional :class:`~repro.chaos.inject.ChaosController`
            for fault-injection runs; ``None`` (the default) falls
            back to the thread-installed controller, and with neither
            the hot path pays a single ``is None`` test per submit.

    Returns:
        A :class:`DistOptResult`; ``objective`` is the global
        post-pass objective (CalculateObj of Algorithm 2).
    """
    if solver is None:
        solver = HighsBackend(
            time_limit=params.time_limit, mip_rel_gap=params.mip_gap
        )
    owns_executor = executor is None
    if executor is None:
        executor = SerialExecutor()
    if schedule is None:
        schedule = ScheduleConfig.for_time_limit(
            getattr(solver, "time_limit", None)
        )
    if chaos is None:
        chaos = active_chaos()
    scheduler = FamilyScheduler(executor, schedule, chaos=chaos)
    spec = SolverSpec.from_backend(solver)

    started = time.perf_counter()
    result = DistOptResult(
        objective=0.0, executor=executor.name, jobs=executor.jobs
    )

    windows = partition(design, tx, ty, bw, bh)
    if window_filter is not None:
        windows = [w for w in windows if window_filter(w)]
    families = independent_families(windows)
    result.family_count = len(families)

    with span(
        "distopt",
        pass_label=pass_label,
        windows=len(windows),
        families=len(families),
        executor=executor.name,
        jobs=executor.jobs,
    ) as pass_span:
        # The context every task of this pass ships to its worker;
        # worker-synthesized window spans parent under this pass span
        # (None when tracing is off — workers then skip synthesis).
        trace_ctx = current_context()
        try:
            next_task_id = 0
            for family_index, family in enumerate(families):
                next_task_id = _run_family(
                    design, params, family, family_index,
                    spec=spec, scheduler=scheduler, result=result,
                    telemetry=telemetry, pass_label=pass_label,
                    lx=lx, ly=ly, allow_flip=allow_flip,
                    next_task_id=next_task_id,
                    presolve=presolve, cache=cache, dirty=dirty,
                    trace_ctx=trace_ctx,
                )
        finally:
            if owns_executor:
                executor.close()

        if objective is None:
            result.objective = calculate_objective(design, params)
        else:
            result.objective = objective + result.objective_delta
            if audit:
                full = calculate_objective(design, params)
                result.objective_drift = abs(result.objective - full)
                if result.objective_drift >= DRIFT_TOLERANCE:
                    raise AssertionError(
                        f"pass {pass_label}: delta-accounted objective "
                        f"{result.objective!r} drifted "
                        f"{result.objective_drift:.3e} from full "
                        f"recompute {full!r} "
                        f"(tolerance {DRIFT_TOLERANCE:g})"
                    )
        pass_span.set(
            objective=result.objective,
            windows_built=result.windows_built,
            windows_applied=result.windows_applied,
            windows_cached=result.windows_cached,
            windows_skipped_clean=result.windows_skipped_clean,
            moved_cells=result.moved_cells,
        )
    result.wall_seconds = time.perf_counter() - started
    if telemetry is not None:
        if chaos is not None:
            telemetry.record_faults(chaos.drain_counts())
        telemetry.record_pass(
            pass_label,
            wall_seconds=result.wall_seconds,
            build_seconds=result.build_seconds,
            presolve_seconds=result.presolve_seconds,
            solve_seconds=result.solve_seconds,
            measured_parallel_seconds=result.measured_parallel_seconds,
            modeled_parallel_seconds=result.modeled_parallel_seconds,
            windows=result.windows_built,
            applied=result.windows_applied,
            failed=result.windows_failed,
            timed_out=result.windows_timed_out,
            cache_hits=result.windows_cached,
            cache_misses=result.cache_misses,
            windows_skipped_clean=result.windows_skipped_clean,
        )
    return result


def _task_params(params: OptParams, slice_design: Design) -> OptParams:
    """Per-task params: prune ``net_beta`` to the slice's nets so a
    large criticality map is not pickled into every task.  Sound
    because ``beta_of`` falls back to the uniform ``beta`` for any
    net missing from the map, and the worker only evaluates nets
    present in the slice."""
    if params.net_beta is None:
        return params
    pruned = {
        name: params.net_beta[name]
        for name in slice_design.nets
        if name in params.net_beta
    }
    return replace(params, net_beta=pruned)


def _run_family(
    design: Design,
    params: OptParams,
    family,
    family_index: int,
    *,
    spec: SolverSpec,
    scheduler: FamilyScheduler,
    result: DistOptResult,
    telemetry: RunTelemetry | None,
    pass_label: str,
    lx: int,
    ly: int,
    allow_flip: bool,
    next_task_id: int,
    presolve: bool,
    cache,
    dirty: DirtyTracker | None,
    trace_ctx: tuple[str, str | None] | None = None,
) -> int:
    """Slice, dispatch (worker-side build+solve), and apply one
    independent family; returns the next free task id."""
    tasks: list[WindowTask] = []
    tokens: dict[int, object] = {}
    keys: dict[int, tuple] = {}
    probes: dict[int, tuple] = {}
    for window in family:
        key = probe = None
        if dirty is not None:
            key = DirtyTracker.window_key(window, lx, ly, allow_flip)
            probe = probe_rect(design, window)
            if dirty.is_clean(key, probe):
                # Previously verified fixpoint, nothing written in its
                # neighborhood since: re-solving would provably
                # reproduce the same non-move (same argument as a
                # cache hit, minus the hash).
                result.windows_skipped_clean += 1
                if telemetry is not None:
                    telemetry.record_window(
                        WindowRecord(
                            pass_label=pass_label,
                            family=family_index,
                            ix=window.ix,
                            iy=window.iy,
                            status="skipped_clean",
                        )
                    )
                continue
        token = None
        if cache is not None:
            hit, token = cache.probe(
                design, window, lx=lx, ly=ly, allow_flip=allow_flip
            )
            if hit:
                # A fixpoint with identical content: re-solving would
                # deterministically reproduce the same non-move.
                result.windows_cached += 1
                if dirty is not None:
                    # The signature scan derived the window's exact
                    # net read-set — record it with the mark.
                    dirty.mark_clean(key, probe, nets=token.nets)
                if telemetry is not None:
                    telemetry.record_window(
                        WindowRecord(
                            pass_label=pass_label,
                            family=family_index,
                            ix=window.ix,
                            iy=window.iy,
                            status="cached",
                        )
                    )
                continue
            cache.note_miss()
            result.cache_misses += 1
        sliced = window_slice(design, window)
        if sliced is None:
            # No movable cells, so the build reads no nets at all —
            # the mark's net set is empty.  Clean by construction: a
            # cell can only appear inside this window via a move whose
            # cell rect intersects the window rect (⊆ probe rect).
            if dirty is not None:
                dirty.mark_clean(key, probe)
            continue
        task = WindowTask.from_slice(
            sliced,
            window,
            _task_params(params, sliced),
            task_id=next_task_id,
            family=family_index,
            solver=spec,
            lx=lx,
            ly=ly,
            allow_flip=allow_flip,
            presolve=presolve,
            trace=trace_ctx,
        )
        next_task_id += 1
        tasks.append(task)
        tokens[task.task_id] = token
        if dirty is not None:
            keys[task.task_id] = key
            probes[task.task_id] = probe
    if not tasks:
        return next_task_id

    solve_started = time.perf_counter()
    outcomes = scheduler.run_family(tasks)
    result.measured_parallel_seconds += (
        time.perf_counter() - solve_started
    )

    slowest_path = 0.0
    family_cell_rects: list = []
    family_nets: list[str] = []
    family_net_rects: list = []
    tracer = active_tracer() if trace_ctx is not None else None
    for task in tasks:  # canonical order — determinism contract
        outcome = outcomes[task.task_id]
        slowest_path = max(
            slowest_path,
            outcome.build_seconds
            + outcome.presolve_seconds
            + outcome.solve_seconds,
        )
        result.build_seconds += outcome.build_seconds
        result.solve_seconds += outcome.solve_seconds
        result.presolve_seconds += outcome.presolve_seconds
        if (
            not outcome.built
            and not outcome.error
            and not outcome.timed_out
        ):
            # The worker-side build found nothing optimizable —
            # silently dropped, like the parent-side build returning
            # None used to be.
            _absorb_spans(tracer, outcome, "empty")
            continue
        if outcome.built:
            result.windows_built += 1
            result.pairs_considered += outcome.num_pairs
        status, moved, delta, write = _apply_outcome(
            design, params, outcome, result
        )
        _absorb_spans(tracer, outcome, status)
        result.moved_cells += moved
        if status == "applied":
            result.objective_delta += delta
            family_cell_rects.extend(write.cell_rects)
            family_nets.extend(write.nets)
            family_net_rects.extend(write.net_rects)
        is_fixpoint = (
            status in ("no_move", "reverted")
            and outcome.solution is not None
            and outcome.solution.status is SolveStatus.OPTIMAL
        )
        if is_fixpoint:
            # Fixpoint: the optimal solve produced no (surviving)
            # move.  Identical content next pass can skip the window.
            # Applied windows are NOT cached/marked — the next pass
            # enumerates candidates around the new positions.
            if cache is not None and tokens[task.task_id] is not None:
                cache.store(tokens[task.task_id])
            if dirty is not None:
                dirty.mark_clean(
                    keys[task.task_id],
                    probes[task.task_id],
                    nets=outcome.nets,
                )
        if telemetry is not None:
            telemetry.record_window(
                WindowRecord(
                    pass_label=pass_label,
                    family=family_index,
                    ix=task.ix,
                    iy=task.iy,
                    build_seconds=outcome.build_seconds,
                    queue_seconds=outcome.queue_seconds,
                    presolve_seconds=outcome.presolve_seconds,
                    solve_seconds=outcome.solve_seconds,
                    status=status,
                    attempts=outcome.attempts,
                    moved_cells=moved,
                    num_pairs=outcome.num_pairs,
                    error=outcome.error or outcome.apply_error,
                    degraded=outcome.degraded,
                )
            )
    result.modeled_parallel_seconds += slowest_path
    if dirty is not None and (family_cell_rects or family_nets):
        # Batched per family, after its applies: this matches the
        # slice-before-apply ordering of the engine itself, so a
        # skipped window never observes a placement state a non-skip
        # run would not also have observed.
        dirty.note_dirty(
            family_cell_rects,
            nets=family_nets,
            net_rects=family_net_rects,
        )
    return next_task_id


def _absorb_spans(tracer, outcome: WindowTaskResult, status: str) -> None:
    """Fold a worker's synthesized spans into the pass tracer, stamping
    the apply verdict (only the submitting side knows it) onto the
    window root span.  Runs in canonical task order, so the trace file
    is deterministic under any executor."""
    if tracer is None:
        return
    if outcome.retry_spans:
        # Failed attempts' spans first (already ``error:`` status) —
        # a retried-then-recovered window keeps its failure history.
        tracer.absorb(outcome.retry_spans)
    if not outcome.spans:
        return
    root = outcome.spans[0]
    root.setdefault("attrs", {})["outcome"] = status
    tracer.absorb(outcome.spans)


def _apply_outcome(
    design: Design,
    params: OptParams,
    outcome: WindowTaskResult,
    result: DistOptResult,
) -> tuple[str, int, float, tuple]:
    """Fold one solve outcome into the design; returns
    ``(status, moved, objective_delta, dirty_rects)``."""
    if outcome.timed_out:
        result.windows_timed_out += 1
        return "timed_out", 0, 0.0, ()
    if outcome.error:
        result.windows_failed += 1
        return "failed", 0, 0.0, ()
    solution = outcome.solution
    if solution is None or not solution.status.has_solution:
        result.windows_failed += 1
        return "no_solution", 0, 0.0, ()
    if outcome.apply_error or outcome.moves is None:
        # The worker could not decode the solution into moves
        # (corrupt λ selection) — deterministic, not retried.
        result.windows_failed += 1
        return "failed", 0, 0.0, ()
    return _apply_guarded(design, params, outcome, result)


def _apply_guarded(
    design: Design,
    params: OptParams,
    outcome: WindowTaskResult,
    result: DistOptResult,
) -> tuple[str, int, float, tuple]:
    """Apply one window's moves behind the local-objective guard.

    Returns ``(status, moved, delta, write)`` where ``delta`` is the
    *exact* global objective change (``after − before`` over the
    window's touched nets — every net whose HPWL/alignment terms an
    applied move can change is in that set, so the local delta IS the
    global delta) and ``write`` is the applied move's
    :class:`~repro.core.dirty.DirtyWrite` (``()`` when nothing was
    applied).
    """
    nets = [design.nets[name] for name in outcome.nets]
    before_local = calculate_objective(design, params, nets)
    snapshot = {
        name: _placement_of(design, name) for name in outcome.movable
    }
    changed: list[str] = []
    for name, column, row, flipped in outcome.moves:
        prev = snapshot[name]
        design.place(name, column, row, flipped)
        inst = design.instances[name]
        if (inst.x, inst.y, inst.orientation) != prev:
            changed.append(name)
    if not changed:
        return "no_move", 0, 0.0, ()
    after_local = calculate_objective(design, params, nets)
    if after_local > before_local - 1e-9:
        for name, state in snapshot.items():
            inst = design.instances[name]
            inst.x, inst.y, inst.orientation = state
        result.windows_reverted += 1
        return "reverted", 0, 0.0, ()
    result.windows_applied += 1
    write = dirty_write_for_moves(design, changed, snapshot)
    return "applied", len(changed), after_local - before_local, write


def _placement_of(design: Design, name: str):
    inst = design.instances[name]
    return (inst.x, inst.y, inst.orientation)
