"""Cross-pass window-solve cache: skip windows whose content is
unchanged since their last *fixpoint* solve.

VM1Opt re-runs DistOpt over the same (or half-shifted) window grids
pass after pass; once a neighborhood settles, every later pass
rebuilds and re-solves a window only to conclude "no improving move"
again.  The cache remembers, per window key, a content hash of
everything the model build reads; when the hash matches, the build and
solve are skipped entirely.

Soundness — why skipping preserves the placement bit for bit:

* Only **fixpoint** outcomes are cached: windows whose solve ended
  ``OPTIMAL`` and whose guarded apply changed nothing (``no_move``) or
  was reverted (``reverted``).  The model build is a deterministic
  function of the hashed content, and a solve of the identical model
  with identical options is deterministic, so re-running such a window
  provably reproduces the same non-move.  Skipping it cannot change
  the placement — at *any* optimality gap.
* **Applied** windows are never cached: the next pass enumerates SCP
  candidates around the new positions and could move further.
* The content hash covers the probe neighborhood (every instance whose
  bbox can block sites in the window, with position/orientation/fixed
  state) plus the full pin ownership of every net touched by the
  window's movable cells — i.e. every input of
  :func:`~repro.core.formulation.build_window_model` that can vary
  between passes.  Window geometry and the (lx, ly, allow_flip)
  freedom are part of the key itself.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.formulation import probe_rect
from repro.core.window import Window
from repro.netlist.design import Design

#: (window rect, lx, ly, allow_flip) — the per-window identity.
CacheKey = tuple[int, int, int, int, int, int, bool]


@dataclass(frozen=True)
class CacheToken:
    """A probe result: the key plus the content hash it saw.

    ``nets`` carries the touched-net names the signature scan derived
    (the nets of the window's movable cells) so a cache hit can mark
    the window clean in the dirty tracker with its exact read set —
    the hash itself does not preserve that structure.
    """

    key: CacheKey
    content: bytes
    nets: tuple[str, ...] = ()


#: Default LRU capacity.  Sized for full-chip shard runs: a shard's
#: working set is (windows per pass) x (distinct grid phases), a few
#: thousand at 100k cells; entries are ~60 bytes, so the cap bounds
#: the cache at a few MB instead of letting a long run grow without
#: limit.
DEFAULT_MAX_ENTRIES = 65_536


class WindowSolveCache:
    """Fixpoint cache over window solves (one instance per VM1Opt run).

    Protocol: call :meth:`probe` before building a window — a ``hit``
    means the window may be skipped outright.  After a solve whose
    outcome is a fixpoint (``no_move``/``reverted`` with an ``OPTIMAL``
    status), call :meth:`store` with the probe's token.

    Memory is bounded by a max-entry LRU policy (``max_entries``;
    probes refresh recency, stores evict the stalest entry at
    capacity).  Eviction is *safe* by the same argument that makes the
    cache sound: an evicted fixpoint merely re-solves to the identical
    non-move, so capacity changes performance, never placements.
    """

    def __init__(
        self, max_entries: int = DEFAULT_MAX_ENTRIES
    ) -> None:
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        #: insertion/refresh order == LRU order (dicts are ordered).
        self._entries: dict[CacheKey, bytes] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def probe(
        self,
        design: Design,
        window: Window,
        *,
        lx: int,
        ly: int,
        allow_flip: bool,
    ) -> tuple[bool, CacheToken]:
        """Hash the window's content; returns ``(hit, token)``."""
        key: CacheKey = (
            window.rect.xlo,
            window.rect.ylo,
            window.rect.xhi,
            window.rect.yhi,
            lx,
            ly,
            allow_flip,
        )
        content, nets = self.signature_and_nets(design, window)
        token = CacheToken(key=key, content=content, nets=nets)
        hit = self._entries.get(key) == content
        if hit:
            self.hits += 1
            # Refresh recency: re-insert at the most-recent end.
            self._entries[key] = self._entries.pop(key)
        return hit, token

    def note_miss(self) -> None:
        """Count a window that had to be built and solved."""
        self.misses += 1

    def store(self, token: CacheToken) -> None:
        """Remember a fixpoint outcome for the token's content."""
        if token.key in self._entries:
            self._entries.pop(token.key)
        elif len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
            self.evictions += 1
        self._entries[token.key] = token.content
        self.stores += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------ checkpoint state
    def export_state(self) -> list:
        """JSON-serializable snapshot of the cache entries.

        Counters (hits/misses/stores) are *not* exported — they are
        per-run observability, not solver state.
        """
        return [
            [list(key), content.hex()]
            for key, content in sorted(self._entries.items())
        ]

    def import_state(self, state: list) -> None:
        """Replace the entries with a snapshot from
        :meth:`export_state` (e.g. out of a resumed checkpoint)."""
        entries: dict[CacheKey, bytes] = {}
        for raw_key, content_hex in state:
            key: CacheKey = (
                int(raw_key[0]),
                int(raw_key[1]),
                int(raw_key[2]),
                int(raw_key[3]),
                int(raw_key[4]),
                int(raw_key[5]),
                bool(raw_key[6]),
            )
            entries[key] = bytes.fromhex(content_hex)
        if len(entries) > self.max_entries:
            # Snapshots are key-sorted (recency is not serialized);
            # keep the cap by dropping arbitrary-but-deterministic
            # overflow.  Dropped fixpoints just re-solve to non-moves.
            overflow = len(entries) - self.max_entries
            self.evictions += overflow
            for key in list(entries)[:overflow]:
                entries.pop(key)
        self._entries = entries

    @staticmethod
    def signature(design: Design, window: Window) -> bytes:
        """Content hash of everything the window build reads."""
        return WindowSolveCache.signature_and_nets(design, window)[0]

    @staticmethod
    def signature_and_nets(
        design: Design, window: Window
    ) -> tuple[bytes, tuple[str, ...]]:
        """The content hash plus the touched-net names it covered
        (the nets of the window's movable cells — the exact read set
        a dirty-tracker mark needs)."""
        digest = hashlib.blake2b(digest_size=16)
        probe = probe_rect(design, window)
        movable: set[str] = set()
        for name, inst in sorted(design.instances.items()):
            if not inst.bbox.overlaps_open(probe):
                continue
            digest.update(
                f"{name},{inst.x},{inst.y},{inst.orientation.value},"
                f"{int(inst.fixed)};".encode()
            )
            if not inst.fixed and window.rect.contains_rect(inst.bbox):
                movable.add(name)
        nets: list[str] = []
        for net in design.nets_of_instances(movable):
            nets.append(net.name)
            digest.update(f"|{net.name}".encode())
            for ref in net.pins:
                inst = design.instances[ref.instance]
                digest.update(
                    f",{ref.instance}.{ref.pin}:{inst.x},{inst.y},"
                    f"{inst.orientation.value}".encode()
                )
        return digest.digest(), tuple(nets)
