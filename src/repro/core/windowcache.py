"""Cross-pass window-solve cache: skip windows whose content is
unchanged since their last *fixpoint* solve.

VM1Opt re-runs DistOpt over the same (or half-shifted) window grids
pass after pass; once a neighborhood settles, every later pass
rebuilds and re-solves a window only to conclude "no improving move"
again.  The cache remembers, per window key, a content hash of
everything the model build reads; when the hash matches, the build and
solve are skipped entirely.

Soundness — why skipping preserves the placement bit for bit:

* Only **fixpoint** outcomes are cached: windows whose solve ended
  ``OPTIMAL`` and whose guarded apply changed nothing (``no_move``) or
  was reverted (``reverted``).  The model build is a deterministic
  function of the hashed content, and a solve of the identical model
  with identical options is deterministic, so re-running such a window
  provably reproduces the same non-move.  Skipping it cannot change
  the placement — at *any* optimality gap.
* **Applied** windows are never cached: the next pass enumerates SCP
  candidates around the new positions and could move further.
* The content hash covers the probe neighborhood (every instance whose
  bbox can block sites in the window, with position/orientation/fixed
  state) plus the full pin ownership of every net touched by the
  window's movable cells — i.e. every input of
  :func:`~repro.core.formulation.build_window_model` that can vary
  between passes.  Window geometry and the (lx, ly, allow_flip)
  freedom are part of the key itself.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.formulation import probe_rect
from repro.core.window import Window
from repro.netlist.design import Design

#: (window rect, lx, ly, allow_flip) — the per-window identity.
CacheKey = tuple[int, int, int, int, int, int, bool]


@dataclass(frozen=True)
class CacheToken:
    """A probe result: the key plus the content hash it saw."""

    key: CacheKey
    content: bytes


class WindowSolveCache:
    """Fixpoint cache over window solves (one instance per VM1Opt run).

    Protocol: call :meth:`probe` before building a window — a ``hit``
    means the window may be skipped outright.  After a solve whose
    outcome is a fixpoint (``no_move``/``reverted`` with an ``OPTIMAL``
    status), call :meth:`store` with the probe's token.
    """

    def __init__(self) -> None:
        self._entries: dict[CacheKey, bytes] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def __len__(self) -> int:
        return len(self._entries)

    def probe(
        self,
        design: Design,
        window: Window,
        *,
        lx: int,
        ly: int,
        allow_flip: bool,
    ) -> tuple[bool, CacheToken]:
        """Hash the window's content; returns ``(hit, token)``."""
        key: CacheKey = (
            window.rect.xlo,
            window.rect.ylo,
            window.rect.xhi,
            window.rect.yhi,
            lx,
            ly,
            allow_flip,
        )
        content = self.signature(design, window)
        token = CacheToken(key=key, content=content)
        hit = self._entries.get(key) == content
        if hit:
            self.hits += 1
        return hit, token

    def note_miss(self) -> None:
        """Count a window that had to be built and solved."""
        self.misses += 1

    def store(self, token: CacheToken) -> None:
        """Remember a fixpoint outcome for the token's content."""
        self._entries[token.key] = token.content
        self.stores += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------ checkpoint state
    def export_state(self) -> list:
        """JSON-serializable snapshot of the cache entries.

        Counters (hits/misses/stores) are *not* exported — they are
        per-run observability, not solver state.
        """
        return [
            [list(key), content.hex()]
            for key, content in sorted(self._entries.items())
        ]

    def import_state(self, state: list) -> None:
        """Replace the entries with a snapshot from
        :meth:`export_state` (e.g. out of a resumed checkpoint)."""
        entries: dict[CacheKey, bytes] = {}
        for raw_key, content_hex in state:
            key: CacheKey = (
                int(raw_key[0]),
                int(raw_key[1]),
                int(raw_key[2]),
                int(raw_key[3]),
                int(raw_key[4]),
                int(raw_key[5]),
                bool(raw_key[6]),
            )
            entries[key] = bytes.fromhex(content_hex)
        self._entries = entries

    @staticmethod
    def signature(design: Design, window: Window) -> bytes:
        """Content hash of everything the window build reads."""
        digest = hashlib.blake2b(digest_size=16)
        probe = probe_rect(design, window)
        movable: set[str] = set()
        for name, inst in sorted(design.instances.items()):
            if not inst.bbox.overlaps_open(probe):
                continue
            digest.update(
                f"{name},{inst.x},{inst.y},{inst.orientation.value},"
                f"{int(inst.fixed)};".encode()
            )
            if not inst.fixed and window.rect.contains_rect(inst.bbox):
                movable.add(name)
        for net in design.nets_of_instances(movable):
            digest.update(f"|{net.name}".encode())
            for ref in net.pins:
                inst = design.instances[ref.instance]
                digest.update(
                    f",{ref.instance}.{ref.pin}:{inst.x},{inst.y},"
                    f"{inst.orientation.value}".encode()
                )
        return digest.digest()
