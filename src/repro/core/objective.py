"""Global objective evaluation (CalculateObj of Algorithm 2).

The same predicate the MILP encodes, evaluated on a concrete
placement: ClosedM1 counts exactly-aligned same-net pin pairs within
the γ-row span; OpenM1 counts pin pairs whose x-projections overlap by
at least δ within the γ-row span, plus the total overlap length.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import OptParams
from repro.netlist.design import Design, Net
from repro.tech.arch import AlignmentMode


@dataclass(frozen=True)
class AlignmentStats:
    """Counted alignments/overlaps at the current placement."""

    num_aligned: int
    total_overlap: int


def _net_pairs(design: Design, net: Net):
    """Yield same-net pin pairs on distinct instances."""
    pins = net.pins
    for i in range(len(pins)):
        for j in range(i + 1, len(pins)):
            if pins[i].instance != pins[j].instance:
                yield pins[i], pins[j]


def alignment_stats(
    design: Design,
    params: OptParams,
    nets: list[Net] | None = None,
) -> AlignmentStats:
    """Count aligned/overlapped pin pairs under ``params``.

    ``nets`` restricts the count to a subset (used for local window
    objective checks); None means the whole design.
    """
    mode = design.tech.arch.alignment_mode
    if mode is AlignmentMode.NONE:
        return AlignmentStats(0, 0)
    if nets is None:
        nets = [net for _, net in sorted(design.nets.items())]
    span = params.gamma * design.tech.row_height
    aligned = 0
    overlap_total = 0
    for net in nets:
        if net.degree < 2 or net.degree > params.max_net_degree:
            continue
        for ref_p, ref_q in _net_pairs(design, net):
            inst_p = design.instances[ref_p.instance]
            inst_q = design.instances[ref_q.instance]
            if mode is AlignmentMode.ALIGN:
                p = inst_p.pin_position(ref_p.pin)
                q = inst_q.pin_position(ref_q.pin)
                if p.x == q.x and abs(p.y - q.y) <= span:
                    aligned += 1
            else:
                iv_p = inst_p.pin_x_interval(ref_p.pin)
                iv_q = inst_q.pin_x_interval(ref_q.pin)
                dy = abs(
                    inst_p.pin_position(ref_p.pin).y
                    - inst_q.pin_position(ref_q.pin).y
                )
                if dy > span:
                    continue
                overlap = iv_p.overlap_length(iv_q)
                if overlap >= params.delta:
                    aligned += 1
                    overlap_total += overlap - params.delta
    return AlignmentStats(aligned, overlap_total)


def calculate_objective(
    design: Design,
    params: OptParams,
    nets: list[Net] | None = None,
) -> float:
    """The paper's objective: β·HPWL − α·(#alignments) − ε·(overlap).

    Lower is better; the ε term only applies to OpenM1.  ``nets``
    restricts the evaluation to a subset (local window objective).
    """
    stats = alignment_stats(design, params, nets)
    if nets is None:
        nets_for_hpwl = [
            net for _, net in sorted(design.nets.items())
        ]
    else:
        nets_for_hpwl = nets
    if params.net_beta is None:
        hpwl = sum(
            params.beta * design.net_hpwl(net)
            for net in nets_for_hpwl
            if not net.is_trivial()
        )
    else:
        hpwl = sum(
            params.beta_of(net.name) * design.net_hpwl(net)
            for net in nets_for_hpwl
            if not net.is_trivial()
        )
    objective = hpwl
    objective -= params.alpha * stats.num_aligned
    if design.tech.arch.alignment_mode is AlignmentMode.OVERLAP:
        objective -= params.epsilon * stats.total_overlap
    return objective
