"""Window MILP construction: the §3.1 / §3.2 formulations.

Given one window, the model selects an SCP candidate per movable cell
(λ binaries, constraints (5)–(8) folded into candidate constants),
packs cells onto sites (constraint (9)), tracks each touched net's
HPWL through min/max coordinate variables (constraints (2)–(3)), and
scores direct-vertical-M1 opportunities:

* ClosedM1 — a binary d_pq per candidate-feasible same-net pin pair
  with the big-M alignment test of constraint (4), generalized from H
  to γ·H.
* OpenM1 — overlap variables a/b/o_pq and the escape binary v_pq with
  constraints (11)–(14); d_pq = 1 requires overlap ≥ δ within the γ
  row span, and the overlap length o_pq is rewarded with ε.

Pin pairs that can never align/overlap under any candidate combination
are pruned before a variable is created (sound pruning: only provably
d_pq = 0 pairs are dropped).

Two solver-facing details ride on the model:

* **Deterministic tie-break** — window optima are massively degenerate
  (symmetric swaps, equal-HPWL shifts), so which optimum a solver
  returns depends on its internal ordering.  Every λ gets a tiny
  objective perturbation — deterministic in the cell name and the
  candidate index, total weight below ``_TIE_BREAK_BUDGET`` — which
  makes the selected optimum a property of the *model*, not of the
  solve path.  That is what lets presolved/cached solves reproduce the
  plain solve bit for bit.
* **Identity warm start** — ``model.warm_start`` carries the
  always-feasible identity assignment (candidate 0 per cell, all
  alignment binaries off) for backends that can seed an incumbent.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.params import OptParams
from repro.core.scp import Candidate, enumerate_candidates
from repro.core.window import Window
from repro.geometry import Orientation
from repro.milp.model import Constraint, LinExpr, Model, Sense, Var
from repro.milp.solution import Solution
from repro.netlist.design import Design, Instance, Net, PinRef
from repro.tech.arch import AlignmentMode

#: Total objective weight available to the λ tie-break perturbation.
#: Kept below 0.5 — half the quantum of the integer-valued primary
#: objective — so the perturbation can reorder *tied* optima only.
_TIE_BREAK_BUDGET = 0.45


@dataclass
class _PinExpr:
    """Linear expressions for one pin's absolute geometry.

    For fixed pins the expressions are constants; for movable pins
    they are affine in the owner cell's λ variables.
    """

    x: LinExpr
    y: LinExpr
    x_lo: LinExpr  # xmin_p (OpenM1 interval left)
    x_hi: LinExpr  # xmax_p (OpenM1 interval right)
    x_values: tuple[int, ...]  # attainable x coordinates (pruning)
    y_values: tuple[int, ...]
    lo_min: int
    hi_max: int
    movable: bool


@dataclass
class WindowProblem:
    """A built window MILP plus the data needed to apply its result."""

    window: Window
    model: Model
    movable: list[str]
    candidates: dict[str, list[Candidate]]
    lambda_vars: dict[str, list[Var]]
    d_vars: list[Var] = field(default_factory=list)
    nets: list[str] = field(default_factory=list)

    @property
    def num_pairs(self) -> int:
        return len(self.d_vars)


def build_window_model(
    design: Design,
    window: Window,
    params: OptParams,
    *,
    lx: int,
    ly: int,
    allow_flip: bool,
) -> WindowProblem | None:
    """Build the MILP for ``window``; None when nothing is optimizable."""
    movable_insts = [
        inst
        for inst in design.instances_in(window.rect)
        if not inst.fixed
    ]
    if not movable_insts:
        return None
    movable_names = [inst.name for inst in movable_insts]
    movable_set = set(movable_names)

    blocked = _blocked_sites(design, window, movable_set)
    model = Model(f"win({window.ix},{window.iy})")

    candidates: dict[str, list[Candidate]] = {}
    lambda_vars: dict[str, list[Var]] = {}
    site_cover: dict[tuple[int, int], list[Var]] = defaultdict(list)
    for inst in movable_insts:
        cands = [
            cand
            for cand in enumerate_candidates(
                design, inst, window.rect, lx=lx, ly=ly,
                allow_flip=allow_flip,
            )
            if blocked.isdisjoint(cand.sites)
        ]
        if not cands:  # should not happen: identity is always legal
            return None
        candidates[inst.name] = cands
        lams = [
            model.add_binary(f"lam[{inst.name},{k}]")
            for k in range(len(cands))
        ]
        lambda_vars[inst.name] = lams
        model.add_constraint(
            Constraint(
                {lam.index: 1.0 for lam in lams}, Sense.EQ, 1.0,
                name=f"sel[{inst.name}]",
            )
        )
        for cand, lam in zip(cands, lams):
            for site in cand.sites:
                site_cover[site].append(lam)

    for site, lams in sorted(site_cover.items()):
        if len(lams) > 1:
            model.add_constraint(
                Constraint(
                    {lam.index: 1.0 for lam in lams}, Sense.LE, 1.0,
                    name=f"site[{site[0]},{site[1]}]",
                )
            )

    nets = _touched_nets(design, movable_set)
    pin_exprs = _pin_expressions(
        design, nets, movable_set, candidates, lambda_vars
    )

    # Objective assembled in one mutable accumulator — `expr + expr`
    # copies the growing coefficient dict and turned the build
    # O(terms^2) for large windows.
    obj_coefs: dict[int, float] = {}
    obj_const = 0.0

    def accumulate(expr: LinExpr, factor: float) -> None:
        nonlocal obj_const
        for idx, coef in expr.coefs.items():
            obj_coefs[idx] = obj_coefs.get(idx, 0.0) + factor * coef
        obj_const += factor * expr.const

    for net in nets:
        accumulate(
            _hpwl_expr(design, model, net, pin_exprs),
            params.beta_of(net.name),
        )

    mode = design.tech.arch.alignment_mode
    d_vars: list[Var] = []
    v_vars: list[Var] = []
    if mode is not AlignmentMode.NONE and params.alpha > 0:
        span = params.gamma * design.tech.row_height
        for net in nets:
            if not 2 <= net.degree <= params.max_net_degree:
                continue
            for ref_p, ref_q in _movable_pairs(net, movable_set):
                p = pin_exprs[ref_p]
                q = pin_exprs[ref_q]
                if mode is AlignmentMode.ALIGN:
                    d = _closedm1_pair(model, p, q, span, ref_p, ref_q)
                    if d is not None:
                        d_vars.append(d)
                        obj_coefs[d.index] = -float(params.alpha)
                else:
                    built = _openm1_pair(
                        model, p, q, span, params.delta, ref_p, ref_q
                    )
                    if built is not None:
                        d, overlap, escape = built
                        d_vars.append(d)
                        v_vars.append(escape)
                        obj_coefs[d.index] = -float(params.alpha)
                        obj_coefs[overlap.index] = -float(
                            params.epsilon
                        )

    _perturb_ties(obj_coefs, movable_names, lambda_vars)
    model.minimize(LinExpr(obj_coefs, obj_const))
    model.warm_start = _identity_warm_start(
        movable_names, lambda_vars, d_vars, v_vars
    )
    return WindowProblem(
        window=window,
        model=model,
        movable=movable_names,
        candidates=candidates,
        lambda_vars=lambda_vars,
        d_vars=d_vars,
        nets=[net.name for net in nets],
    )


def solution_moves(
    problem: WindowProblem, solution: Solution
) -> tuple[tuple[str, int, int, bool], ...]:
    """Decode a window solution into plain placement moves.

    Returns one ``(cell, column, row, flipped)`` per movable cell, in
    the problem's canonical cell order.  This is the only part of a
    solution the parent needs to apply it, so it is what a slice-mode
    :class:`~repro.runtime.task.WindowTask` ships back across the
    process boundary.

    Raises:
        ValueError: if any cell has no (or more than one) selected
            candidate — a corrupt solution.
    """
    moves: list[tuple[str, int, int, bool]] = []
    for name in problem.movable:
        cands = problem.candidates[name]
        lams = problem.lambda_vars[name]
        picked = [
            cand
            for cand, lam in zip(cands, lams)
            if solution.is_one(lam)
        ]
        if len(picked) != 1:
            raise ValueError(
                f"{name}: {len(picked)} candidates selected"
            )
        cand = picked[0]
        moves.append((name, cand.column, cand.row, cand.flipped))
    return tuple(moves)


def apply_moves(
    design: Design, moves: tuple[tuple[str, int, int, bool], ...]
) -> int:
    """Place decoded moves; returns how many placements changed."""
    moved = 0
    for name, column, row, flipped in moves:
        inst = design.instances[name]
        before = (inst.x, inst.y, inst.orientation)
        design.place(name, column, row, flipped)
        if (inst.x, inst.y, inst.orientation) != before:
            moved += 1
    return moved


def apply_solution(
    design: Design, problem: WindowProblem, solution: Solution
) -> int:
    """Write the selected candidates back into ``design``.

    Returns the number of instances whose placement changed.

    Raises:
        ValueError: if any cell has no selected candidate (corrupt
            solution) — the design is left untouched in that case
        (decoding happens before the first placement write).
    """
    return apply_moves(design, solution_moves(problem, solution))


def window_slice(
    design: Design, window: Window
) -> Design | None:
    """The minimal sub-design a worker-side window build needs.

    Collects every instance whose bbox overlaps the window's probe
    rect (everything :func:`build_window_model` reads spatially: the
    movables plus every potential site blocker), the movable cells'
    nets, and those nets' off-window terminal instances (HPWL anchors
    read through ``pin_position``).  ``build_window_model`` on the
    slice is input-identical to a build on the full design — same
    movables, same blocked sites, same touched nets, same pin
    geometry — so it produces the same model, bit for bit.

    Returns ``None`` when the window holds no movable cell (nothing
    to build, mirroring the full build's early-out).

    Instance/net objects are *shared* with the parent design, not
    copied: the worker only reads them, and pickling a task for a
    process executor deep-copies the slice anyway.
    """
    probe = probe_rect(design, window)
    rect = window.rect
    instances: dict[str, Instance] = {}
    movable: set[str] = set()
    for name, inst in design.instances.items():
        if not inst.bbox.overlaps_open(probe):
            continue
        instances[name] = inst
        if not inst.fixed and rect.contains_rect(inst.bbox):
            movable.add(name)
    if not movable:
        return None
    nets: dict[str, Net] = {}
    for net in design.nets_of_instances(movable):
        nets[net.name] = net
        for ref in net.pins:
            if ref.instance not in instances:
                instances[ref.instance] = design.instances[
                    ref.instance
                ]
    sub = Design(design.name, design.tech, design.die)
    sub.instances = instances
    sub.nets = nets
    return sub


# ---------------------------------------------------------------- helpers
def _perturb_ties(
    obj_coefs: dict[int, float],
    movable_names: list[str],
    lambda_vars: dict[str, list[Var]],
) -> None:
    """Add the deterministic tie-break perturbation to the λ terms.

    Per cell ``c`` each candidate ``k`` gains
    ``scale_c * (k + 1) / (n_c + 1)`` where ``scale_c`` is derived
    from a hash of the cell name.  Within a cell, adjacent candidates
    are separated by at least ``scale_c / (n_c + 1)`` — orders of
    magnitude above solver tolerances — and the total across all cells
    stays below ``_TIE_BREAK_BUDGET`` so no primary-objective decision
    can be reordered, only genuine ties.
    """
    budget = _TIE_BREAK_BUDGET / max(1, len(movable_names))
    for name in movable_names:
        digest = hashlib.blake2b(
            name.encode(), digest_size=8
        ).digest()
        fraction = int.from_bytes(digest, "big") / 2**64
        scale = budget * (0.5 + 0.5 * fraction)
        lams = lambda_vars[name]
        step = scale / (len(lams) + 1)
        for k, lam in enumerate(lams):
            obj_coefs[lam.index] = (
                obj_coefs.get(lam.index, 0.0) + step * (k + 1)
            )


def _identity_warm_start(
    movable_names: list[str],
    lambda_vars: dict[str, list[Var]],
    d_vars: list[Var],
    v_vars: list[Var],
) -> dict[int, float]:
    """The always-feasible identity assignment for every integer var:
    candidate 0 (the current placement) per cell, all alignment
    binaries off, all escape binaries on."""
    warm: dict[int, float] = {}
    for name in movable_names:
        lams = lambda_vars[name]
        warm[lams[0].index] = 1.0
        for lam in lams[1:]:
            warm[lam.index] = 0.0
    for d in d_vars:
        warm[d.index] = 0.0
    for v in v_vars:
        warm[v.index] = 1.0
    return warm


def probe_rect(design: Design, window: Window):
    """The neighborhood a window build actually reads: the window rect
    expanded far enough to see every blocking cell.  The window-solve
    cache hashes exactly this neighborhood, so the cache key covers
    everything that can influence the built model."""
    tech = design.tech
    return window.rect.expanded(
        max(tech.site_width * 64, tech.row_height * 4)
    )


def _blocked_sites(
    design: Design, window: Window, movable: set[str]
) -> set[tuple[int, int]]:
    """Sites inside the window footprinted by cells we may not move
    (boundary-straddling or fixed cells)."""
    blocked: set[tuple[int, int]] = set()
    probe = probe_rect(design, window)
    xlo, ylo, xhi, yhi = probe.xlo, probe.ylo, probe.xhi, probe.yhi
    # Set contents are order-independent — no need to sort the scan.
    for name, inst in design.instances.items():
        if name in movable:
            continue
        if (
            inst.x >= xhi
            or inst.x + inst.width <= xlo
            or inst.y >= yhi
            or inst.y + inst.height <= ylo
        ):
            continue
        row = design.row_of(inst)
        col = design.column_of(inst)
        for c in range(col, col + inst.macro.width_sites):
            blocked.add((row, c))
    return blocked


def _touched_nets(design: Design, movable: set[str]) -> list[Net]:
    nets = design.nets_of_instances(movable)
    return [net for net in nets if not net.is_trivial()]


def _pin_expressions(
    design: Design,
    nets: list[Net],
    movable: set[str],
    candidates: dict[str, list[Candidate]],
    lambda_vars: dict[str, list[Var]],
) -> dict[PinRef, _PinExpr]:
    exprs: dict[PinRef, _PinExpr] = {}
    # Candidate geometry is per *instance*, not per pin — hoist the
    # orientation test out of the per-pin loops so a cell's pins share
    # one (x, y, mirrored) sweep.
    inst_geo: dict[str, list[tuple[int, int, bool]]] = {}
    for net in nets:
        for ref in net.pins:
            if ref in exprs:
                continue
            inst = design.instances[ref.instance]
            pin = inst.macro.pin(ref.pin)
            if ref.instance in movable:
                # λ indices are distinct, so each pin expression is a
                # straight dict fill — building them with `expr + expr`
                # copied the growing dict per candidate and dominated
                # the whole model build.
                x_coefs: dict[int, float] = {}
                y_coefs: dict[int, float] = {}
                lo_coefs: dict[int, float] = {}
                hi_coefs: dict[int, float] = {}
                xs: list[int] = []
                ys: list[int] = []
                lo_min = None
                hi_max = None
                # The pin's relative geometry has exactly two variants
                # (plain / x-mirrored); resolving the property chain
                # per candidate dominated this loop.
                width = inst.width
                y_rel = pin.y_rel
                xp_n = pin.x_rel
                iv_n = pin.x_interval_rel
                xp_m = width - xp_n
                iv_m = Orientation.FN.transform_x_interval(
                    iv_n, width
                )
                geo = inst_geo.get(ref.instance)
                if geo is None:
                    geo = [
                        (c.x, c.y, c.orientation.is_x_mirrored)
                        for c in candidates[ref.instance]
                    ]
                    inst_geo[ref.instance] = geo
                lo_n, hi_n = iv_n.lo, iv_n.hi
                lo_m, hi_m = iv_m.lo, iv_m.hi
                for (cx, cy, mirrored), lam in zip(
                    geo, lambda_vars[ref.instance]
                ):
                    if mirrored:
                        px = cx + xp_m
                        lo = cx + lo_m
                        hi = cx + hi_m
                    else:
                        px = cx + xp_n
                        lo = cx + lo_n
                        hi = cx + hi_n
                    py = cy + y_rel
                    idx = lam.index
                    # Integer coefficients are fine: every consumer
                    # (extract, presolve) does float arithmetic, and
                    # the np.float64 conversion happens once in CSR
                    # assembly instead of per coefficient here.
                    x_coefs[idx] = px
                    y_coefs[idx] = py
                    lo_coefs[idx] = lo
                    hi_coefs[idx] = hi
                    xs.append(px)
                    ys.append(py)
                    lo_min = lo if lo_min is None else min(lo_min, lo)
                    hi_max = hi if hi_max is None else max(hi_max, hi)
                exprs[ref] = _PinExpr(
                    x=LinExpr(x_coefs),
                    y=LinExpr(y_coefs),
                    x_lo=LinExpr(lo_coefs),
                    x_hi=LinExpr(hi_coefs),
                    x_values=tuple(sorted(set(xs))),
                    y_values=tuple(sorted(set(ys))),
                    lo_min=lo_min or 0,
                    hi_max=hi_max or 0,
                    movable=True,
                )
            else:
                pos = inst.pin_position(ref.pin)
                iv = inst.pin_x_interval(ref.pin)
                exprs[ref] = _PinExpr(
                    x=LinExpr({}, float(pos.x)),
                    y=LinExpr({}, float(pos.y)),
                    x_lo=LinExpr({}, float(iv.lo)),
                    x_hi=LinExpr({}, float(iv.hi)),
                    x_values=(pos.x,),
                    y_values=(pos.y,),
                    lo_min=iv.lo,
                    hi_max=iv.hi,
                    movable=False,
                )
    return exprs


def _hpwl_expr(
    design: Design,
    model: Model,
    net: Net,
    pin_exprs: dict[PinRef, _PinExpr],
) -> LinExpr:
    """Constraints (2)-(3): net bounding-box variables; returns wn."""
    fixed_xs = [p.x for p in net.pads]
    fixed_ys = [p.y for p in net.pads]
    movable_refs = []
    for ref in net.pins:
        expr = pin_exprs[ref]
        if expr.movable:
            movable_refs.append(ref)
        else:
            fixed_xs.append(expr.x_values[0])
            fixed_ys.append(expr.y_values[0])

    if not movable_refs:
        width = (max(fixed_xs) - min(fixed_xs)) if fixed_xs else 0
        height = (max(fixed_ys) - min(fixed_ys)) if fixed_ys else 0
        return LinExpr.of(float(width + height))

    # Tight variable bounds double as the fixed-terminal constraints.
    # ``x_values``/``y_values`` are sorted, so the extremes come from
    # the endpoints — no flattened value list needed.
    min_x = min(pin_exprs[ref].x_values[0] for ref in movable_refs)
    max_x = max(pin_exprs[ref].x_values[-1] for ref in movable_refs)
    min_y = min(pin_exprs[ref].y_values[0] for ref in movable_refs)
    max_y = max(pin_exprs[ref].y_values[-1] for ref in movable_refs)
    if fixed_xs:
        fx_max = max(fixed_xs)
        fx_min = min(fixed_xs)
        min_x = min(min_x, fx_min)
        max_x = max(max_x, fx_max)
    else:
        fx_max = min_x
        fx_min = max_x
    if fixed_ys:
        fy_max = max(fixed_ys)
        fy_min = min(fixed_ys)
        min_y = min(min_y, fy_min)
        max_y = max(max_y, fy_max)
    else:
        fy_max = min_y
        fy_min = max_y

    x_max = model.add_continuous(f"xmax[{net.name}]", fx_max, max_x)
    x_min = model.add_continuous(f"xmin[{net.name}]", min_x, fx_min)
    y_max = model.add_continuous(f"ymax[{net.name}]", fy_max, max_y)
    y_min = model.add_continuous(f"ymin[{net.name}]", min_y, fy_min)
    for ref in movable_refs:
        expr = pin_exprs[ref]
        # Rows are assembled as raw coefficient dicts: the operator
        # forms copy each pin expression (one dict per λ of the owner
        # cell) several times per row and dominated the build.
        model.add_constraint(_bound_row(x_max, expr.x, Sense.GE))
        model.add_constraint(_bound_row(x_min, expr.x, Sense.LE))
        model.add_constraint(_bound_row(y_max, expr.y, Sense.GE))
        model.add_constraint(_bound_row(y_min, expr.y, Sense.LE))
    return LinExpr(
        {
            x_max.index: 1.0,
            x_min.index: -1.0,
            y_max.index: 1.0,
            y_min.index: -1.0,
        }
    )


def _bound_row(var: Var, expr: LinExpr, sense: Sense) -> Constraint:
    """``var - expr (sense) 0`` without LinExpr copies."""
    coefs = {idx: -coef for idx, coef in expr.coefs.items() if coef}
    coefs[var.index] = coefs.get(var.index, 0.0) + 1.0
    return Constraint(coefs, sense, expr.const)


def _diff_coefs(
    p: LinExpr, q: LinExpr
) -> tuple[dict[int, float], float]:
    """Nonzero coefficients and constant of ``p - q``."""
    coefs = {idx: coef for idx, coef in p.coefs.items() if coef}
    for idx, coef in q.coefs.items():
        merged = coefs.get(idx, 0.0) - coef
        if merged:
            coefs[idx] = merged
        else:
            coefs.pop(idx, None)
    return coefs, p.const - q.const


def _shifted_row(
    base: dict[int, float],
    const: float,
    extra: Var,
    extra_coef: float,
    sense: Sense,
    rhs: float,
) -> Constraint:
    """``base + const + extra_coef*extra (sense) rhs`` as one row."""
    coefs = dict(base)
    if extra_coef:
        coefs[extra.index] = coefs.get(extra.index, 0.0) + extra_coef
    return Constraint(coefs, sense, rhs - const)


def _movable_pairs(net: Net, movable: set[str]):
    """Same-net pin pairs on distinct instances, at least one movable."""
    pins = net.pins
    for i in range(len(pins)):
        for j in range(i + 1, len(pins)):
            if pins[i].instance == pins[j].instance:
                continue
            if pins[i].instance in movable or pins[j].instance in movable:
                yield pins[i], pins[j]


def _closedm1_pair(
    model: Model,
    p: _PinExpr,
    q: _PinExpr,
    span: int,
    ref_p: PinRef,
    ref_q: PinRef,
) -> Var | None:
    """Constraint (4) with a γ·H vertical window; None when pruned."""
    if not set(p.x_values) & set(q.x_values):
        return None
    if _interval_gap(p.y_values, q.y_values) > span:
        return None
    g_x = max(p.x_values[-1] - q.x_values[0], q.x_values[-1] - p.x_values[0])
    g_y = (
        max(p.y_values[-1] - q.y_values[0], q.y_values[-1] - p.y_values[0])
        + span
    )
    d = model.add_binary(f"d[{_pair_name(ref_p, ref_q)}]")
    dx, dx_const = _diff_coefs(p.x, q.x)
    dy, dy_const = _diff_coefs(p.y, q.y)
    g_x = float(g_x)
    g_y = float(g_y)
    model.add_constraint(
        _shifted_row(dx, dx_const, d, g_x, Sense.LE, g_x)
    )
    model.add_constraint(
        _shifted_row(dx, dx_const, d, -g_x, Sense.GE, -g_x)
    )
    model.add_constraint(
        _shifted_row(dy, dy_const, d, g_y, Sense.LE, g_y + span)
    )
    model.add_constraint(
        _shifted_row(dy, dy_const, d, -g_y, Sense.GE, -(g_y + span))
    )
    return d


def _openm1_pair(
    model: Model,
    p: _PinExpr,
    q: _PinExpr,
    span: int,
    delta: int,
    ref_p: PinRef,
    ref_q: PinRef,
) -> tuple[Var, Var, Var] | None:
    """Constraints (11)-(14); returns (d, o, v) or None when pruned."""
    best_overlap = min(p.hi_max, q.hi_max) - max(p.lo_min, q.lo_min)
    if best_overlap < delta:
        return None
    if _interval_gap(p.y_values, q.y_values) > span:
        return None
    name = _pair_name(ref_p, ref_q)
    a = model.add_continuous(
        f"a[{name}]", max(p.lo_min, q.lo_min), float("inf")
    )
    b = model.add_continuous(
        f"b[{name}]", -float("inf"), min(p.hi_max, q.hi_max)
    )
    model.add_constraint(_bound_row(a, p.x_lo, Sense.GE))
    model.add_constraint(_bound_row(a, q.x_lo, Sense.GE))
    model.add_constraint(_bound_row(b, p.x_hi, Sense.LE))
    model.add_constraint(_bound_row(b, q.x_hi, Sense.LE))

    d = model.add_binary(f"d[{name}]")
    v = model.add_binary(f"v[{name}]")
    g_y = float(
        max(p.y_values[-1] - q.y_values[0], q.y_values[-1] - p.y_values[0])
        + span
    )
    dy, dy_const = _diff_coefs(p.y, q.y)
    model.add_constraint(
        _shifted_row(dy, dy_const, v, -g_y, Sense.LE, span)
    )
    model.add_constraint(
        _shifted_row(dy, dy_const, v, g_y, Sense.GE, -span)
    )
    model.add_constraint(
        Constraint({d.index: 1.0, v.index: 1.0}, Sense.LE, 1.0)
    )

    o_cap = max(0.0, float(best_overlap - delta))
    # Relaxation constant for constraint (13): when d = 0 the bound
    # must stay slack even for the most disjoint candidate choice, so
    # it covers the full x-span of both pins plus δ.
    g_13 = float(
        max(p.hi_max, q.hi_max) - min(p.lo_min, q.lo_min) + delta
    )
    o = model.add_continuous(f"o[{name}]", 0.0, o_cap)
    # o - (b - a) - g_13*(1 - d) <= -delta
    model.add_constraint(
        Constraint(
            {
                o.index: 1.0,
                b.index: -1.0,
                a.index: 1.0,
                d.index: g_13,
            },
            Sense.LE,
            g_13 - delta,
        )
    )
    coefs = {o.index: 1.0}
    if o_cap:
        coefs[d.index] = -o_cap
    model.add_constraint(Constraint(coefs, Sense.LE, 0.0))
    return d, o, v


def _interval_gap(
    p_values: tuple[int, ...], q_values: tuple[int, ...]
) -> int:
    """Minimum attainable |py - qy| given attainable value ranges."""
    return max(p_values[0] - q_values[-1], q_values[0] - p_values[-1], 0)


def _pair_name(ref_p: PinRef, ref_q: PinRef) -> str:
    return f"{ref_p.instance}.{ref_p.pin}|{ref_q.instance}.{ref_q.pin}"
