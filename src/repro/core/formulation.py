"""Window MILP construction: the §3.1 / §3.2 formulations.

Given one window, the model selects an SCP candidate per movable cell
(λ binaries, constraints (5)–(8) folded into candidate constants),
packs cells onto sites (constraint (9)), tracks each touched net's
HPWL through min/max coordinate variables (constraints (2)–(3)), and
scores direct-vertical-M1 opportunities:

* ClosedM1 — a binary d_pq per candidate-feasible same-net pin pair
  with the big-M alignment test of constraint (4), generalized from H
  to γ·H.
* OpenM1 — overlap variables a/b/o_pq and the escape binary v_pq with
  constraints (11)–(14); d_pq = 1 requires overlap ≥ δ within the γ
  row span, and the overlap length o_pq is rewarded with ε.

Pin pairs that can never align/overlap under any candidate combination
are pruned before a variable is created (sound pruning: only provably
d_pq = 0 pairs are dropped).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.params import OptParams
from repro.core.scp import Candidate, enumerate_candidates
from repro.core.window import Window
from repro.milp.model import LinExpr, Model, Var
from repro.milp.solution import Solution
from repro.netlist.design import Design, Net, PinRef
from repro.tech.arch import AlignmentMode


@dataclass
class _PinExpr:
    """Linear expressions for one pin's absolute geometry.

    For fixed pins the expressions are constants; for movable pins
    they are affine in the owner cell's λ variables.
    """

    x: LinExpr
    y: LinExpr
    x_lo: LinExpr  # xmin_p (OpenM1 interval left)
    x_hi: LinExpr  # xmax_p (OpenM1 interval right)
    x_values: tuple[int, ...]  # attainable x coordinates (pruning)
    y_values: tuple[int, ...]
    lo_min: int
    hi_max: int
    movable: bool


@dataclass
class WindowProblem:
    """A built window MILP plus the data needed to apply its result."""

    window: Window
    model: Model
    movable: list[str]
    candidates: dict[str, list[Candidate]]
    lambda_vars: dict[str, list[Var]]
    d_vars: list[Var] = field(default_factory=list)
    nets: list[str] = field(default_factory=list)

    @property
    def num_pairs(self) -> int:
        return len(self.d_vars)


def build_window_model(
    design: Design,
    window: Window,
    params: OptParams,
    *,
    lx: int,
    ly: int,
    allow_flip: bool,
) -> WindowProblem | None:
    """Build the MILP for ``window``; None when nothing is optimizable."""
    movable_insts = [
        inst
        for inst in design.instances_in(window.rect)
        if not inst.fixed
    ]
    if not movable_insts:
        return None
    movable_names = [inst.name for inst in movable_insts]
    movable_set = set(movable_names)

    blocked = _blocked_sites(design, window, movable_set)
    model = Model(f"win({window.ix},{window.iy})")

    candidates: dict[str, list[Candidate]] = {}
    lambda_vars: dict[str, list[Var]] = {}
    site_cover: dict[tuple[int, int], list[Var]] = {}
    for inst in movable_insts:
        cands = [
            cand
            for cand in enumerate_candidates(
                design, inst, window.rect, lx=lx, ly=ly,
                allow_flip=allow_flip,
            )
            if not any(
                site in blocked
                for site in cand.covered_sites(inst.macro.width_sites)
            )
        ]
        if not cands:  # should not happen: identity is always legal
            return None
        candidates[inst.name] = cands
        lams = [
            model.add_binary(f"lam[{inst.name},{k}]")
            for k in range(len(cands))
        ]
        lambda_vars[inst.name] = lams
        model.add_constraint(
            LinExpr.total(lams).equals(1.0), name=f"sel[{inst.name}]"
        )
        for cand, lam in zip(cands, lams):
            for site in cand.covered_sites(inst.macro.width_sites):
                site_cover.setdefault(site, []).append(lam)

    for site, lams in sorted(site_cover.items()):
        if len(lams) > 1:
            model.add_constraint(
                LinExpr.total(lams) <= 1.0,
                name=f"site[{site[0]},{site[1]}]",
            )

    nets = _touched_nets(design, movable_set)
    pin_exprs = _pin_expressions(
        design, nets, movable_set, candidates, lambda_vars
    )

    objective = LinExpr()
    for net in nets:
        objective = objective + params.beta_of(net.name) * _hpwl_expr(
            design, model, net, pin_exprs
        )

    mode = design.tech.arch.alignment_mode
    d_vars: list[Var] = []
    if mode is not AlignmentMode.NONE and params.alpha > 0:
        span = params.gamma * design.tech.row_height
        for net in nets:
            if not 2 <= net.degree <= params.max_net_degree:
                continue
            for ref_p, ref_q in _movable_pairs(net, movable_set):
                p = pin_exprs[ref_p]
                q = pin_exprs[ref_q]
                if mode is AlignmentMode.ALIGN:
                    d = _closedm1_pair(model, p, q, span, ref_p, ref_q)
                    if d is not None:
                        d_vars.append(d)
                        objective = objective - params.alpha * d
                else:
                    built = _openm1_pair(
                        model, p, q, span, params.delta, ref_p, ref_q
                    )
                    if built is not None:
                        d, overlap = built
                        d_vars.append(d)
                        objective = (
                            objective
                            - params.alpha * d
                            - params.epsilon * overlap
                        )

    model.minimize(objective)
    return WindowProblem(
        window=window,
        model=model,
        movable=movable_names,
        candidates=candidates,
        lambda_vars=lambda_vars,
        d_vars=d_vars,
        nets=[net.name for net in nets],
    )


def apply_solution(
    design: Design, problem: WindowProblem, solution: Solution
) -> int:
    """Write the selected candidates back into ``design``.

    Returns the number of instances whose placement changed.

    Raises:
        ValueError: if any cell has no selected candidate (corrupt
            solution) — the design is left untouched in that case.
    """
    chosen: dict[str, Candidate] = {}
    for name in problem.movable:
        cands = problem.candidates[name]
        lams = problem.lambda_vars[name]
        picked = [
            cand
            for cand, lam in zip(cands, lams)
            if solution.is_one(lam)
        ]
        if len(picked) != 1:
            raise ValueError(
                f"{name}: {len(picked)} candidates selected"
            )
        chosen[name] = picked[0]
    moved = 0
    for name, cand in chosen.items():
        inst = design.instances[name]
        if (inst.x, inst.y, inst.orientation) != (
            cand.x,
            cand.y,
            cand.orientation,
        ):
            moved += 1
        design.place(name, cand.column, cand.row, cand.flipped)
    return moved


# ---------------------------------------------------------------- helpers
def _blocked_sites(
    design: Design, window: Window, movable: set[str]
) -> set[tuple[int, int]]:
    """Sites inside the window footprinted by cells we may not move
    (boundary-straddling or fixed cells)."""
    tech = design.tech
    blocked: set[tuple[int, int]] = set()
    probe = window.rect.expanded(
        max(tech.site_width * 64, tech.row_height * 4)
    )
    for name, inst in sorted(design.instances.items()):
        if name in movable:
            continue
        if not inst.bbox.overlaps_open(probe):
            continue
        row = design.row_of(inst)
        col = design.column_of(inst)
        for c in range(col, col + inst.macro.width_sites):
            blocked.add((row, c))
    return blocked


def _touched_nets(design: Design, movable: set[str]) -> list[Net]:
    nets = design.nets_of_instances(movable)
    return [net for net in nets if not net.is_trivial()]


def _pin_expressions(
    design: Design,
    nets: list[Net],
    movable: set[str],
    candidates: dict[str, list[Candidate]],
    lambda_vars: dict[str, list[Var]],
) -> dict[PinRef, _PinExpr]:
    exprs: dict[PinRef, _PinExpr] = {}
    for net in nets:
        for ref in net.pins:
            if ref in exprs:
                continue
            inst = design.instances[ref.instance]
            pin = inst.macro.pin(ref.pin)
            if ref.instance in movable:
                x = LinExpr()
                x_lo = LinExpr()
                x_hi = LinExpr()
                y = LinExpr()
                xs: list[int] = []
                ys: list[int] = []
                lo_min = None
                hi_max = None
                for cand, lam in zip(
                    candidates[ref.instance], lambda_vars[ref.instance]
                ):
                    xp = cand.orientation.transform_x(
                        pin.x_rel, inst.width
                    )
                    iv = cand.orientation.transform_x_interval(
                        pin.x_interval_rel, inst.width
                    )
                    px = cand.x + xp
                    py = cand.y + pin.y_rel
                    x = x + lam * px
                    y = y + lam * py
                    x_lo = x_lo + lam * (cand.x + iv.lo)
                    x_hi = x_hi + lam * (cand.x + iv.hi)
                    xs.append(px)
                    ys.append(py)
                    lo = cand.x + iv.lo
                    hi = cand.x + iv.hi
                    lo_min = lo if lo_min is None else min(lo_min, lo)
                    hi_max = hi if hi_max is None else max(hi_max, hi)
                exprs[ref] = _PinExpr(
                    x=x,
                    y=y,
                    x_lo=x_lo,
                    x_hi=x_hi,
                    x_values=tuple(sorted(set(xs))),
                    y_values=tuple(sorted(set(ys))),
                    lo_min=lo_min or 0,
                    hi_max=hi_max or 0,
                    movable=True,
                )
            else:
                pos = inst.pin_position(ref.pin)
                iv = inst.pin_x_interval(ref.pin)
                exprs[ref] = _PinExpr(
                    x=LinExpr.of(float(pos.x)),
                    y=LinExpr.of(float(pos.y)),
                    x_lo=LinExpr.of(float(iv.lo)),
                    x_hi=LinExpr.of(float(iv.hi)),
                    x_values=(pos.x,),
                    y_values=(pos.y,),
                    lo_min=iv.lo,
                    hi_max=iv.hi,
                    movable=False,
                )
    return exprs


def _hpwl_expr(
    design: Design,
    model: Model,
    net: Net,
    pin_exprs: dict[PinRef, _PinExpr],
) -> LinExpr:
    """Constraints (2)-(3): net bounding-box variables; returns wn."""
    fixed_xs = [p.x for p in net.pads]
    fixed_ys = [p.y for p in net.pads]
    movable_refs = []
    for ref in net.pins:
        expr = pin_exprs[ref]
        if expr.movable:
            movable_refs.append(ref)
        else:
            fixed_xs.append(expr.x_values[0])
            fixed_ys.append(expr.y_values[0])

    if not movable_refs:
        width = (max(fixed_xs) - min(fixed_xs)) if fixed_xs else 0
        height = (max(fixed_ys) - min(fixed_ys)) if fixed_ys else 0
        return LinExpr.of(float(width + height))

    # Tight variable bounds double as the fixed-terminal constraints.
    all_x = [v for ref in movable_refs for v in pin_exprs[ref].x_values]
    all_y = [v for ref in movable_refs for v in pin_exprs[ref].y_values]
    all_x.extend(fixed_xs)
    all_y.extend(fixed_ys)
    fx_max = max(fixed_xs) if fixed_xs else min(all_x)
    fx_min = min(fixed_xs) if fixed_xs else max(all_x)
    fy_max = max(fixed_ys) if fixed_ys else min(all_y)
    fy_min = min(fixed_ys) if fixed_ys else max(all_y)

    x_max = model.add_continuous(f"xmax[{net.name}]", fx_max, max(all_x))
    x_min = model.add_continuous(f"xmin[{net.name}]", min(all_x), fx_min)
    y_max = model.add_continuous(f"ymax[{net.name}]", fy_max, max(all_y))
    y_min = model.add_continuous(f"ymin[{net.name}]", min(all_y), fy_min)
    for ref in movable_refs:
        expr = pin_exprs[ref]
        model.add_constraint(x_max - expr.x >= 0.0)
        model.add_constraint(x_min - expr.x <= 0.0)
        model.add_constraint(y_max - expr.y >= 0.0)
        model.add_constraint(y_min - expr.y <= 0.0)
    return (x_max - x_min) + (y_max - y_min)


def _movable_pairs(net: Net, movable: set[str]):
    """Same-net pin pairs on distinct instances, at least one movable."""
    pins = net.pins
    for i in range(len(pins)):
        for j in range(i + 1, len(pins)):
            if pins[i].instance == pins[j].instance:
                continue
            if pins[i].instance in movable or pins[j].instance in movable:
                yield pins[i], pins[j]


def _closedm1_pair(
    model: Model,
    p: _PinExpr,
    q: _PinExpr,
    span: int,
    ref_p: PinRef,
    ref_q: PinRef,
) -> Var | None:
    """Constraint (4) with a γ·H vertical window; None when pruned."""
    if not set(p.x_values) & set(q.x_values):
        return None
    if _interval_gap(p.y_values, q.y_values) > span:
        return None
    g_x = max(p.x_values[-1] - q.x_values[0], q.x_values[-1] - p.x_values[0])
    g_y = (
        max(p.y_values[-1] - q.y_values[0], q.y_values[-1] - p.y_values[0])
        + span
    )
    d = model.add_binary(f"d[{_pair_name(ref_p, ref_q)}]")
    dx = p.x - q.x
    dy = p.y - q.y
    model.add_constraint(dx + g_x * d <= g_x)
    model.add_constraint(dx - g_x * d >= -g_x)
    model.add_constraint(dy + g_y * d <= g_y + span)
    model.add_constraint(dy - g_y * d >= -(g_y + span))
    return d


def _openm1_pair(
    model: Model,
    p: _PinExpr,
    q: _PinExpr,
    span: int,
    delta: int,
    ref_p: PinRef,
    ref_q: PinRef,
) -> tuple[Var, Var] | None:
    """Constraints (11)-(14); returns (d, o) or None when pruned."""
    best_overlap = min(p.hi_max, q.hi_max) - max(p.lo_min, q.lo_min)
    if best_overlap < delta:
        return None
    if _interval_gap(p.y_values, q.y_values) > span:
        return None
    name = _pair_name(ref_p, ref_q)
    a = model.add_continuous(
        f"a[{name}]", max(p.lo_min, q.lo_min), float("inf")
    )
    b = model.add_continuous(
        f"b[{name}]", -float("inf"), min(p.hi_max, q.hi_max)
    )
    model.add_constraint(a - p.x_lo >= 0.0)
    model.add_constraint(a - q.x_lo >= 0.0)
    model.add_constraint(b - p.x_hi <= 0.0)
    model.add_constraint(b - q.x_hi <= 0.0)

    d = model.add_binary(f"d[{name}]")
    v = model.add_binary(f"v[{name}]")
    g_y = (
        max(p.y_values[-1] - q.y_values[0], q.y_values[-1] - p.y_values[0])
        + span
    )
    dy = p.y - q.y
    model.add_constraint(dy - g_y * v <= span)
    model.add_constraint(dy + g_y * v >= -span)
    model.add_constraint(d + v <= 1.0)

    o_cap = max(0.0, float(best_overlap - delta))
    # Relaxation constant for constraint (13): when d = 0 the bound
    # must stay slack even for the most disjoint candidate choice, so
    # it covers the full x-span of both pins plus δ.
    g_13 = float(
        max(p.hi_max, q.hi_max) - min(p.lo_min, q.lo_min) + delta
    )
    o = model.add_continuous(f"o[{name}]", 0.0, o_cap)
    model.add_constraint(o - (b - a) - g_13 * (1.0 - d) <= -delta)
    model.add_constraint(o - o_cap * d <= 0.0)
    return d, o


def _interval_gap(
    p_values: tuple[int, ...], q_values: tuple[int, ...]
) -> int:
    """Minimum attainable |py - qy| given attainable value ranges."""
    return max(p_values[0] - q_values[-1], q_values[0] - p_values[-1], 0)


def _pair_name(ref_p: PinRef, ref_q: PinRef) -> str:
    return f"{ref_p.instance}.{ref_p.pin}|{ref_q.instance}.{ref_q.pin}"
