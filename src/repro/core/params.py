"""Optimization parameters (Table 1 weights and Algorithm 1 inputs)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tech.arch import CellArchitecture


@dataclass(frozen=True)
class ParamSet:
    """One entry of the input sequence U of Algorithm 1.

    Attributes:
        bw_um: window width in microns.
        bh_um: window height in microns.
        lx: maximum x displacement in sites.
        ly: maximum y displacement in rows.
    """

    bw_um: float
    bh_um: float
    lx: int
    ly: int

    @classmethod
    def square(cls, b_um: float, lx: int, ly: int) -> "ParamSet":
        """Square window shorthand, e.g. ``(20, 4, 1)`` of ExptA-3."""
        return cls(b_um, b_um, lx, ly)


@dataclass(frozen=True)
class OptParams:
    """All knobs of the MILP objective and the metaheuristic.

    Defaults follow the paper: α = 1200 (ClosedM1) / 1000 (OpenM1) in
    DBU of HPWL per alignment, β = 1, γ = 1 (ClosedM1) / 3 (OpenM1),
    θ = 1%.  δ (minimum OpenM1 overlap) and ε are implementation
    constants the paper does not publish numerically; defaults are one
    site width and a small overlap-length reward.
    """

    alpha: float = 1200.0
    beta: float = 1.0
    #: Optional per-net HPWL weight multipliers (β_n = beta *
    #: net_beta[n]).  The paper's §6 future work (ii) — timing-
    #: criticality-aware objectives — plugs in here; see
    #: :func:`repro.timing.criticality.criticality_weights`.
    net_beta: dict[str, float] | None = None
    epsilon: float = 0.5
    gamma: int = 1
    delta: int = 36
    theta: float = 0.01
    sequence: tuple[ParamSet, ...] = field(
        default_factory=lambda: (ParamSet.square(20.0, 4, 1),)
    )
    #: Per-window MILP wall-clock limit in seconds.
    time_limit: float = 20.0
    #: Relative MIP optimality gap per window solve.  Windows are
    #: re-optimized across iterations, so a small non-zero gap trades
    #: negligible quality for large solver speedups.
    mip_gap: float = 0.01
    #: Skip alignment terms for nets with more terminals than this
    #: (high-fanout nets such as clocks gain nothing from dM1).
    max_net_degree: int = 16

    def beta_of(self, net_name: str) -> float:
        """Effective HPWL weight β_n for one net."""
        if self.net_beta is None:
            return self.beta
        return self.beta * self.net_beta.get(net_name, 1.0)

    @classmethod
    def for_arch(
        cls,
        arch: CellArchitecture,
        *,
        alpha: float | None = None,
        sequence: tuple[ParamSet, ...] | None = None,
        **overrides,
    ) -> "OptParams":
        """Paper defaults for ``arch`` (ExptA-2 selected α values)."""
        if alpha is None:
            alpha = 1000.0 if arch is CellArchitecture.OPEN_M1 else 1200.0
        kwargs = dict(
            alpha=alpha,
            gamma=arch.default_gamma,
        )
        kwargs.update(overrides)
        if sequence is not None:
            kwargs["sequence"] = sequence
        return cls(**kwargs)


def default_sequence() -> tuple[ParamSet, ...]:
    """The preferred sequence of ExptA-3: a single (20, 4, 1) pass."""
    return (ParamSet.square(20.0, 4, 1),)


#: The five optimization sequences compared in ExptA-3 / Figure 7.
EXPTA3_SEQUENCES: dict[int, tuple[ParamSet, ...]] = {
    1: (ParamSet.square(20.0, 4, 1),),
    2: (
        ParamSet.square(10.0, 3, 1),
        ParamSet.square(10.0, 4, 0),
        ParamSet.square(20.0, 4, 0),
    ),
    3: (
        ParamSet.square(10.0, 3, 1),
        ParamSet.square(20.0, 3, 1),
        ParamSet.square(20.0, 3, 0),
    ),
    4: (
        ParamSet.square(10.0, 3, 1),
        ParamSet.square(20.0, 3, 0),
    ),
    5: (
        ParamSet.square(10.0, 3, 1),
        ParamSet.square(10.0, 3, 0),
        ParamSet.square(20.0, 3, 1),
        ParamSet.square(20.0, 3, 0),
    ),
}
