"""Crash-safe VM1Opt checkpoints (per-pass placement + cache state).

A :class:`VM1Checkpoint` captures everything :func:`repro.core.vm1opt.
vm1_opt` needs to continue after the last *completed* DistOpt pass:

* the loop position — parameter-set index ``u_index``, inner
  ``iteration``, and which ``phase`` of the iteration just finished
  (``"move"`` or ``"flip"``) — plus the window-grid offsets ``tx/ty``
  *before* the end-of-iteration shift;
* the objective trail — ``pre_objective`` (objective at the top of the
  interrupted iteration, needed for the θ convergence test),
  ``objective`` (after the checkpointed pass), and
  ``initial_objective`` / ``iterations`` for result bookkeeping;
* the full placement (every instance's ``x/y/orientation``);
* the :class:`~repro.core.windowcache.WindowSolveCache` entries, so a
  resumed run skips exactly the windows the uninterrupted run would
  have skipped;
* the :class:`~repro.core.dirty.DirtyTracker` state (clean-window
  marks + accumulated dirty regions), so a resumed run's incremental
  engine skips exactly what the uninterrupted run would skip.  The
  ``dirty`` document key is optional: a checkpoint without it resumes
  with everything presumed dirty, which is always sound — identical
  placements, merely slower first pass.

Every DistOpt pass is deterministic given (placement, cache, params,
grid offsets) — PR 3's λ tie-break made solves reproducible — so a run
resumed from a checkpoint finishes with a placement *byte-identical*
to the uninterrupted run.  The end-of-iteration control flow (grid
shift, θ test) is pure computation over checkpointed values and is
simply re-executed on resume.

Serialization is plain JSON; ``json`` round-trips Python floats via
``repr`` exactly, so the θ test sees bit-identical objectives after a
save/load cycle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.geometry import Orientation

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.core.dirty import DirtyTracker
    from repro.core.windowcache import WindowSolveCache
    from repro.netlist.design import Design

#: Schema identifier written into every checkpoint document.
CHECKPOINT_SCHEMA = "repro.core.checkpoint/v1"


def _trace_from_doc(value) -> tuple[str, str | None] | None:
    if not value:
        return None
    trace_id, span_id = value
    return (str(trace_id), None if span_id is None else str(span_id))


@dataclass
class VM1Checkpoint:
    """State after one completed DistOpt pass of a VM1Opt run."""

    u_index: int
    iteration: int
    phase: str  # "move" | "flip"
    tx: int
    ty: int
    pre_objective: float
    objective: float
    initial_objective: float
    iterations: int
    #: instance name -> (x, y, DEF orientation string).
    placement: dict[str, tuple[int, int, str]]
    #: serialized WindowSolveCache entries (see windowcache module).
    cache_entries: list = field(default_factory=list)
    #: serialized DirtyTracker state (see dirty module); [] = none.
    dirty_state: list = field(default_factory=list)
    #: ``(trace_id, root_span_id)`` of the run that wrote this
    #: checkpoint, when it was traced; a resumed run seeds its tracer
    #: from it so both attempts append to one coherent trace.  ``None``
    #: (and absent from older documents) = untraced.
    trace: tuple[str, str | None] | None = None
    schema: str = CHECKPOINT_SCHEMA

    # ------------------------------------------------------- capture
    @classmethod
    def capture(
        cls,
        design: "Design",
        cache: "WindowSolveCache | None",
        dirty: "DirtyTracker | None" = None,
        *,
        u_index: int,
        iteration: int,
        phase: str,
        tx: int,
        ty: int,
        pre_objective: float,
        objective: float,
        initial_objective: float,
        iterations: int,
        trace: tuple[str, str | None] | None = None,
    ) -> "VM1Checkpoint":
        """Snapshot the design placement + cache into a checkpoint."""
        placement = {
            name: (inst.x, inst.y, inst.orientation.value)
            for name, inst in design.instances.items()
        }
        return cls(
            u_index=u_index,
            iteration=iteration,
            phase=phase,
            tx=tx,
            ty=ty,
            pre_objective=pre_objective,
            objective=objective,
            initial_objective=initial_objective,
            iterations=iterations,
            placement=placement,
            cache_entries=(
                cache.export_state() if cache is not None else []
            ),
            dirty_state=(
                dirty.export_state() if dirty is not None else []
            ),
            trace=trace,
        )

    # ------------------------------------------------------- restore
    def restore(
        self,
        design: "Design",
        cache: "WindowSolveCache | None",
        dirty: "DirtyTracker | None" = None,
    ) -> None:
        """Write the checkpointed placement (+ cache/dirty) back."""
        for name, (x, y, orient) in self.placement.items():
            inst = design.instances[name]
            inst.x, inst.y = int(x), int(y)
            inst.orientation = Orientation(orient)
        if cache is not None and self.cache_entries:
            cache.import_state(self.cache_entries)
        if dirty is not None and self.dirty_state:
            dirty.import_state(self.dirty_state)

    # --------------------------------------------------- (de)serialize
    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "u_index": self.u_index,
            "iteration": self.iteration,
            "phase": self.phase,
            "tx": self.tx,
            "ty": self.ty,
            "pre_objective": self.pre_objective,
            "objective": self.objective,
            "initial_objective": self.initial_objective,
            "iterations": self.iterations,
            "placement": {
                name: list(state)
                for name, state in self.placement.items()
            },
            "cache": self.cache_entries,
            "dirty": self.dirty_state,
            "trace": (
                list(self.trace) if self.trace is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "VM1Checkpoint":
        schema = doc.get("schema", "")
        if schema != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"unsupported checkpoint schema {schema!r} "
                f"(expected {CHECKPOINT_SCHEMA!r})"
            )
        return cls(
            u_index=int(doc["u_index"]),
            iteration=int(doc["iteration"]),
            phase=str(doc["phase"]),
            tx=int(doc["tx"]),
            ty=int(doc["ty"]),
            pre_objective=float(doc["pre_objective"]),
            objective=float(doc["objective"]),
            initial_objective=float(doc["initial_objective"]),
            iterations=int(doc["iterations"]),
            placement={
                name: (int(x), int(y), str(orient))
                for name, (x, y, orient) in doc["placement"].items()
            },
            cache_entries=list(doc.get("cache", [])),
            dirty_state=list(doc.get("dirty", [])),
            trace=_trace_from_doc(doc.get("trace")),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def loads(cls, text: str) -> "VM1Checkpoint":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        """Persist as JSON (plain write; use a jobstore for atomicity)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.dumps())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "VM1Checkpoint":
        return cls.loads(Path(path).read_text())
