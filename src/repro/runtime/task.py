"""Picklable window subproblems for cross-process execution.

A :class:`WindowTask` is the unit of work the execution engine ships
to a worker: the window's fully-built MILP (pins, intervals and local
nets are already folded into the model's variables and constraints)
plus a :class:`SolverSpec` describing how to construct the MILP
backend on the far side of the process boundary.  Everything needed to
*apply* a solution (candidate lists, λ variables) stays behind in the
parent's :class:`~repro.core.formulation.WindowProblem` — only the
solve crosses the boundary, and only a
:class:`~repro.milp.solution.Solution` comes back.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.milp.model import Model
from repro.milp.solution import Solution, SolveStatus

if TYPE_CHECKING:  # circular-import guard: formulation is heavy
    from repro.core.formulation import WindowProblem


@dataclass(frozen=True)
class SolverSpec:
    """Recipe for constructing a MILP backend inside a worker.

    Known backends (``highs``, ``branch_bound``) are rebuilt from
    their parameters; any other backend object is carried along
    verbatim via ``instance`` and must itself be picklable.
    """

    backend: str = "highs"
    time_limit: float | None = None
    mip_rel_gap: float = 0.0
    native_presolve: bool | None = None
    instance: object | None = None

    @classmethod
    def from_backend(cls, solver) -> "SolverSpec":
        """Capture a spec from an already-constructed backend."""
        from repro.milp.branch_bound import BranchBoundBackend
        from repro.milp.highs_backend import HighsBackend

        if isinstance(solver, HighsBackend):
            return cls(
                backend="highs",
                time_limit=solver.time_limit,
                mip_rel_gap=solver.mip_rel_gap,
                native_presolve=solver.native_presolve,
            )
        if isinstance(solver, BranchBoundBackend):
            return cls(
                backend="branch_bound",
                time_limit=getattr(solver, "time_limit", None),
                instance=solver,
            )
        return cls(backend=type(solver).__name__, instance=solver)

    def build(self):
        """Construct (or return) the backend this spec describes."""
        if self.instance is not None:
            return self.instance
        if self.backend == "highs":
            from repro.milp.highs_backend import HighsBackend

            return HighsBackend(
                time_limit=self.time_limit,
                mip_rel_gap=self.mip_rel_gap,
                native_presolve=self.native_presolve,
            )
        if self.backend == "branch_bound":
            from repro.milp.branch_bound import BranchBoundBackend

            return BranchBoundBackend(time_limit=self.time_limit)
        raise ValueError(f"unknown solver backend {self.backend!r}")


@dataclass
class WindowTaskResult:
    """What comes back from one window-solve attempt."""

    task_id: int
    solution: Solution | None = None
    solve_seconds: float = 0.0
    presolve_seconds: float = 0.0
    queue_seconds: float = 0.0
    attempts: int = 1
    timed_out: bool = False
    error: str = ""

    @property
    def ok(self) -> bool:
        """True when a usable (optimal/feasible) solution came back."""
        return (
            not self.error
            and self.solution is not None
            and self.solution.status.has_solution
        )


@dataclass(frozen=True)
class WindowTask:
    """Self-contained, picklable window subproblem.

    Attributes:
        task_id: canonical (submission-order) id; solutions are applied
            in ascending ``task_id`` order regardless of completion
            order, which is what makes parallel runs deterministic.
        ix/iy: window grid coordinates (for telemetry/debugging).
        family: independent-family index the window belongs to.
        model: the built window MILP (self-contained).
        solver: backend recipe used by the worker.
        nets: names of the window's touched nets (metadata only).
        num_movable: movable cell count (metadata only).
        num_pairs: candidate dM1 pin pairs in the model (metadata).
        presolve: run :func:`repro.milp.presolve.presolve` on the
            model inside the worker (and lift the solution back), so
            the reduction cost parallelizes with the solves.
    """

    task_id: int
    ix: int
    iy: int
    family: int
    model: Model
    solver: SolverSpec
    nets: tuple[str, ...] = ()
    num_movable: int = 0
    num_pairs: int = 0
    presolve: bool = True

    @classmethod
    def from_problem(
        cls,
        problem: "WindowProblem",
        *,
        task_id: int,
        family: int,
        solver: SolverSpec,
        presolve: bool = True,
    ) -> "WindowTask":
        """Extract the shippable part of a built window problem."""
        return cls(
            task_id=task_id,
            ix=problem.window.ix,
            iy=problem.window.iy,
            family=family,
            model=problem.model,
            solver=solver,
            nets=tuple(problem.nets),
            num_movable=len(problem.movable),
            num_pairs=problem.num_pairs,
            presolve=presolve,
        )

    def run(self) -> WindowTaskResult:
        """Execute one solve attempt; never raises.

        Runs inside the worker (process, thread, or inline for the
        serial executor).  Solver exceptions and ``ERROR`` statuses are
        folded into ``WindowTaskResult.error`` so the scheduler can
        decide whether to retry.  Solutions of a presolved model are
        lifted back to the original variable space before they cross
        the boundary — the parent only ever sees original indices.
        """
        started = time.perf_counter()
        presolve_seconds = 0.0
        try:
            backend = self.solver.build()
            model = self.model
            reduction = None
            if self.presolve:
                from repro.milp.presolve import presolve as _presolve

                t0 = time.perf_counter()
                reduction = _presolve(model)
                presolve_seconds = time.perf_counter() - t0
                model = reduction.model
            solution = backend.solve(model)
            if reduction is not None:
                solution = reduction.lift(solution)
        except Exception as exc:  # noqa: BLE001 — worker boundary
            return WindowTaskResult(
                task_id=self.task_id,
                solve_seconds=time.perf_counter() - started,
                presolve_seconds=presolve_seconds,
                error=f"{type(exc).__name__}: {exc}",
            )
        elapsed = time.perf_counter() - started - presolve_seconds
        error = ""
        timed_out = False
        if solution.status is SolveStatus.ERROR:
            error = solution.message or "solver returned ERROR"
            # A solve that exhausted the backend's own time limit
            # without an incumbent is a timeout, not a transient
            # failure — retrying it would just burn the budget again.
            timed_out = "time limit" in error.lower()
        return WindowTaskResult(
            task_id=self.task_id,
            solution=solution,
            solve_seconds=elapsed,
            presolve_seconds=presolve_seconds,
            timed_out=timed_out,
            error=error,
        )
